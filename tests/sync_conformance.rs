//! Differential sync-conformance harness: the same seeded cell traffic is
//! pushed through four synchronization executors — the conservative serial
//! coupling, the parallel coupled-engine executor, the fixed-quantum
//! lockstep baseline, and the optimistic (Time-Warp) wrapper — and every
//! executor must hand back a byte-identical observable cell trace.
//!
//! The protocols differ wildly in *when* work happens (timing windows,
//! alternation quanta, speculative execution with rollback), but §3.1's
//! correctness claim is exactly that the synchronization discipline must
//! never change *what* the coupled DUT computes. The trace compared here is
//! the wire encoding of every egress cell in arrival order; timestamps are
//! deliberately excluded — schedules may differ, contents may not.

use castanet::compare::StreamComparator;
use castanet::convert::ByteStreamAssembler;
use castanet::coupling::{CoupledSimulator, Coupling};
use castanet::cyclecosim::{CycleCosim, EgressIndices, IngressIndices};
use castanet::interface::{response_packet, CastanetInterfaceProcess};
use castanet::message::{Message, MessageTypeId};
use castanet::sync::lockstep::Side;
use castanet::sync::optimistic::{TimedEvent, TimedOutput};
use castanet::sync::{ConservativeSync, LockstepSync, OptimisticSync};
use castanet_atm::addr::{HeaderFormat, VpiVci};
use castanet_atm::cell::AtmCell;
use castanet_netsim::event::PortId;
use castanet_netsim::kernel::Kernel;
use castanet_netsim::process::{CollectorHandle, CollectorProcess};
use castanet_netsim::time::{SimDuration, SimTime};
use castanet_rtl::cycle::{CycleDut, CycleSim};
use castanet_rtl::dut::{AtmSwitchRtl, SwitchRtlConfig};

const SEED: u64 = 0xDA7E_1998;
const CLK: SimDuration = SimDuration::from_ns(20);
/// Cells in the seeded campaign.
const CELLS: usize = 24;

fn rng_next(state: &mut u64) -> u64 {
    // xorshift64* — deterministic, dependency-free.
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// The seeded traffic: `CELLS` cells on connections 1/40 and 1/41 with
/// random payloads and inter-cell gaps of 2-9 us (always wider than the
/// 53-clock cell transfer, so the trace order is the stimulus order).
fn seeded_traffic(seed: u64) -> Vec<(SimTime, AtmCell)> {
    let mut s = seed;
    let mut at = SimTime::ZERO;
    (0..CELLS)
        .map(|_| {
            at += SimDuration::from_us(2 + rng_next(&mut s) % 8);
            let vci = 40 + (rng_next(&mut s) % 2) as u16;
            let mut payload = [0u8; 48];
            for b in &mut payload {
                *b = (rng_next(&mut s) & 0xFF) as u8;
            }
            (
                at,
                AtmCell::user_data(VpiVci::uni(1, vci).unwrap(), payload),
            )
        })
        .collect()
}

/// What the switch must emit: headers retagged 1/40 -> 7/70 and
/// 1/41 -> 7/71, payloads untouched, per-stimulus order preserved.
fn expected_cells(stims: &[(SimTime, AtmCell)]) -> Vec<AtmCell> {
    stims
        .iter()
        .map(|(_, cell)| {
            let vci = 70 + (cell.id().vci.value() - 40);
            AtmCell::user_data(VpiVci::uni(7, vci).unwrap(), cell.payload)
        })
        .collect()
}

fn routed_switch() -> AtmSwitchRtl {
    let mut switch = AtmSwitchRtl::new(SwitchRtlConfig {
        ports: 2,
        fifo_capacity: 64,
        table_capacity: 16,
    });
    assert!(switch.install_route(1, 40, 1, 7, 70));
    assert!(switch.install_route(1, 41, 1, 7, 71));
    switch
}

fn fresh_follower(cell_type: MessageTypeId) -> CycleCosim {
    let sim = CycleSim::new(Box::new(routed_switch()));
    let mut follower = CycleCosim::new(sim, CLK, cell_type, HeaderFormat::Uni);
    follower.add_ingress(IngressIndices {
        data: 0,
        sync: 1,
        enable: 2,
    });
    follower.add_ingress(IngressIndices {
        data: 3,
        sync: 4,
        enable: 5,
    });
    follower.add_egress(EgressIndices {
        data: 0,
        sync: 1,
        valid: 2,
    });
    follower.add_egress(EgressIndices {
        data: 3,
        sync: 4,
        valid: 5,
    });
    follower
}

/// Kernel fixture for the coupled executors: the seeded stimulus is
/// pre-scheduled as arrivals at the interface node, responses flow out to
/// a collector sink.
fn coupled(stims: &[(SimTime, AtmCell)]) -> (Coupling<CycleCosim>, CollectorHandle) {
    let mut net = Kernel::new(SEED);
    let node = net.add_node("conformance");
    let mut sync = ConservativeSync::new();
    let cell_type = sync.register_type(CLK * 53);
    let (iface_proc, outbox) = CastanetInterfaceProcess::new(cell_type);
    let iface = net.add_module(node, "castanet", Box::new(iface_proc));
    let (collector, got) = CollectorProcess::new();
    let sink = net.add_module(node, "sink", Box::new(collector));
    net.connect_stream(iface, PortId(1), sink, PortId(0))
        .unwrap();
    for (at, cell) in stims {
        net.inject_packet(iface, PortId(0), response_packet(cell.clone()), *at)
            .unwrap();
    }
    let follower = fresh_follower(cell_type);
    (
        Coupling::new(net, follower, sync, cell_type, iface, outbox),
        got,
    )
}

fn collected_cells(got: &CollectorHandle) -> Vec<AtmCell> {
    got.take()
        .into_iter()
        .map(|(_, pkt)| pkt.payload::<AtmCell>().expect("cell payload").clone())
        .collect()
}

/// Executor 1: the conservative serial coupling (`Coupling::run`).
fn run_conservative(stims: &[(SimTime, AtmCell)]) -> Vec<AtmCell> {
    let (mut coupling, got) = coupled(stims);
    coupling.run(SimTime::from_ms(1)).expect("serial run");
    assert!(coupling.sync().lag_invariant_holds());
    collected_cells(&got)
}

/// Executor 2: the parallel coupled-engine executor.
fn run_parallel(stims: &[(SimTime, AtmCell)], window: SimDuration, depth: usize) -> Vec<AtmCell> {
    let (coupling, got) = coupled(stims);
    let mut coupling = coupling.into_parallel().with_batching(window, depth);
    coupling.run(SimTime::from_ms(1)).expect("parallel run");
    assert!(coupling.sync().lag_invariant_holds());
    assert_eq!(coupling.stats().late_responses, 0);
    collected_cells(&got)
}

/// Executor 3: fixed-quantum lockstep alternation. The quantum must not
/// exceed the true lookahead (the 53-clock cell transfer time).
fn run_lockstep(stims: &[(SimTime, AtmCell)], quantum: SimDuration) -> Vec<AtmCell> {
    let mut ls = LockstepSync::new(quantum);
    assert!(
        ls.is_safe_for(CLK * 53),
        "quantum wider than the lookahead would not be a valid baseline"
    );
    let cell_type = MessageTypeId(0);
    let mut follower = fresh_follower(cell_type);
    let horizon = stims.last().unwrap().0 + SimDuration::from_us(50);
    let mut trace = Vec::new();
    let mut next = 0;
    while ls.begin_window() <= horizon {
        let window = ls.begin_window();
        // Originator half-round: hand over everything up to the window.
        while next < stims.len() && stims[next].0 < window {
            let (at, cell) = &stims[next];
            follower
                .deliver(Message::cell(*at, cell_type, 0, cell.clone()))
                .expect("deliver");
            next += 1;
        }
        ls.complete(Side::Originator);
        // Follower half-round: advance to the window edge, return responses.
        for m in follower.advance_batch(window).expect("advance") {
            if let Some(cell) = m.as_cell() {
                trace.push(cell.clone());
            }
        }
        assert!(
            follower.now() <= window,
            "lockstep follower overran its window"
        );
        ls.complete(Side::Follower);
    }
    assert_eq!(ls.rounds(), ls.rounds_to_reach(horizon));
    trace
}

/// Clonable deterministic state machine for the Time-Warp wrapper: the RTL
/// switch plus the receive-side assembler, stepped one whole cell per
/// event (the seeded gaps guarantee the real executors never overlap cells
/// either, so per-cell granularity is trace-equivalent).
#[derive(Clone)]
struct OptState {
    switch: AtmSwitchRtl,
    rx: ByteStreamAssembler,
}

fn opt_step(state: &mut OptState, cell: &AtmCell) -> Vec<AtmCell> {
    let wire = cell.encode(HeaderFormat::Uni).expect("encode");
    let mut out = Vec::new();
    let mut clocks = 0u32;
    let mut fed = 0usize;
    // Feed 53 octets, then idle until the switch pipeline drains.
    while fed < wire.len() || !state.switch.is_idle() {
        let mut inputs = [0u64; 12];
        if fed < wire.len() {
            inputs[0] = u64::from(wire[fed]);
            inputs[1] = u64::from(fed == 0);
            inputs[2] = 1;
            fed += 1;
        }
        let outputs = state.switch.clock_edge(&inputs);
        if outputs[5] == 1 {
            if let Some(cell) = state
                .rx
                .push((outputs[3] & 0xFF) as u8, outputs[4] == 1)
                .expect("assemble")
            {
                out.push(cell);
            }
        }
        clocks += 1;
        assert!(clocks < 1000, "switch failed to drain");
    }
    out
}

/// Executor 4: the optimistic wrapper, fed events in the given order; the
/// committed trace is the anti-message-corrected output set in virtual
/// time order.
fn run_optimistic(
    stims: &[(SimTime, AtmCell)],
    order: &[usize],
) -> (Vec<AtmCell>, castanet::sync::optimistic::OptimisticStats) {
    let state = OptState {
        switch: routed_switch(),
        rx: ByteStreamAssembler::new(HeaderFormat::Uni),
    };
    let mut tw = OptimisticSync::new(state, opt_step, 4096);
    let mut committed: Vec<TimedOutput<AtmCell>> = Vec::new();
    for &k in order {
        let (at, cell) = &stims[k];
        let outcome = tw
            .execute(TimedEvent {
                stamp: *at,
                seq: k as u64,
                event: cell.clone(),
            })
            .expect("execute");
        for anti in outcome.anti_messages {
            let pos = committed
                .iter()
                .position(|o| *o == anti)
                .expect("anti-message must cancel a previously sent output");
            committed.remove(pos);
        }
        committed.extend(outcome.outputs);
    }
    committed.sort_by_key(|o| o.stamp);
    (
        committed.into_iter().map(|o| o.output).collect(),
        tw.stats(),
    )
}

/// The literal byte sequences a monitor on the egress line would record.
fn trace_bytes(cells: &[AtmCell]) -> Vec<Vec<u8>> {
    cells
        .iter()
        .map(|c| c.encode(HeaderFormat::Uni).expect("encode").to_vec())
        .collect()
}

fn assert_conforms(stims: &[(SimTime, AtmCell)], trace: &[AtmCell], label: &str) {
    let mut cmp = StreamComparator::new(None);
    for (i, cell) in expected_cells(stims).iter().enumerate() {
        cmp.expect(cell, stims[i].0);
    }
    for cell in trace {
        cmp.observe(cell, SimTime::ZERO);
    }
    let report = cmp.finish();
    assert!(report.passed(), "{label} failed conformance:\n{report}");
    assert_eq!(report.matched, CELLS as u64, "{label} matched count");
}

#[test]
fn four_executors_produce_byte_identical_traces() {
    let stims = seeded_traffic(SEED);
    let in_order: Vec<usize> = (0..stims.len()).collect();

    let conservative = run_conservative(&stims);
    let parallel = run_parallel(&stims, SimDuration::from_us(100), 4);
    let lockstep = run_lockstep(&stims, SimDuration::from_us(1));
    let (optimistic, _) = run_optimistic(&stims, &in_order);

    assert_eq!(conservative.len(), CELLS, "conservative trace length");
    assert_conforms(&stims, &conservative, "conservative");
    assert_conforms(&stims, &parallel, "parallel");
    assert_conforms(&stims, &lockstep, "lockstep");
    assert_conforms(&stims, &optimistic, "optimistic");

    let reference = trace_bytes(&conservative);
    assert_eq!(
        trace_bytes(&parallel),
        reference,
        "parallel vs conservative"
    );
    assert_eq!(
        trace_bytes(&lockstep),
        reference,
        "lockstep vs conservative"
    );
    assert_eq!(
        trace_bytes(&optimistic),
        reference,
        "optimistic vs conservative"
    );
}

#[test]
fn parallel_batching_never_changes_the_trace() {
    let stims = seeded_traffic(SEED ^ 0x5EED);
    let reference = trace_bytes(&run_conservative(&stims));
    for (window_us, depth) in [(5u64, 1usize), (20, 2), (100, 4), (500, 8)] {
        let trace = run_parallel(&stims, SimDuration::from_us(window_us), depth);
        assert_eq!(
            trace_bytes(&trace),
            reference,
            "window {window_us} us / depth {depth}"
        );
    }
}

#[test]
fn lockstep_quantum_never_changes_the_trace() {
    let stims = seeded_traffic(SEED ^ 0xA1A1);
    let reference = trace_bytes(&run_conservative(&stims));
    for quantum_ns in [250u64, 500, 1000] {
        let trace = run_lockstep(&stims, SimDuration::from_ns(quantum_ns));
        assert_eq!(trace_bytes(&trace), reference, "quantum {quantum_ns} ns");
    }
}

#[test]
fn optimistic_rollbacks_preserve_the_trace() {
    // Swap adjacent events so every second submission is a straggler: the
    // Time-Warp discipline must roll back, replay and anti-message its way
    // to the exact trace the conservative executor produces.
    let stims = seeded_traffic(SEED ^ 0x0515);
    let mut shuffled: Vec<usize> = (0..stims.len()).collect();
    for pair in shuffled.chunks_mut(2) {
        pair.reverse();
    }
    let (trace, stats) = run_optimistic(&stims, &shuffled);
    assert!(stats.rollbacks > 0, "shuffle must actually cause rollbacks");
    assert!(
        stats.anti_messages > 0,
        "rollbacks must revoke sent outputs"
    );
    let reference = trace_bytes(&run_conservative(&stims));
    assert_eq!(trace_bytes(&trace), reference, "trace survives rollbacks");
}
