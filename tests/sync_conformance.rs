//! Differential sync-conformance harness: the same seeded cell traffic is
//! pushed through five synchronization executors — the conservative serial
//! coupling, the ring-parallel coupled-engine executor, the same executor
//! in first-class time-warp mode, the fixed-quantum lockstep baseline, and
//! the optimistic (Time-Warp) wrapper — and every executor must hand back
//! a byte-identical observable cell trace.
//!
//! The protocols differ wildly in *when* work happens (timing windows,
//! alternation quanta, speculative execution with rollback), but §3.1's
//! correctness claim is exactly that the synchronization discipline must
//! never change *what* the coupled DUT computes. The trace compared here is
//! the wire encoding of every egress cell in arrival order; timestamps are
//! deliberately excluded — schedules may differ, contents may not.
//!
//! The same discipline applies across *backends*: the event-driven kernel,
//! the cycle engine and the compiled bit-parallel backend are three
//! from-scratch evaluators of one DUT semantics, so the stock-switch
//! scenario must produce byte-identical egress from identical traffic on
//! all three — including through the gated-clock idle-skip fast path,
//! whose evaluated/skipped telemetry counters must agree between the
//! cycle-based and compiled followers exactly.

use castanet::compare::StreamComparator;
use castanet::convert::ByteStreamAssembler;
use castanet::coupling::{CoupledSimulator, Coupling, RtlCosim};
use castanet::cyclecosim::{CycleCosim, EgressIndices, IngressIndices};
use castanet::entity::{CosimEntity, EgressSignals, IngressSignals};
use castanet::interface::{response_packet, CastanetInterfaceProcess};
use castanet::message::{Message, MessageTypeId};
use castanet::sync::lockstep::Side;
use castanet::sync::optimistic::{TimedEvent, TimedOutput};
use castanet::sync::{ConservativeSync, LockstepSync, OptimisticSync};
use castanet::{AdaptiveWindow, CompiledCosim, ExecMode, Telemetry};
use castanet_atm::addr::{HeaderFormat, VpiVci};
use castanet_atm::cell::AtmCell;
use castanet_netsim::event::PortId;
use castanet_netsim::kernel::Kernel;
use castanet_netsim::process::{CollectorHandle, CollectorProcess};
use castanet_netsim::time::{SimDuration, SimTime};
use castanet_rtl::compiled::LaneBank;
use castanet_rtl::cycle::{attach_cycle_dut_gated, CycleDut, CycleSim};
use castanet_rtl::dut::{AtmSwitchRtl, SwitchRtlConfig};
use castanet_rtl::sim::Simulator;

const SEED: u64 = 0xDA7E_1998;
const CLK: SimDuration = SimDuration::from_ns(20);
/// Cells in the seeded campaign.
const CELLS: usize = 24;

fn rng_next(state: &mut u64) -> u64 {
    // xorshift64* — deterministic, dependency-free.
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// The seeded traffic: `CELLS` cells on connections 1/40 and 1/41 with
/// random payloads and inter-cell gaps of 2-9 us (always wider than the
/// 53-clock cell transfer, so the trace order is the stimulus order).
fn seeded_traffic(seed: u64) -> Vec<(SimTime, AtmCell)> {
    let mut s = seed;
    let mut at = SimTime::ZERO;
    (0..CELLS)
        .map(|_| {
            at += SimDuration::from_us(2 + rng_next(&mut s) % 8);
            let vci = 40 + (rng_next(&mut s) % 2) as u16;
            let mut payload = [0u8; 48];
            for b in &mut payload {
                *b = (rng_next(&mut s) & 0xFF) as u8;
            }
            (
                at,
                AtmCell::user_data(VpiVci::uni(1, vci).unwrap(), payload),
            )
        })
        .collect()
}

/// What the switch must emit: headers retagged 1/40 -> 7/70 and
/// 1/41 -> 7/71, payloads untouched, per-stimulus order preserved.
fn expected_cells(stims: &[(SimTime, AtmCell)]) -> Vec<AtmCell> {
    stims
        .iter()
        .map(|(_, cell)| {
            let vci = 70 + (cell.id().vci.value() - 40);
            AtmCell::user_data(VpiVci::uni(7, vci).unwrap(), cell.payload)
        })
        .collect()
}

fn routed_switch() -> AtmSwitchRtl {
    let mut switch = AtmSwitchRtl::new(SwitchRtlConfig {
        ports: 2,
        fifo_capacity: 64,
        table_capacity: 16,
    });
    assert!(switch.install_route(1, 40, 1, 7, 70));
    assert!(switch.install_route(1, 41, 1, 7, 71));
    switch
}

fn fresh_follower(cell_type: MessageTypeId) -> CycleCosim {
    let sim = CycleSim::new(Box::new(routed_switch()));
    let mut follower = CycleCosim::new(sim, CLK, cell_type, HeaderFormat::Uni);
    follower.add_ingress(IngressIndices {
        data: 0,
        sync: 1,
        enable: 2,
    });
    follower.add_ingress(IngressIndices {
        data: 3,
        sync: 4,
        enable: 5,
    });
    follower.add_egress(EgressIndices {
        data: 0,
        sync: 1,
        valid: 2,
    });
    follower.add_egress(EgressIndices {
        data: 3,
        sync: 4,
        valid: 5,
    });
    follower
}

/// The event-driven follower on the identical DUT: the switch behind the
/// gated-clock cycle bridge inside the event kernel, coupled through the
/// co-simulation entity — the third backend of the conformance matrix.
fn fresh_event_follower(cell_type: MessageTypeId) -> RtlCosim {
    let mut sim = Simulator::new();
    let dut = attach_cycle_dut_gated(&mut sim, "switch", Box::new(routed_switch()), CLK);
    let clk = dut.clk;
    let mut entity = CosimEntity::new(CLK, HeaderFormat::Uni, cell_type);
    for i in 0..2 {
        entity.add_ingress(IngressSignals {
            data: dut.inputs[3 * i],
            sync: dut.inputs[3 * i + 1],
            enable: dut.inputs[3 * i + 2],
        });
    }
    for i in 0..2 {
        entity.add_egress(
            &mut sim,
            clk,
            EgressSignals {
                data: dut.outputs[3 * i],
                sync: dut.outputs[3 * i + 1],
                valid: dut.outputs[3 * i + 2],
            },
        );
    }
    RtlCosim::new(sim, entity)
}

/// The compiled bit-parallel follower on the identical DUT: `lanes`
/// replicated switches behind one bit-sliced pin interface; lane 0 carries
/// the coupled traffic.
fn fresh_compiled_follower(cell_type: MessageTypeId, lanes: usize) -> CompiledCosim {
    let duts: Vec<Box<dyn CycleDut>> = (0..lanes)
        .map(|_| Box::new(routed_switch()) as Box<dyn CycleDut>)
        .collect();
    let mut follower = CompiledCosim::new(LaneBank::new(duts), CLK, cell_type, HeaderFormat::Uni);
    follower.add_ingress(IngressIndices {
        data: 0,
        sync: 1,
        enable: 2,
    });
    follower.add_ingress(IngressIndices {
        data: 3,
        sync: 4,
        enable: 5,
    });
    follower.add_egress(EgressIndices {
        data: 0,
        sync: 1,
        valid: 2,
    });
    follower.add_egress(EgressIndices {
        data: 3,
        sync: 4,
        valid: 5,
    });
    follower
}

/// Kernel fixture for the coupled executors: the seeded stimulus is
/// pre-scheduled as arrivals at the interface node, responses flow out to
/// a collector sink. Generic over the follower backend.
fn coupled_with<F: CoupledSimulator>(
    stims: &[(SimTime, AtmCell)],
    make_follower: impl FnOnce(MessageTypeId) -> F,
) -> (Coupling<F>, CollectorHandle) {
    let mut net = Kernel::new(SEED);
    let node = net.add_node("conformance");
    let mut sync = ConservativeSync::new();
    let cell_type = sync.register_type(CLK * 53);
    let (iface_proc, outbox) = CastanetInterfaceProcess::new(cell_type);
    let iface = net.add_module(node, "castanet", Box::new(iface_proc));
    let (collector, got) = CollectorProcess::new();
    let sink = net.add_module(node, "sink", Box::new(collector));
    net.connect_stream(iface, PortId(1), sink, PortId(0))
        .unwrap();
    for (at, cell) in stims {
        net.inject_packet(iface, PortId(0), response_packet(cell.clone()), *at)
            .unwrap();
    }
    let follower = make_follower(cell_type);
    (
        Coupling::new(net, follower, sync, cell_type, iface, outbox),
        got,
    )
}

fn coupled(stims: &[(SimTime, AtmCell)]) -> (Coupling<CycleCosim>, CollectorHandle) {
    coupled_with(stims, fresh_follower)
}

/// Runs one backend under the conservative coupling with telemetry
/// attached and returns its trace plus the follower's
/// evaluated/skipped clock gauges (absent for backends that do not
/// publish them).
fn run_backend<F: CoupledSimulator>(
    stims: &[(SimTime, AtmCell)],
    horizon: SimTime,
    make_follower: impl FnOnce(MessageTypeId) -> F,
) -> (Vec<AtmCell>, Option<(u64, u64)>) {
    let tel = Telemetry::enabled();
    let (coupling, got) = coupled_with(stims, make_follower);
    let mut coupling = coupling.with_telemetry(&tel);
    coupling.run(horizon).expect("backend run");
    assert!(coupling.sync().lag_invariant_holds());
    let snapshot = tel.metrics_snapshot();
    let counters = snapshot
        .gauge("follower.clocks_evaluated")
        .zip(snapshot.gauge("follower.clocks_skipped"));
    (collected_cells(&got), counters)
}

fn collected_cells(got: &CollectorHandle) -> Vec<AtmCell> {
    got.take()
        .into_iter()
        .map(|(_, pkt)| pkt.payload::<AtmCell>().expect("cell payload").clone())
        .collect()
}

/// Executor 1: the conservative serial coupling (`Coupling::run`).
fn run_conservative(stims: &[(SimTime, AtmCell)]) -> Vec<AtmCell> {
    let (mut coupling, got) = coupled(stims);
    coupling.run(SimTime::from_ms(1)).expect("serial run");
    assert!(coupling.sync().lag_invariant_holds());
    collected_cells(&got)
}

/// Executor 2: the parallel coupled-engine executor.
fn run_parallel(stims: &[(SimTime, AtmCell)], window: SimDuration, depth: usize) -> Vec<AtmCell> {
    let (coupling, got) = coupled(stims);
    let mut coupling = coupling.into_parallel().with_batching(window, depth);
    coupling.run(SimTime::from_ms(1)).expect("parallel run");
    assert!(coupling.sync().lag_invariant_holds());
    assert_eq!(coupling.stats().late_responses, 0);
    collected_cells(&got)
}

/// Executor 5: the ring-parallel executor in first-class time-warp mode.
/// The follower forks checkpoints and speculates past the grant horizon;
/// the conservative safety net must keep the committed trace byte-identical
/// to every other executor.
fn run_timewarp(stims: &[(SimTime, AtmCell)], window: SimDuration, depth: usize) -> Vec<AtmCell> {
    let (coupling, got) = coupled(stims);
    let mut coupling = coupling
        .into_parallel()
        .with_batching(window, depth)
        .with_exec_mode(ExecMode::TimeWarp);
    coupling.run(SimTime::from_ms(1)).expect("time-warp run");
    assert!(coupling.sync().lag_invariant_holds());
    assert_eq!(coupling.stats().late_responses, 0);
    collected_cells(&got)
}

/// Executor 3: fixed-quantum lockstep alternation. The quantum must not
/// exceed the true lookahead (the 53-clock cell transfer time).
fn run_lockstep(stims: &[(SimTime, AtmCell)], quantum: SimDuration) -> Vec<AtmCell> {
    let mut ls = LockstepSync::new(quantum);
    assert!(
        ls.is_safe_for(CLK * 53),
        "quantum wider than the lookahead would not be a valid baseline"
    );
    let cell_type = MessageTypeId(0);
    let mut follower = fresh_follower(cell_type);
    let horizon = stims.last().unwrap().0 + SimDuration::from_us(50);
    let mut trace = Vec::new();
    let mut next = 0;
    while ls.begin_window() <= horizon {
        let window = ls.begin_window();
        // Originator half-round: hand over everything up to the window.
        while next < stims.len() && stims[next].0 < window {
            let (at, cell) = &stims[next];
            follower
                .deliver(Message::cell(*at, cell_type, 0, cell.clone()))
                .expect("deliver");
            next += 1;
        }
        ls.complete(Side::Originator);
        // Follower half-round: advance to the window edge, return responses.
        for m in follower.advance_batch(window).expect("advance") {
            if let Some(cell) = m.as_cell() {
                trace.push(cell.clone());
            }
        }
        assert!(
            follower.now() <= window,
            "lockstep follower overran its window"
        );
        ls.complete(Side::Follower);
    }
    assert_eq!(ls.rounds(), ls.rounds_to_reach(horizon));
    trace
}

/// Clonable deterministic state machine for the Time-Warp wrapper: the RTL
/// switch plus the receive-side assembler, stepped one whole cell per
/// event (the seeded gaps guarantee the real executors never overlap cells
/// either, so per-cell granularity is trace-equivalent).
#[derive(Clone)]
struct OptState {
    switch: AtmSwitchRtl,
    rx: ByteStreamAssembler,
}

fn opt_step(state: &mut OptState, cell: &AtmCell) -> Vec<AtmCell> {
    let wire = cell.encode(HeaderFormat::Uni).expect("encode");
    let mut out = Vec::new();
    let mut clocks = 0u32;
    let mut fed = 0usize;
    // Feed 53 octets, then idle until the switch pipeline drains.
    while fed < wire.len() || !state.switch.is_idle() {
        let mut inputs = [0u64; 12];
        if fed < wire.len() {
            inputs[0] = u64::from(wire[fed]);
            inputs[1] = u64::from(fed == 0);
            inputs[2] = 1;
            fed += 1;
        }
        let outputs = state.switch.clock_edge(&inputs);
        if outputs[5] == 1 {
            if let Some(cell) = state
                .rx
                .push((outputs[3] & 0xFF) as u8, outputs[4] == 1)
                .expect("assemble")
            {
                out.push(cell);
            }
        }
        clocks += 1;
        assert!(clocks < 1000, "switch failed to drain");
    }
    out
}

/// Executor 4: the optimistic wrapper, fed events in the given order; the
/// committed trace is the anti-message-corrected output set in virtual
/// time order.
fn run_optimistic(
    stims: &[(SimTime, AtmCell)],
    order: &[usize],
) -> (Vec<AtmCell>, castanet::sync::optimistic::OptimisticStats) {
    let state = OptState {
        switch: routed_switch(),
        rx: ByteStreamAssembler::new(HeaderFormat::Uni),
    };
    let mut tw = OptimisticSync::new(state, opt_step, 4096);
    let mut committed: Vec<TimedOutput<AtmCell>> = Vec::new();
    for &k in order {
        let (at, cell) = &stims[k];
        let outcome = tw
            .execute(TimedEvent {
                stamp: *at,
                seq: k as u64,
                event: cell.clone(),
            })
            .expect("execute");
        for anti in outcome.anti_messages {
            let pos = committed
                .iter()
                .position(|o| *o == anti)
                .expect("anti-message must cancel a previously sent output");
            committed.remove(pos);
        }
        committed.extend(outcome.outputs);
    }
    committed.sort_by_key(|o| o.stamp);
    (
        committed.into_iter().map(|o| o.output).collect(),
        tw.stats(),
    )
}

/// The literal byte sequences a monitor on the egress line would record.
fn trace_bytes(cells: &[AtmCell]) -> Vec<Vec<u8>> {
    cells
        .iter()
        .map(|c| c.encode(HeaderFormat::Uni).expect("encode").to_vec())
        .collect()
}

fn assert_conforms(stims: &[(SimTime, AtmCell)], trace: &[AtmCell], label: &str) {
    let mut cmp = StreamComparator::new(None);
    for (i, cell) in expected_cells(stims).iter().enumerate() {
        cmp.expect(cell, stims[i].0);
    }
    for cell in trace {
        cmp.observe(cell, SimTime::ZERO);
    }
    let report = cmp.finish();
    assert!(report.passed(), "{label} failed conformance:\n{report}");
    assert_eq!(report.matched, CELLS as u64, "{label} matched count");
}

#[test]
fn five_executors_produce_byte_identical_traces() {
    let stims = seeded_traffic(SEED);
    let in_order: Vec<usize> = (0..stims.len()).collect();

    let conservative = run_conservative(&stims);
    let parallel = run_parallel(&stims, SimDuration::from_us(100), 4);
    let timewarp = run_timewarp(&stims, SimDuration::from_us(100), 4);
    let lockstep = run_lockstep(&stims, SimDuration::from_us(1));
    let (optimistic, _) = run_optimistic(&stims, &in_order);

    assert_eq!(conservative.len(), CELLS, "conservative trace length");
    assert_conforms(&stims, &conservative, "conservative");
    assert_conforms(&stims, &parallel, "parallel");
    assert_conforms(&stims, &timewarp, "time-warp");
    assert_conforms(&stims, &lockstep, "lockstep");
    assert_conforms(&stims, &optimistic, "optimistic");

    let reference = trace_bytes(&conservative);
    assert_eq!(
        trace_bytes(&parallel),
        reference,
        "parallel vs conservative"
    );
    assert_eq!(
        trace_bytes(&timewarp),
        reference,
        "time-warp vs conservative"
    );
    assert_eq!(
        trace_bytes(&lockstep),
        reference,
        "lockstep vs conservative"
    );
    assert_eq!(
        trace_bytes(&optimistic),
        reference,
        "optimistic vs conservative"
    );
}

#[test]
fn three_backends_produce_byte_identical_traces() {
    let stims = seeded_traffic(SEED);
    let horizon = SimTime::from_ms(1);

    let (cycle, cycle_counters) = run_backend(&stims, horizon, fresh_follower);
    let (compiled, compiled_counters) =
        run_backend(&stims, horizon, |t| fresh_compiled_follower(t, 64));
    let (event, _) = run_backend(&stims, horizon, fresh_event_follower);

    assert_eq!(cycle.len(), CELLS, "cycle trace length");
    assert_conforms(&stims, &cycle, "cycle-based");
    assert_conforms(&stims, &compiled, "compiled");
    assert_conforms(&stims, &event, "event-driven");

    let reference = trace_bytes(&cycle);
    assert_eq!(trace_bytes(&compiled), reference, "compiled vs cycle");
    assert_eq!(trace_bytes(&event), reference, "event-driven vs cycle");

    // The compiled backend replays the cycle engine's clock discipline
    // exactly: same clocks evaluated, same clocks skipped by the idle
    // fast path — even with 63 extra (quiet) lanes in the bank.
    let cycle_counters = cycle_counters.expect("cycle follower publishes clock gauges");
    let compiled_counters = compiled_counters.expect("compiled follower publishes clock gauges");
    assert_eq!(compiled_counters, cycle_counters, "evaluated/skipped drift");
    assert!(cycle_counters.1 > 0, "idle skipping never fired");
}

#[test]
fn gated_idle_skip_path_is_conformant_across_backends() {
    // Two bursts separated by a long quiet stretch: the cycle and
    // compiled followers must *skip* the gap (not evaluate it), the
    // event-driven follower parks its gated clock across it, and all
    // three still produce the same bytes.
    let mut stims = seeded_traffic(SEED ^ 0xD1E5);
    let gap = SimDuration::from_us(700);
    let n = stims.len();
    for (at, _) in &mut stims[n / 2..] {
        *at += gap;
    }
    let horizon = SimTime::from_ms(2);

    let (cycle, cycle_counters) = run_backend(&stims, horizon, fresh_follower);
    let (compiled, compiled_counters) =
        run_backend(&stims, horizon, |t| fresh_compiled_follower(t, 8));
    let (event, _) = run_backend(&stims, horizon, fresh_event_follower);

    assert_conforms(&stims, &cycle, "cycle-based (gated)");
    let reference = trace_bytes(&cycle);
    assert_eq!(trace_bytes(&compiled), reference, "compiled vs cycle");
    assert_eq!(trace_bytes(&event), reference, "event-driven vs cycle");

    let (cycle_eval, cycle_skip) = cycle_counters.expect("cycle clock gauges");
    assert_eq!(
        compiled_counters.expect("compiled clock gauges"),
        (cycle_eval, cycle_skip),
        "gated-skip counter drift"
    );
    // The 700 us hole alone is 35 000 clocks — the fast path must have
    // swallowed it rather than ticking through it.
    assert!(cycle_skip > 30_000, "skipped only {cycle_skip} clocks");
    assert!(
        cycle_eval < cycle_skip / 4,
        "evaluated {cycle_eval} vs skipped {cycle_skip}: idle skip barely fired"
    );
}

#[test]
fn parallel_batching_never_changes_the_trace() {
    let stims = seeded_traffic(SEED ^ 0x5EED);
    let reference = trace_bytes(&run_conservative(&stims));
    for (window_us, depth) in [(5u64, 1usize), (20, 2), (100, 4), (500, 8)] {
        let trace = run_parallel(&stims, SimDuration::from_us(window_us), depth);
        assert_eq!(
            trace_bytes(&trace),
            reference,
            "window {window_us} us / depth {depth}"
        );
    }
}

#[test]
fn lockstep_quantum_never_changes_the_trace() {
    let stims = seeded_traffic(SEED ^ 0xA1A1);
    let reference = trace_bytes(&run_conservative(&stims));
    for quantum_ns in [250u64, 500, 1000] {
        let trace = run_lockstep(&stims, SimDuration::from_ns(quantum_ns));
        assert_eq!(trace_bytes(&trace), reference, "quantum {quantum_ns} ns");
    }
}

#[test]
fn time_warp_mode_never_changes_the_trace() {
    // The speculation/checkpoint machinery must be invisible on the wire
    // across the same batching sweep the conservative mode is pinned on,
    // including the depth-1 ring that maximizes rendezvous pressure.
    let stims = seeded_traffic(SEED ^ 0x7A4B);
    let reference = trace_bytes(&run_conservative(&stims));
    for (window_us, depth) in [(5u64, 1usize), (20, 2), (100, 4), (500, 8)] {
        let trace = run_timewarp(&stims, SimDuration::from_us(window_us), depth);
        assert_eq!(
            trace_bytes(&trace),
            reference,
            "time-warp window {window_us} us / depth {depth}"
        );
    }
}

#[test]
fn adaptive_grant_widths_never_exceed_the_delta_bound() {
    // Property: for ANY observation sequence the adaptive controller's
    // window stays inside [floor, base + δ_j]. A width above the bound
    // would let the originator promise a grant horizon further ahead than
    // the synchronizer's lookahead covers — a protocol violation, not just
    // a tuning mistake — so this is checked over seeded random walks of
    // ring occupancies rather than a handful of fixed cases.
    let mut rng = SEED ^ 0xADA9;
    for _ in 0..64 {
        let base = SimDuration::from_picos(1 + rng_next(&mut rng) % 1_000_000);
        let headroom = SimDuration::from_picos(rng_next(&mut rng) % 1_000_000);
        let capacity = 2 + (rng_next(&mut rng) % 14) as usize;
        let mut win = AdaptiveWindow::new(base, headroom);
        assert_eq!(win.bound(), base + headroom);
        for step in 0..512 {
            let occupancy = (rng_next(&mut rng) % (capacity as u64 + 1)) as usize;
            let width = win.observe(occupancy, capacity);
            assert_eq!(width, win.current());
            assert!(
                width <= win.bound(),
                "step {step}: width {width:?} exceeded δ_j bound {:?} \
                 (base {base:?}, headroom {headroom:?})",
                win.bound()
            );
            assert!(
                width >= win.floor(),
                "step {step}: width {width:?} fell below floor {:?}",
                win.floor()
            );
        }
    }
}

#[test]
fn optimistic_rollbacks_preserve_the_trace() {
    // Swap adjacent events so every second submission is a straggler: the
    // Time-Warp discipline must roll back, replay and anti-message its way
    // to the exact trace the conservative executor produces.
    let stims = seeded_traffic(SEED ^ 0x0515);
    let mut shuffled: Vec<usize> = (0..stims.len()).collect();
    for pair in shuffled.chunks_mut(2) {
        pair.reverse();
    }
    let (trace, stats) = run_optimistic(&stims, &shuffled);
    assert!(stats.rollbacks > 0, "shuffle must actually cause rollbacks");
    assert!(
        stats.anti_messages > 0,
        "rollbacks must revoke sent outputs"
    );
    let reference = trace_bytes(&run_conservative(&stims));
    assert_eq!(trace_bytes(&trace), reference, "trace survives rollbacks");
}
