//! Telemetry integration tests: observation must not perturb the
//! co-verification result, every exporter must emit what its consumers
//! expect, and the recorded protocol events must reflect the run.

use castanet::coupling::CouplingStats;
use castanet::Telemetry;
use castanet_atm::cell::AtmCell;
use castanet_netsim::process::CollectorHandle;
use castanet_netsim::time::SimTime;
use castanet_obs::export::{chrome_trace_to_string, event_to_jsonl, render_summary};
use castanet_obs::schema::validate_jsonl;
use castanet_obs::{EventKind, Phase, TraceEvent, Track};
use coverify::scenarios::{
    compare_switch_output, switch_cosim, switch_cosim_compiled, switch_cosim_cycle,
    switch_cosim_parallel, SwitchScenarioConfig,
};

fn small_config() -> SwitchScenarioConfig {
    SwitchScenarioConfig {
        cells_per_source: 50,
        mixed_traffic: true,
        ..SwitchScenarioConfig::default()
    }
}

/// Drains every collector into per-line `(stamp, cell)` egress streams.
fn egress(collectors: &[CollectorHandle]) -> Vec<Vec<(u64, AtmCell)>> {
    collectors
        .iter()
        .map(|h| {
            h.take()
                .into_iter()
                .map(|(t, p)| (t.as_picos(), p.payload::<AtmCell>().expect("cell").clone()))
                .collect()
        })
        .collect()
}

/// Runs the cycle-based coupling and returns the per-line egress streams.
fn run_cycle(tel: Option<&Telemetry>) -> Vec<Vec<(u64, AtmCell)>> {
    let mut scenario = switch_cosim_cycle(small_config());
    if let Some(tel) = tel {
        scenario = scenario.with_telemetry(tel);
    }
    let mut coupling = scenario.coupling;
    coupling.run(SimTime::from_ms(100)).expect("run");
    egress(&scenario.collectors)
}

/// Runs the event-driven coupling and returns the per-line egress streams.
fn run_event(tel: Option<&Telemetry>) -> Vec<Vec<(u64, AtmCell)>> {
    let config = SwitchScenarioConfig {
        cells_per_source: 10,
        mixed_traffic: true,
        ..SwitchScenarioConfig::default()
    };
    let mut scenario = switch_cosim(config);
    if let Some(tel) = tel {
        scenario = scenario.with_telemetry(tel);
    }
    let mut coupling = scenario.coupling;
    coupling.run(SimTime::from_ms(100)).expect("run");
    egress(&scenario.collectors)
}

/// Runs the compiled-backend coupling and returns the per-line egress
/// streams (lane 0 carries the coupled traffic).
fn run_compiled(tel: Option<&Telemetry>) -> Vec<Vec<(u64, AtmCell)>> {
    let config = SwitchScenarioConfig {
        cells_per_source: 10,
        mixed_traffic: true,
        ..SwitchScenarioConfig::default()
    };
    let mut scenario = switch_cosim_compiled(config, 4);
    if let Some(tel) = tel {
        scenario = scenario.with_telemetry(tel);
    }
    let mut coupling = scenario.coupling;
    coupling.run(SimTime::from_ms(100)).expect("run");
    egress(&scenario.collectors)
}

#[test]
fn telemetry_does_not_perturb_egress() {
    // The whole point of a zero-cost observation layer: the co-verified
    // byte streams — stamps included — are identical with telemetry on
    // and off.
    let tel = Telemetry::enabled();
    let with_tel = run_cycle(Some(&tel));
    let without = run_cycle(None);
    assert_eq!(with_tel, without, "telemetry changed the egress streams");
    assert!(
        !tel.events().is_empty(),
        "the observed run must actually have recorded something"
    );
}

#[test]
fn telemetry_does_not_perturb_event_driven_egress() {
    // Same invariant on the event kernel, whose hot loop now carries the
    // sampled kernel.pop/eval/delta micro-phases.
    let tel = Telemetry::enabled();
    let with_tel = run_event(Some(&tel));
    let without = run_event(None);
    assert_eq!(with_tel, without, "telemetry changed the egress streams");
    assert!(!tel.events().is_empty());
}

#[test]
fn telemetry_does_not_perturb_compiled_egress() {
    // Same invariant on the compiled bit-parallel backend (pack/eval/
    // unpack micro-phases plus the lane-occupancy gauges).
    let tel = Telemetry::enabled();
    let with_tel = run_compiled(Some(&tel));
    let without = run_compiled(None);
    assert_eq!(with_tel, without, "telemetry changed the egress streams");
    assert!(!tel.events().is_empty());
}

#[test]
fn parallel_chrome_trace_has_both_tracks_and_rich_event_mix() {
    // The acceptance criterion of the telemetry subsystem: a Chrome trace
    // of the parallel scenario renders originator and follower as separate
    // tracks and shows the protocol's moving parts (≥ 5 event types).
    let tel = Telemetry::enabled();
    let scenario = switch_cosim_parallel(small_config()).with_telemetry(&tel);
    let mut coupling = scenario.coupling;
    coupling.run(SimTime::from_secs(1)).expect("run");
    let report = compare_switch_output(&scenario.config, &scenario.collectors);
    assert!(report.passed(), "{report}");

    let trace = chrome_trace_to_string(&tel.events());
    assert!(trace.contains("\"tid\":1"), "originator track missing");
    assert!(trace.contains("\"tid\":2"), "follower track missing");
    assert!(trace.contains("\"name\":\"originator\""));
    assert!(trace.contains("\"name\":\"follower\""));
    let kinds = [
        "net_window",
        "window_granted",
        "stimulus_enqueued",
        "follower_advance",
        "response_injected",
        "drain_chunk",
    ];
    let present = kinds
        .iter()
        .filter(|k| trace.contains(&format!("\"name\":\"{k}\"")))
        .count();
    assert!(present >= 5, "only {present} of {kinds:?} in the trace");
}

#[test]
fn jsonl_export_of_a_real_run_validates_against_the_schema() {
    let tel = Telemetry::enabled();
    let mut coupling = switch_cosim_parallel(small_config())
        .with_telemetry(&tel)
        .coupling;
    coupling.run(SimTime::from_secs(1)).expect("run");
    let mut doc = String::new();
    for event in tel.events() {
        doc.push_str(&event_to_jsonl(&event));
        doc.push('\n');
    }
    let validated = validate_jsonl(&doc).expect("exporter output must validate");
    assert_eq!(validated, tel.events().len());
    assert!(validated > 0);
}

#[test]
fn summary_reports_metrics_from_every_layer() {
    let tel = Telemetry::enabled();
    let mut coupling = switch_cosim_parallel(small_config())
        .with_telemetry(&tel)
        .coupling;
    coupling.run(SimTime::from_secs(1)).expect("run");
    let summary = render_summary(&tel.events(), &tel.metrics_snapshot(), tel.dropped_events());
    for needle in [
        "originator.net_events",
        "follower.clocks_evaluated",
        "sync.lag_ps",
        "channel.grant_latency_ns",
    ] {
        assert!(
            summary.contains(needle),
            "{needle} missing from:\n{summary}"
        );
    }
}

#[test]
fn profile_covers_both_tracks_of_the_parallel_run() {
    // The self-profiling acceptance criterion: one parallel run yields a
    // per-phase breakdown with executor phases on the originator track and
    // engine phases on the follower track, and the report renders.
    let tel = Telemetry::enabled();
    let mut coupling = switch_cosim_parallel(small_config())
        .with_telemetry(&tel)
        .coupling;
    coupling.run(SimTime::from_secs(1)).expect("run");
    let profile = tel.profile();
    let has = |track: Track, phase: Phase| {
        profile
            .rows
            .iter()
            .any(|r| r.track == track && r.phase == phase.name() && r.count > 0)
    };
    assert!(has(Track::Originator, Phase::ParallelGrant), "{profile:?}");
    assert!(has(Track::Originator, Phase::ParallelWait), "{profile:?}");
    assert!(has(Track::Follower, Phase::CycleEval), "{profile:?}");
    assert!(profile.track_wall_ns.iter().all(|&ns| ns > 0));
    let rendered = profile.render();
    assert!(rendered.contains("castanet profile"));
    assert!(rendered.contains("parallel.grant"));
    assert!(rendered.contains("cycle.eval"));
    // The JSON form of the same report must round-trip the profile schema
    // (what `castanet-obs-check --profile` enforces in CI).
    let rows = castanet_obs::schema::validate_profile(&profile.to_json())
        .expect("profile JSON must validate");
    assert_eq!(rows, profile.rows.len());
}

#[test]
fn sync_counters_match_coupling_stats_on_every_executor() {
    // `sync.deferred_responses` / `sync.late_responses` are registered by
    // the coupling layer and incremented inside the shared response
    // injection path — on each executor they must agree exactly with the
    // (independently maintained) `CouplingStats`.
    let check = |stats: CouplingStats, tel: &Telemetry, what: &str| {
        let snap = tel.metrics_snapshot();
        assert_eq!(
            snap.counter("sync.deferred_responses"),
            Some(stats.deferred_responses),
            "{what}: deferred_responses counter diverged"
        );
        assert_eq!(
            snap.counter("sync.late_responses"),
            Some(stats.late_responses),
            "{what}: late_responses counter diverged"
        );
    };
    let tel = Telemetry::enabled();
    let mut serial = switch_cosim_cycle(small_config())
        .with_telemetry(&tel)
        .coupling;
    serial.run(SimTime::from_ms(100)).expect("run");
    check(serial.stats(), &tel, "serial");

    let tel = Telemetry::enabled();
    let mut parallel = switch_cosim_parallel(small_config())
        .with_telemetry(&tel)
        .coupling;
    parallel.run(SimTime::from_secs(1)).expect("run");
    check(parallel.stats(), &tel, "parallel");
}

#[test]
fn compiled_backend_reports_lane_and_queue_metrics() {
    let tel = Telemetry::enabled();
    let _ = run_compiled(Some(&tel));
    let snap = tel.metrics_snapshot();
    assert!(
        snap.counter("compiled.fallback_evals").unwrap_or(0) > 0,
        "behavioral LaneBank edges must be counted"
    );
    // The gauge holds the *last* advance's value — by the final drain
    // window every lane is quiet, but it must exist and never exceed the
    // single network-driven lane.
    let lanes = snap.gauge("compiled.lanes_active");
    assert!(
        lanes.is_some_and(|n| n <= 1),
        "network traffic drives lane 0 only, got {lanes:?}"
    );
    assert!(
        snap.gauge("compiled.queue_depth").is_some(),
        "pending-stimulus depth gauge missing"
    );
}

/// A fixed event sequence covering every exporter branch: both tracks,
/// spans and instants, each arg shape. Wall times are hand-picked so the
/// rendered output is bit-stable.
fn golden_events() -> Vec<TraceEvent> {
    vec![
        TraceEvent {
            t_ps: 1_000_000,
            wall_ns: 2_000,
            dur_ns: 1_500,
            track: Track::Originator,
            kind: EventKind::NetWindow { events: 12 },
        },
        TraceEvent {
            t_ps: 1_000_000,
            wall_ns: 2_500,
            dur_ns: 0,
            track: Track::Originator,
            kind: EventKind::WindowGranted {
                grant_ps: 2_060_000,
                msgs: 2,
            },
        },
        TraceEvent {
            t_ps: 1_200_000,
            wall_ns: 3_000,
            dur_ns: 0,
            track: Track::Follower,
            kind: EventKind::StimulusEnqueued {
                type_id: 0,
                port: 1,
                stamp_ps: 1_200_000,
            },
        },
        TraceEvent {
            t_ps: 2_060_000,
            wall_ns: 9_000,
            dur_ns: 5_500,
            track: Track::Follower,
            kind: EventKind::FollowerAdvance {
                granted_ps: 2_060_000,
                responses: 1,
            },
        },
        TraceEvent {
            t_ps: 2_100_000,
            wall_ns: 9_200,
            dur_ns: 0,
            track: Track::Originator,
            kind: EventKind::ResponseInjected {
                stamp_ps: 2_050_000,
                at_ps: 2_100_000,
                port: 1,
            },
        },
        TraceEvent {
            t_ps: 2_100_000,
            wall_ns: 9_250,
            dur_ns: 0,
            track: Track::Originator,
            kind: EventKind::DeferredResponse {
                stamp_ps: 2_050_000,
                net_ps: 2_100_000,
            },
        },
        TraceEvent {
            t_ps: 2_500_000,
            wall_ns: 11_000,
            dur_ns: 800,
            track: Track::Originator,
            kind: EventKind::BackpressureStall { in_flight: 4 },
        },
        TraceEvent {
            t_ps: 3_000_000,
            wall_ns: 14_000,
            dur_ns: 2_000,
            track: Track::Follower,
            kind: EventKind::DrainChunk {
                horizon_ps: 3_000_000,
                responses: 0,
            },
        },
        TraceEvent {
            t_ps: 2_060_000,
            wall_ns: 9_100,
            dur_ns: 4_200,
            track: Track::Follower,
            kind: EventKind::PhaseSpan {
                phase: Phase::KernelAdvance,
                depth: 1,
            },
        },
    ]
}

#[test]
fn chrome_exporter_matches_the_golden_file() {
    // The Chrome `trace_event` output is consumed by external tools
    // (Perfetto, chrome://tracing); this pins the exact rendering. To
    // regenerate after an intentional format change:
    //     UPDATE_GOLDEN=1 cargo test --test telemetry chrome_exporter
    let rendered = chrome_trace_to_string(&golden_events());
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/chrome_trace.json"
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &rendered).expect("update golden");
    }
    let golden =
        std::fs::read_to_string(path).expect("golden file (set UPDATE_GOLDEN=1 to create)");
    assert_eq!(
        rendered, golden,
        "Chrome exporter output drifted from tests/golden/chrome_trace.json"
    );
}

#[test]
fn golden_events_also_validate_as_jsonl() {
    let mut doc = String::new();
    for event in golden_events() {
        doc.push_str(&event_to_jsonl(&event));
        doc.push('\n');
    }
    assert_eq!(validate_jsonl(&doc), Ok(golden_events().len()));
}
