//! Telemetry integration tests: observation must not perturb the
//! co-verification result, every exporter must emit what its consumers
//! expect, and the recorded protocol events must reflect the run.

use castanet::Telemetry;
use castanet_atm::cell::AtmCell;
use castanet_netsim::time::SimTime;
use castanet_obs::export::{chrome_trace_to_string, event_to_jsonl, render_summary};
use castanet_obs::schema::validate_jsonl;
use castanet_obs::{EventKind, TraceEvent, Track};
use coverify::scenarios::{
    compare_switch_output, switch_cosim_cycle, switch_cosim_parallel, SwitchScenarioConfig,
};

fn small_config() -> SwitchScenarioConfig {
    SwitchScenarioConfig {
        cells_per_source: 50,
        mixed_traffic: true,
        ..SwitchScenarioConfig::default()
    }
}

/// Runs the cycle-based coupling and returns the per-line egress streams.
fn run_cycle(tel: Option<&Telemetry>) -> Vec<Vec<(u64, AtmCell)>> {
    let mut scenario = switch_cosim_cycle(small_config());
    if let Some(tel) = tel {
        scenario = scenario.with_telemetry(tel);
    }
    let mut coupling = scenario.coupling;
    coupling.run(SimTime::from_ms(100)).expect("run");
    scenario
        .collectors
        .iter()
        .map(|h| {
            h.take()
                .into_iter()
                .map(|(t, p)| (t.as_picos(), p.payload::<AtmCell>().expect("cell").clone()))
                .collect()
        })
        .collect()
}

#[test]
fn telemetry_does_not_perturb_egress() {
    // The whole point of a zero-cost observation layer: the co-verified
    // byte streams — stamps included — are identical with telemetry on
    // and off.
    let tel = Telemetry::enabled();
    let with_tel = run_cycle(Some(&tel));
    let without = run_cycle(None);
    assert_eq!(with_tel, without, "telemetry changed the egress streams");
    assert!(
        !tel.events().is_empty(),
        "the observed run must actually have recorded something"
    );
}

#[test]
fn parallel_chrome_trace_has_both_tracks_and_rich_event_mix() {
    // The acceptance criterion of the telemetry subsystem: a Chrome trace
    // of the parallel scenario renders originator and follower as separate
    // tracks and shows the protocol's moving parts (≥ 5 event types).
    let tel = Telemetry::enabled();
    let scenario = switch_cosim_parallel(small_config()).with_telemetry(&tel);
    let mut coupling = scenario.coupling;
    coupling.run(SimTime::from_secs(1)).expect("run");
    let report = compare_switch_output(&scenario.config, &scenario.collectors);
    assert!(report.passed(), "{report}");

    let trace = chrome_trace_to_string(&tel.events());
    assert!(trace.contains("\"tid\":1"), "originator track missing");
    assert!(trace.contains("\"tid\":2"), "follower track missing");
    assert!(trace.contains("\"name\":\"originator\""));
    assert!(trace.contains("\"name\":\"follower\""));
    let kinds = [
        "net_window",
        "window_granted",
        "stimulus_enqueued",
        "follower_advance",
        "response_injected",
        "drain_chunk",
    ];
    let present = kinds
        .iter()
        .filter(|k| trace.contains(&format!("\"name\":\"{k}\"")))
        .count();
    assert!(present >= 5, "only {present} of {kinds:?} in the trace");
}

#[test]
fn jsonl_export_of_a_real_run_validates_against_the_schema() {
    let tel = Telemetry::enabled();
    let mut coupling = switch_cosim_parallel(small_config())
        .with_telemetry(&tel)
        .coupling;
    coupling.run(SimTime::from_secs(1)).expect("run");
    let mut doc = String::new();
    for event in tel.events() {
        doc.push_str(&event_to_jsonl(&event));
        doc.push('\n');
    }
    let validated = validate_jsonl(&doc).expect("exporter output must validate");
    assert_eq!(validated, tel.events().len());
    assert!(validated > 0);
}

#[test]
fn summary_reports_metrics_from_every_layer() {
    let tel = Telemetry::enabled();
    let mut coupling = switch_cosim_parallel(small_config())
        .with_telemetry(&tel)
        .coupling;
    coupling.run(SimTime::from_secs(1)).expect("run");
    let summary = render_summary(&tel.events(), &tel.metrics_snapshot(), tel.dropped_events());
    for needle in [
        "originator.net_events",
        "follower.clocks_evaluated",
        "sync.lag_ps",
        "channel.grant_latency_ns",
    ] {
        assert!(
            summary.contains(needle),
            "{needle} missing from:\n{summary}"
        );
    }
}

/// A fixed event sequence covering every exporter branch: both tracks,
/// spans and instants, each arg shape. Wall times are hand-picked so the
/// rendered output is bit-stable.
fn golden_events() -> Vec<TraceEvent> {
    vec![
        TraceEvent {
            t_ps: 1_000_000,
            wall_ns: 2_000,
            dur_ns: 1_500,
            track: Track::Originator,
            kind: EventKind::NetWindow { events: 12 },
        },
        TraceEvent {
            t_ps: 1_000_000,
            wall_ns: 2_500,
            dur_ns: 0,
            track: Track::Originator,
            kind: EventKind::WindowGranted {
                grant_ps: 2_060_000,
                msgs: 2,
            },
        },
        TraceEvent {
            t_ps: 1_200_000,
            wall_ns: 3_000,
            dur_ns: 0,
            track: Track::Follower,
            kind: EventKind::StimulusEnqueued {
                type_id: 0,
                port: 1,
                stamp_ps: 1_200_000,
            },
        },
        TraceEvent {
            t_ps: 2_060_000,
            wall_ns: 9_000,
            dur_ns: 5_500,
            track: Track::Follower,
            kind: EventKind::FollowerAdvance {
                granted_ps: 2_060_000,
                responses: 1,
            },
        },
        TraceEvent {
            t_ps: 2_100_000,
            wall_ns: 9_200,
            dur_ns: 0,
            track: Track::Originator,
            kind: EventKind::ResponseInjected {
                stamp_ps: 2_050_000,
                at_ps: 2_100_000,
                port: 1,
            },
        },
        TraceEvent {
            t_ps: 2_100_000,
            wall_ns: 9_250,
            dur_ns: 0,
            track: Track::Originator,
            kind: EventKind::DeferredResponse {
                stamp_ps: 2_050_000,
                net_ps: 2_100_000,
            },
        },
        TraceEvent {
            t_ps: 2_500_000,
            wall_ns: 11_000,
            dur_ns: 800,
            track: Track::Originator,
            kind: EventKind::BackpressureStall { in_flight: 4 },
        },
        TraceEvent {
            t_ps: 3_000_000,
            wall_ns: 14_000,
            dur_ns: 2_000,
            track: Track::Follower,
            kind: EventKind::DrainChunk {
                horizon_ps: 3_000_000,
                responses: 0,
            },
        },
    ]
}

#[test]
fn chrome_exporter_matches_the_golden_file() {
    // The Chrome `trace_event` output is consumed by external tools
    // (Perfetto, chrome://tracing); this pins the exact rendering. To
    // regenerate after an intentional format change:
    //     UPDATE_GOLDEN=1 cargo test --test telemetry chrome_exporter
    let rendered = chrome_trace_to_string(&golden_events());
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/chrome_trace.json"
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &rendered).expect("update golden");
    }
    let golden =
        std::fs::read_to_string(path).expect("golden file (set UPDATE_GOLDEN=1 to create)");
    assert_eq!(
        rendered, golden,
        "Chrome exporter output drifted from tests/golden/chrome_trace.json"
    );
}

#[test]
fn golden_events_also_validate_as_jsonl() {
    let mut doc = String::new();
    for event in golden_events() {
        doc.push_str(&event_to_jsonl(&event));
        doc.push('\n');
    }
    assert_eq!(validate_jsonl(&doc), Ok(golden_events().len()));
}
