//! Drift tests for the diagnostic-code listings: the registry in
//! `crates/lint/src/diagnostic.rs` is the single source of truth, and the
//! three places that re-state it — the README "Pre-flight checks" table,
//! the DESIGN.md pass tables and the `castanet-lint --codes` output — must
//! stay in sync with it. A new code without documentation (or a documented
//! code that no longer exists) fails here, not in review.

use castanet_lint::{Severity, CODES};
use std::collections::BTreeMap;
use std::process::Command;

fn repo_file(name: &str) -> String {
    let path = format!("{}/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Extracts `| `CASTnnn` | severity | ...` table rows.
fn parse_code_table(text: &str) -> BTreeMap<String, String> {
    let mut rows = BTreeMap::new();
    for line in text.lines() {
        let Some(rest) = line.strip_prefix("| `CAST") else {
            continue;
        };
        let mut cells = rest.splitn(3, '|');
        let code_cell = cells.next().unwrap_or_default().trim();
        let severity_cell = cells.next().unwrap_or_default().trim();
        let code = format!("CAST{}", code_cell.trim_end_matches('`'));
        if code.len() == 7 && code[4..].chars().all(|c| c.is_ascii_digit()) {
            rows.insert(code, severity_cell.to_string());
        }
    }
    rows
}

/// Extracts every `CASTnnn` mention, expanding `CASTaaa`–`CASTbbb` ranges
/// (the DESIGN.md tables state spans, not individual rows).
fn parse_code_spans(text: &str) -> Vec<(u32, u32)> {
    let bytes = text.as_bytes();
    let mut spans = Vec::new();
    let mut i = 0;
    while let Some(pos) = text[i..].find("CAST") {
        let start = i + pos + 4;
        let digits: String = text[start..]
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect();
        i = start;
        if digits.len() != 3 {
            continue;
        }
        let lo: u32 = digits.parse().unwrap();
        // A range looks like `CAST001`–`CAST010`: backtick, dash (en dash
        // or hyphen), backtick, CAST.
        let tail = &text[start + 3..];
        let hi = tail
            .strip_prefix('`')
            .and_then(|t| t.strip_prefix('–').or_else(|| t.strip_prefix('-')))
            .and_then(|t| t.strip_prefix('`'))
            .and_then(|t| t.strip_prefix("CAST"))
            .and_then(|t| t.get(..3))
            .and_then(|d| d.parse::<u32>().ok());
        spans.push((lo, hi.unwrap_or(lo)));
        let _ = bytes;
    }
    spans
}

#[test]
fn readme_table_matches_registry_exactly() {
    let table = parse_code_table(&repo_file("README.md"));
    for (code, severity, _) in CODES {
        let documented = table
            .get(*code)
            .unwrap_or_else(|| panic!("{code} missing from the README pre-flight table"));
        assert_eq!(
            documented,
            &severity.to_string(),
            "README severity drift for {code}"
        );
    }
    for code in table.keys() {
        assert!(
            CODES.iter().any(|(c, _, _)| c == code),
            "README documents {code}, which the registry no longer has"
        );
    }
}

#[test]
fn design_doc_pass_tables_cover_every_code() {
    let design = repo_file("DESIGN.md");
    let spans = parse_code_spans(&design);
    assert!(!spans.is_empty(), "no CAST code spans found in DESIGN.md");
    for (code, _, _) in CODES {
        let n: u32 = code[4..].parse().unwrap();
        assert!(
            spans.iter().any(|&(lo, hi)| lo <= n && n <= hi),
            "{code} is not covered by any DESIGN.md pass table span"
        );
    }
    // Span endpoints must themselves be (or remain) registered codes.
    for &(lo, hi) in &spans {
        for endpoint in [lo, hi] {
            let code = format!("CAST{endpoint:03}");
            assert!(
                CODES.iter().any(|(c, _, _)| *c == code),
                "DESIGN.md references {code}, which the registry does not define"
            );
        }
    }
}

#[test]
fn codes_flag_prints_the_registry_verbatim() {
    let out = Command::new(env!("CARGO_BIN_EXE_castanet-lint"))
        .arg("--codes")
        .output()
        .expect("run castanet-lint --codes");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    let mut lines = stdout.lines();
    let header = lines.next().expect("header line");
    assert!(header.starts_with("code"), "{header}");
    let printed: Vec<(String, String)> = lines
        .map(|l| {
            let mut cols = l.split_whitespace();
            (
                cols.next().unwrap_or_default().to_string(),
                cols.next().unwrap_or_default().to_string(),
            )
        })
        .collect();
    assert_eq!(printed.len(), CODES.len(), "--codes row count drift");
    for ((code, severity, _), (p_code, p_severity)) in CODES.iter().zip(&printed) {
        assert_eq!(code, p_code, "--codes order drift");
        assert_eq!(
            &severity.to_string(),
            p_severity,
            "severity drift for {code}"
        );
    }
    // Severity strings stay the documented lowercase triple.
    for (_, severity, _) in CODES {
        assert!(matches!(
            *severity,
            Severity::Error | Severity::Warning | Severity::Info
        ));
    }
}
