//! Concurrency checks for the parallel coupled-engine executor.
//!
//! The crate set deliberately carries no loom/shuttle dependency, so the
//! window/grant channel handshake is verified two ways instead:
//!
//! 1. an *exhaustive interleaving model check*: the handshake is restated
//!    as a small explicit-state transition system (bounded command ring,
//!    bounded reply ring with the executor's `depth + 2` headroom,
//!    originator barrier, drain round) and a DFS enumerates every
//!    reachable interleaving, asserting the protocol invariants in each
//!    state — deadlock freedom, both ring bounds, and the follower never
//!    running past its granted horizon;
//! 2. a *stress + determinism* pass over the real executor: maximum
//!    backpressure (depth 1, tiny windows) and repeated runs that must
//!    produce bit-identical traces.

use castanet::coupling::Coupling;
use castanet::cyclecosim::{CycleCosim, EgressIndices, IngressIndices};
use castanet::interface::{response_packet, CastanetInterfaceProcess};
use castanet::parallel::ExecMode;
use castanet::sync::ConservativeSync;
use castanet_atm::addr::{HeaderFormat, VpiVci};
use castanet_atm::cell::AtmCell;
use castanet_netsim::event::PortId;
use castanet_netsim::kernel::Kernel;
use castanet_netsim::process::{CollectorHandle, CollectorProcess};
use castanet_netsim::time::{SimDuration, SimTime};
use castanet_rtl::cycle::CycleSim;
use castanet_rtl::dut::{AtmSwitchRtl, SwitchRtlConfig};
use std::collections::HashSet;
use std::collections::VecDeque;

// ---------------------------------------------------------------------
// Part 1: exhaustive interleaving model check of the handshake
// ---------------------------------------------------------------------

/// Abstract model of one `ParallelCoupling::run`: the originator streams
/// `windows` grant messages through a command channel of capacity `cap`,
/// absorbs replies, barriers until everything in flight is answered, then
/// exchanges one drain round. Times are abstracted to window indices: the
/// grant of window `k` is `k + 1`.
#[derive(Clone, PartialEq, Eq, Hash)]
struct ModelState {
    /// Windows not yet sent by the originator.
    to_send: u8,
    /// Commands in the bounded channel (grant values; `DRAIN` sentinel).
    cmd: VecDeque<u8>,
    /// Replies in the bounded reply ring (`REPLY` or `DRAIN_DONE`).
    rep: VecDeque<u8>,
    /// Originator bookkeeping: windows sent but not yet answered.
    in_flight: u8,
    /// `true` once the originator has issued the drain command.
    drain_sent: bool,
    /// `true` once the originator has seen `DRAIN_DONE`.
    done: bool,
    /// Follower's local clock (largest grant it acted on).
    local: u8,
    /// Largest grant the originator has shipped.
    promised: u8,
}

const DRAIN: u8 = 0xFE;
const REPLY: u8 = 0x01;
const DRAIN_DONE: u8 = 0xFF;

impl ModelState {
    fn initial(windows: u8) -> Self {
        ModelState {
            to_send: windows,
            cmd: VecDeque::new(),
            rep: VecDeque::new(),
            in_flight: 0,
            drain_sent: false,
            done: false,
            local: 0,
            promised: 0,
        }
    }

    fn terminal(&self) -> bool {
        self.done
    }

    /// All states reachable in one atomic step, each tagged with the actor.
    fn successors(&self, cap: usize, rep_cap: usize, windows: u8) -> Vec<ModelState> {
        let mut next = Vec::new();
        // Originator: send the next window — enabled only while the
        // channel has room (sync_channel backpressure).
        if self.to_send > 0 && self.cmd.len() < cap {
            let mut s = self.clone();
            let grant = windows - s.to_send + 1;
            s.to_send -= 1;
            s.cmd.push_back(grant);
            s.in_flight += 1;
            s.promised = s.promised.max(grant);
            next.push(s);
        }
        // Originator: absorb one reply. In the real loop this happens both
        // opportunistically (try_recv) and at the barrier (recv), which the
        // model covers by simply allowing it whenever a reply exists.
        if let Some(&r) = self.rep.front() {
            let mut s = self.clone();
            s.rep.pop_front();
            match r {
                REPLY => s.in_flight -= 1,
                DRAIN_DONE => s.done = true,
                _ => unreachable!("unknown reply"),
            }
            next.push(s);
        }
        // Originator: issue the drain — only past the barrier (everything
        // sent and answered), exactly once.
        if self.to_send == 0 && self.in_flight == 0 && !self.drain_sent && self.cmd.len() < cap {
            let mut s = self.clone();
            s.drain_sent = true;
            s.cmd.push_back(DRAIN);
            next.push(s);
        }
        // Follower: process one command — enabled only while the reply
        // ring has a free slot (the executor's follower spins on
        // `try_push_with` when it is full).
        if self.rep.len() < rep_cap {
            if let Some(&c) = self.cmd.front() {
                let mut s = self.clone();
                s.cmd.pop_front();
                if c == DRAIN {
                    s.rep.push_back(DRAIN_DONE);
                } else {
                    s.local = s.local.max(c);
                    s.rep.push_back(REPLY);
                }
                next.push(s);
            }
        }
        next
    }
}

fn model_check(windows: u8, cap: usize) {
    // The executor sizes the reply ring at `depth + 2`: one reply per
    // in-flight window plus headroom for DrainDone/Fatal.
    let rep_cap = cap + 2;
    let mut visited: HashSet<ModelState> = HashSet::new();
    let mut stack = vec![ModelState::initial(windows)];
    let mut terminals = 0u64;
    while let Some(state) = stack.pop() {
        if !visited.insert(state.clone()) {
            continue;
        }
        // Invariant 1: neither ring ever overflows its capacity.
        assert!(
            state.cmd.len() <= cap,
            "command ring overflow ({windows} windows, cap {cap})"
        );
        assert!(
            state.rep.len() <= rep_cap,
            "reply ring overflow ({windows} windows, rep cap {rep_cap})"
        );
        // Invariant 2: the follower never runs past what was promised.
        assert!(
            state.local <= state.promised,
            "follower overran its grant ({} > {})",
            state.local,
            state.promised
        );
        let succ = state.successors(cap, rep_cap, windows);
        if succ.is_empty() {
            // Invariant 3: the only state with no enabled transition is
            // the fully completed run — anything else is a deadlock.
            assert!(
                state.terminal(),
                "deadlock: to_send={} in_flight={} drain_sent={} \
                 cmd={:?} rep={:?} ({} windows, cap {cap})",
                state.to_send,
                state.in_flight,
                state.drain_sent,
                state.cmd,
                state.rep,
                windows
            );
            // Invariant 4: completion implies every window was granted
            // and acknowledged.
            assert_eq!(state.to_send, 0);
            assert_eq!(state.in_flight, 0);
            assert_eq!(state.local, windows, "a window was lost");
            terminals += 1;
        } else {
            stack.extend(succ);
        }
    }
    assert_eq!(terminals, 1, "all interleavings converge to one outcome");
    assert!(
        visited.len() > usize::from(windows),
        "DFS degenerated to a single path"
    );
}

#[test]
fn handshake_model_check_is_deadlock_free_for_all_interleavings() {
    // Every (window count, channel depth) pair is checked exhaustively;
    // depth 1 maximizes backpressure, window counts above the depth force
    // the send path to block mid-stream.
    for windows in 1..=6u8 {
        for cap in 1..=4usize {
            model_check(windows, cap);
        }
    }
}

// ---------------------------------------------------------------------
// Part 2: stress + determinism on the real executor
// ---------------------------------------------------------------------

fn coupled(cells: u64, gap: SimDuration) -> (Coupling<CycleCosim>, CollectorHandle) {
    let mut net = Kernel::new(11);
    let node = net.add_node("stress");
    let mut sync = ConservativeSync::new();
    let cell_type = sync.register_type(SimDuration::from_ns(20) * 53);
    let (iface_proc, outbox) = CastanetInterfaceProcess::new(cell_type);
    let iface = net.add_module(node, "castanet", Box::new(iface_proc));
    let (collector, got) = CollectorProcess::new();
    let sink = net.add_module(node, "sink", Box::new(collector));
    net.connect_stream(iface, PortId(1), sink, PortId(0))
        .unwrap();
    let mut at = SimTime::ZERO;
    for k in 0..cells {
        at += gap;
        let cell = AtmCell::user_data(VpiVci::uni(1, 40).unwrap(), [(k % 251) as u8; 48]);
        net.inject_packet(iface, PortId(0), response_packet(cell), at)
            .unwrap();
    }

    let mut switch = AtmSwitchRtl::new(SwitchRtlConfig {
        ports: 2,
        fifo_capacity: 256,
        table_capacity: 16,
    });
    assert!(switch.install_route(1, 40, 1, 7, 70));
    let sim = CycleSim::new(Box::new(switch));
    let mut follower = CycleCosim::new(sim, SimDuration::from_ns(20), cell_type, HeaderFormat::Uni);
    follower.add_ingress(IngressIndices {
        data: 0,
        sync: 1,
        enable: 2,
    });
    follower.add_ingress(IngressIndices {
        data: 3,
        sync: 4,
        enable: 5,
    });
    follower.add_egress(EgressIndices {
        data: 0,
        sync: 1,
        valid: 2,
    });
    follower.add_egress(EgressIndices {
        data: 3,
        sync: 4,
        valid: 5,
    });
    (
        Coupling::new(net, follower, sync, cell_type, iface, outbox),
        got,
    )
}

fn run_once(cells: u64, window: SimDuration, depth: usize) -> Vec<AtmCell> {
    run_mode(cells, window, depth, ExecMode::Conservative)
}

fn run_mode(cells: u64, window: SimDuration, depth: usize, mode: ExecMode) -> Vec<AtmCell> {
    let (serial, got) = coupled(cells, SimDuration::from_us(2));
    let mut coupling = serial
        .into_parallel()
        .with_batching(window, depth)
        .with_exec_mode(mode);
    let stats = coupling.run(SimTime::from_ms(2)).expect("run");
    assert_eq!(stats.responses, cells);
    assert_eq!(stats.late_responses, 0);
    got.take()
        .into_iter()
        .map(|(_, pkt)| pkt.payload::<AtmCell>().expect("cell").clone())
        .collect()
}

#[test]
fn depth_one_backpressure_stress_completes_and_is_deterministic() {
    // Depth 1 with windows narrower than the cell gap forces the
    // originator to block on every single send — the harshest schedule
    // the bounded channel can produce.
    let first = run_once(120, SimDuration::from_us(1), 1);
    assert_eq!(first.len(), 120);
    let second = run_once(120, SimDuration::from_us(1), 1);
    assert_eq!(first, second, "repeated runs must be bit-identical");
}

#[test]
fn wide_window_deep_channel_stress_matches_the_tight_configuration() {
    // The opposite extreme — everything in flight at once — must observe
    // the same cells in the same order.
    let tight = run_once(60, SimDuration::from_us(1), 1);
    let wide = run_once(60, SimDuration::from_ms(1), 8);
    assert_eq!(tight, wide);
}

#[test]
fn time_warp_stress_matches_conservative_mode() {
    // The checkpoint/rollback machinery under the same harsh depth-1
    // schedule, plus a relaxed configuration: every run must observe
    // exactly the conservative trace, bit for bit.
    let reference = run_once(120, SimDuration::from_us(1), 1);
    let warped = run_mode(120, SimDuration::from_us(1), 1, ExecMode::TimeWarp);
    assert_eq!(reference, warped, "time-warp depth-1 stress diverged");
    let relaxed = run_mode(120, SimDuration::from_us(50), 4, ExecMode::TimeWarp);
    assert_eq!(reference, relaxed, "time-warp relaxed schedule diverged");
}
