//! Property-based test suites over the core data structures and protocol
//! invariants.
//!
//! Runs on a self-contained deterministic harness ([`harness`]) instead of an
//! external property-testing crate: each property executes `CASES` cases from
//! a fixed per-property seed, so every failure is reproducible by rerunning
//! the named test — no regression files needed.

use castanet::convert::{cell_to_byte_ops, ByteStreamAssembler};
use castanet::ipc::{decode_message, encode_message};
use castanet::message::{Message, MessagePayload, MessageTypeId};
use castanet::sync::conservative::ConservativeSync;
use castanet::sync::optimistic::{OptimisticSync, TimedEvent};
use castanet_atm::aal5;
use castanet_atm::addr::{HeaderFormat, Vci, Vpi, VpiVci};
use castanet_atm::cell::{AtmCell, CellHeader, PayloadType};
use castanet_atm::gcra::{Gcra, LeakyBucket};
use castanet_atm::hec;
use castanet_netsim::event::EventKind;
use castanet_netsim::scheduler::EventList;
use castanet_netsim::time::{SimDuration, SimTime};
use castanet_rtl::logic::Logic;
use castanet_rtl::vector::LogicVector;
use castanet_testboard::pinmap::{InportMapping, PinMapConfig, PinSegment};
use harness::{cases, Gen};

mod harness {
    //! Minimal deterministic property-test harness.

    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Number of cases each property runs.
    pub const CASES: u64 = 256;

    /// Per-case value generator wrapping a seeded [`SmallRng`].
    pub struct Gen {
        rng: SmallRng,
    }

    impl Gen {
        pub fn u8(&mut self) -> u8 {
            (self.rng.random::<u64>() >> 56) as u8
        }

        pub fn u16(&mut self) -> u16 {
            (self.rng.random::<u64>() >> 48) as u16
        }

        pub fn u32(&mut self) -> u32 {
            self.rng.random::<u32>()
        }

        pub fn u64(&mut self) -> u64 {
            self.rng.random::<u64>()
        }

        pub fn bool(&mut self) -> bool {
            self.rng.random::<bool>()
        }

        /// Uniform draw from `lo..hi` (half-open, like proptest's `a..b`).
        pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
            assert!(lo < hi);
            self.rng.random_range(lo..hi)
        }

        /// Uniform draw from `lo..hi` (half-open).
        pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
            assert!(lo < hi);
            self.rng.random_range(lo..hi)
        }

        /// A uniformly random 48-octet ATM payload.
        pub fn payload(&mut self) -> [u8; 48] {
            let mut p = [0u8; 48];
            for b in &mut p {
                *b = self.u8();
            }
            p
        }

        /// A byte vector with length drawn from `len_lo..len_hi`.
        pub fn bytes(&mut self, len_lo: usize, len_hi: usize) -> Vec<u8> {
            let len = self.range_usize(len_lo, len_hi);
            (0..len).map(|_| self.u8()).collect()
        }

        /// A vector of `len_lo..len_hi` values produced by `f`.
        pub fn vec_of<T>(
            &mut self,
            len_lo: usize,
            len_hi: usize,
            mut f: impl FnMut(&mut Gen) -> T,
        ) -> Vec<T> {
            let len = self.range_usize(len_lo, len_hi);
            (0..len).map(|_| f(self)).collect()
        }
    }

    /// Runs `body` for [`CASES`] deterministic cases.
    ///
    /// `label` isolates the random stream per property so adding or
    /// reordering properties never shifts another property's cases.
    pub fn cases(label: &str, body: impl Fn(&mut Gen)) {
        // FNV-1a over the label picks the per-property stream.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in label.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100000001b3);
        }
        for case in 0..CASES {
            let mut g = Gen {
                rng: SmallRng::seed_from_u64(h ^ (case.wrapping_mul(0x9E3779B97F4A7C15))),
            };
            body(&mut g);
        }
    }
}

fn gen_uni_header(g: &mut Gen) -> CellHeader {
    CellHeader {
        gfc: (g.range_u64(0, 16)) as u8,
        id: VpiVci::new(
            Vpi::new(g.range_u64(0, 256) as u16, HeaderFormat::Uni).expect("in range"),
            Vci::new(g.u16()),
        ),
        pt: PayloadType::from_bits(g.range_u64(0, 8) as u8),
        clp: g.bool(),
    }
}

#[test]
fn cell_wire_roundtrip_uni() {
    cases("cell_wire_roundtrip_uni", |g| {
        let cell = AtmCell::with_header(gen_uni_header(g), g.payload());
        let wire = cell.encode(HeaderFormat::Uni).expect("encode");
        let back = AtmCell::decode(&wire, HeaderFormat::Uni).expect("decode");
        assert_eq!(back, cell);
    });
}

#[test]
fn cell_wire_roundtrip_nni() {
    cases("cell_wire_roundtrip_nni", |g| {
        let header = CellHeader {
            gfc: 0,
            id: VpiVci::new(
                Vpi::new(g.range_u64(0, 4096) as u16, HeaderFormat::Nni).expect("in range"),
                Vci::new(g.u16()),
            ),
            pt: PayloadType::from_bits(g.range_u64(0, 8) as u8),
            clp: g.bool(),
        };
        let cell = AtmCell::with_header(header, g.payload());
        let wire = cell.encode(HeaderFormat::Nni).expect("encode");
        assert_eq!(
            AtmCell::decode(&wire, HeaderFormat::Nni).expect("decode"),
            cell
        );
    });
}

#[test]
fn any_single_header_bit_flip_is_corrected() {
    cases("any_single_header_bit_flip_is_corrected", |g| {
        let bit = g.range_usize(0, 40);
        let cell = AtmCell::with_header(gen_uni_header(g), [0u8; 48]);
        let wire = cell.encode(HeaderFormat::Uni).expect("encode");
        let mut bad = [0u8; 5];
        bad.copy_from_slice(&wire[..5]);
        bad[bit / 8] ^= 0x80 >> (bit % 8);
        let mut rx = hec::HecReceiver::new();
        match rx.receive(&bad) {
            hec::HecOutcome::Corrected(fixed) => assert_eq!(&fixed[..], &wire[..5]),
            other => panic!("bit {bit} not corrected: {other:?}"),
        }
    });
}

#[test]
fn aal5_roundtrip() {
    cases("aal5_roundtrip", |g| {
        let sdu = g.bytes(0, 2000);
        let conn = VpiVci::uni(1, 42).expect("id");
        let cells = aal5::segment(conn, &sdu).expect("segment");
        assert_eq!(aal5::reassemble(&cells).expect("reassemble"), sdu);
    });
}

#[test]
fn aal5_payload_corruption_always_detected() {
    cases("aal5_payload_corruption_always_detected", |g| {
        let sdu = g.bytes(1, 500);
        let flip = g.range_u64(1, 256) as u8;
        let conn = VpiVci::uni(1, 42).expect("id");
        let mut cells = aal5::segment(conn, &sdu).expect("segment");
        let total = cells.len() * 48;
        let at = g.range_usize(0, total);
        cells[at / 48].payload[at % 48] ^= flip;
        // Either the CRC fails or (if the corruption hit the pad/length in
        // a detectable way) another validation error fires; it must never
        // silently return the original data.
        if let Ok(data) = aal5::reassemble(&cells) {
            assert_ne!(data, sdu);
        }
    });
}

#[test]
fn gcra_formulations_agree() {
    cases("gcra_formulations_agree", |g| {
        let gaps = g.vec_of(1, 300, |g| g.range_u64(0, 30));
        let t = SimDuration::from_us(g.range_u64(1, 20));
        let tau = SimDuration::from_us(g.range_u64(0, 40));
        let mut gcra = Gcra::new(t, tau);
        let mut lb = LeakyBucket::new(t, tau);
        let mut now = SimTime::ZERO;
        for gap in gaps {
            now += SimDuration::from_us(gap);
            assert_eq!(gcra.arrival(now), lb.arrival(now));
        }
    });
}

#[test]
fn logic_vector_u64_roundtrip() {
    cases("logic_vector_u64_roundtrip", |g| {
        let value = g.u64();
        let width = g.range_usize(1, 65);
        let masked = if width == 64 {
            value
        } else {
            value & ((1u64 << width) - 1)
        };
        let v = LogicVector::from_u64(masked, width);
        assert_eq!(v.to_u64(), Some(masked));
        assert_eq!(v.width(), width);
    });
}

#[test]
fn logic_resolution_commutes_and_associates() {
    cases("logic_resolution_commutes_and_associates", |g| {
        let a = Logic::ALL[g.range_usize(0, 9)];
        let b = Logic::ALL[g.range_usize(0, 9)];
        let c = Logic::ALL[g.range_usize(0, 9)];
        assert_eq!(a.resolve(b), b.resolve(a));
        assert_eq!(a.resolve(b).resolve(c), a.resolve(b.resolve(c)));
    });
}

#[test]
fn event_list_pops_monotone() {
    cases("event_list_pops_monotone", |g| {
        let times = g.vec_of(1, 200, |g| g.range_u64(0, 1_000_000));
        let mut list = EventList::new();
        for &t in &times {
            list.schedule(SimTime::from_ns(t), EventKind::Stop)
                .expect("schedule");
        }
        let mut prev = SimTime::ZERO;
        while let Some(ev) = list.pop() {
            assert!(ev.time() >= prev);
            prev = ev.time();
        }
    });
}

#[test]
fn byte_stream_assembler_recovers_cells_after_garbage() {
    cases("byte_stream_assembler_recovers_cells_after_garbage", |g| {
        let cell = AtmCell::with_header(gen_uni_header(g), g.payload());
        let garbage = g.bytes(0, 100);
        let mut rx = ByteStreamAssembler::new(HeaderFormat::Uni);
        // Garbage without sync markers must not produce cells.
        for b in garbage {
            assert!(rx.push(b, false).expect("no cell completes").is_none());
        }
        let mut got = None;
        for op in cell_to_byte_ops(&cell, HeaderFormat::Uni).expect("convert") {
            if let Some(c) = rx.push(op.data, op.sync).expect("assemble") {
                got = Some(c);
            }
        }
        assert_eq!(got, Some(cell));
    });
}

#[test]
fn ipc_codec_roundtrip() {
    cases("ipc_codec_roundtrip", |g| {
        let msg = Message {
            stamp: SimTime::from_picos(g.u64()),
            type_id: MessageTypeId(g.u32()),
            port: g.range_usize(0, 100_000),
            payload: MessagePayload::Cell(AtmCell::with_header(gen_uni_header(g), g.payload())),
        };
        assert_eq!(decode_message(&encode_message(&msg)).expect("decode"), msg);
    });
}

#[test]
fn pinmap_roundtrip_random_single_lane_ports() {
    cases("pinmap_roundtrip_random_single_lane_ports", |g| {
        let lane = g.range_usize(0, 16);
        let start_bit = g.range_usize(0, 8);
        let value = g.u8();
        let bits = start_bit + 1; // widest segment ending at bit 0
        let cfg = PinMapConfig {
            inports: vec![InportMapping {
                number: 0,
                width: bits,
                segments: vec![PinSegment::new(lane, start_bit, bits)],
            }],
            ..PinMapConfig::default()
        };
        let masked = u64::from(value) & ((1u64 << bits) - 1);
        let mut frame = [0u8; 16];
        cfg.encode_inport(0, masked, &mut frame).expect("encode");
        // Decode through the same segments.
        let port = cfg.inport(0).expect("port");
        let mut out = 0u64;
        for seg in &port.segments {
            let shift = seg.start_bit + 1 - seg.bits;
            out = (out << seg.bits)
                | (u64::from(frame[seg.lane] >> shift) & ((1u64 << seg.bits) - 1));
        }
        assert_eq!(out, masked);
    });
}

#[test]
fn conservative_sync_never_violates_lag_under_random_schedules() {
    cases("conservative_sync_never_violates_lag", |g| {
        let deltas_us = g.vec_of(1, 5, |g| g.range_u64(1, 20));
        let steps = g.vec_of(1, 400, |g| {
            (g.range_usize(0, 5), g.range_u64(0, 2_000), g.bool())
        });
        let mut sync = ConservativeSync::new();
        let types: Vec<_> = deltas_us
            .iter()
            .map(|&d| sync.register_type(SimDuration::from_us(d)))
            .collect();
        let n = types.len();
        let mut stamps = vec![SimTime::ZERO; n];
        let mut originator = SimTime::ZERO;
        let mut prev = SimTime::ZERO;
        for (j, advance_ns, is_null) in steps {
            let j = j % n;
            originator += SimDuration::from_ns(advance_ns);
            stamps[j] = stamps[j].max(originator);
            sync.receive(types[j], stamps[j], is_null).expect("receive");
            sync.advance_local(prev).expect("advance");
            prev = sync.originator_time();
            assert!(sync.lag_invariant_holds());
            assert!(sync.local_time() <= sync.originator_time());
        }
    });
}

#[test]
fn frame_aware_queue_admits_only_whole_frames() {
    cases("frame_aware_queue_admits_only_whole_frames", |g| {
        // The classical EPD guarantee needs headroom: frames must fit in
        // (capacity - threshold). Capacity 24, threshold 12, frames of at
        // most ceil((500+8)/48) = 11 cells.
        let frame_lens = g.vec_of(1, 20, |g| g.range_usize(1, 500));
        let service = g.vec_of(1, 20, |g| g.range_usize(0, 4));
        use castanet_atm::discard::{DiscardPolicy, DiscardQueue};
        let conn = VpiVci::uni(1, 40).expect("id");
        let capacity = 24usize;
        let mut q = DiscardQueue::new(capacity, DiscardPolicy::FrameAware { epd_threshold: 12 });
        let mut assembler = aal5::Reassembler::new();
        let mut service_it = service.iter().cycle();
        for &len in &frame_lens {
            for cell in aal5::segment(conn, &vec![0x11; len]).expect("segment") {
                let _ = q.offer(cell);
            }
            for _ in 0..*service_it.next().expect("cycle") {
                if let Some(cell) = q.pop() {
                    // Anything leaving the queue reassembles cleanly.
                    assert!(assembler.push(cell).is_ok());
                }
            }
        }
        while let Some(cell) = q.pop() {
            assert!(assembler.push(cell).is_ok());
        }
        assert_eq!(
            assembler.errors(),
            0,
            "no partial frames may leave an EPD queue"
        );
        assert_eq!(assembler.pending_cells(), 0, "no dangling tails");
    });
}

#[test]
fn oam_loopback_roundtrip() {
    cases("oam_loopback_roundtrip", |g| {
        use castanet_atm::oam::LoopbackCell;
        let vpi = g.range_u64(0, 256) as u16;
        let lb = LoopbackCell::request(VpiVci::uni(vpi, g.u16()).expect("id"), g.bool(), g.u32());
        let cell = lb.encode();
        assert_eq!(LoopbackCell::decode(&cell).expect("decode"), lb);
        // Any single payload bit flip must be detected by the CRC-10.
        let mut bad = cell.clone();
        bad.payload[5] ^= 0x10;
        assert!(LoopbackCell::decode(&bad).is_err());
    });
}

#[test]
fn optimistic_always_converges_to_sorted_result() {
    cases("optimistic_always_converges_to_sorted_result", |g| {
        let schedule = g.vec_of(1, 120, |g| {
            (g.range_u64(0, 10_000), g.range_u64(1, 100) as u32)
        });
        fn step(state: &mut u64, ev: &u32) -> Vec<u64> {
            *state = state.wrapping_mul(31).wrapping_add(u64::from(*ev));
            vec![*state]
        }
        // Reference: process in (stamp, seq) order.
        let mut keyed: Vec<(u64, u64, u32)> = schedule
            .iter()
            .enumerate()
            .map(|(i, &(t, e))| (t, i as u64, e))
            .collect();
        keyed.sort_unstable();
        let mut reference = 0u64;
        for &(_, _, e) in &keyed {
            step(&mut reference, &e);
        }

        let mut tw = OptimisticSync::new(0u64, step, usize::MAX >> 1);
        for (i, &(t, e)) in schedule.iter().enumerate() {
            tw.execute(TimedEvent {
                stamp: SimTime::from_ns(t),
                seq: i as u64,
                event: e,
            })
            .expect("execute");
        }
        assert_eq!(*tw.state(), reference);
    });
}

// ---------------------------------------------------------------------
// Pre-flight static analysis (castanet-lint)
// ---------------------------------------------------------------------

/// A random valid pin-map data set: one inport per lane, MSB-anchored, so
/// segments can never collide.
fn gen_valid_pinmap(g: &mut Gen) -> PinMapConfig {
    let ports = g.range_usize(1, 17); // at most one port per lane
    let mut cfg = PinMapConfig::default();
    for lane in 0..ports {
        let width = g.range_usize(1, 9);
        cfg.inports.push(InportMapping {
            number: lane,
            width,
            segments: vec![PinSegment::new(lane, 7, width)],
        });
    }
    cfg
}

#[test]
fn lint_random_valid_pinmap_is_clean() {
    cases("lint_random_valid_pinmap_is_clean", |g| {
        let cfg = gen_valid_pinmap(g);
        let diags = castanet_lint::passes::pinmap::check_pinmap(&cfg, None);
        assert!(diags.is_empty(), "valid data set flagged: {diags:?}");
    });
}

#[test]
fn lint_overlap_mutation_yields_exactly_cast030() {
    cases("lint_overlap_mutation_yields_exactly_cast030", |g| {
        let mut cfg = gen_valid_pinmap(g);
        // Mutation: a new port re-claims an existing port's segment.
        let victim = g.range_usize(0, cfg.inports.len());
        let seg = cfg.inports[victim].segments[0];
        cfg.inports.push(InportMapping {
            number: cfg.inports.len(),
            width: seg.bits,
            segments: vec![seg],
        });
        let diags = castanet_lint::passes::pinmap::check_pinmap(&cfg, None);
        assert_eq!(diags.len(), seg.bits, "one finding per doubly-claimed pin");
        assert!(diags.iter().all(|d| d.code == "CAST030"), "{diags:?}");
    });
}

#[test]
fn lint_width_mutation_yields_exactly_cast033() {
    cases("lint_width_mutation_yields_exactly_cast033", |g| {
        let mut cfg = gen_valid_pinmap(g);
        let victim = g.range_usize(0, cfg.inports.len());
        cfg.inports[victim].width += 1 + g.range_usize(0, 8);
        let diags = castanet_lint::passes::pinmap::check_pinmap(&cfg, None);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "CAST033");
    });
}

#[test]
fn lint_random_valid_sync_is_clean_and_zero_delta_is_exactly_cast002() {
    cases(
        "lint_random_valid_sync_is_clean_and_zero_delta_is_exactly_cast002",
        |g| {
            let mut sync = ConservativeSync::new();
            let n = g.range_usize(1, 8);
            let types: Vec<_> = (0..n)
                .map(|_| sync.register_type(SimDuration::from_ns(g.range_u64(1, 100_000))))
                .collect();
            let cell_type = types[g.range_usize(0, n)];
            assert!(
                castanet_lint::passes::sync_liveness::check_sync(&sync, Some(cell_type)).is_empty(),
                "positive-delta synchronizer flagged"
            );

            // Mutation: one more type, registered with zero lookahead.
            let zero = sync.register_type(SimDuration::ZERO);
            let diags = castanet_lint::passes::sync_liveness::check_sync(&sync, Some(cell_type));
            assert_eq!(diags.len(), 1);
            assert_eq!(diags[0].code, "CAST002");
            assert_eq!(diags[0].location, format!("sync.type[{}]", zero.0));
        },
    );
}

#[test]
fn lint_rtl_width_mutation_yields_exactly_cast020() {
    use castanet::entity::{CosimEntity, IngressSignals};
    use castanet_rtl::sim::Simulator;
    cases("lint_rtl_width_mutation_yields_exactly_cast020", |g| {
        let mut sim = Simulator::new();
        // One wrong width among the three ingress signals.
        let wrong = g.range_usize(0, 3);
        let bad_width = if g.bool() {
            g.range_usize(2, 8)
        } else {
            g.range_usize(9, 64)
        };
        let widths = |i: usize, good: usize| if i == wrong { bad_width } else { good };
        let data = sim.add_signal("atmdata", widths(0, 8));
        let sync = sim.add_signal("cellsync", widths(1, 1));
        let enable = sim.add_signal("enable", widths(2, 1));
        let mut entity = CosimEntity::new(
            SimDuration::from_ns(20),
            HeaderFormat::Uni,
            MessageTypeId(0),
        );
        entity.add_ingress(IngressSignals { data, sync, enable });
        let diags = castanet_lint::passes::interface::check_rtl_widths(&sim, &entity);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "CAST020");
    });
}

// ---------------------------------------------------------------------
// Parallel coupled-engine executor
// ---------------------------------------------------------------------

/// A complete coupled fixture with `stim` cells pre-scheduled as arrivals
/// and a per-type lookahead of `delta` — the δ_j under test.
fn coupled_fixture(
    stims: &[(SimTime, AtmCell)],
    delta: SimDuration,
) -> castanet::coupling::Coupling<castanet::cyclecosim::CycleCosim> {
    use castanet::cyclecosim::{CycleCosim, EgressIndices, IngressIndices};
    use castanet::interface::{response_packet, CastanetInterfaceProcess};
    use castanet_netsim::event::PortId;
    use castanet_netsim::kernel::Kernel;
    use castanet_netsim::process::CollectorProcess;
    use castanet_rtl::cycle::CycleSim;
    use castanet_rtl::dut::{AtmSwitchRtl, SwitchRtlConfig};

    let mut net = Kernel::new(42);
    let node = net.add_node("prop");
    let mut sync = ConservativeSync::new();
    let cell_type = sync.register_type(delta);
    let (iface_proc, outbox) = CastanetInterfaceProcess::new(cell_type);
    let iface = net.add_module(node, "castanet", Box::new(iface_proc));
    let (collector, _got) = CollectorProcess::new();
    let sink = net.add_module(node, "sink", Box::new(collector));
    net.connect_stream(iface, PortId(1), sink, PortId(0))
        .unwrap();
    for (at, cell) in stims {
        net.inject_packet(iface, PortId(0), response_packet(cell.clone()), *at)
            .unwrap();
    }

    let mut switch = AtmSwitchRtl::new(SwitchRtlConfig {
        ports: 2,
        fifo_capacity: 64,
        table_capacity: 16,
    });
    assert!(switch.install_route(1, 40, 1, 7, 70));
    let sim = CycleSim::new(Box::new(switch));
    let mut follower = CycleCosim::new(sim, SimDuration::from_ns(20), cell_type, HeaderFormat::Uni);
    follower.add_ingress(IngressIndices {
        data: 0,
        sync: 1,
        enable: 2,
    });
    follower.add_ingress(IngressIndices {
        data: 3,
        sync: 4,
        enable: 5,
    });
    follower.add_egress(EgressIndices {
        data: 0,
        sync: 1,
        valid: 2,
    });
    follower.add_egress(EgressIndices {
        data: 3,
        sync: 4,
        valid: 5,
    });
    castanet::coupling::Coupling::new(net, follower, sync, cell_type, iface, outbox)
}

#[test]
fn parallel_lag_invariant_holds_for_any_delta_config() {
    use castanet::coupling::CoupledSimulator;
    cases("parallel_lag_invariant_holds_for_any_delta_config", |g| {
        // Any per-type lookahead δ_j — from far below to far above the
        // true 53-clock cell transfer time — and any batching parameters:
        // the HDL side's local time must never exceed the time the
        // network side has vouched for.
        let delta = SimDuration::from_ns(g.range_u64(100, 5_000_000));
        let cells = g.range_usize(1, 6);
        let mut at = SimTime::ZERO;
        let stims: Vec<(SimTime, AtmCell)> = (0..cells)
            .map(|_| {
                at += SimDuration::from_us(g.range_u64(1, 10));
                (
                    at,
                    AtmCell::user_data(VpiVci::uni(1, 40).unwrap(), g.payload()),
                )
            })
            .collect();
        let window = SimDuration::from_us(g.range_u64(1, 200));
        let depth = g.range_usize(1, 8);
        let mut coupling = coupled_fixture(&stims, delta)
            .into_parallel()
            .with_batching(window, depth);
        let stats = coupling.run(SimTime::from_ms(1)).expect("run");
        assert_eq!(stats.messages_to_follower, cells as u64);
        assert_eq!(stats.responses, cells as u64, "every cell answered");
        assert!(coupling.sync().lag_invariant_holds());
        assert!(
            coupling.sync().local_time() <= coupling.sync().originator_time(),
            "HDL local time ran ahead of the netsim promise"
        );
        assert!(coupling.follower().now() <= SimTime::from_ms(1) + window);
    });
}

#[test]
fn parallel_executor_never_deadlocks_on_empty_queues() {
    cases("parallel_executor_never_deadlocks_on_empty_queues", |g| {
        // No stimulus ever crosses the interface — either the network is
        // completely silent or every event lies beyond the horizon. The
        // executor must terminate (the two-phase handshake may not wait
        // on a message that cannot come) and deliver nothing.
        let horizon = SimTime::from_us(g.range_u64(1, 500));
        let beyond = g.range_usize(0, 4);
        let stims: Vec<(SimTime, AtmCell)> = (0..beyond)
            .map(|k| {
                (
                    horizon + SimDuration::from_us(g.range_u64(1, 100) + k as u64),
                    AtmCell::user_data(VpiVci::uni(1, 40).unwrap(), g.payload()),
                )
            })
            .collect();
        let window = SimDuration::from_us(g.range_u64(1, 300));
        let depth = g.range_usize(1, 8);
        let quantum = SimDuration::from_us(g.range_u64(1, 100));
        let quiet = g.range_u64(1, 4) as u32;
        let mut coupling = coupled_fixture(&stims, SimDuration::from_us(1))
            .into_parallel()
            .with_batching(window, depth)
            .with_drain(quantum, quiet);
        let stats = coupling.run(horizon).expect("run");
        assert_eq!(stats.messages_to_follower, 0);
        assert_eq!(stats.responses, 0);
        assert!(coupling.sync().lag_invariant_holds());
    });
}

// ---------------------------------------------------------------------
// Event-driven RTL kernel: timing wheel and packed logic vectors
// ---------------------------------------------------------------------

/// Reference scheduler for the timing wheel: a plain binary heap over
/// `(time, seq)`, which is exactly the ordering contract the wheel must
/// reproduce — earliest time first, push order within a time.
#[test]
fn timing_wheel_matches_binary_heap_reference() {
    use castanet_rtl::wheel::TimingWheel;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    cases("timing_wheel_matches_binary_heap_reference", |g| {
        let mut wheel = TimingWheel::new();
        let mut reference: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        let mut out: Vec<u64> = Vec::new();
        let pop_step = |wheel: &mut TimingWheel<u64>,
                        reference: &mut BinaryHeap<Reverse<(u64, u64)>>,
                        out: &mut Vec<u64>| {
            assert_eq!(
                wheel.peek(),
                reference.peek().map(|Reverse((t, _))| *t),
                "peek disagrees"
            );
            out.clear();
            let t = wheel.pop_into(out).expect("wheel non-empty");
            // The reference delivers the same time step: every entry
            // stamped `t`, in seq (push) order.
            let mut expect = Vec::new();
            while reference.peek().is_some_and(|Reverse((rt, _))| *rt == t) {
                expect.push(reference.pop().expect("peeked").0 .1);
            }
            assert_eq!(*out, expect, "entries at time {t}");
            t
        };
        for _ in 0..g.range_usize(1, 120) {
            if g.bool() || wheel.is_empty() {
                // Burst of pushes at or after the wheel's current base,
                // mixing same-time, near and far-future stamps so every
                // hierarchy level gets exercised.
                for _ in 0..g.range_usize(1, 8) {
                    let t = now
                        + match g.range_usize(0, 4) {
                            0 => 0,
                            1 => g.range_u64(0, 64),
                            2 => g.range_u64(0, 1 << 18),
                            _ => g.range_u64(0, 1 << 40),
                        };
                    wheel.push(t, seq);
                    reference.push(Reverse((t, seq)));
                    seq += 1;
                }
            } else {
                now = pop_step(&mut wheel, &mut reference, &mut out);
            }
        }
        assert_eq!(wheel.len(), reference.len());
        while !reference.is_empty() {
            pop_step(&mut wheel, &mut reference, &mut out);
        }
        assert!(wheel.is_empty());
        assert_eq!(wheel.peek(), None);
    });
}

fn gen_logic(g: &mut Gen) -> Logic {
    Logic::ALL[g.range_usize(0, 9)]
}

fn is_binary(l: Logic) -> bool {
    matches!(l, Logic::Zero | Logic::One | Logic::L | Logic::H)
}

/// The packed (nibble-per-bit) vector against the naive `Vec<Logic>`
/// model: construction, indexing, integer reading, slicing, concatenation
/// and display must all agree for every one of the nine values at any
/// width — including widths that cross the inline/heap storage boundary.
#[test]
fn packed_vector_matches_naive_model() {
    cases("packed_vector_matches_naive_model", |g| {
        let width = g.range_usize(1, 513);
        let model = g.vec_of(width, width + 1, gen_logic);
        let mut v = LogicVector::uninitialized(width);
        for (i, &l) in model.iter().enumerate() {
            v.set_bit(i, l);
        }
        assert_eq!(v, LogicVector::from_bits(&model));
        assert_eq!(v.width(), width);
        assert_eq!(v.to_bits(), model);
        for (i, &l) in model.iter().enumerate() {
            assert_eq!(v.bit(i), l, "bit {i} of width {width}");
        }
        let defined = model.iter().copied().all(is_binary);
        assert_eq!(v.is_fully_defined(), defined);
        let naive_u64 = (width <= 64 && defined).then(|| {
            model.iter().enumerate().fold(0u64, |acc, (i, &l)| {
                acc | (u64::from(matches!(l, Logic::One | Logic::H)) << i)
            })
        });
        assert_eq!(v.to_u64(), naive_u64);
        // Display is MSB first, one character per bit.
        let shown: String = model.iter().rev().map(|l| l.to_char()).collect();
        assert_eq!(format!("{v}"), shown);
        // Any in-range slice agrees with the model slice.
        let lo = g.range_usize(0, width);
        let w = g.range_usize(1, width - lo + 1);
        assert_eq!(v.slice(lo, w).to_bits(), &model[lo..lo + w]);
        // Concatenation across arbitrary (non-word-aligned) boundaries.
        let hi_model = g.vec_of(1, 130, gen_logic);
        let cat = v.concat_high(&LogicVector::from_bits(&hi_model));
        let mut cat_model = model.clone();
        cat_model.extend_from_slice(&hi_model);
        assert_eq!(cat.to_bits(), cat_model);
    });
}

/// Word-wise resolution against the element-wise reference, plus the
/// algebra the IEEE 1164 table promises (commutativity, and agreement of
/// the in-place form with the pure form).
#[test]
fn packed_resolution_matches_elementwise_model() {
    cases("packed_resolution_matches_elementwise_model", |g| {
        let width = g.range_usize(1, 513);
        let a = g.vec_of(width, width + 1, gen_logic);
        let b = g.vec_of(width, width + 1, gen_logic);
        let va = LogicVector::from_bits(&a);
        let vb = LogicVector::from_bits(&b);
        let resolved = va.resolve(&vb);
        let model: Vec<Logic> = a.iter().zip(&b).map(|(x, y)| x.resolve(*y)).collect();
        assert_eq!(resolved.to_bits(), model);
        assert_eq!(vb.resolve(&va), resolved, "resolution must commute");
        let mut vc = va.clone();
        vc.resolve_assign(&vb);
        assert_eq!(vc, resolved, "in-place form must agree");
    });
}

#[test]
fn lint_findings_always_use_registered_codes() {
    cases("lint_findings_always_use_registered_codes", |g| {
        // Throw a random (mostly broken) data set at the pin-map pass and
        // check every finding carries a documented code whose registered
        // severity matches the emitted one.
        let mut cfg = PinMapConfig::default();
        let ports = g.range_usize(1, 6);
        for _ in 0..ports {
            cfg.inports.push(InportMapping {
                number: g.range_usize(0, 4),
                width: g.range_usize(0, 12),
                segments: vec![PinSegment::new(
                    g.range_usize(0, 20),
                    g.range_usize(0, 10),
                    g.range_usize(0, 10),
                )],
            });
        }
        for d in castanet_lint::passes::pinmap::check_pinmap(&cfg, None) {
            let (severity, _) = castanet_lint::code_info(d.code)
                .unwrap_or_else(|| panic!("undocumented code {}", d.code));
            assert_eq!(severity, d.severity, "severity drift for {}", d.code);
        }
    });
}

// ---------------------------------------------------------------------
// RTL netlist structural analysis & levelization
// ---------------------------------------------------------------------

mod netgen {
    //! Random loop-free netlist generator: executable XOR gates that also
    //! declare their dataflow, so the same fixture drives both the event
    //! kernel and the static analyses.

    use super::harness::Gen;
    use castanet_rtl::logic::Logic;
    use castanet_rtl::netlist::ProcessIo;
    use castanet_rtl::signal::SignalId;
    use castanet_rtl::sim::{RtlCtx, RtlProcess, Simulator};
    use std::collections::HashSet;

    /// XOR-reduce over the read set; `One` counts as 1, everything else
    /// (including `U`/`X`) as 0, so the fixpoint is defined from reset.
    pub struct XorGate {
        pub name: String,
        pub reads: Vec<SignalId>,
        pub out: SignalId,
    }

    impl RtlProcess for XorGate {
        fn run(&mut self, ctx: &mut RtlCtx) {
            let acc = self
                .reads
                .iter()
                .fold(false, |acc, &s| acc ^ (ctx.read_bit(s) == Logic::One));
            ctx.assign_bit(self.out, if acc { Logic::One } else { Logic::Zero });
        }

        fn io(&self) -> Option<ProcessIo> {
            Some(
                ProcessIo::combinational(self.name.clone())
                    .reads(self.reads.iter().copied())
                    .writes([self.out]),
            )
        }
    }

    pub struct Fixture {
        pub sim: Simulator,
        pub inputs: Vec<SignalId>,
        /// One entry per gate: (reads, out), in creation order.
        pub gates: Vec<(Vec<SignalId>, SignalId)>,
    }

    /// A random layered DAG: every gate reads only previously created
    /// signals and writes a fresh one, so loops are impossible by
    /// construction. Terminal signals are marked external outputs (they
    /// are the observation points, and unobserved sinks would trip the
    /// dead-signal check by design).
    pub fn loop_free(g: &mut Gen) -> Fixture {
        let mut sim = Simulator::new();
        let mut pool = Vec::new();
        let mut inputs = Vec::new();
        for i in 0..g.range_usize(2, 6) {
            let s = sim.add_signal(format!("in{i}"), 1);
            sim.mark_external_input(s);
            pool.push(s);
            inputs.push(s);
        }
        let mut gates = Vec::new();
        for k in 0..g.range_usize(1, 24) {
            let fanin = g.range_usize(1, 4.min(pool.len() + 1));
            let mut reads: Vec<SignalId> = Vec::new();
            while reads.len() < fanin {
                let s = pool[g.range_usize(0, pool.len())];
                if !reads.contains(&s) {
                    reads.push(s);
                }
            }
            let out = sim.add_signal(format!("n{k}"), 1);
            let gate = XorGate {
                name: format!("g{k}"),
                reads: reads.clone(),
                out,
            };
            sim.add_process(Box::new(gate), &reads);
            pool.push(out);
            gates.push((reads, out));
        }
        let observed: HashSet<SignalId> = gates
            .iter()
            .flat_map(|(reads, _)| reads.iter().copied())
            .collect();
        for &(_, out) in &gates {
            if !observed.contains(&out) {
                sim.mark_external_output(out);
            }
        }
        Fixture { sim, inputs, gates }
    }
}

#[test]
fn random_loop_free_netlists_are_clean_and_levelize_fully() {
    cases(
        "random_loop_free_netlists_are_clean_and_levelize_fully",
        |g| {
            let fx = netgen::loop_free(g);
            let net = fx.sim.netlist();
            let diags = castanet_lint::passes::rtl_structure::check_netlist(&net);
            assert!(diags.is_empty(), "loop-free DAG flagged: {diags:?}");
            let lev = net.levelize().expect("loop-free netlists must levelize");
            assert_eq!(
                lev.combinational_count(),
                fx.gates.len(),
                "every gate placed in the schedule"
            );
            assert!(lev.opaque.is_empty());
            let report = castanet_lint::passes::rtl_structure::levelization_report(&net)
                .expect("report on a DAG");
            assert!((report.coverage() - 1.0).abs() < f64::EPSILON);
        },
    );
}

#[test]
fn level_order_evaluation_matches_event_kernel_fixpoint() {
    use castanet_rtl::logic::Logic;
    use std::collections::HashMap;
    cases(
        "level_order_evaluation_matches_event_kernel_fixpoint",
        |g| {
            let mut fx = netgen::loop_free(g);
            let net = fx.sim.netlist();
            let lev = net.levelize().expect("loop-free");

            // Drive every external input with a random bit and let the event
            // kernel settle through its delta cycles.
            let mut model: HashMap<castanet_rtl::signal::SignalId, bool> = HashMap::new();
            for &input in &fx.inputs {
                let v = g.bool();
                model.insert(input, v);
                fx.sim
                    .poke_bit(
                        input,
                        if v { Logic::One } else { Logic::Zero },
                        SimTime::ZERO,
                    )
                    .expect("poke");
            }
            fx.sim.run_to_quiescence().expect("settle");

            // Reference: one single pass in level order — no iteration, no
            // events. On a correctly levelized DAG this reaches the same
            // fixpoint the kernel converges to.
            for level in &lev.levels {
                for &p in level {
                    let io = net.processes[p.index()].io.clone().expect("declared gate");
                    let value = io.reads.iter().fold(false, |acc, s| acc ^ model[s]);
                    model.insert(io.writes[0], value);
                }
            }
            for &(_, out) in &fx.gates {
                assert_eq!(
                    fx.sim.read_bit(out) == Logic::One,
                    model[&out],
                    "event kernel and levelized schedule disagree on {out}"
                );
            }
        },
    );
}

mod compiled_netgen {
    //! Random loop-free netlist generator for the compiled backend: the
    //! same layered-DAG shape as [`super::netgen::loop_free`], but built
    //! from the lowerable, X-propagating
    //! [`castanet_rtl::compiled::gates::XorReduce`] so the event kernel
    //! and the compiled evaluator share one operator semantics.

    use super::harness::Gen;
    use castanet_rtl::compiled::gates::XorReduce;
    use castanet_rtl::signal::SignalId;
    use castanet_rtl::sim::Simulator;

    pub struct Fixture {
        pub sim: Simulator,
        pub inputs: Vec<SignalId>,
        /// Every gate output, in creation order.
        pub outs: Vec<SignalId>,
    }

    /// A random layered DAG: every gate reads only previously created
    /// signals and writes a fresh one, so loops are impossible by
    /// construction.
    pub fn loop_free(g: &mut Gen) -> Fixture {
        let mut sim = Simulator::new();
        let mut pool = Vec::new();
        let mut inputs = Vec::new();
        for i in 0..g.range_usize(2, 6) {
            let s = sim.add_signal(format!("in{i}"), 1);
            sim.mark_external_input(s);
            pool.push(s);
            inputs.push(s);
        }
        let mut outs = Vec::new();
        for k in 0..g.range_usize(1, 24) {
            let fanin = g.range_usize(1, 4.min(pool.len() + 1));
            let mut reads: Vec<SignalId> = Vec::new();
            while reads.len() < fanin {
                let s = pool[g.range_usize(0, pool.len())];
                if !reads.contains(&s) {
                    reads.push(s);
                }
            }
            let out = sim.add_signal(format!("n{k}"), 1);
            sim.mark_external_output(out);
            let gate = XorReduce::new(format!("g{k}"), reads.clone(), out);
            sim.add_process(Box::new(gate), &reads);
            pool.push(out);
            outs.push(out);
        }
        Fixture { sim, inputs, outs }
    }
}

#[test]
fn compiled_evaluation_matches_event_kernel_fixpoint_on_all_lanes() {
    use castanet_rtl::compiled::{CompiledSchedule, CompiledSim, LANES};
    cases(
        "compiled_evaluation_matches_event_kernel_fixpoint_on_all_lanes",
        |g| {
            let mut fx = compiled_netgen::loop_free(g);
            let schedule = CompiledSchedule::compile(&fx.sim).expect("loop-free DAG compiles");
            let mut csim = CompiledSim::new(schedule, LANES);

            // Per-lane random drive over the full X01 domain (X included:
            // both backends must propagate unknowns identically), settled
            // once for all 64 lanes together.
            let domain = [Logic::Zero, Logic::One, Logic::X];
            let drives: Vec<Vec<Logic>> = (0..LANES)
                .map(|_| {
                    fx.inputs
                        .iter()
                        .map(|_| domain[g.range_usize(0, 3)])
                        .collect()
                })
                .collect();
            for (lane, drive) in drives.iter().enumerate() {
                for (&input, &v) in fx.inputs.iter().zip(drive) {
                    csim.poke(input, lane, &LogicVector::from(v)).expect("poke");
                }
            }
            csim.settle();

            // Reference: the event kernel settles each lane's assignment in
            // sequence through its delta cycles.
            for (lane, drive) in drives.iter().enumerate() {
                let t = SimTime::from_ns(10 * (lane as u64 + 1));
                for (&input, &v) in fx.inputs.iter().zip(drive) {
                    fx.sim.poke_bit(input, v, t).expect("poke");
                }
                fx.sim
                    .run_until(t + SimDuration::from_ns(1))
                    .expect("settle");
                for &out in &fx.outs {
                    assert_eq!(
                        csim.read_bit(out, lane),
                        fx.sim.read_bit(out).to_x01(),
                        "lane {lane} disagrees with the event kernel on {out}"
                    );
                }
            }
        },
    );
}

#[test]
fn compiled_lanes_are_independent_under_seed_permutation() {
    use castanet_rtl::compiled::{CompiledSchedule, CompiledSim, LANES};
    cases(
        "compiled_lanes_are_independent_under_seed_permutation",
        |g| {
            let fx = compiled_netgen::loop_free(g);
            let schedule = CompiledSchedule::compile(&fx.sim).expect("compiles");

            let lanes = g.range_usize(2, LANES + 1);
            let drives: Vec<Vec<Logic>> = (0..lanes)
                .map(|_| {
                    fx.inputs
                        .iter()
                        .map(|_| if g.bool() { Logic::One } else { Logic::Zero })
                        .collect()
                })
                .collect();
            // A random permutation of the lane assignment (Fisher-Yates).
            let mut perm: Vec<usize> = (0..lanes).collect();
            for i in (1..lanes).rev() {
                perm.swap(i, g.range_usize(0, i + 1));
            }

            let mut a = CompiledSim::new(schedule.clone(), lanes);
            let mut b = CompiledSim::new(schedule, lanes);
            for lane in 0..lanes {
                for (&input, &v) in fx.inputs.iter().zip(&drives[lane]) {
                    a.poke(input, lane, &LogicVector::from(v)).expect("poke");
                    b.poke(input, perm[lane], &LogicVector::from(v))
                        .expect("poke");
                }
            }
            a.settle();
            b.settle();
            // Permuting the per-lane seeds permutes the outputs and changes
            // nothing else — any cross-lane bleed breaks this bijection.
            for (lane, &target) in perm.iter().enumerate() {
                for &out in &fx.outs {
                    assert_eq!(
                        a.read_bit(out, lane),
                        b.read_bit(out, target),
                        "lane {lane} leaked into the permuted evaluation on {out}"
                    );
                }
            }
        },
    );
}

#[test]
fn bit_slice_pack_unpack_round_trips_logic_vectors() {
    use castanet_rtl::compiled::{pack_vectors, unpack_vectors, PackedBit, LANES};
    cases("bit_slice_pack_unpack_round_trips_logic_vectors", |g| {
        let width = g.range_usize(1, 65);
        let lanes = g.range_usize(1, LANES + 1);
        let vectors: Vec<LogicVector> = (0..lanes)
            .map(|_| {
                let bits: Vec<Logic> = (0..width)
                    .map(|_| Logic::ALL[g.range_usize(0, Logic::ALL.len())])
                    .collect();
                LogicVector::from_bits(&bits)
            })
            .collect();
        let words = pack_vectors(&vectors);
        assert_eq!(words.len(), width);
        for w in &words {
            assert_eq!(w.val & w.unk, 0, "val/unk invariant");
        }
        // The packed image is the X01 collapse of the originals...
        let back = unpack_vectors(&words, lanes);
        for (v, r) in vectors.iter().zip(&back) {
            for bit in 0..width {
                assert_eq!(r.bit(bit), v.bit(bit).to_x01(), "bit {bit}");
            }
        }
        // ...lanes past the packed count read X, and per-lane set/get on a
        // single word agrees with the vector path.
        if lanes < LANES {
            assert!(unpack_vectors(&words, lanes + 1)[lanes]
                .iter()
                .all(|b| b == Logic::X));
        }
        let bit = g.range_usize(0, width);
        let lane = g.range_usize(0, lanes);
        let mut w = PackedBit::ALL_X;
        w.set_lane(lane, vectors[lane].bit(bit));
        assert_eq!(w.lane(lane), vectors[lane].bit(bit).to_x01());
        assert_eq!(words[bit].lane(lane), vectors[lane].bit(bit).to_x01());
    });
}

#[test]
fn seeded_back_edge_trips_cast100_and_breaks_levelization() {
    use netgen::XorGate;
    cases(
        "seeded_back_edge_trips_cast100_and_breaks_levelization",
        |g| {
            let mut fx = netgen::loop_free(g);
            // Close a cycle: a new gate feeds some gate's output back into one
            // of the signals that gate reads.
            let (reads, out) = fx.gates[g.range_usize(0, fx.gates.len())].clone();
            let back_into = reads[g.range_usize(0, reads.len())];
            fx.sim.add_process(
                Box::new(XorGate {
                    name: "back_edge".into(),
                    reads: vec![out],
                    out: back_into,
                }),
                &[out],
            );
            let net = fx.sim.netlist();
            let diags = castanet_lint::passes::rtl_structure::check_netlist(&net);
            assert!(
                diags.iter().any(|d| d.code == "CAST100"),
                "back edge not reported: {diags:?}"
            );
            let loops = castanet_lint::passes::rtl_structure::levelization_report(&net)
                .expect_err("a cyclic netlist must not levelize");
            assert!(loops.iter().all(|d| d.code == "CAST100"));
        },
    );
}

#[test]
fn seeded_second_driver_trips_cast110() {
    use netgen::XorGate;
    cases("seeded_second_driver_trips_cast110", |g| {
        let mut fx = netgen::loop_free(g);
        let (_, victim) = fx.gates[g.range_usize(0, fx.gates.len())];
        let input = fx.inputs[g.range_usize(0, fx.inputs.len())];
        fx.sim.add_process(
            Box::new(XorGate {
                name: "rogue_driver".into(),
                reads: vec![input],
                out: victim,
            }),
            &[input],
        );
        let diags = castanet_lint::passes::rtl_structure::check_rtl_structure(&fx.sim);
        assert!(
            diags.iter().any(|d| d.code == "CAST110"),
            "double driver not reported: {diags:?}"
        );
    });
}

#[test]
fn seeded_pruned_sensitivity_trips_exactly_cast120() {
    use netgen::XorGate;
    cases("seeded_pruned_sensitivity_trips_exactly_cast120", |g| {
        let mut fx = netgen::loop_free(g);
        // A gate that reads two signals but only registered one of them in
        // its sensitivity list — the classic stale-output bug.
        let a = fx.inputs[0];
        let b = fx.inputs[1];
        let out = fx.sim.add_signal("pruned_out", 1);
        fx.sim.mark_external_output(out);
        fx.sim.add_process(
            Box::new(XorGate {
                name: "pruned".into(),
                reads: vec![a, b],
                out,
            }),
            &[a], // b missing
        );
        let diags = castanet_lint::passes::rtl_structure::check_rtl_structure(&fx.sim);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "CAST120");
        assert!(diags[0].message.contains("in1"), "{}", diags[0].message);
    });
}

#[test]
fn span_guards_survive_any_interleaving_of_drops_and_leaks() {
    use castanet_obs::{EventKind as ObsEventKind, Phase, SpanGuard, Telemetry, Track};
    use std::cell::Cell;

    // The span-depth bookkeeping is thread-local and a forgotten guard
    // leaves it raised for good; the model mirrors the counter across
    // cases so every recorded depth — under arbitrary interleavings of
    // out-of-order drops and leaks — is predicted exactly.
    let depth_now = Cell::new(0u32);
    cases(
        "span_guards_survive_any_interleaving_of_drops_and_leaks",
        |g| {
            let tel = Telemetry::enabled();
            let phases = [
                Phase::KernelAdvance,
                Phase::ParallelGrant,
                Phase::ParallelWait,
                Phase::ParallelDrain,
            ];
            let mut open: Vec<SpanGuard<'_>> = Vec::new();
            let mut open_phases: Vec<Phase> = Vec::new();
            let mut expected: Vec<(Phase, u32)> = Vec::new();
            for _ in 0..g.range_usize(1, 24) {
                match g.range_usize(0, 4) {
                    0 | 1 => {
                        let phase = phases[g.range_usize(0, phases.len())];
                        open.push(tel.span(Track::Follower, 1, phase));
                        open_phases.push(phase);
                        depth_now.set(depth_now.get().saturating_add(1));
                    }
                    // Unbalanced close: drop a guard at an arbitrary position;
                    // it records the *post-decrement* drop-time depth.
                    2 if !open.is_empty() => {
                        let i = g.range_usize(0, open.len());
                        drop(open.swap_remove(i));
                        let phase = open_phases.swap_remove(i);
                        depth_now.set(depth_now.get().saturating_sub(1));
                        expected.push((phase, depth_now.get()));
                    }
                    // Leak: records nothing, depth stays raised.
                    3 if !open.is_empty() => {
                        let i = g.range_usize(0, open.len());
                        std::mem::forget(open.swap_remove(i));
                        open_phases.swap_remove(i);
                    }
                    _ => {}
                }
            }
            while let Some(guard) = open.pop() {
                drop(guard);
                let phase = open_phases.pop().expect("one phase per guard");
                depth_now.set(depth_now.get().saturating_sub(1));
                expected.push((phase, depth_now.get()));
            }
            let got: Vec<(Phase, u32)> = tel
                .events()
                .iter()
                .map(|e| match e.kind {
                    ObsEventKind::PhaseSpan { phase, depth } => (phase, depth),
                    ref other => panic!("unexpected event {other:?}"),
                })
                .collect();
            assert_eq!(got, expected);
        },
    );
}
