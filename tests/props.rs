//! Property-based test suites over the core data structures and protocol
//! invariants (proptest).

use castanet::convert::{cell_to_byte_ops, ByteStreamAssembler};
use castanet::ipc::{decode_message, encode_message};
use castanet::message::{Message, MessagePayload, MessageTypeId};
use castanet::sync::conservative::ConservativeSync;
use castanet::sync::optimistic::{OptimisticSync, TimedEvent};
use castanet_atm::aal5;
use castanet_atm::addr::{HeaderFormat, Vci, Vpi, VpiVci};
use castanet_atm::cell::{AtmCell, CellHeader, PayloadType};
use castanet_atm::gcra::{Gcra, LeakyBucket};
use castanet_atm::hec;
use castanet_netsim::event::EventKind;
use castanet_netsim::scheduler::EventList;
use castanet_netsim::time::{SimDuration, SimTime};
use castanet_rtl::logic::Logic;
use castanet_rtl::vector::LogicVector;
use castanet_testboard::pinmap::{InportMapping, PinMapConfig, PinSegment};
use proptest::prelude::*;

fn arb_payload() -> impl Strategy<Value = [u8; 48]> {
    prop::array::uniform32(any::<u8>()).prop_flat_map(|first| {
        prop::array::uniform16(any::<u8>()).prop_map(move |second| {
            let mut p = [0u8; 48];
            p[..32].copy_from_slice(&first);
            p[32..].copy_from_slice(&second);
            p
        })
    })
}

fn arb_uni_header() -> impl Strategy<Value = CellHeader> {
    (0u8..16, 0u16..=255, any::<u16>(), 0u8..8, any::<bool>()).prop_map(
        |(gfc, vpi, vci, pt, clp)| CellHeader {
            gfc,
            id: VpiVci::new(
                Vpi::new(vpi, HeaderFormat::Uni).expect("in range"),
                Vci::new(vci),
            ),
            pt: PayloadType::from_bits(pt),
            clp,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn cell_wire_roundtrip_uni(header in arb_uni_header(), payload in arb_payload()) {
        let cell = AtmCell::with_header(header, payload);
        let wire = cell.encode(HeaderFormat::Uni).expect("encode");
        let back = AtmCell::decode(&wire, HeaderFormat::Uni).expect("decode");
        prop_assert_eq!(back, cell);
    }

    #[test]
    fn cell_wire_roundtrip_nni(vpi in 0u16..4096, vci: u16, pt in 0u8..8, clp: bool, payload in arb_payload()) {
        let header = CellHeader {
            gfc: 0,
            id: VpiVci::new(Vpi::new(vpi, HeaderFormat::Nni).expect("in range"), Vci::new(vci)),
            pt: PayloadType::from_bits(pt),
            clp,
        };
        let cell = AtmCell::with_header(header, payload);
        let wire = cell.encode(HeaderFormat::Nni).expect("encode");
        prop_assert_eq!(AtmCell::decode(&wire, HeaderFormat::Nni).expect("decode"), cell);
    }

    #[test]
    fn any_single_header_bit_flip_is_corrected(header in arb_uni_header(), bit in 0usize..40) {
        let cell = AtmCell::with_header(header, [0u8; 48]);
        let wire = cell.encode(HeaderFormat::Uni).expect("encode");
        let mut bad = [0u8; 5];
        bad.copy_from_slice(&wire[..5]);
        bad[bit / 8] ^= 0x80 >> (bit % 8);
        let mut rx = hec::HecReceiver::new();
        match rx.receive(&bad) {
            hec::HecOutcome::Corrected(fixed) => prop_assert_eq!(&fixed[..], &wire[..5]),
            other => prop_assert!(false, "bit {} not corrected: {:?}", bit, other),
        }
    }

    #[test]
    fn aal5_roundtrip(sdu in prop::collection::vec(any::<u8>(), 0..2000)) {
        let conn = VpiVci::uni(1, 42).expect("id");
        let cells = aal5::segment(conn, &sdu).expect("segment");
        prop_assert_eq!(aal5::reassemble(&cells).expect("reassemble"), sdu);
    }

    #[test]
    fn aal5_payload_corruption_always_detected(
        sdu in prop::collection::vec(any::<u8>(), 1..500),
        byte_index in any::<prop::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let conn = VpiVci::uni(1, 42).expect("id");
        let mut cells = aal5::segment(conn, &sdu).expect("segment");
        let total = cells.len() * 48;
        let at = byte_index.index(total);
        cells[at / 48].payload[at % 48] ^= flip;
        // Either the CRC fails or (if the corruption hit the pad/length in
        // a detectable way) another validation error fires; it must never
        // silently return the original data.
        match aal5::reassemble(&cells) {
            Ok(data) => prop_assert_ne!(data, sdu),
            Err(_) => {}
        }
    }

    #[test]
    fn gcra_formulations_agree(gaps in prop::collection::vec(0u64..30, 1..300), t_us in 1u64..20, tau_us in 0u64..40) {
        let t = SimDuration::from_us(t_us);
        let tau = SimDuration::from_us(tau_us);
        let mut g = Gcra::new(t, tau);
        let mut lb = LeakyBucket::new(t, tau);
        let mut now = SimTime::ZERO;
        for gap in gaps {
            now += SimDuration::from_us(gap);
            prop_assert_eq!(g.arrival(now), lb.arrival(now));
        }
    }

    #[test]
    fn logic_vector_u64_roundtrip(value: u64, width in 1usize..=64) {
        let masked = if width == 64 { value } else { value & ((1u64 << width) - 1) };
        let v = LogicVector::from_u64(masked, width);
        prop_assert_eq!(v.to_u64(), Some(masked));
        prop_assert_eq!(v.width(), width);
    }

    #[test]
    fn logic_resolution_commutes_and_associates(a in 0usize..9, b in 0usize..9, c in 0usize..9) {
        let (a, b, c) = (Logic::ALL[a], Logic::ALL[b], Logic::ALL[c]);
        prop_assert_eq!(a.resolve(b), b.resolve(a));
        prop_assert_eq!(a.resolve(b).resolve(c), a.resolve(b.resolve(c)));
    }

    #[test]
    fn event_list_pops_monotone(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut list = EventList::new();
        for &t in &times {
            list.schedule(SimTime::from_ns(t), EventKind::Stop).expect("schedule");
        }
        let mut prev = SimTime::ZERO;
        while let Some(ev) = list.pop() {
            prop_assert!(ev.time() >= prev);
            prev = ev.time();
        }
    }

    #[test]
    fn byte_stream_assembler_recovers_cells_after_garbage(
        header in arb_uni_header(),
        payload in arb_payload(),
        garbage in prop::collection::vec(any::<u8>(), 0..100),
    ) {
        let cell = AtmCell::with_header(header, payload);
        let mut rx = ByteStreamAssembler::new(HeaderFormat::Uni);
        // Garbage without sync markers must not produce cells.
        for b in garbage {
            prop_assert!(rx.push(b, false).expect("no cell completes").is_none());
        }
        let mut got = None;
        for op in cell_to_byte_ops(&cell, HeaderFormat::Uni).expect("convert") {
            if let Some(c) = rx.push(op.data, op.sync).expect("assemble") {
                got = Some(c);
            }
        }
        prop_assert_eq!(got, Some(cell));
    }

    #[test]
    fn ipc_codec_roundtrip(
        stamp_ps: u64,
        type_id: u32,
        port in 0usize..100_000,
        header in arb_uni_header(),
        payload in arb_payload(),
    ) {
        let msg = Message {
            stamp: SimTime::from_picos(stamp_ps),
            type_id: MessageTypeId(type_id),
            port,
            payload: MessagePayload::Cell(AtmCell::with_header(header, payload)),
        };
        prop_assert_eq!(decode_message(&encode_message(&msg)).expect("decode"), msg);
    }

    #[test]
    fn pinmap_roundtrip_random_single_lane_ports(
        lane in 0usize..16,
        start_bit in 0usize..8,
        value: u8,
    ) {
        let bits = start_bit + 1; // widest segment ending at bit 0
        let cfg = PinMapConfig {
            inports: vec![InportMapping {
                number: 0,
                width: bits,
                segments: vec![PinSegment::new(lane, start_bit, bits)],
            }],
            ..PinMapConfig::default()
        };
        let masked = u64::from(value) & ((1u64 << bits) - 1);
        let mut frame = [0u8; 16];
        cfg.encode_inport(0, masked, &mut frame).expect("encode");
        // Decode through the same segments.
        let port = cfg.inport(0).expect("port");
        let mut out = 0u64;
        for seg in &port.segments {
            let shift = seg.start_bit + 1 - seg.bits;
            out = (out << seg.bits) | (u64::from(frame[seg.lane] >> shift) & ((1u64 << seg.bits) - 1));
        }
        prop_assert_eq!(out, masked);
    }

    #[test]
    fn conservative_sync_never_violates_lag_under_random_schedules(
        deltas_us in prop::collection::vec(1u64..20, 1..5),
        steps in prop::collection::vec((0usize..5, 0u64..2_000, any::<bool>()), 1..400),
    ) {
        let mut sync = ConservativeSync::new();
        let types: Vec<_> = deltas_us.iter().map(|&d| sync.register_type(SimDuration::from_us(d))).collect();
        let n = types.len();
        let mut stamps = vec![SimTime::ZERO; n];
        let mut originator = SimTime::ZERO;
        let mut prev = SimTime::ZERO;
        for (j, advance_ns, is_null) in steps {
            let j = j % n;
            originator += SimDuration::from_ns(advance_ns);
            stamps[j] = stamps[j].max(originator);
            sync.receive(types[j], stamps[j], is_null).expect("receive");
            sync.advance_local(prev).expect("advance");
            prev = sync.originator_time();
            prop_assert!(sync.lag_invariant_holds());
            prop_assert!(sync.local_time() <= sync.originator_time());
        }
    }

    #[test]
    fn frame_aware_queue_admits_only_whole_frames(
        // The classical EPD guarantee needs headroom: frames must fit in
        // (capacity - threshold). Capacity 24, threshold 12, frames of at
        // most ceil((500+8)/48) = 11 cells.
        frame_lens in prop::collection::vec(1usize..500, 1..20),
        service in prop::collection::vec(0usize..4, 1..20),
    ) {
        use castanet_atm::discard::{DiscardPolicy, DiscardQueue};
        let conn = VpiVci::uni(1, 40).expect("id");
        let capacity = 24usize;
        let mut q = DiscardQueue::new(capacity, DiscardPolicy::FrameAware { epd_threshold: 12 });
        let mut assembler = aal5::Reassembler::new();
        let mut service_it = service.iter().cycle();
        for &len in &frame_lens {
            for cell in aal5::segment(conn, &vec![0x11; len]).expect("segment") {
                let _ = q.offer(cell);
            }
            for _ in 0..*service_it.next().expect("cycle") {
                if let Some(cell) = q.pop() {
                    // Anything leaving the queue reassembles cleanly.
                    prop_assert!(assembler.push(cell).is_ok());
                }
            }
        }
        while let Some(cell) = q.pop() {
            prop_assert!(assembler.push(cell).is_ok());
        }
        prop_assert_eq!(assembler.errors(), 0, "no partial frames may leave an EPD queue");
        prop_assert_eq!(assembler.pending_cells(), 0, "no dangling tails");
    }

    #[test]
    fn oam_loopback_roundtrip(vpi in 0u16..256, vci: u16, tag: u32, e2e: bool) {
        use castanet_atm::oam::LoopbackCell;
        let lb = LoopbackCell::request(VpiVci::uni(vpi, vci).expect("id"), e2e, tag);
        let cell = lb.encode();
        prop_assert_eq!(LoopbackCell::decode(&cell).expect("decode"), lb);
        // Any single payload bit flip must be detected by the CRC-10.
        let mut bad = cell.clone();
        bad.payload[5] ^= 0x10;
        prop_assert!(LoopbackCell::decode(&bad).is_err());
    }

    #[test]
    fn optimistic_always_converges_to_sorted_result(
        schedule in prop::collection::vec((0u64..10_000, 1u32..100), 1..120),
    ) {
        fn step(state: &mut u64, ev: &u32) -> Vec<u64> {
            *state = state.wrapping_mul(31).wrapping_add(u64::from(*ev));
            vec![*state]
        }
        // Reference: process in (stamp, seq) order.
        let mut keyed: Vec<(u64, u64, u32)> = schedule
            .iter()
            .enumerate()
            .map(|(i, &(t, e))| (t, i as u64, e))
            .collect();
        keyed.sort();
        let mut reference = 0u64;
        for &(_, _, e) in &keyed {
            step(&mut reference, &e);
        }

        let mut tw = OptimisticSync::new(0u64, step, usize::MAX >> 1);
        for (i, &(t, e)) in schedule.iter().enumerate() {
            tw.execute(TimedEvent { stamp: SimTime::from_ns(t), seq: i as u64, event: e })
                .expect("execute");
        }
        prop_assert_eq!(*tw.state(), reference);
    }
}
