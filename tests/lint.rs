//! End-to-end tests of the pre-flight static analysis: shipped scenarios
//! lint clean, broken assemblies yield their documented diagnostics, and
//! strict couplings refuse to run misconfigured setups.

use castanet::coupling::{Coupling, RtlCosim};
use castanet::entity::CosimEntity;
use castanet::error::CastanetError;
use castanet::interface::CastanetInterfaceProcess;
use castanet::message::MessageTypeId;
use castanet::sync::ConservativeSync;
use castanet_atm::addr::HeaderFormat;
use castanet_lint::{check_coupling, code_info, has_errors, Severity};
use castanet_netsim::kernel::Kernel;
use castanet_netsim::time::{SimDuration, SimTime};
use castanet_rtl::sim::Simulator;
use coverify::scenarios::{
    accounting_cosim, switch_cosim, switch_cosim_cycle, AccountingScenarioConfig,
    SwitchScenarioConfig,
};

fn small_switch() -> SwitchScenarioConfig {
    SwitchScenarioConfig {
        cells_per_source: 5,
        ..Default::default()
    }
}

#[test]
fn shipped_switch_scenario_lints_clean() {
    let scenario = switch_cosim(small_switch());
    let diags = check_coupling(&scenario.coupling);
    assert!(diags.is_empty(), "shipped scenario flagged: {diags:?}");
}

#[test]
fn shipped_cycle_scenario_lints_clean() {
    let scenario = switch_cosim_cycle(small_switch());
    let diags = castanet_lint::check_coupling_setup(&scenario.coupling);
    assert!(diags.is_empty(), "shipped scenario flagged: {diags:?}");
}

#[test]
fn shipped_accounting_scenario_lints_clean() {
    let cfg = AccountingScenarioConfig {
        cells_per_conn: 5,
        ..Default::default()
    };
    let diags = check_coupling(&accounting_cosim(cfg).coupling);
    assert!(diags.is_empty(), "shipped scenario flagged: {diags:?}");
}

/// A minimal hand-assembled coupling whose synchronizer never had the cell
/// type registered — the canonical "would fail minutes into the run"
/// misconfiguration.
fn broken_coupling() -> Coupling<RtlCosim> {
    let mut net = Kernel::new(1);
    let node = net.add_node("n");
    let cell_type = MessageTypeId(0);
    let (iface_proc, outbox) = CastanetInterfaceProcess::new(cell_type);
    let iface = net.add_module(node, "castanet", Box::new(iface_proc));
    let sync = ConservativeSync::new(); // nothing registered
    let sim = Simulator::new();
    let entity = CosimEntity::new(SimDuration::from_ns(20), HeaderFormat::Uni, cell_type);
    let follower = RtlCosim::new(sim, entity);
    Coupling::new(net, follower, sync, cell_type, iface, outbox)
}

#[test]
fn broken_coupling_yields_documented_diagnostics() {
    let coupling = broken_coupling();
    let diags = check_coupling(&coupling);
    assert!(has_errors(&diags), "empty synchronizer must be an error");
    let codes: Vec<&str> = diags.iter().map(|d| d.code).collect();
    assert!(codes.contains(&"CAST001"), "no types registered: {codes:?}");
    assert!(
        codes.contains(&"CAST003"),
        "cell type unregistered: {codes:?}"
    );
    assert!(
        codes.contains(&"CAST041"),
        "iface module is isolated: {codes:?}"
    );
    for d in &diags {
        let (severity, _) = code_info(d.code)
            .unwrap_or_else(|| panic!("finding uses undocumented code {}", d.code));
        assert_eq!(severity, d.severity, "severity drift for {}", d.code);
    }
    // Errors sort ahead of warnings and advisory notes.
    let first_non_error = diags.iter().position(|d| d.severity != Severity::Error);
    if let Some(pos) = first_non_error {
        assert!(diags[pos..].iter().all(|d| d.severity != Severity::Error));
    }
}

#[test]
fn strict_coupling_refuses_to_run_broken_setup() {
    let mut coupling = broken_coupling().with_strict(true);
    let err = coupling
        .run(SimTime::from_us(1))
        .expect_err("preflight must reject");
    match err {
        CastanetError::Preflight(findings) => {
            assert!(
                findings.iter().any(|f| f.contains("CAST001")),
                "preflight findings carry the lint codes: {findings:?}"
            );
        }
        other => panic!("expected a preflight rejection, got {other}"),
    }
}

#[test]
fn non_strict_coupling_still_reports_preflight_on_demand() {
    let coupling = broken_coupling();
    assert!(!coupling.strict());
    assert!(coupling.preflight().is_err());
}
