//! End-to-end co-verification integration tests: the full Fig. 1 flow over
//! the real crates stack (netsim → castanet → rtl / testboard), including
//! the property the environment exists for — that a buggy DUT is *caught*.

use castanet::compare::StreamComparator;
use castanet::coupling::{CoupledSimulator, Coupling, RtlCosim};
use castanet::cyclecosim::{CycleCosim, EgressIndices, IngressIndices};
use castanet::entity::{CosimEntity, EgressSignals, IngressSignals};
use castanet::interface::CastanetInterfaceProcess;
use castanet::message::{Message, MessageTypeId};
use castanet::sync::ConservativeSync;
use castanet_atm::addr::{HeaderFormat, VpiVci};
use castanet_atm::cell::{AtmCell, CELL_OCTETS};
use castanet_atm::traffic::source::{sequenced_payload, TrafficSourceProcess};
use castanet_atm::traffic::Cbr;
use castanet_netsim::event::PortId;
use castanet_netsim::kernel::Kernel;
use castanet_netsim::process::CollectorProcess;
use castanet_netsim::time::{SimDuration, SimTime};
use castanet_rtl::cycle::{attach_cycle_dut, CycleDut, PortDecl};
use castanet_rtl::dut::{AtmSwitchRtl, SwitchRtlConfig};
use castanet_rtl::sim::Simulator;
use coverify::scenarios::{
    compare_switch_output, switch_cosim, switch_cosim_cycle, switch_on_board, SwitchScenarioConfig,
};

#[test]
fn large_mixed_workload_verifies_clean() {
    let config = SwitchScenarioConfig {
        cells_per_source: 200,
        mixed_traffic: true,
        ..SwitchScenarioConfig::default()
    };
    let scenario = switch_cosim(config);
    let mut coupling = scenario.coupling;
    let stats = coupling.run(SimTime::from_ms(100)).expect("run");
    assert_eq!(stats.messages_to_follower, 800);
    assert_eq!(stats.responses, 800);
    assert_eq!(stats.late_responses, 0);
    let report = compare_switch_output(&scenario.config, &scenario.collectors);
    assert!(report.passed(), "{report}");
    assert_eq!(report.matched, 800);
}

#[test]
fn event_driven_and_cycle_based_followers_agree_exactly() {
    let config = SwitchScenarioConfig {
        cells_per_source: 60,
        mixed_traffic: true, // stochastic arrivals, same seed on both sides
        ..SwitchScenarioConfig::default()
    };
    let run_and_collect = |cycle_based: bool| -> Vec<Vec<(u64, AtmCell)>> {
        let collectors = if cycle_based {
            let s = switch_cosim_cycle(config);
            let mut c = s.coupling;
            c.run(SimTime::from_ms(100)).expect("run");
            s.collectors
        } else {
            let s = switch_cosim(config);
            let mut c = s.coupling;
            c.run(SimTime::from_ms(100)).expect("run");
            s.collectors
        };
        collectors
            .iter()
            .map(|h| {
                h.take()
                    .into_iter()
                    .map(|(t, p)| (t.as_picos(), p.payload::<AtmCell>().expect("cell").clone()))
                    .collect()
            })
            .collect()
    };
    let ev = run_and_collect(false);
    let cy = run_and_collect(true);
    // Cell sequences (per line) must be identical; exact completion times
    // may differ by engine scheduling, but cell identity and order must
    // not.
    for (line, (a, b)) in ev.iter().zip(&cy).enumerate() {
        let cells_a: Vec<&AtmCell> = a.iter().map(|(_, c)| c).collect();
        let cells_b: Vec<&AtmCell> = b.iter().map(|(_, c)| c).collect();
        assert_eq!(cells_a, cells_b, "line {line} diverged between engines");
    }
}

/// A sabotaged switch: it silently corrupts one payload byte of every 7th
/// cell — the class of bug co-verification exists to find.
struct BuggySwitch {
    inner: AtmSwitchRtl,
    cells_seen: u64,
}

impl CycleDut for BuggySwitch {
    fn input_ports(&self) -> Vec<PortDecl> {
        self.inner.input_ports()
    }
    fn output_ports(&self) -> Vec<PortDecl> {
        self.inner.output_ports()
    }
    fn reset(&mut self) {
        self.inner.reset();
        self.cells_seen = 0;
    }
    fn clock_edge(&mut self, inputs: &[u64]) -> Vec<u64> {
        let mut outs = self.inner.clock_edge(inputs);
        // Corrupt the 20th payload octet of every 7th egress cell on line 1.
        if outs[5] == 1 {
            if outs[4] == 1 {
                self.cells_seen += 1;
            }
            let in_cell_pos = self.cells_seen; // crude: corrupt while sync counting
            if in_cell_pos.is_multiple_of(7) && outs[4] == 0 {
                outs[3] ^= 0x01;
            }
        }
        outs
    }
    fn is_idle(&self) -> bool {
        self.inner.is_idle()
    }
}

#[test]
fn seeded_payload_bug_is_detected_by_the_comparator() {
    let mut inner = AtmSwitchRtl::new(SwitchRtlConfig {
        ports: 2,
        fifo_capacity: 64,
        table_capacity: 8,
    });
    assert!(inner.install_route(1, 40, 1, 7, 70));
    let dut = BuggySwitch {
        inner,
        cells_seen: 0,
    };

    // Coupled run: 30 cells through the buggy DUT.
    let mut net = Kernel::new(3);
    let node = net.add_node("n");
    let mut sync = ConservativeSync::new();
    let cell_type = sync.register_type(SimDuration::from_ns(20) * CELL_OCTETS as u64);
    let (iface_proc, outbox) = CastanetInterfaceProcess::new(cell_type);
    let iface = net.add_module(node, "castanet", Box::new(iface_proc));
    let src = net.add_module(
        node,
        "src",
        Box::new(
            TrafficSourceProcess::new(
                VpiVci::uni(1, 40).expect("id"),
                Box::new(Cbr::new(SimDuration::from_us(10))),
            )
            .with_limit(30),
        ),
    );
    net.connect_stream(src, PortId(0), iface, PortId(0))
        .expect("wire");
    let (collector, got) = CollectorProcess::new();
    let sink = net.add_module(node, "sink", Box::new(collector));
    net.connect_stream(iface, PortId(1), sink, PortId(0))
        .expect("wire");

    let mut sim = Simulator::new();
    let clk = sim.add_clock("clk", SimDuration::from_ns(20));
    let attached = attach_cycle_dut(&mut sim, "sw", Box::new(dut), clk);
    let mut entity = CosimEntity::new(SimDuration::from_ns(20), HeaderFormat::Uni, cell_type);
    entity.add_ingress(IngressSignals {
        data: attached.inputs[0],
        sync: attached.inputs[1],
        enable: attached.inputs[2],
    });
    entity.add_egress(
        &mut sim,
        clk,
        EgressSignals {
            data: attached.outputs[3],
            sync: attached.outputs[4],
            valid: attached.outputs[5],
        },
    );
    // The entity reports egress as port 0; rewire the interface response
    // port accordingly: interface output 1 is wired; entity egress port 0
    // maps to interface response port 0 -> interface output 0. Use output 1
    // by registering a placeholder egress for port alignment instead.
    // Simplest: collect on output 0 as well.
    let (collector0, got0) = CollectorProcess::new();
    let sink0 = net.add_module(node, "sink0", Box::new(collector0));
    net.connect_stream(iface, PortId(0), sink0, PortId(0))
        .expect("wire");

    let follower = RtlCosim::new(sim, entity);
    let mut coupling = Coupling::new(net, follower, sync, cell_type, iface, outbox);
    coupling.run(SimTime::from_ms(10)).expect("run");

    // Compare against the clean reference expectation.
    let mut cmp = StreamComparator::new(None);
    for k in 0..30u64 {
        let mut cell = AtmCell::user_data(VpiVci::uni(1, 40).expect("id"), sequenced_payload(k));
        cell.retag(VpiVci::uni(7, 70).expect("id"));
        cmp.expect(&cell, SimTime::ZERO);
    }
    for handle in [&got0, &got] {
        for (t, pkt) in handle.take() {
            match pkt.payload::<AtmCell>() {
                Some(cell) => cmp.observe(cell, t),
                None => cmp.observe_undecodable(t),
            }
        }
    }
    let report = cmp.finish();
    assert!(!report.passed(), "the seeded bug must be detected");
    assert!(
        report
            .mismatches
            .iter()
            .any(|m| matches!(m, castanet::compare::Mismatch::Payload { .. })),
        "expected payload mismatches, got: {report}"
    );
}

#[test]
fn board_follower_couples_into_the_full_loop() {
    // The complete Fig. 2 right-hand path: network model <-> test board.
    let mut net = Kernel::new(9);
    let node = net.add_node("n");
    let mut sync = ConservativeSync::new();
    let cell_type = sync.register_type(SimDuration::from_ns(50) * CELL_OCTETS as u64);
    let (iface_proc, outbox) = CastanetInterfaceProcess::new(cell_type);
    let iface = net.add_module(node, "castanet", Box::new(iface_proc));
    let src = net.add_module(
        node,
        "src",
        Box::new(
            TrafficSourceProcess::new(
                VpiVci::uni(1, 40).expect("id"),
                Box::new(Cbr::new(SimDuration::from_us(20))),
            )
            .with_limit(10),
        ),
    );
    net.connect_stream(src, PortId(0), iface, PortId(0))
        .expect("wire");
    let (collector, got) = CollectorProcess::new();
    let sink = net.add_module(node, "sink", Box::new(collector));
    net.connect_stream(iface, PortId(1), sink, PortId(0))
        .expect("wire");

    let follower = switch_on_board(256, cell_type);
    let mut coupling = Coupling::new(net, follower, sync, cell_type, iface, outbox)
        .with_drain(SimDuration::from_us(100), 3);
    let stats = coupling.run(SimTime::from_ms(10)).expect("run");
    assert_eq!(stats.messages_to_follower, 10);
    assert_eq!(got.len(), 10, "all cells return through the board");
    for (_, pkt) in got.take() {
        let cell = pkt.payload::<AtmCell>().expect("cell");
        assert_eq!(cell.id(), VpiVci::uni(7, 70).expect("id"));
    }
    // The board really executed test cycles.
    assert!(coupling.follower().session_stats().cycles > 0);
    assert!(coupling.follower().clocks_done() > 0);
}

#[test]
fn cycle_follower_single_cell_latency_matches_structure() {
    // One cell through the cycle follower: response must land 2 transfer
    // times (ingress + egress) after the start, +switch latency.
    let mut switch = AtmSwitchRtl::new(SwitchRtlConfig {
        ports: 2,
        fifo_capacity: 8,
        table_capacity: 4,
    });
    assert!(switch.install_route(1, 40, 1, 7, 70));
    let sim = castanet_rtl::cycle::CycleSim::new(Box::new(switch));
    let mut follower = CycleCosim::new(
        sim,
        SimDuration::from_ns(20),
        MessageTypeId(0),
        HeaderFormat::Uni,
    );
    follower.add_ingress(IngressIndices {
        data: 0,
        sync: 1,
        enable: 2,
    });
    follower.add_egress(EgressIndices {
        data: 3,
        sync: 4,
        valid: 5,
    });
    follower
        .deliver(Message::cell(
            SimTime::ZERO,
            MessageTypeId(0),
            0,
            AtmCell::user_data(VpiVci::uni(1, 40).expect("id"), [1; 48]),
        ))
        .expect("deliver");
    let responses = follower
        .advance_until(SimTime::from_us(10))
        .expect("advance");
    assert_eq!(responses.len(), 1);
    let clocks = responses[0].stamp.as_picos() / 20_000;
    assert!(
        (105..=112).contains(&clocks),
        "53 in + 53 out (overlapping by one edge) + pipeline, got {clocks} clocks"
    );
}
