//! Cross-crate synchronization and transport tests: the conservative and
//! optimistic protocols agree on results, and the co-simulation message
//! stream survives the real Unix-socket IPC path across threads — the
//! two-process deployment of Fig. 2.

use castanet::ipc::{in_process_pair, MessageTransport, UnixSocketTransport};
use castanet::message::{Message, MessagePayload, MessageTypeId};
use castanet::sync::conservative::ConservativeSync;
use castanet::sync::lockstep::{LockstepSync, Side};
use castanet::sync::optimistic::{OptimisticSync, TimedEvent};
use castanet_atm::addr::VpiVci;
use castanet_atm::cell::AtmCell;
use castanet_netsim::time::{SimDuration, SimTime};

/// Reference machine: an accounting-style accumulator whose result depends
/// on event order — any synchronization error shows up as a different sum.
fn step(state: &mut (u64, u64), ev: &u32) -> Vec<u64> {
    // Order-sensitive: value depends on how many events came before.
    state.0 += 1;
    state.1 = state.1.wrapping_mul(31).wrapping_add(u64::from(*ev));
    vec![state.1]
}

#[test]
fn optimistic_out_of_order_equals_conservative_in_order() {
    // A schedule with heavy reordering.
    let mut schedule: Vec<(u64, u32)> = (0..500u64).map(|i| (i * 100, (i % 97) as u32)).collect();
    // Shuffle deterministically: reverse every window of 7.
    for chunk in schedule.chunks_mut(7) {
        chunk.reverse();
    }

    // Conservative equivalent: sort (what in-order delivery produces) and
    // run sequentially.
    let mut sorted = schedule.clone();
    sorted.sort_unstable();
    let mut reference = (0u64, 0u64);
    for (_, ev) in &sorted {
        step(&mut reference, ev);
    }

    // Optimistic: feed shuffled; rollbacks must repair everything.
    let mut tw = OptimisticSync::new((0u64, 0u64), step, usize::MAX >> 1);
    for (i, &(t, ev)) in schedule.iter().enumerate() {
        tw.execute(TimedEvent {
            stamp: SimTime::from_ns(t),
            seq: i as u64,
            event: ev,
        })
        .expect("execute");
    }
    assert!(
        tw.stats().rollbacks > 0,
        "the shuffle must actually trigger rollbacks"
    );
    assert_eq!(
        *tw.state(),
        reference,
        "optimistic must converge to the in-order result"
    );
}

#[test]
fn conservative_blocks_exactly_what_fig3_forbids() {
    // Fig. 3's causality error: an event scheduled in the other simulator's
    // past. The protocol must reject it and nothing else.
    let mut sync = ConservativeSync::new();
    let t = sync.register_type(SimDuration::from_us(1));
    sync.receive(t, SimTime::from_us(10), false)
        .expect("in order");
    sync.advance_local(SimTime::from_us(8))
        .expect("within grant");
    // OK: a message at 9 us (>= local 8).
    sync.receive(t, SimTime::from_us(10), false)
        .expect("same stamp ok");
    // Forbidden: a message at 5 us — in the follower's past.
    assert!(sync.receive(t, SimTime::from_us(5), false).is_err());
    // Forbidden: advancing past the grant.
    assert!(sync.advance_local(SimTime::from_us(11)).is_err());
    assert!(sync.lag_invariant_holds());
}

#[test]
fn lockstep_round_structure() {
    let mut ls = LockstepSync::new(SimDuration::from_us(10));
    for round in 0..50u64 {
        assert_eq!(ls.begin_window(), SimTime::from_us(10 * (round + 1)));
        ls.complete(Side::Originator);
        ls.complete(Side::Follower);
    }
    assert_eq!(ls.rounds(), 50);
}

fn message_stream(n: u64) -> Vec<Message> {
    (0..n)
        .map(|k| {
            let conn = VpiVci::uni(1, 40 + (k % 4) as u16).expect("id");
            let mut payload = [0u8; 48];
            payload[..8].copy_from_slice(&k.to_be_bytes());
            Message::cell(
                SimTime::from_us(k),
                MessageTypeId((k % 3) as u32),
                (k % 4) as usize,
                AtmCell::user_data(conn, payload),
            )
        })
        .collect()
}

#[test]
fn unix_socket_carries_a_cosim_stream_across_threads() {
    let (mut tx, mut rx) = UnixSocketTransport::pair().expect("socketpair");
    let stream = message_stream(500);
    let expected = stream.clone();
    let sender = std::thread::spawn(move || {
        for m in &stream {
            tx.send(m).expect("send");
        }
        // Signal end with a time-only message.
        tx.send(&Message::time_update(SimTime::MAX, MessageTypeId(99)))
            .expect("send eof");
    });
    let mut got = Vec::new();
    loop {
        let m = rx.recv().expect("recv");
        if m.payload == MessagePayload::TimeOnly {
            break;
        }
        got.push(m);
    }
    sender.join().expect("join");
    assert_eq!(got, expected);
}

#[test]
fn in_process_channel_preserves_order_under_load() {
    let (mut tx, mut rx) = in_process_pair();
    let stream = message_stream(2_000);
    for m in &stream {
        tx.send(m).expect("send");
    }
    for want in &stream {
        let got = rx.recv().expect("recv");
        assert_eq!(&got, want);
    }
    assert!(rx.try_recv().expect("empty").is_none());
}

#[test]
fn full_coupling_over_unix_sockets_two_thread_deployment() {
    // The complete Fig. 2 deployment: network kernel + interface in this
    // thread; the follower (cycle engine + switch DUT) served over a real
    // Unix-domain socket from another thread — OPNET-process vs
    // VSS-process, faithfully.
    use castanet::coupling::Coupling;
    use castanet::cyclecosim::{CycleCosim, EgressIndices, IngressIndices};
    use castanet::interface::CastanetInterfaceProcess;
    use castanet::remote::{FollowerServer, RemoteFollower};
    use castanet_atm::cell::CELL_OCTETS;
    use castanet_atm::traffic::source::TrafficSourceProcess;
    use castanet_atm::traffic::Cbr;
    use castanet_netsim::event::PortId;
    use castanet_netsim::kernel::Kernel;
    use castanet_netsim::process::CollectorProcess;
    use castanet_rtl::cycle::CycleSim;
    use castanet_rtl::dut::{AtmSwitchRtl, SwitchRtlConfig};

    let (client_t, server_t) = UnixSocketTransport::pair().expect("socketpair");

    // Server thread: the "HDL simulator process".
    let server_handle = std::thread::spawn(move || {
        let mut switch = AtmSwitchRtl::new(SwitchRtlConfig {
            ports: 2,
            fifo_capacity: 64,
            table_capacity: 8,
        });
        assert!(switch.install_route(1, 40, 1, 7, 70));
        let sim = CycleSim::new(Box::new(switch));
        let mut follower = CycleCosim::new(
            sim,
            SimDuration::from_ns(20),
            MessageTypeId(0),
            castanet_atm::addr::HeaderFormat::Uni,
        );
        follower.add_ingress(IngressIndices {
            data: 0,
            sync: 1,
            enable: 2,
        });
        follower.add_egress(EgressIndices {
            data: 3,
            sync: 4,
            valid: 5,
        });
        FollowerServer::new(server_t, follower).serve()
    });

    // Client side: the "network simulator process".
    let mut net = Kernel::new(5);
    let node = net.add_node("n");
    let mut sync = castanet::sync::ConservativeSync::new();
    let cell_type = sync.register_type(SimDuration::from_ns(20) * CELL_OCTETS as u64);
    assert_eq!(
        cell_type,
        MessageTypeId(0),
        "server stamps responses with type 0"
    );
    let (iface_proc, outbox) = CastanetInterfaceProcess::new(cell_type);
    let iface = net.add_module(node, "castanet", Box::new(iface_proc));
    let src = net.add_module(
        node,
        "src",
        Box::new(
            TrafficSourceProcess::new(
                VpiVci::uni(1, 40).expect("id"),
                Box::new(Cbr::new(SimDuration::from_us(10))),
            )
            .with_limit(12),
        ),
    );
    net.connect_stream(src, PortId(0), iface, PortId(0))
        .expect("wire");
    let (collector, got) = CollectorProcess::new();
    let sink = net.add_module(node, "sink", Box::new(collector));
    // The server registered a single egress line, so responses carry
    // co-simulation port 0 and return through interface output 0.
    net.connect_stream(iface, PortId(0), sink, PortId(0))
        .expect("wire");

    let follower = RemoteFollower::new(client_t);
    let mut coupling = Coupling::new(net, follower, sync, cell_type, iface, outbox);
    let stats = coupling
        .run(SimTime::from_ms(10))
        .expect("coupled run over sockets");
    assert_eq!(stats.messages_to_follower, 12);
    assert_eq!(stats.responses, 12);
    assert_eq!(got.len(), 12);
    for (_, pkt) in got.take() {
        let cell = pkt.payload::<AtmCell>().expect("cell");
        assert_eq!(cell.id(), VpiVci::uni(7, 70).expect("id"));
    }

    let (_, follower) = coupling.into_parts();
    follower.shutdown().expect("shutdown");
    server_handle
        .join()
        .expect("join")
        .expect("server clean exit");
}

#[test]
fn transport_roundtrip_is_stamp_exact_at_extremes() {
    let (mut tx, mut rx) = UnixSocketTransport::pair().expect("socketpair");
    for stamp in [SimTime::ZERO, SimTime::from_picos(1), SimTime::MAX] {
        let m = Message::time_update(stamp, MessageTypeId(0));
        tx.send(&m).expect("send");
        assert_eq!(rx.recv().expect("recv").stamp, stamp);
    }
}
