//! Trace record/replay determinism and conformance-vector campaigns —
//! the "re-run previously generated test vectors" and "standardized
//! conformance test vectors" stimulus classes of Fig. 1.

use castanet::conformance::{
    boundary_connections, double_bit_hec_errors, header_walking_ones, payload_patterns,
    single_bit_hec_errors, standard_suite,
};
use castanet::coupling::CoupledSimulator;
use castanet::cyclecosim::{CycleCosim, EgressIndices, IngressIndices};
use castanet::message::MessageTypeId;
use castanet::traceio::{read_trace, stimulus_messages, Direction, TraceRecord, TraceWriter};
use castanet_atm::addr::{HeaderFormat, VpiVci};
use castanet_atm::cell::AtmCell;
use castanet_netsim::time::{SimDuration, SimTime};
use castanet_rtl::cycle::CycleSim;
use castanet_rtl::dut::{AtmSwitchRtl, CellReceiver, SwitchRtlConfig};

fn fresh_follower() -> CycleCosim {
    let mut switch = AtmSwitchRtl::new(SwitchRtlConfig {
        ports: 2,
        fifo_capacity: 64,
        table_capacity: 64,
    });
    assert!(switch.install_route(1, 40, 1, 7, 70));
    assert!(switch.install_route(1, 41, 1, 7, 71));
    let sim = CycleSim::new(Box::new(switch));
    let mut follower = CycleCosim::new(
        sim,
        SimDuration::from_ns(20),
        MessageTypeId(1),
        HeaderFormat::Uni,
    );
    follower.add_ingress(IngressIndices {
        data: 0,
        sync: 1,
        enable: 2,
    });
    follower.add_egress(EgressIndices {
        data: 3,
        sync: 4,
        valid: 5,
    });
    follower
}

fn drive(
    follower: &mut CycleCosim,
    messages: &[castanet::message::Message],
) -> Vec<(u64, AtmCell)> {
    for m in messages {
        follower.deliver(m.clone()).expect("deliver");
    }
    let mut out = Vec::new();
    loop {
        let r = follower
            .advance_until(SimTime::from_ms(50))
            .expect("advance");
        if r.is_empty() {
            break;
        }
        for m in r {
            if let Some(c) = m.as_cell() {
                out.push((m.stamp.as_picos(), c.clone()));
            }
        }
    }
    out
}

#[test]
fn recorded_stimulus_replays_bit_exactly() {
    // Build a stimulus set, record it, read it back, drive two fresh DUTs
    // with original and replayed streams: identical responses.
    let original: Vec<TraceRecord> = (0..40u64)
        .map(|k| TraceRecord {
            direction: Direction::Stimulus,
            stamp: SimTime::from_us(3 * k + 1),
            port: 0,
            cell: AtmCell::user_data(
                VpiVci::uni(1, 40 + (k % 2) as u16).expect("id"),
                [(k % 251) as u8; 48],
            ),
        })
        .collect();
    let mut w = TraceWriter::new(Vec::new(), HeaderFormat::Uni).expect("writer");
    for r in &original {
        w.write(r).expect("write");
    }
    let bytes = w.finish().expect("finish");
    let replayed = read_trace(std::io::Cursor::new(&bytes), HeaderFormat::Uni).expect("read");
    assert_eq!(replayed, original);

    let msgs_a = stimulus_messages(&original, MessageTypeId(0));
    let msgs_b = stimulus_messages(&replayed, MessageTypeId(0));
    let out_a = drive(&mut fresh_follower(), &msgs_a);
    let out_b = drive(&mut fresh_follower(), &msgs_b);
    assert_eq!(out_a.len(), 40);
    assert_eq!(out_a, out_b, "replay must be cycle- and bit-exact");
}

/// Builds a coupled fixture whose network side re-plays `records` as
/// pre-scheduled arrivals at the interface node, and runs it through the
/// parallel executor.
fn replay_through_parallel_executor(records: &[TraceRecord]) -> Vec<(u64, AtmCell)> {
    use castanet::interface::{response_packet, CastanetInterfaceProcess};
    use castanet::sync::ConservativeSync;
    use castanet_netsim::event::PortId;
    use castanet_netsim::kernel::Kernel;
    use castanet_netsim::process::CollectorProcess;
    use castanet_rtl::dut::SwitchRtlConfig;

    let mut net = Kernel::new(3);
    let node = net.add_node("replay");
    let mut sync = ConservativeSync::new();
    let cell_type = sync.register_type(SimDuration::from_ns(20) * 53);
    let (iface_proc, outbox) = CastanetInterfaceProcess::new(cell_type);
    let iface = net.add_module(node, "castanet", Box::new(iface_proc));
    let (collector, got) = CollectorProcess::new();
    let sink = net.add_module(node, "sink", Box::new(collector));
    net.connect_stream(iface, PortId(1), sink, PortId(0))
        .unwrap();
    for r in records {
        net.inject_packet(iface, PortId(0), response_packet(r.cell.clone()), r.stamp)
            .unwrap();
    }

    let mut switch = AtmSwitchRtl::new(SwitchRtlConfig {
        ports: 2,
        fifo_capacity: 64,
        table_capacity: 64,
    });
    assert!(switch.install_route(1, 40, 1, 7, 70));
    assert!(switch.install_route(1, 41, 1, 7, 71));
    let sim = CycleSim::new(Box::new(switch));
    let mut follower = CycleCosim::new(sim, SimDuration::from_ns(20), cell_type, HeaderFormat::Uni);
    follower.add_ingress(IngressIndices {
        data: 0,
        sync: 1,
        enable: 2,
    });
    follower.add_ingress(IngressIndices {
        data: 3,
        sync: 4,
        enable: 5,
    });
    follower.add_egress(EgressIndices {
        data: 0,
        sync: 1,
        valid: 2,
    });
    follower.add_egress(EgressIndices {
        data: 3,
        sync: 4,
        valid: 5,
    });

    let mut coupling =
        castanet::coupling::Coupling::new(net, follower, sync, cell_type, iface, outbox)
            .into_parallel();
    coupling.run(SimTime::from_ms(2)).expect("run");
    got.take()
        .into_iter()
        .map(|(at, pkt)| {
            (
                at.as_picos(),
                pkt.payload::<AtmCell>().expect("cell payload").clone(),
            )
        })
        .collect()
}

#[test]
fn recorded_stimulus_replays_bit_exactly_through_the_parallel_executor() {
    // The record/replay loop of Fig. 1 closed over the parallel executor:
    // a recorded campaign re-driven from its trace file produces the exact
    // response stream — arrival timestamps included — of the original run,
    // and repeating the replay changes nothing (deterministic seeds on the
    // kernel, deterministic scheduling in the executor).
    let original: Vec<TraceRecord> = (0..30u64)
        .map(|k| TraceRecord {
            direction: Direction::Stimulus,
            stamp: SimTime::from_us(5 * k + 2),
            port: 0,
            cell: AtmCell::user_data(
                VpiVci::uni(1, 40 + (k % 2) as u16).expect("id"),
                [(3 * k % 251) as u8; 48],
            ),
        })
        .collect();
    let mut w = TraceWriter::new(Vec::new(), HeaderFormat::Uni).expect("writer");
    for r in &original {
        w.write(r).expect("write");
    }
    let bytes = w.finish().expect("finish");
    let replayed = read_trace(std::io::Cursor::new(&bytes), HeaderFormat::Uni).expect("read");

    let out_original = replay_through_parallel_executor(&original);
    let out_replayed = replay_through_parallel_executor(&replayed);
    let out_again = replay_through_parallel_executor(&replayed);
    assert_eq!(out_original.len(), 30);
    assert_eq!(
        out_original, out_replayed,
        "replay from the trace file must be cycle- and bit-exact"
    );
    assert_eq!(out_replayed, out_again, "replay must be deterministic");
}

#[test]
fn walking_ones_pass_through_the_receiver_dut() {
    // Every walking-ones header decodes correctly through the RTL cell
    // receiver (those with nonzero VPI/VCI headers need no route — the
    // receiver just parses).
    let mut sim = CycleSim::new(Box::new(CellReceiver::new()));
    for cell in header_walking_ones().expect("generate") {
        let wire = cell.encode(HeaderFormat::Uni).expect("encode");
        let mut last = Vec::new();
        for (i, &b) in wire.iter().enumerate() {
            last = sim
                .step(&[u64::from(b), u64::from(i == 0), 1, 0])
                .expect("step");
        }
        assert_eq!(last[0], 1, "cell_valid for {cell}");
        assert_eq!(last[1], 1, "hec ok for {cell}");
        assert_eq!(last[2], u64::from(cell.id().vpi.value()), "vpi of {cell}");
        assert_eq!(last[3], u64::from(cell.id().vci.value()), "vci of {cell}");
    }
}

#[test]
fn hec_error_campaign_through_the_receiver_dut() {
    // Single-bit corrupted wires are flagged (the cycle receiver detects,
    // it does not correct — correction lives in the HecReceiver model);
    // double-bit corruptions are flagged too; clean cells pass.
    let base = AtmCell::user_data(VpiVci::uni(5, 500).expect("id"), [0x77; 48]);
    let mut sim = CycleSim::new(Box::new(CellReceiver::new()));

    let singles = single_bit_hec_errors(&base, HeaderFormat::Uni).expect("generate");
    assert_eq!(singles.len(), 40);
    for (bit, wire, _) in singles {
        let mut last = Vec::new();
        for (i, &b) in wire.iter().enumerate() {
            last = sim
                .step(&[u64::from(b), u64::from(i == 0), 1, 0])
                .expect("step");
        }
        assert_eq!(last[0], 1, "cell completes (bit {bit})");
        assert_eq!(last[1], 0, "hec flagged (bit {bit})");
    }
    for wire in double_bit_hec_errors(&base, HeaderFormat::Uni).expect("generate") {
        let mut last = Vec::new();
        for (i, &b) in wire.iter().enumerate() {
            last = sim
                .step(&[u64::from(b), u64::from(i == 0), 1, 0])
                .expect("step");
        }
        assert_eq!(last[1], 0, "double-bit corruption flagged");
    }
    // A clean cell still passes after the campaign.
    let wire = base.encode(HeaderFormat::Uni).expect("encode");
    let mut last = Vec::new();
    for (i, &b) in wire.iter().enumerate() {
        last = sim
            .step(&[u64::from(b), u64::from(i == 0), 1, 0])
            .expect("step");
    }
    assert_eq!(last[1], 1);
}

#[test]
fn standard_suite_drives_the_switch_without_loss() {
    // Conformance cells on a routed connection flow through the switch;
    // unrouted ones land in the control unit — none vanish.
    let conn = VpiVci::uni(1, 40).expect("id");
    let suite = standard_suite(conn).expect("generate");
    let routed: Vec<_> = suite.iter().filter(|c| c.id() == conn).collect();
    assert!(!routed.is_empty());

    let mut follower = fresh_follower();
    let messages: Vec<_> = routed
        .iter()
        .enumerate()
        .map(|(k, c)| {
            castanet::message::Message::cell(
                SimTime::from_us(3 * k as u64),
                MessageTypeId(0),
                0,
                (*c).clone(),
            )
        })
        .collect();
    let out = drive(&mut follower, &messages);
    assert_eq!(
        out.len(),
        routed.len(),
        "every routed conformance cell returns"
    );
    for (_, cell) in &out {
        assert_eq!(cell.id(), VpiVci::uni(7, 70).expect("id"));
    }
}

#[test]
fn conformance_generators_have_stable_shapes() {
    assert_eq!(header_walking_ones().expect("gen").len(), 32);
    assert_eq!(boundary_connections().expect("gen").len(), 20);
    assert_eq!(payload_patterns(VpiVci::uni(0, 32).expect("id")).len(), 6);
    let base = AtmCell::user_data(VpiVci::uni(0, 32).expect("id"), [0; 48]);
    assert_eq!(
        single_bit_hec_errors(&base, HeaderFormat::Uni)
            .expect("gen")
            .len(),
        40
    );
    assert!(!double_bit_hec_errors(&base, HeaderFormat::Uni)
        .expect("gen")
        .is_empty());
}
