//! End-to-end tests of the RTL structural analysis on the shipped DUTs:
//! the stock switch netlist passes every `CAST1xx` check, its levelization
//! report covers all of its processes, the human report is pinned as a
//! golden file and the JSON report is validated against its schema.

use castanet_lint::passes::rtl_structure::{
    check_netlist, levelization_report, render_levelization_human, render_levelization_json,
};
use castanet_obs::schema::{parse_json, Value};
use coverify::scenarios::{switch_cosim, SwitchScenarioConfig};
use std::process::Command;

fn switch_netlist() -> castanet_rtl::NetlistGraph {
    let cfg = SwitchScenarioConfig {
        cells_per_source: 10,
        ..Default::default()
    };
    switch_cosim(cfg).coupling.follower().sim().netlist()
}

#[test]
fn stock_switch_dut_is_structurally_clean() {
    let net = switch_netlist();
    let diags = check_netlist(&net);
    assert!(diags.is_empty(), "stock switch DUT flagged: {diags:?}");
}

#[test]
fn stock_switch_levelization_covers_every_combinational_process() {
    let net = switch_netlist();
    let report = levelization_report(&net).expect("stock switch is loop-free");
    // The acceptance gate: nothing the schedule cannot place. The stock
    // switch wrapper is fully registered, so its combinational schedule is
    // empty — but no process may be opaque and coverage must be total.
    assert_eq!(report.opaque, 0, "opaque: {:?}", report.opaque_labels);
    assert!((report.coverage() - 1.0).abs() < f64::EPSILON);
    assert!(
        report.clocked > 0,
        "the DUT wrapper and monitors are clocked"
    );
}

#[test]
fn stock_switch_levelization_matches_the_golden_file() {
    // Pins the exact human rendering for the stock switch netlist. To
    // regenerate after an intentional format change:
    //     UPDATE_GOLDEN=1 cargo test --test rtl_structure golden
    let net = switch_netlist();
    let report = levelization_report(&net).expect("loop-free");
    let rendered = render_levelization_human(&report);
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/rtl_levelization_switch.txt"
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &rendered).expect("update golden");
    }
    let golden =
        std::fs::read_to_string(path).expect("golden file (set UPDATE_GOLDEN=1 to create)");
    assert_eq!(
        rendered, golden,
        "levelization rendering drifted from tests/golden/rtl_levelization_switch.txt"
    );
}

#[test]
fn stock_switch_compiled_schedule_matches_the_golden_file() {
    // Pins the compiled-backend lowering of the stock switch netlist: word
    // layout, per-level op counts, behavioral slots and generator set. Any
    // change to the lowering shows up here as a reviewable diff. To
    // regenerate after an intentional change:
    //     UPDATE_GOLDEN=1 cargo test --test rtl_structure golden
    let cfg = SwitchScenarioConfig {
        cells_per_source: 10,
        ..Default::default()
    };
    let cosim = switch_cosim(cfg);
    let schedule =
        castanet_rtl::compiled::CompiledSchedule::compile(cosim.coupling.follower().sim())
            .expect("stock switch netlist compiles");
    let rendered = schedule.dump();
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/compiled_schedule_switch.txt"
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &rendered).expect("update golden");
    }
    let golden =
        std::fs::read_to_string(path).expect("golden file (set UPDATE_GOLDEN=1 to create)");
    assert_eq!(
        rendered, golden,
        "compiled schedule drifted from tests/golden/compiled_schedule_switch.txt"
    );
}

fn expect_u64(obj: &std::collections::BTreeMap<String, Value>, key: &str) -> u64 {
    match obj.get(key) {
        Some(Value::Number(n)) => {
            n.parse::<f64>()
                .unwrap_or_else(|_| panic!("{key} is not numeric: {n}")) as u64
        }
        other => panic!("{key} missing or not a number: {other:?}"),
    }
}

/// Schema check of one levelization JSON document (as a parsed object).
fn check_levelization_schema(obj: &std::collections::BTreeMap<String, Value>) {
    let Some(Value::Array(levels)) = obj.get("levels") else {
        panic!("levels missing or not an array");
    };
    for level in levels {
        let Value::Object(row) = level else {
            panic!("level row is not an object");
        };
        for key in [
            "level",
            "processes",
            "cone_bits",
            "max_fanout",
            "mean_fanout",
        ] {
            assert!(
                matches!(row.get(key), Some(Value::Number(_))),
                "level row lacks numeric {key}: {row:?}"
            );
        }
    }
    for key in ["combinational", "clocked", "generators", "opaque"] {
        expect_u64(obj, key);
    }
    assert!(
        matches!(obj.get("coverage"), Some(Value::Number(_))),
        "coverage missing"
    );
}

#[test]
fn levelization_json_validates_against_its_schema() {
    let net = switch_netlist();
    let report = levelization_report(&net).expect("loop-free");
    let json = render_levelization_json(&report);
    let value = parse_json(&json).expect("well-formed JSON");
    let Value::Object(obj) = value else {
        panic!("report is not a JSON object");
    };
    check_levelization_schema(&obj);
}

#[test]
fn rtl_cli_report_validates_against_its_schema() {
    // The full `castanet-lint --rtl` artifact: { targets: [ { target,
    // findings: {...}, levelization: {...} } ] } — the document CI uploads.
    let out = Command::new(env!("CARGO_BIN_EXE_castanet-lint"))
        .args(["--rtl", "--format", "json"])
        .output()
        .expect("run castanet-lint --rtl");
    assert!(out.status.success(), "stock targets must pass: {out:?}");
    let stdout = String::from_utf8(out.stdout).expect("utf-8");
    let value = parse_json(stdout.trim()).expect("well-formed JSON");
    let Value::Object(doc) = value else {
        panic!("report is not a JSON object");
    };
    let Some(Value::Array(targets)) = doc.get("targets") else {
        panic!("targets missing or not an array");
    };
    assert_eq!(targets.len(), 2, "switch + accounting");
    for target in targets {
        let Value::Object(entry) = target else {
            panic!("target entry is not an object");
        };
        assert!(matches!(entry.get("target"), Some(Value::String(_))));
        let Some(Value::Object(findings)) = entry.get("findings") else {
            panic!("findings missing");
        };
        assert!(matches!(findings.get("findings"), Some(Value::Array(_))));
        for key in ["errors", "warnings", "infos"] {
            assert_eq!(expect_u64(findings, key), 0, "stock targets are clean");
        }
        let Some(Value::Object(lev)) = entry.get("levelization") else {
            panic!("levelization missing (loop reported on a stock target?)");
        };
        check_levelization_schema(lev);
    }
}
