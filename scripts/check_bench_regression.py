#!/usr/bin/env python3
"""Bench regression guard: compare a fresh BENCH_*.json against a baseline.

Usage:
    check_bench_regression.py BASELINE.json CURRENT.json \
        [--threshold 0.20] [--rows serial_event_driven]

Both files are the shape the criterion harness emits with BENCH_JSON_DIR
set: {"group": ..., "results": [{"name": ..., "events_per_sec": ...}]}.

For every result row whose name starts with one of the --rows prefixes
(comma-separated), the current events/sec must be at least
(1 - threshold) x the baseline's. Rows present in only one file are
reported but do not fail the check (bench matrices may grow).

Exit code 0 = within budget, 1 = regression, 2 = usage/parse error.
"""

import argparse
import json
import sys


def load_rows(path):
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)
    rows = {}
    for row in doc.get("results", []):
        name = row.get("name")
        rate = row.get("events_per_sec")
        if isinstance(name, str) and isinstance(rate, (int, float)) and rate > 0:
            rows[name] = float(rate)
    if not rows:
        print(f"error: no usable result rows in {path}", file=sys.stderr)
        sys.exit(2)
    return rows


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="maximum tolerated fractional drop (default 0.20 = 20%%)",
    )
    parser.add_argument(
        "--rows",
        default="serial_event_driven",
        help="comma-separated row-name prefixes to guard",
    )
    args = parser.parse_args()
    if not 0.0 < args.threshold < 1.0:
        print("error: --threshold must be in (0, 1)", file=sys.stderr)
        sys.exit(2)

    baseline = load_rows(args.baseline)
    current = load_rows(args.current)
    prefixes = [p.strip() for p in args.rows.split(",") if p.strip()]

    guarded = 0
    failed = []
    for name in sorted(baseline):
        if not any(name.startswith(p) for p in prefixes):
            continue
        if name not in current:
            print(f"note: {name} missing from current run, skipped")
            continue
        guarded += 1
        base, cur = baseline[name], current[name]
        floor = base * (1.0 - args.threshold)
        ratio = cur / base
        verdict = "OK" if cur >= floor else "REGRESSION"
        print(
            f"{verdict:<10} {name}: {cur:,.1f} ev/s vs baseline "
            f"{base:,.1f} ({ratio:.2%}, floor {floor:,.1f})"
        )
        if cur < floor:
            failed.append(name)

    if guarded == 0:
        print(
            f"error: no baseline rows matched prefixes {prefixes}",
            file=sys.stderr,
        )
        sys.exit(2)
    if failed:
        print(
            f"\n{len(failed)} row(s) regressed more than "
            f"{args.threshold:.0%}: {', '.join(failed)}",
            file=sys.stderr,
        )
        sys.exit(1)
    print(f"\nall {guarded} guarded row(s) within {args.threshold:.0%} of baseline")


if __name__ == "__main__":
    main()
