#!/usr/bin/env python3
"""Bench regression guard: compare fresh BENCH_*.json files against baselines.

Usage:
    check_bench_regression.py BASELINE CURRENT [--threshold 0.20]
                              [--rows PREFIX,...] [--require GROUP,...]
                              [--overhead GROUP:BASE_ROW:SUBJECT_ROW:MAX_PCT ...]
                              [--require-faster GROUP:SUBJECT_ROW:BASELINE_ROW ...]

BASELINE and CURRENT are either two JSON files or two directories. In
directory mode every committed `BENCH_*.json` under BASELINE is paired
with the same filename under CURRENT and all pairs are checked; a
baseline group missing from CURRENT is an error (the CI matrix lost
coverage, which is exactly what this guard exists to catch). --require
lists group names that must be present in BOTH trees regardless of mode,
so deleting a committed baseline cannot silently retire its guard.

Each file is the shape the criterion harness emits with BENCH_JSON_DIR
set: {"group": ..., "results": [{"name": ..., "events_per_sec": ...,
"speedup_vs_serial": ...}]}. The `speedup_vs_serial` column only exists
for rows in groups that carry a `serial*`-prefixed baseline row, and
older captures predate the column entirely — so it is normalized here:
when absent it is recomputed from `median_ns_per_iter` against the
group's matching `serial*` row (the same rule the harness uses), and
both modes print it the same way. Regression verdicts are based on
events/sec only; speedup is reported for context.

Every result row whose name starts with one of the --rows prefixes
(comma-separated; the default guards every row) must reach at least
(1 - threshold) x the baseline's events/sec. Rows present only in the
current run are ignored (bench matrices may grow); rows present only in
the baseline are reported but do not fail by themselves.

--overhead guards a *relative* bound inside the CURRENT run, independent
of machine speed: in group GROUP, SUBJECT_ROW's per-iteration time must
not exceed BASE_ROW's by more than MAX_PCT percent. The comparison uses
`median_ns_per_iter` — for a bench that gathers its rows' samples
interleaved (e.g. e12_obs_overhead), machine drift hits every row's
median equally and cancels out of the ratio, which makes it the most
repeatable statistic; the emitted `min_ns_per_iter` is an extreme order
statistic (one lucky baseline sample skews it) and serves as context,
not the verdict. Row names match by prefix, so `event_full_trace`
covers `event_full_trace/100`. Repeatable; each bound is checked
against every matching row pair. A missing group or row fails — an
overhead budget that silently stops being measured is itself a
regression.

--require-faster is the inverse guard, also inside the CURRENT run:
in group GROUP, SUBJECT_ROW's per-iteration time must be strictly
*below* BASELINE_ROW's (speedup > 1.0). It exists for benches whose
whole point is a win — e.g. e13_parallel_v2, where the parallel rows
must beat their serial counterparts on the same machine, same run.
Matching, statistics, and missing-row handling follow --overhead.

Exit code 0 = within budget, 1 = regression, 2 = usage/parse error.
"""

import argparse
import json
import os
import sys


def serial_baseline_ns(rows, name):
    """The group's serial reference for `name`: the first `serial*` row
    sharing `name`'s `/param` suffix — the rule the criterion harness
    uses when it emits the column at capture time."""
    param = name.split("/", 1)[1] if "/" in name else None
    for other, row in rows:
        other_param = other.split("/", 1)[1] if "/" in other else None
        if other.startswith("serial") and other_param == param:
            median = row.get("median_ns_per_iter")
            if isinstance(median, (int, float)) and median > 0:
                return float(median)
    return None


def load_doc(path):
    """Parses one BENCH_*.json into (group, {name: (rate, speedup)}).

    `speedup` is normalized: the emitted `speedup_vs_serial` when the
    capture has it, recomputed from the medians when it predates the
    column, None when the group has no serial reference at all.
    """
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)
    group = doc.get("group")
    raw = [
        (row.get("name"), row)
        for row in doc.get("results", [])
        if isinstance(row.get("name"), str)
    ]
    rows = {}
    for name, row in raw:
        rate = row.get("events_per_sec")
        if not (isinstance(rate, (int, float)) and rate > 0):
            continue
        speedup = row.get("speedup_vs_serial")
        if not isinstance(speedup, (int, float)):
            speedup = None
            base = serial_baseline_ns(raw, name)
            median = row.get("median_ns_per_iter")
            if base and isinstance(median, (int, float)) and median > 0:
                speedup = base / float(median)
        rows[name] = (float(rate), speedup)
    if not rows:
        print(f"error: no usable result rows in {path}", file=sys.stderr)
        sys.exit(2)
    return group, rows


def parse_overhead_spec(spec):
    """Parses one GROUP:BASE_ROW:SUBJECT_ROW:MAX_PCT bound."""
    parts = spec.split(":")
    if len(parts) != 4:
        print(
            f"error: --overhead expects GROUP:BASE_ROW:SUBJECT_ROW:MAX_PCT, "
            f"got {spec!r}",
            file=sys.stderr,
        )
        sys.exit(2)
    group, base_row, subject_row, max_pct = parts
    try:
        max_pct = float(max_pct)
    except ValueError:
        print(f"error: --overhead MAX_PCT must be a number, got {parts[3]!r}",
              file=sys.stderr)
        sys.exit(2)
    if not (group and base_row and subject_row) or max_pct <= 0:
        print(f"error: malformed --overhead spec {spec!r}", file=sys.stderr)
        sys.exit(2)
    return group, base_row, subject_row, max_pct


def parse_faster_spec(spec):
    """Parses one GROUP:SUBJECT_ROW:BASELINE_ROW requirement."""
    parts = spec.split(":")
    if len(parts) != 3 or not all(parts):
        print(
            f"error: --require-faster expects GROUP:SUBJECT_ROW:BASELINE_ROW, "
            f"got {spec!r}",
            file=sys.stderr,
        )
        sys.exit(2)
    return tuple(parts)


def load_iter_times(path):
    """Parses one BENCH_*.json into {name: {statistic: ns_per_iter}} with
    one entry per per-iteration statistic the capture carries
    (`min_ns_per_iter`, `median_ns_per_iter`)."""
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)
    times = {}
    for row in doc.get("results", []):
        name = row.get("name")
        if not isinstance(name, str):
            continue
        stats = {}
        for stat in ("median_ns_per_iter", "min_ns_per_iter"):
            value = row.get(stat)
            if isinstance(value, (int, float)) and value > 0:
                stats[stat] = float(value)
        if stats:
            times[name] = stats
    return times


def matching_rows(times, prefix):
    """Rows named `prefix` exactly or `prefix/<param>`, keyed by param."""
    out = {}
    for name, stats in times.items():
        if name == prefix:
            out[None] = (name, stats)
        elif name.startswith(prefix + "/"):
            out[name.split("/", 1)[1]] = (name, stats)
    return out


def check_overhead(current, is_dir, specs):
    """Enforces every --overhead bound against the CURRENT tree; returns
    the list of failed bound descriptions."""
    failed = []
    for group, base_row, subject_row, max_pct in specs:
        path = os.path.join(current, f"BENCH_{group}.json") if is_dir else current
        if not os.path.isfile(path):
            print(
                f"error: --overhead group {group} has no current run "
                f"(expected {path})",
                file=sys.stderr,
            )
            sys.exit(2)
        times = load_iter_times(path)
        bases = matching_rows(times, base_row)
        subjects = matching_rows(times, subject_row)
        pairs = [
            (bases[param], subjects[param])
            for param in sorted(bases, key=str)
            if param in subjects
        ]
        if not pairs:
            print(
                f"error: --overhead {group}: no row pair matches "
                f"{base_row!r} vs {subject_row!r} in {path}",
                file=sys.stderr,
            )
            sys.exit(2)
        for (base_name, base_stats), (subj_name, subj_stats) in pairs:
            # The median of interleaved samples is the verdict statistic
            # (see the module docstring); never mix statistics across the
            # two rows.
            shared = [
                s
                for s in ("median_ns_per_iter", "min_ns_per_iter")
                if s in base_stats and s in subj_stats
            ]
            if not shared:
                print(
                    f"error: --overhead {group}: {base_name} and {subj_name} "
                    f"share no per-iteration statistic in {path}",
                    file=sys.stderr,
                )
                sys.exit(2)
            stat = shared[0]
            base_ns, subj_ns = base_stats[stat], subj_stats[stat]
            pct = (subj_ns / base_ns - 1.0) * 100.0
            verdict = "OK" if pct <= max_pct else "OVERHEAD"
            print(
                f"{verdict:<10} [{group}] {subj_name}: {subj_ns:,.0f} ns/iter "
                f"vs {base_name} {base_ns:,.0f} ({stat}, {pct:+.2f}%, budget "
                f"{max_pct:.2f}%)"
            )
            if pct > max_pct:
                failed.append(f"{group}:{subj_name} {pct:+.2f}% > {max_pct:.2f}%")
    return failed


def check_faster(current, is_dir, specs):
    """Enforces every --require-faster win against the CURRENT tree;
    returns the list of failed requirement descriptions."""
    failed = []
    for group, subject_row, baseline_row in specs:
        path = os.path.join(current, f"BENCH_{group}.json") if is_dir else current
        if not os.path.isfile(path):
            print(
                f"error: --require-faster group {group} has no current run "
                f"(expected {path})",
                file=sys.stderr,
            )
            sys.exit(2)
        times = load_iter_times(path)
        bases = matching_rows(times, baseline_row)
        subjects = matching_rows(times, subject_row)
        pairs = [
            (bases[param], subjects[param])
            for param in sorted(bases, key=str)
            if param in subjects
        ]
        if not pairs:
            print(
                f"error: --require-faster {group}: no row pair matches "
                f"{subject_row!r} vs {baseline_row!r} in {path}",
                file=sys.stderr,
            )
            sys.exit(2)
        for (base_name, base_stats), (subj_name, subj_stats) in pairs:
            shared = [
                s
                for s in ("median_ns_per_iter", "min_ns_per_iter")
                if s in base_stats and s in subj_stats
            ]
            if not shared:
                print(
                    f"error: --require-faster {group}: {base_name} and "
                    f"{subj_name} share no per-iteration statistic in {path}",
                    file=sys.stderr,
                )
                sys.exit(2)
            stat = shared[0]
            base_ns, subj_ns = base_stats[stat], subj_stats[stat]
            speedup = base_ns / subj_ns
            verdict = "OK" if subj_ns < base_ns else "TOO-SLOW"
            print(
                f"{verdict:<10} [{group}] {subj_name}: {subj_ns:,.0f} ns/iter "
                f"vs {base_name} {base_ns:,.0f} ({stat}, speedup x{speedup:.2f}, "
                f"must be > x1.00)"
            )
            if subj_ns >= base_ns:
                failed.append(f"{group}:{subj_name} x{speedup:.2f} <= x1.00")
    return failed


def check_pair(baseline_path, current_path, threshold, prefixes):
    """Compares one baseline/current file pair; returns (groups, guarded, failed)."""
    base_group, baseline = load_doc(baseline_path)
    cur_group, current = load_doc(current_path)
    label = os.path.basename(baseline_path)

    guarded = 0
    failed = []
    for name in sorted(baseline):
        if not any(name.startswith(p) for p in prefixes):
            continue
        if name not in current:
            print(f"note: [{label}] {name} missing from current run, skipped")
            continue
        guarded += 1
        (base, base_speedup) = baseline[name]
        (cur, cur_speedup) = current[name]
        floor = base * (1.0 - threshold)
        ratio = cur / base
        verdict = "OK" if cur >= floor else "REGRESSION"
        speedup = ""
        if base_speedup is not None and cur_speedup is not None:
            speedup = f", speedup x{cur_speedup:.2f} vs x{base_speedup:.2f}"
        print(
            f"{verdict:<10} [{label}] {name}: {cur:,.1f} ev/s vs baseline "
            f"{base:,.1f} ({ratio:.2%}, floor {floor:,.1f}{speedup})"
        )
        if cur < floor:
            failed.append(f"{label}:{name}")
    groups = {g for g in (base_group, cur_group) if isinstance(g, str)}
    return groups, guarded, failed


def pair_directories(baseline_dir, current_dir):
    """Pairs every committed BENCH_*.json with its fresh counterpart."""
    names = sorted(
        n
        for n in os.listdir(baseline_dir)
        if n.startswith("BENCH_") and n.endswith(".json")
    )
    if not names:
        print(f"error: no BENCH_*.json files in {baseline_dir}", file=sys.stderr)
        sys.exit(2)
    pairs = []
    for name in names:
        current = os.path.join(current_dir, name)
        if not os.path.isfile(current):
            print(
                f"error: baseline group {name} has no current run in "
                f"{current_dir} — was its bench dropped from the matrix?",
                file=sys.stderr,
            )
            sys.exit(2)
        pairs.append((os.path.join(baseline_dir, name), current))
    return pairs


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="baseline JSON file or directory")
    parser.add_argument("current", help="current JSON file or directory")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="maximum tolerated fractional drop (default 0.20 = 20%%)",
    )
    parser.add_argument(
        "--rows",
        default="",
        help="comma-separated row-name prefixes to guard (default: every row)",
    )
    parser.add_argument(
        "--require",
        default="",
        help="comma-separated group names that must be present in both "
        "trees (a dropped group fails even if its baseline was deleted)",
    )
    parser.add_argument(
        "--overhead",
        action="append",
        default=[],
        metavar="GROUP:BASE_ROW:SUBJECT_ROW:MAX_PCT",
        help="relative per-iteration bound enforced inside the CURRENT "
        "run (repeatable); e.g. "
        "e12_obs_overhead:event_telemetry_off:event_full_trace:5",
    )
    parser.add_argument(
        "--require-faster",
        action="append",
        default=[],
        metavar="GROUP:SUBJECT_ROW:BASELINE_ROW",
        help="require SUBJECT_ROW to be strictly faster than BASELINE_ROW "
        "inside the CURRENT run (repeatable); e.g. "
        "e13_parallel_v2:parallel_event_driven:serial_event_driven",
    )
    args = parser.parse_args()
    overhead_specs = [parse_overhead_spec(s) for s in args.overhead]
    faster_specs = [parse_faster_spec(s) for s in args.require_faster]
    if not 0.0 < args.threshold < 1.0:
        print("error: --threshold must be in (0, 1)", file=sys.stderr)
        sys.exit(2)

    prefixes = [p.strip() for p in args.rows.split(",") if p.strip()] or [""]
    required = {g.strip() for g in args.require.split(",") if g.strip()}

    if os.path.isdir(args.baseline) != os.path.isdir(args.current):
        print(
            "error: baseline and current must both be files or both be directories",
            file=sys.stderr,
        )
        sys.exit(2)
    if os.path.isdir(args.baseline):
        for group in sorted(required):
            for tree in (args.baseline, args.current):
                path = os.path.join(tree, f"BENCH_{group}.json")
                if not os.path.isfile(path):
                    print(
                        f"error: required group {group} missing from {tree} "
                        f"(expected {path})",
                        file=sys.stderr,
                    )
                    sys.exit(2)
        pairs = pair_directories(args.baseline, args.current)
    else:
        pairs = [(args.baseline, args.current)]

    seen_groups = set()
    guarded = 0
    failed = []
    for baseline_path, current_path in pairs:
        groups, g, f = check_pair(baseline_path, current_path, args.threshold, prefixes)
        seen_groups |= groups
        guarded += g
        failed.extend(f)

    overhead_failed = check_overhead(
        args.current, os.path.isdir(args.current), overhead_specs
    )
    faster_failed = check_faster(
        args.current, os.path.isdir(args.current), faster_specs
    )

    missing = required - seen_groups
    if missing:
        print(
            f"error: required group(s) not covered by any checked file: "
            f"{', '.join(sorted(missing))}",
            file=sys.stderr,
        )
        sys.exit(2)
    if guarded == 0:
        print(
            f"error: no baseline rows matched prefixes {prefixes}",
            file=sys.stderr,
        )
        sys.exit(2)
    if failed:
        print(
            f"\n{len(failed)} row(s) regressed more than "
            f"{args.threshold:.0%}: {', '.join(failed)}",
            file=sys.stderr,
        )
    if overhead_failed:
        print(
            f"\n{len(overhead_failed)} overhead budget(s) exceeded: "
            f"{'; '.join(overhead_failed)}",
            file=sys.stderr,
        )
    if faster_failed:
        print(
            f"\n{len(faster_failed)} required speedup(s) not met: "
            f"{'; '.join(faster_failed)}",
            file=sys.stderr,
        )
    if failed or overhead_failed or faster_failed:
        sys.exit(1)
    message = f"\nall {guarded} guarded row(s) within {args.threshold:.0%} of baseline"
    if overhead_specs:
        message += f"; all {len(overhead_specs)} overhead budget(s) met"
    if faster_specs:
        message += f"; all {len(faster_specs)} required speedup(s) met"
    print(message)


if __name__ == "__main__":
    main()
