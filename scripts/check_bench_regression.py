#!/usr/bin/env python3
"""Bench regression guard: compare fresh BENCH_*.json files against baselines.

Usage:
    check_bench_regression.py BASELINE CURRENT [--threshold 0.20] [--rows PREFIX,...]

BASELINE and CURRENT are either two JSON files or two directories. In
directory mode every committed `BENCH_*.json` under BASELINE is paired
with the same filename under CURRENT and all pairs are checked; a
baseline group missing from CURRENT is an error (the CI matrix lost
coverage, which is exactly what this guard exists to catch).

Each file is the shape the criterion harness emits with BENCH_JSON_DIR
set: {"group": ..., "results": [{"name": ..., "events_per_sec": ...}]}.

Every result row whose name starts with one of the --rows prefixes
(comma-separated; the default guards every row) must reach at least
(1 - threshold) x the baseline's events/sec. Rows present only in the
current run are ignored (bench matrices may grow); rows present only in
the baseline are reported but do not fail by themselves.

Exit code 0 = within budget, 1 = regression, 2 = usage/parse error.
"""

import argparse
import json
import os
import sys


def load_rows(path):
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)
    rows = {}
    for row in doc.get("results", []):
        name = row.get("name")
        rate = row.get("events_per_sec")
        if isinstance(name, str) and isinstance(rate, (int, float)) and rate > 0:
            rows[name] = float(rate)
    if not rows:
        print(f"error: no usable result rows in {path}", file=sys.stderr)
        sys.exit(2)
    return rows


def check_pair(baseline_path, current_path, threshold, prefixes):
    """Compares one baseline/current file pair; returns (guarded, failed)."""
    baseline = load_rows(baseline_path)
    current = load_rows(current_path)
    label = os.path.basename(baseline_path)

    guarded = 0
    failed = []
    for name in sorted(baseline):
        if not any(name.startswith(p) for p in prefixes):
            continue
        if name not in current:
            print(f"note: [{label}] {name} missing from current run, skipped")
            continue
        guarded += 1
        base, cur = baseline[name], current[name]
        floor = base * (1.0 - threshold)
        ratio = cur / base
        verdict = "OK" if cur >= floor else "REGRESSION"
        print(
            f"{verdict:<10} [{label}] {name}: {cur:,.1f} ev/s vs baseline "
            f"{base:,.1f} ({ratio:.2%}, floor {floor:,.1f})"
        )
        if cur < floor:
            failed.append(f"{label}:{name}")
    return guarded, failed


def pair_directories(baseline_dir, current_dir):
    """Pairs every committed BENCH_*.json with its fresh counterpart."""
    names = sorted(
        n
        for n in os.listdir(baseline_dir)
        if n.startswith("BENCH_") and n.endswith(".json")
    )
    if not names:
        print(f"error: no BENCH_*.json files in {baseline_dir}", file=sys.stderr)
        sys.exit(2)
    pairs = []
    for name in names:
        current = os.path.join(current_dir, name)
        if not os.path.isfile(current):
            print(
                f"error: baseline group {name} has no current run in "
                f"{current_dir} — was its bench dropped from the matrix?",
                file=sys.stderr,
            )
            sys.exit(2)
        pairs.append((os.path.join(baseline_dir, name), current))
    return pairs


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="baseline JSON file or directory")
    parser.add_argument("current", help="current JSON file or directory")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="maximum tolerated fractional drop (default 0.20 = 20%%)",
    )
    parser.add_argument(
        "--rows",
        default="",
        help="comma-separated row-name prefixes to guard (default: every row)",
    )
    args = parser.parse_args()
    if not 0.0 < args.threshold < 1.0:
        print("error: --threshold must be in (0, 1)", file=sys.stderr)
        sys.exit(2)

    prefixes = [p.strip() for p in args.rows.split(",") if p.strip()] or [""]

    if os.path.isdir(args.baseline) != os.path.isdir(args.current):
        print(
            "error: baseline and current must both be files or both be directories",
            file=sys.stderr,
        )
        sys.exit(2)
    if os.path.isdir(args.baseline):
        pairs = pair_directories(args.baseline, args.current)
    else:
        pairs = [(args.baseline, args.current)]

    guarded = 0
    failed = []
    for baseline_path, current_path in pairs:
        g, f = check_pair(baseline_path, current_path, args.threshold, prefixes)
        guarded += g
        failed.extend(f)

    if guarded == 0:
        print(
            f"error: no baseline rows matched prefixes {prefixes}",
            file=sys.stderr,
        )
        sys.exit(2)
    if failed:
        print(
            f"\n{len(failed)} row(s) regressed more than "
            f"{args.threshold:.0%}: {', '.join(failed)}",
            file=sys.stderr,
        )
        sys.exit(1)
    print(f"\nall {guarded} guarded row(s) within {args.threshold:.0%} of baseline")


if __name__ == "__main__":
    main()
