//! The self-profiling report: per-phase wall-time breakdown.
//!
//! Spans recorded during a run — the protocol spans (`net_window`,
//! `follower_advance`, …) and the telemetry-v2 [`Phase`] spans — are
//! aggregated into one row per `(track, span name)`: how often the phase
//! ran, how much wall time it cost, and what share of its track's wall
//! extent that is. Sampled micro-phases (recorded once per
//! [`crate::telemetry::MICRO_SAMPLE_STRIDE`] occurrences) are
//! extrapolated by their stride and flagged, so the report stays honest
//! about what was measured versus estimated.
//!
//! Three renderings: [`ProfileReport::render`] (human table, what
//! `castanet-trace --profile` prints), [`ProfileReport::to_json`]
//! (machine-readable, validated by
//! [`crate::schema::validate_profile`]), and the Chrome trace exporter,
//! which already lays the same spans out as slices.

use crate::event::{EventKind, Track};
use crate::telemetry::{Telemetry, TraceMode, MICRO_SAMPLE_STRIDE};
use std::fmt::Write as _;

/// One aggregated `(track, phase)` row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseRow {
    /// The engine the spans ran on.
    pub track: Track,
    /// The span's stable event name (phase names are dotted).
    pub phase: &'static str,
    /// Spans actually recorded.
    pub count: u64,
    /// Occurrences represented per recorded span (1 = unsampled).
    pub sample_stride: u64,
    /// Wall nanoseconds measured across the recorded spans.
    pub total_ns: u64,
    /// Shortest recorded span.
    pub min_ns: u64,
    /// Longest recorded span.
    pub max_ns: u64,
}

impl PhaseRow {
    /// Estimated occurrences including the sampled-away ones.
    #[must_use]
    pub fn est_count(&self) -> u64 {
        self.count.saturating_mul(self.sample_stride)
    }

    /// Estimated total wall nanoseconds including the sampled-away ones.
    #[must_use]
    pub fn est_total_ns(&self) -> u64 {
        self.total_ns.saturating_mul(self.sample_stride)
    }

    /// Mean recorded span duration.
    #[must_use]
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// The aggregated profile of one run.
#[derive(Debug, Clone, Default)]
pub struct ProfileReport {
    /// Rows sorted by track, then estimated total descending.
    pub rows: Vec<PhaseRow>,
    /// Wall-clock extent (first span start to last event stamp) per
    /// track, nanoseconds: `[originator, follower]`.
    pub track_wall_ns: [u64; 2],
    /// Events the report was built from.
    pub events: usize,
    /// Events evicted before the snapshot.
    pub dropped: u64,
}

fn track_slot(track: Track) -> usize {
    match track {
        Track::Originator => 0,
        Track::Follower => 1,
    }
}

impl ProfileReport {
    /// Aggregates the handle's recorded span events. Empty when the
    /// handle is disabled or recorded no spans.
    #[must_use]
    pub fn build(tel: &Telemetry) -> ProfileReport {
        let events = tel.events();
        let sampled_stride = match tel.mode() {
            Some(TraceMode::Sampled(n)) => u64::from(n.get()),
            _ => 1,
        };
        let mut extent: [Option<(u64, u64)>; 2] = [None; 2];
        let mut rows: Vec<PhaseRow> = Vec::new();
        for ev in &events {
            let slot = track_slot(ev.track);
            let (lo, hi) = extent[slot].get_or_insert((ev.start_ns(), ev.wall_ns));
            *lo = (*lo).min(ev.start_ns());
            *hi = (*hi).max(ev.wall_ns);
            if !ev.kind.is_span() {
                continue;
            }
            let stride = match ev.kind {
                EventKind::PhaseSpan { phase, .. } if phase.is_micro() => MICRO_SAMPLE_STRIDE,
                _ => sampled_stride,
            };
            let name = ev.kind.name();
            let row = match rows
                .iter_mut()
                .find(|r| r.track == ev.track && r.phase == name)
            {
                Some(row) => row,
                None => {
                    rows.push(PhaseRow {
                        track: ev.track,
                        phase: name,
                        count: 0,
                        sample_stride: stride,
                        total_ns: 0,
                        min_ns: u64::MAX,
                        max_ns: 0,
                    });
                    rows.last_mut().expect("row just pushed")
                }
            };
            row.count += 1;
            row.total_ns = row.total_ns.saturating_add(ev.dur_ns);
            row.min_ns = row.min_ns.min(ev.dur_ns);
            row.max_ns = row.max_ns.max(ev.dur_ns);
        }
        rows.sort_by(|a, b| {
            track_slot(a.track)
                .cmp(&track_slot(b.track))
                .then(b.est_total_ns().cmp(&a.est_total_ns()))
                .then(a.phase.cmp(b.phase))
        });
        ProfileReport {
            rows,
            track_wall_ns: extent.map(|e| e.map_or(0, |(lo, hi)| hi.saturating_sub(lo))),
            events: events.len(),
            dropped: tel.dropped_events(),
        }
    }

    /// This row's share of its track's wall extent, in basis points
    /// (extrapolated totals; nested spans can push a track past 100%).
    #[must_use]
    pub fn share_bp(&self, row: &PhaseRow) -> u64 {
        let extent = self.track_wall_ns[track_slot(row.track)];
        row.est_total_ns()
            .saturating_mul(10_000)
            .checked_div(extent)
            .unwrap_or(0)
    }

    /// The human table `castanet-trace --profile` prints. Sampled rows
    /// carry a `~` prefix: their counts and totals are stride-extrapolated
    /// estimates.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("== castanet profile ==\n");
        let _ = writeln!(
            out,
            "events retained: {} (dropped: {})",
            self.events, self.dropped
        );
        let _ = writeln!(
            out,
            "wall extent: originator {}, follower {}",
            fmt_ns(self.track_wall_ns[0]),
            fmt_ns(self.track_wall_ns[1]),
        );
        if self.rows.is_empty() {
            out.push_str("(no spans recorded)\n");
            return out;
        }
        let _ = writeln!(
            out,
            "{:<11} {:<24} {:>12} {:>12} {:>10} {:>7}",
            "track", "phase", "count", "total", "mean", "share"
        );
        for row in &self.rows {
            let sampled = if row.sample_stride > 1 { "~" } else { "" };
            let _ = writeln!(
                out,
                "{:<11} {:<24} {:>12} {:>12} {:>10} {:>6.1}%",
                row.track.label(),
                row.phase,
                format!("{sampled}{}", row.est_count()),
                format!("{sampled}{}", fmt_ns(row.est_total_ns())),
                fmt_ns(row.mean_ns()),
                self.share_bp(row) as f64 / 100.0,
            );
        }
        out
    }

    /// The machine-readable profile document (schema
    /// `castanet-profile`, version [`crate::schema::SCHEMA_VERSION`]).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"schema\":\"castanet-profile\",\"version\":{},\
             \"events\":{},\"dropped\":{},",
            crate::schema::SCHEMA_VERSION,
            self.events,
            self.dropped
        );
        let _ = write!(
            out,
            "\"tracks\":[{{\"track\":\"originator\",\"wall_ns\":{}}},\
             {{\"track\":\"follower\",\"wall_ns\":{}}}],\"rows\":[",
            self.track_wall_ns[0], self.track_wall_ns[1]
        );
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"track\":\"{}\",\"phase\":\"{}\",\"count\":{},\
                 \"sample_stride\":{},\"total_ns\":{},\"min_ns\":{},\
                 \"max_ns\":{},\"est_total_ns\":{},\"share_bp\":{}}}",
                row.track.label(),
                row.phase,
                row.count,
                row.sample_stride,
                row.total_ns,
                row.min_ns,
                row.max_ns,
                row.est_total_ns(),
                self.share_bp(row),
            );
        }
        out.push_str("]}");
        out
    }
}

/// Renders nanoseconds with an adaptive unit, 6-character value width.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Phase;

    #[test]
    fn aggregates_spans_per_track_and_phase() {
        let tel = Telemetry::enabled();
        for i in 0..3u64 {
            let mut span = tel.span(Track::Originator, i, Phase::ParallelGrant);
            span.set_t_ps(i + 1);
        }
        drop(tel.span(Track::Follower, 9, Phase::KernelAdvance));
        tel.record(
            Track::Originator,
            10,
            EventKind::WindowGranted {
                grant_ps: 10,
                msgs: 1,
            },
        );
        let report = tel.profile();
        assert_eq!(report.events, 5);
        let grant = report
            .rows
            .iter()
            .find(|r| r.phase == "parallel.grant")
            .expect("grant row");
        assert_eq!(grant.count, 3);
        assert_eq!(grant.sample_stride, 1);
        assert_eq!(grant.track, Track::Originator);
        let advance = report
            .rows
            .iter()
            .find(|r| r.phase == "kernel.advance")
            .expect("advance row");
        assert_eq!(advance.track, Track::Follower);
        let text = report.render();
        assert!(text.contains("parallel.grant"));
        assert!(text.contains("kernel.advance"));
    }

    #[test]
    fn micro_phases_extrapolate_by_stride() {
        let tel = Telemetry::enabled();
        let start = tel.now_ns();
        tel.record_phase(Track::Follower, 5, Phase::KernelPop, start);
        let report = tel.profile();
        let row = &report.rows[0];
        assert_eq!(row.phase, "kernel.pop");
        assert_eq!(row.sample_stride, MICRO_SAMPLE_STRIDE);
        assert_eq!(row.est_count(), MICRO_SAMPLE_STRIDE);
        assert!(report.render().contains('~'), "sampled rows are flagged");
    }

    #[test]
    fn empty_report_renders() {
        let report = Telemetry::disabled().profile();
        assert!(report.rows.is_empty());
        assert!(report.render().contains("no spans recorded"));
        assert!(report
            .to_json()
            .starts_with("{\"schema\":\"castanet-profile\""));
    }
}
