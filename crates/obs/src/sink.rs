//! The ring-buffered event sink.
//!
//! Recording must never grow without bound (runs push millions of cells)
//! and must never reallocate on the hot path: the sink is a fixed-capacity
//! ring — when full, the oldest event is overwritten and counted in
//! [`TraceSink::dropped`]. Pushes take one short mutex section; the sink is
//! shared between the parallel executor's two threads, and contention is
//! bounded because both sides batch (one window of events per rendezvous,
//! not one lock per cell).

use crate::event::TraceEvent;
use std::collections::VecDeque;
use std::sync::Mutex;

/// Default event capacity: enough for every window/drain/injection event
/// of a full E1 workload while bounding memory to a few MiB.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

#[derive(Debug)]
struct Ring {
    buf: VecDeque<TraceEvent>,
    dropped: u64,
}

/// A bounded, thread-safe ring buffer of [`TraceEvent`]s.
#[derive(Debug)]
pub struct TraceSink {
    capacity: usize,
    ring: Mutex<Ring>,
}

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink::with_capacity(DEFAULT_CAPACITY)
    }
}

impl TraceSink {
    /// Creates a sink holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "trace sink needs a non-zero capacity");
        TraceSink {
            capacity,
            ring: Mutex::new(Ring {
                buf: VecDeque::with_capacity(capacity),
                dropped: 0,
            }),
        }
    }

    /// Appends one event, evicting the oldest when full.
    pub fn push(&self, event: TraceEvent) {
        let mut ring = self.ring.lock().expect("trace sink poisoned");
        if ring.buf.len() == self.capacity {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
        ring.buf.push_back(event);
    }

    /// Copies the retained events out, oldest first. Safe mid-run.
    #[must_use]
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let ring = self.ring.lock().expect("trace sink poisoned");
        ring.buf.iter().copied().collect()
    }

    /// Events currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.lock().expect("trace sink poisoned").buf.len()
    }

    /// `true` when nothing has been recorded (or everything was evicted).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.ring.lock().expect("trace sink poisoned").dropped
    }

    /// The fixed capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Track};

    fn ev(t_ps: u64) -> TraceEvent {
        TraceEvent {
            t_ps,
            wall_ns: t_ps,
            dur_ns: 0,
            track: Track::Originator,
            kind: EventKind::NetWindow { events: t_ps },
        }
    }

    #[test]
    fn keeps_events_in_order() {
        let sink = TraceSink::with_capacity(8);
        for i in 0..5 {
            sink.push(ev(i));
        }
        let got = sink.snapshot();
        assert_eq!(got.len(), 5);
        assert!(got.windows(2).all(|w| w[0].t_ps < w[1].t_ps));
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn overwrites_oldest_when_full() {
        let sink = TraceSink::with_capacity(4);
        for i in 0..10 {
            sink.push(ev(i));
        }
        let got = sink.snapshot();
        assert_eq!(got.len(), 4);
        assert_eq!(got[0].t_ps, 6, "oldest surviving event");
        assert_eq!(got[3].t_ps, 9);
        assert_eq!(sink.dropped(), 6);
    }

    #[test]
    fn concurrent_pushes_do_not_lose_capacity() {
        let sink = std::sync::Arc::new(TraceSink::with_capacity(1024));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let sink = std::sync::Arc::clone(&sink);
                scope.spawn(move || {
                    for i in 0..1000 {
                        sink.push(ev(i));
                    }
                });
            }
        });
        assert_eq!(sink.len(), 1024);
        assert_eq!(sink.dropped(), 4000 - 1024);
    }

    #[test]
    #[should_panic(expected = "non-zero capacity")]
    fn zero_capacity_rejected() {
        let _ = TraceSink::with_capacity(0);
    }
}
