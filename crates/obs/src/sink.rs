//! The sharded, per-producer-thread event sink.
//!
//! Recording must never grow without bound (runs push millions of cells)
//! and — since telemetry v2 — must never contend either: the hot-path
//! `push` is a handful of uncontended atomic stores. Each producer thread
//! claims a private ring shard on its first push (and releases it back to
//! a free pool when the thread exits, so repeated scoped threads reuse one
//! ring instead of leaking); `snapshot` merges every shard's events by
//! their epoch-relative `wall_ns` stamp, which is what makes the merged
//! stream monotone for the exporters.
//!
//! Each shard is a fixed-capacity overwrite ring of 64-byte slots (one
//! cache line: a per-slot sequence word plus the
//! [`crate::event::TraceEvent`] word codec). Writers run the classic
//! seqlock protocol — mark the slot odd, store the payload, mark it even
//! `(2·tail + 2)`, publish the tail — and because every word is an
//! `AtomicU64`, the whole scheme needs no `unsafe`. A mid-run snapshot
//! simply skips slots whose sequence word changed under it. Slot storage
//! is allocated lazily in 2048-slot segments, so a short run with a large
//! configured capacity only touches the pages it actually fills.

use crate::event::{TraceEvent, PAYLOAD_WORDS};
use std::cell::RefCell;
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};

/// Default per-producer event capacity: enough for every window/drain/
/// injection event of a full E1 workload while bounding memory per thread.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// Words per ring slot: the per-slot sequence word + the event payload.
const SLOT_WORDS: usize = 1 + PAYLOAD_WORDS;

/// Slots per lazily-allocated segment (2048 × 64 B = 128 KiB).
const SEG_SLOTS: usize = 2048;

fn zeroed_words(n: usize) -> Box<[AtomicU64]> {
    (0..n).map(|_| AtomicU64::new(0)).collect()
}

/// One producer thread's private overwrite ring.
struct Shard {
    cap: usize,
    segs: Box<[OnceLock<Box<[AtomicU64]>>]>,
    /// Monotone count of events ever pushed; slot = `tail % cap`.
    tail: AtomicU64,
}

impl Shard {
    fn new(cap: usize) -> Self {
        Shard {
            cap,
            segs: (0..cap.div_ceil(SEG_SLOTS))
                .map(|_| OnceLock::new())
                .collect(),
            tail: AtomicU64::new(0),
        }
    }

    /// Number of slots segment `seg` holds (the last one may be short).
    fn seg_len(&self, seg: usize) -> usize {
        (self.cap - seg * SEG_SLOTS).min(SEG_SLOTS)
    }

    /// Single-producer push (ownership is enforced by the claim protocol).
    fn push(&self, event: &TraceEvent) {
        let t = self.tail.load(Ordering::Relaxed);
        let slot = usize::try_from(t % self.cap as u64).expect("slot index");
        let seg = slot / SEG_SLOTS;
        let words = self.segs[seg].get_or_init(|| zeroed_words(self.seg_len(seg) * SLOT_WORDS));
        let base = (slot % SEG_SLOTS) * SLOT_WORDS;
        // Seqlock write: odd marks the slot in progress; the release fence
        // orders the mark before the payload, the release store orders the
        // payload before the even mark readers validate against.
        words[base].store(2 * t + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        for (k, w) in event.to_words().into_iter().enumerate() {
            words[base + 1 + k].store(w, Ordering::Relaxed);
        }
        words[base].store(2 * t + 2, Ordering::Release);
        self.tail.store(t + 1, Ordering::Release);
    }

    /// Copies the retained events out, oldest first. Slots a concurrent
    /// producer is overwriting fail sequence validation and are skipped.
    fn drain_into(&self, out: &mut Vec<TraceEvent>) {
        let end = self.tail.load(Ordering::Acquire);
        let start = end.saturating_sub(self.cap as u64);
        for t in start..end {
            let slot = usize::try_from(t % self.cap as u64).expect("slot index");
            let Some(words) = self.segs[slot / SEG_SLOTS].get() else {
                continue;
            };
            let base = (slot % SEG_SLOTS) * SLOT_WORDS;
            if words[base].load(Ordering::Acquire) != 2 * t + 2 {
                continue;
            }
            let mut payload = [0u64; PAYLOAD_WORDS];
            for (k, w) in payload.iter_mut().enumerate() {
                *w = words[base + 1 + k].load(Ordering::Relaxed);
            }
            fence(Ordering::Acquire);
            if words[base].load(Ordering::Relaxed) != 2 * t + 2 {
                continue;
            }
            if let Some(ev) = TraceEvent::from_words(&payload) {
                out.push(ev);
            }
        }
    }

    /// Events evicted by ring overwrite.
    fn evicted(&self) -> u64 {
        self.tail
            .load(Ordering::Acquire)
            .saturating_sub(self.cap as u64)
    }

    /// Events currently retained.
    fn retained(&self) -> usize {
        usize::try_from(self.tail.load(Ordering::Acquire).min(self.cap as u64))
            .expect("retained count")
    }
}

/// Shard bookkeeping: every ring ever created (snapshots must see events
/// from threads that already exited) plus the subset free for reclaiming.
#[derive(Default)]
struct ShardTable {
    all: Vec<Arc<Shard>>,
    free: Vec<Arc<Shard>>,
}

struct SinkState {
    /// Globally unique id keying the thread-local claim cache.
    id: u64,
    capacity: usize,
    shards: Mutex<ShardTable>,
}

impl SinkState {
    /// Reuses a released shard or creates a fresh one.
    fn claim(&self) -> Arc<Shard> {
        let mut table = self.shards.lock().expect("trace sink poisoned");
        if let Some(shard) = table.free.pop() {
            return shard;
        }
        let shard = Arc::new(Shard::new(self.capacity));
        table.all.push(Arc::clone(&shard));
        shard
    }

    fn release(&self, shard: Arc<Shard>) {
        self.shards
            .lock()
            .expect("trace sink poisoned")
            .free
            .push(shard);
    }
}

/// One thread's claim on one sink's shard.
struct Claim {
    sink: u64,
    state: Weak<SinkState>,
    shard: Arc<Shard>,
}

/// The thread-local claim cache. Its `Drop` runs with the thread's TLS
/// destructors and returns every claimed shard to its sink's free pool.
#[derive(Default)]
struct ClaimSet {
    claims: Vec<Claim>,
}

impl ClaimSet {
    fn shard_for(&mut self, state: &Arc<SinkState>) -> &Shard {
        if let Some(pos) = self.claims.iter().position(|c| c.sink == state.id) {
            return &self.claims[pos].shard;
        }
        // Claim miss (once per thread per sink): prune claims whose sink
        // is gone, then claim a ring from this sink.
        self.claims.retain(|c| c.state.strong_count() > 0);
        let shard = state.claim();
        self.claims.push(Claim {
            sink: state.id,
            state: Arc::downgrade(state),
            shard,
        });
        &self.claims.last().expect("claim just pushed").shard
    }
}

impl Drop for ClaimSet {
    fn drop(&mut self) {
        for claim in self.claims.drain(..) {
            if let Some(state) = claim.state.upgrade() {
                state.release(claim.shard);
            }
        }
    }
}

thread_local! {
    static CLAIMS: RefCell<ClaimSet> = RefCell::new(ClaimSet::default());
}

fn next_sink_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// A bounded, thread-sharded event sink: each producer thread records into
/// a private seqlock ring of `capacity` events, and snapshots merge the
/// shards on their wall-clock stamps.
pub struct TraceSink {
    state: Arc<SinkState>,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink")
            .field("capacity", &self.state.capacity)
            .field("producers", &self.producers())
            .finish()
    }
}

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink::with_capacity(DEFAULT_CAPACITY)
    }
}

impl TraceSink {
    /// Creates a sink whose per-producer rings hold at most `capacity`
    /// events each.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "trace sink needs a non-zero capacity");
        TraceSink {
            state: Arc::new(SinkState {
                id: next_sink_id(),
                capacity,
                shards: Mutex::new(ShardTable::default()),
            }),
        }
    }

    /// Appends one event to the calling thread's shard, evicting that
    /// shard's oldest event when it is full.
    pub fn push(&self, event: TraceEvent) {
        let pushed = CLAIMS
            .try_with(|cell| cell.borrow_mut().shard_for(&self.state).push(&event))
            .is_ok();
        if !pushed {
            // TLS is already torn down (a push during thread exit): claim
            // a shard transiently — the registry lock serializes ownership.
            let shard = self.state.claim();
            shard.push(&event);
            self.state.release(shard);
        }
    }

    /// Copies the retained events out of every shard and merges them,
    /// oldest wall-clock stamp first. Safe mid-run: slots being
    /// overwritten under the snapshot are skipped, not torn.
    #[must_use]
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let table = self.state.shards.lock().expect("trace sink poisoned");
        let mut events = Vec::with_capacity(table.all.iter().map(|s| s.retained()).sum());
        for shard in &table.all {
            shard.drain_into(&mut events);
        }
        drop(table);
        // Stable on the per-shard (already monotone) runs, so same-stamp
        // events keep their producer's order.
        events.sort_by_key(|ev| ev.wall_ns);
        events
    }

    /// Events currently retained across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        let table = self.state.shards.lock().expect("trace sink poisoned");
        table.all.iter().map(|s| s.retained()).sum()
    }

    /// `true` when nothing has been recorded (or everything was evicted).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because a producer's ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        let table = self.state.shards.lock().expect("trace sink poisoned");
        table.all.iter().map(|s| s.evicted()).sum()
    }

    /// The per-producer ring capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.state.capacity
    }

    /// Producer rings created so far (threads that recorded at least one
    /// event; exited threads' rings are reused, not recreated).
    #[must_use]
    pub fn producers(&self) -> usize {
        self.state
            .shards
            .lock()
            .expect("trace sink poisoned")
            .all
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Track};

    fn ev(t_ps: u64) -> TraceEvent {
        TraceEvent {
            t_ps,
            wall_ns: t_ps,
            dur_ns: 0,
            track: Track::Originator,
            kind: EventKind::NetWindow { events: t_ps },
        }
    }

    #[test]
    fn keeps_events_in_order() {
        let sink = TraceSink::with_capacity(8);
        for i in 0..5 {
            sink.push(ev(i));
        }
        let got = sink.snapshot();
        assert_eq!(got.len(), 5);
        assert!(got.windows(2).all(|w| w[0].t_ps < w[1].t_ps));
        assert_eq!(sink.dropped(), 0);
        assert_eq!(sink.producers(), 1);
    }

    #[test]
    fn overwrites_oldest_when_full() {
        let sink = TraceSink::with_capacity(4);
        for i in 0..10 {
            sink.push(ev(i));
        }
        let got = sink.snapshot();
        assert_eq!(got.len(), 4);
        assert_eq!(got[0].t_ps, 6, "oldest surviving event");
        assert_eq!(got[3].t_ps, 9);
        assert_eq!(sink.dropped(), 6);
    }

    #[test]
    fn concurrent_producers_lose_and_duplicate_nothing() {
        // The satellite-3 stress test: N threads × M events, each shard
        // sized to hold its thread's full load, so the merged snapshot
        // must contain every record exactly once.
        const THREADS: u64 = 8;
        const EVENTS: u64 = 5000;
        let sink = std::sync::Arc::new(TraceSink::with_capacity(EVENTS as usize));
        // Each producer claims its shard (first push) before the barrier so
        // no thread exits — and recycles its shard — while another is still
        // spinning up; recycling would legitimately evict the dead
        // producer's records once the ring wraps.
        let barrier = std::sync::Barrier::new(THREADS as usize);
        std::thread::scope(|scope| {
            for thread in 0..THREADS {
                let sink = std::sync::Arc::clone(&sink);
                let barrier = &barrier;
                scope.spawn(move || {
                    sink.push(ev(thread * EVENTS));
                    barrier.wait();
                    for i in 1..EVENTS {
                        sink.push(ev(thread * EVENTS + i));
                    }
                });
            }
        });
        let got = sink.snapshot();
        assert_eq!(got.len() as u64, THREADS * EVENTS);
        assert_eq!(sink.dropped(), 0);
        let mut tags: Vec<u64> = got.iter().map(|e| e.t_ps).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(
            tags.len() as u64,
            THREADS * EVENTS,
            "a record was lost or duplicated"
        );
        assert!(sink.producers() <= THREADS as usize);
    }

    #[test]
    fn exited_threads_keep_their_events_and_free_their_shard() {
        let sink = std::sync::Arc::new(TraceSink::with_capacity(64));
        for round in 0..4u64 {
            let sink = std::sync::Arc::clone(&sink);
            std::thread::spawn(move || sink.push(ev(round)))
                .join()
                .expect("producer thread");
        }
        assert_eq!(sink.len(), 4, "dead producers' events must survive");
        assert_eq!(
            sink.producers(),
            1,
            "sequential short-lived threads must reuse one shard"
        );
    }

    #[test]
    fn snapshot_merges_shards_by_wall_clock() {
        let sink = std::sync::Arc::new(TraceSink::with_capacity(64));
        sink.push(TraceEvent {
            wall_ns: 10,
            ..ev(0)
        });
        sink.push(TraceEvent {
            wall_ns: 30,
            ..ev(1)
        });
        let other = std::sync::Arc::clone(&sink);
        std::thread::spawn(move || {
            other.push(TraceEvent {
                wall_ns: 20,
                ..ev(2)
            });
        })
        .join()
        .expect("producer thread");
        let stamps: Vec<u64> = sink.snapshot().iter().map(|e| e.wall_ns).collect();
        assert_eq!(stamps, vec![10, 20, 30]);
    }

    #[test]
    #[should_panic(expected = "non-zero capacity")]
    fn zero_capacity_rejected() {
        let _ = TraceSink::with_capacity(0);
    }
}
