//! The typed protocol-event taxonomy.
//!
//! Every event carries the *simulated* time it refers to (`t_ps`,
//! picoseconds — the unit every simulator in the workspace shares), the
//! *wall-clock* time it was recorded at (`wall_ns`, nanoseconds since the
//! telemetry handle was created) and, for span-like events, the wall-clock
//! duration the operation took. The split matters: simulated time orders
//! the protocol, wall time shows where the run actually spent its life —
//! the Chrome exporter lays events out on the wall-time axis so the
//! parallel executor's thread overlap and stalls are visually inspectable.

/// Which logical engine an event belongs to. The Chrome exporter renders
/// one track per value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Track {
    /// The network simulator — the engine whose clock runs ahead.
    Originator,
    /// The HDL simulator / test board — the engine whose clock lags.
    Follower,
}

impl Track {
    /// Stable lower-case label used by every exporter.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Track::Originator => "originator",
            Track::Follower => "follower",
        }
    }

    /// Chrome `trace_event` thread id of this track.
    #[must_use]
    pub fn tid(self) -> u32 {
        match self {
            Track::Originator => 1,
            Track::Follower => 2,
        }
    }
}

/// A named execution phase measured by a timing span (`Telemetry::span`
/// or the sampled micro-phase hooks). Phases are a closed taxonomy so the
/// JSONL schema stays strict: every phase name is a first-class event name
/// in [`EventKind::NAMES`], and the self-profiling report aggregates rows
/// per phase. Names are append-only, like event names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Event kernel: draining the timing wheel for one time point.
    KernelPop,
    /// Event kernel: applying assignments and waking processes.
    KernelEval,
    /// Event kernel: delta-cycle spins after the first.
    KernelDelta,
    /// Event kernel: one granted-window sweep (`run_until`).
    KernelAdvance,
    /// Cycle engine: one behavioral clock edge.
    CycleEval,
    /// Compiled backend: one word-op schedule evaluation (lowered DUTs).
    CompiledScheduleEval,
    /// Compiled backend: one behavioral `LaneBank` clock edge (fallback).
    CompiledFallbackEval,
    /// Compiled backend: scattering stimulus integers into lane words.
    CompiledPack,
    /// Compiled backend: gathering egress lane words back to integers.
    CompiledUnpack,
    /// Parallel executor: streaming grant windows to the follower.
    ParallelGrant,
    /// Parallel executor: barrier wait for in-flight window replies.
    ParallelWait,
    /// Parallel executor: end-of-run drain rendezvous.
    ParallelDrain,
    /// Sync protocol: re-stamping and injecting a deferred-response window.
    SyncDeferredWindow,
}

impl Phase {
    /// Every phase, in tag order (the order [`Phase::index`] counts in).
    pub const ALL: &'static [Phase] = &[
        Phase::KernelPop,
        Phase::KernelEval,
        Phase::KernelDelta,
        Phase::KernelAdvance,
        Phase::CycleEval,
        Phase::CompiledScheduleEval,
        Phase::CompiledFallbackEval,
        Phase::CompiledPack,
        Phase::CompiledUnpack,
        Phase::ParallelGrant,
        Phase::ParallelWait,
        Phase::ParallelDrain,
        Phase::SyncDeferredWindow,
    ];

    /// Stable dotted phase name — doubles as the span event's name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::KernelPop => "kernel.pop",
            Phase::KernelEval => "kernel.eval",
            Phase::KernelDelta => "kernel.delta",
            Phase::KernelAdvance => "kernel.advance",
            Phase::CycleEval => "cycle.eval",
            Phase::CompiledScheduleEval => "compiled.schedule_eval",
            Phase::CompiledFallbackEval => "compiled.fallback_eval",
            Phase::CompiledPack => "compiled.pack",
            Phase::CompiledUnpack => "compiled.unpack",
            Phase::ParallelGrant => "parallel.grant",
            Phase::ParallelWait => "parallel.wait",
            Phase::ParallelDrain => "parallel.drain",
            Phase::SyncDeferredWindow => "sync.deferred_window",
        }
    }

    /// `true` for per-step micro-phases too hot to trace unconditionally:
    /// they are recorded once per [`crate::telemetry::MICRO_SAMPLE_STRIDE`]
    /// occurrences and the profile report extrapolates their totals.
    #[must_use]
    pub fn is_micro(self) -> bool {
        matches!(
            self,
            Phase::KernelPop
                | Phase::KernelEval
                | Phase::KernelDelta
                | Phase::CycleEval
                | Phase::CompiledScheduleEval
                | Phase::CompiledFallbackEval
                | Phase::CompiledPack
                | Phase::CompiledUnpack
                | Phase::SyncDeferredWindow
        )
    }

    /// Position of this phase inside [`Phase::ALL`] (the codec tag).
    #[must_use]
    pub fn index(self) -> usize {
        Phase::ALL.iter().position(|&p| p == self).expect("in ALL")
    }
}

/// What happened. Field units: `*_ps` are simulated picoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The originator executed a batch of network events (span).
    NetWindow {
        /// Network events executed inside the window.
        events: u64,
    },
    /// A timing-window grant (the time-stamped null message of §3.1) was
    /// issued to the follower.
    WindowGranted {
        /// The grant horizon (exclusive).
        grant_ps: u64,
        /// Stimulus messages shipped with the grant.
        msgs: u64,
    },
    /// A stimulus message was enqueued into per-type input queue `I_j`.
    StimulusEnqueued {
        /// The message type `j` of the queue.
        type_id: u32,
        /// The co-simulation port addressed.
        port: u32,
        /// The originator stamp carried by the message.
        stamp_ps: u64,
    },
    /// A δ_j-delayed follower response was injected into the network model.
    ResponseInjected {
        /// The follower's stamp on the response.
        stamp_ps: u64,
        /// The network time it was injected at.
        at_ps: u64,
        /// The co-simulation port it returned on.
        port: u32,
    },
    /// A response arrived behind the network clock under the *serial*
    /// executor — a feedforward-assumption violation (see
    /// `CouplingStats::late_responses`).
    LateResponse {
        /// The follower's stamp on the response.
        stamp_ps: u64,
        /// The network clock when it surfaced.
        net_ps: u64,
    },
    /// A response arrived behind the network clock because the originator
    /// pipelined ahead (expected under the parallel executor; see
    /// `CouplingStats::deferred_responses`).
    DeferredResponse {
        /// The follower's stamp on the response.
        stamp_ps: u64,
        /// The network clock when it surfaced.
        net_ps: u64,
    },
    /// The follower swept one granted window (span).
    FollowerAdvance {
        /// The grant horizon swept to.
        granted_ps: u64,
        /// Responses the sweep produced.
        responses: u64,
    },
    /// One chunk of the end-of-run drain phase (span).
    DrainChunk {
        /// The horizon the chunk advanced to.
        horizon_ps: u64,
        /// Responses the chunk surfaced.
        responses: u64,
    },
    /// The originator blocked on the bounded command channel — the
    /// follower is the bottleneck (span over the blocked send).
    BackpressureStall {
        /// Windows in flight when the stall began.
        in_flight: u64,
    },
    /// The optimistic synchronizer rolled back to an earlier state.
    Rollback {
        /// The restored simulated time.
        to_ps: u64,
        /// Events replayed because of the rollback.
        replayed: u64,
    },
    /// A timing span over a named execution [`Phase`] — the raw material
    /// of the self-profiling report. The event name *is* the phase name.
    PhaseSpan {
        /// The phase measured.
        phase: Phase,
        /// Nesting depth at which the span was opened (0 = outermost).
        depth: u32,
    },
}

impl EventKind {
    /// Stable snake_case event name used by every exporter and the JSONL
    /// schema. Names are append-only: renaming one breaks recorded traces.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::NetWindow { .. } => "net_window",
            EventKind::WindowGranted { .. } => "window_granted",
            EventKind::StimulusEnqueued { .. } => "stimulus_enqueued",
            EventKind::ResponseInjected { .. } => "response_injected",
            EventKind::LateResponse { .. } => "late_response",
            EventKind::DeferredResponse { .. } => "deferred_response",
            EventKind::FollowerAdvance { .. } => "follower_advance",
            EventKind::DrainChunk { .. } => "drain_chunk",
            EventKind::BackpressureStall { .. } => "backpressure_stall",
            EventKind::Rollback { .. } => "rollback",
            EventKind::PhaseSpan { phase, .. } => phase.name(),
        }
    }

    /// Every event name the taxonomy defines, for schema validation: the
    /// ten protocol kinds plus one name per [`Phase`].
    pub const NAMES: &'static [&'static str] = &[
        "net_window",
        "window_granted",
        "stimulus_enqueued",
        "response_injected",
        "late_response",
        "deferred_response",
        "follower_advance",
        "drain_chunk",
        "backpressure_stall",
        "rollback",
        "kernel.pop",
        "kernel.eval",
        "kernel.delta",
        "kernel.advance",
        "cycle.eval",
        "compiled.schedule_eval",
        "compiled.fallback_eval",
        "compiled.pack",
        "compiled.unpack",
        "parallel.grant",
        "parallel.wait",
        "parallel.drain",
        "sync.deferred_window",
    ];

    /// The kind-specific payload as `(key, value)` pairs, in a stable
    /// order. Exporters render these as the event's `args`.
    #[must_use]
    pub fn args(&self) -> Vec<(&'static str, u64)> {
        match *self {
            EventKind::NetWindow { events } => vec![("events", events)],
            EventKind::WindowGranted { grant_ps, msgs } => {
                vec![("grant_ps", grant_ps), ("msgs", msgs)]
            }
            EventKind::StimulusEnqueued {
                type_id,
                port,
                stamp_ps,
            } => vec![
                ("type_id", u64::from(type_id)),
                ("port", u64::from(port)),
                ("stamp_ps", stamp_ps),
            ],
            EventKind::ResponseInjected {
                stamp_ps,
                at_ps,
                port,
            } => vec![
                ("stamp_ps", stamp_ps),
                ("at_ps", at_ps),
                ("port", u64::from(port)),
            ],
            EventKind::LateResponse { stamp_ps, net_ps }
            | EventKind::DeferredResponse { stamp_ps, net_ps } => {
                vec![("stamp_ps", stamp_ps), ("net_ps", net_ps)]
            }
            EventKind::FollowerAdvance {
                granted_ps,
                responses,
            } => vec![("granted_ps", granted_ps), ("responses", responses)],
            EventKind::DrainChunk {
                horizon_ps,
                responses,
            } => vec![("horizon_ps", horizon_ps), ("responses", responses)],
            EventKind::BackpressureStall { in_flight } => vec![("in_flight", in_flight)],
            EventKind::Rollback { to_ps, replayed } => {
                vec![("to_ps", to_ps), ("replayed", replayed)]
            }
            EventKind::PhaseSpan { depth, .. } => vec![("depth", u64::from(depth))],
        }
    }

    /// `true` for events that describe an operation with a wall-clock
    /// extent (rendered as Chrome "complete" events), `false` for
    /// instantaneous protocol points.
    #[must_use]
    pub fn is_span(&self) -> bool {
        matches!(
            self,
            EventKind::NetWindow { .. }
                | EventKind::FollowerAdvance { .. }
                | EventKind::DrainChunk { .. }
                | EventKind::BackpressureStall { .. }
                | EventKind::PhaseSpan { .. }
        )
    }
}

/// One recorded telemetry event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated time the event refers to, in picoseconds.
    pub t_ps: u64,
    /// Wall-clock nanoseconds since the telemetry handle was created,
    /// taken when the event (or, for spans, the operation) *ended*.
    pub wall_ns: u64,
    /// Wall-clock duration of the operation for span events; 0 for
    /// instantaneous events.
    pub dur_ns: u64,
    /// The engine the event belongs to.
    pub track: Track,
    /// What happened.
    pub kind: EventKind,
}

impl TraceEvent {
    /// Wall-clock nanoseconds the event (or the operation it spans)
    /// started at.
    #[must_use]
    pub fn start_ns(&self) -> u64 {
        self.wall_ns.saturating_sub(self.dur_ns)
    }
}

/// Fixed-width payload of the word codec: one meta word (kind tag, track,
/// phase, depth) + `t_ps` + `wall_ns` + `dur_ns` + three argument words.
pub(crate) const PAYLOAD_WORDS: usize = 7;

/// Bit layout of the meta word.
const TAG_SHIFT: u64 = 0;
const TRACK_SHIFT: u64 = 8;
const PHASE_SHIFT: u64 = 16;
const DEPTH_SHIFT: u64 = 32;
const BYTE: u64 = 0xff;

/// Codec tag of the `PhaseSpan` kind (protocol kinds use `0..=9`).
const TAG_PHASE_SPAN: u64 = 10;

impl TraceEvent {
    /// Encodes the event into the fixed word layout the sharded ring
    /// stores. Every kind fits: no kind carries more than three argument
    /// values, and `PhaseSpan`'s phase/depth pack into the meta word.
    pub(crate) fn to_words(self) -> [u64; PAYLOAD_WORDS] {
        let (tag, a): (u64, [u64; 3]) = match self.kind {
            EventKind::NetWindow { events } => (0, [events, 0, 0]),
            EventKind::WindowGranted { grant_ps, msgs } => (1, [grant_ps, msgs, 0]),
            EventKind::StimulusEnqueued {
                type_id,
                port,
                stamp_ps,
            } => (2, [u64::from(type_id), u64::from(port), stamp_ps]),
            EventKind::ResponseInjected {
                stamp_ps,
                at_ps,
                port,
            } => (3, [stamp_ps, at_ps, u64::from(port)]),
            EventKind::LateResponse { stamp_ps, net_ps } => (4, [stamp_ps, net_ps, 0]),
            EventKind::DeferredResponse { stamp_ps, net_ps } => (5, [stamp_ps, net_ps, 0]),
            EventKind::FollowerAdvance {
                granted_ps,
                responses,
            } => (6, [granted_ps, responses, 0]),
            EventKind::DrainChunk {
                horizon_ps,
                responses,
            } => (7, [horizon_ps, responses, 0]),
            EventKind::BackpressureStall { in_flight } => (8, [in_flight, 0, 0]),
            EventKind::Rollback { to_ps, replayed } => (9, [to_ps, replayed, 0]),
            EventKind::PhaseSpan { .. } => (TAG_PHASE_SPAN, [0, 0, 0]),
        };
        let mut meta = tag << TAG_SHIFT;
        meta |= u64::from(matches!(self.track, Track::Follower)) << TRACK_SHIFT;
        if let EventKind::PhaseSpan { phase, depth } = self.kind {
            meta |= (phase.index() as u64) << PHASE_SHIFT;
            meta |= u64::from(depth) << DEPTH_SHIFT;
        }
        [meta, self.t_ps, self.wall_ns, self.dur_ns, a[0], a[1], a[2]]
    }

    /// Decodes a word-layout payload; `None` on an unknown tag (a torn or
    /// never-written slot the ring reader skips).
    pub(crate) fn from_words(w: &[u64; PAYLOAD_WORDS]) -> Option<TraceEvent> {
        let [meta, t_ps, wall_ns, dur_ns, a0, a1, a2] = *w;
        let track = if meta >> TRACK_SHIFT & 1 == 1 {
            Track::Follower
        } else {
            Track::Originator
        };
        let narrow = |v: u64| u32::try_from(v).ok();
        let kind = match meta >> TAG_SHIFT & BYTE {
            0 => EventKind::NetWindow { events: a0 },
            1 => EventKind::WindowGranted {
                grant_ps: a0,
                msgs: a1,
            },
            2 => EventKind::StimulusEnqueued {
                type_id: narrow(a0)?,
                port: narrow(a1)?,
                stamp_ps: a2,
            },
            3 => EventKind::ResponseInjected {
                stamp_ps: a0,
                at_ps: a1,
                port: narrow(a2)?,
            },
            4 => EventKind::LateResponse {
                stamp_ps: a0,
                net_ps: a1,
            },
            5 => EventKind::DeferredResponse {
                stamp_ps: a0,
                net_ps: a1,
            },
            6 => EventKind::FollowerAdvance {
                granted_ps: a0,
                responses: a1,
            },
            7 => EventKind::DrainChunk {
                horizon_ps: a0,
                responses: a1,
            },
            8 => EventKind::BackpressureStall { in_flight: a0 },
            9 => EventKind::Rollback {
                to_ps: a0,
                replayed: a1,
            },
            TAG_PHASE_SPAN => EventKind::PhaseSpan {
                phase: *Phase::ALL.get((meta >> PHASE_SHIFT & BYTE) as usize)?,
                depth: narrow(meta >> DEPTH_SHIFT)?,
            },
            _ => return None,
        };
        Some(TraceEvent {
            t_ps,
            wall_ns,
            dur_ns,
            track,
            kind,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_of_each() -> Vec<EventKind> {
        let mut kinds = vec![
            EventKind::NetWindow { events: 3 },
            EventKind::WindowGranted {
                grant_ps: 10,
                msgs: 2,
            },
            EventKind::StimulusEnqueued {
                type_id: 0,
                port: 1,
                stamp_ps: 5,
            },
            EventKind::ResponseInjected {
                stamp_ps: 7,
                at_ps: 8,
                port: 1,
            },
            EventKind::LateResponse {
                stamp_ps: 1,
                net_ps: 2,
            },
            EventKind::DeferredResponse {
                stamp_ps: 1,
                net_ps: 2,
            },
            EventKind::FollowerAdvance {
                granted_ps: 9,
                responses: 1,
            },
            EventKind::DrainChunk {
                horizon_ps: 11,
                responses: 0,
            },
            EventKind::BackpressureStall { in_flight: 4 },
            EventKind::Rollback {
                to_ps: 3,
                replayed: 6,
            },
        ];
        kinds.extend(
            Phase::ALL
                .iter()
                .map(|&phase| EventKind::PhaseSpan { phase, depth: 1 }),
        );
        kinds
    }

    #[test]
    fn every_kind_has_a_registered_name() {
        for kind in one_of_each() {
            assert!(
                EventKind::NAMES.contains(&kind.name()),
                "{} missing from NAMES",
                kind.name()
            );
        }
        assert_eq!(
            EventKind::NAMES.len(),
            one_of_each().len(),
            "NAMES and the enum drifted apart"
        );
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = EventKind::NAMES.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), EventKind::NAMES.len());
    }

    #[test]
    fn args_are_nonempty_and_stable() {
        for kind in one_of_each() {
            assert!(!kind.args().is_empty(), "{}", kind.name());
        }
        let k = EventKind::WindowGranted {
            grant_ps: 42,
            msgs: 7,
        };
        assert_eq!(k.args(), vec![("grant_ps", 42), ("msgs", 7)]);
    }

    #[test]
    fn span_classification() {
        assert!(EventKind::NetWindow { events: 0 }.is_span());
        assert!(!EventKind::WindowGranted {
            grant_ps: 0,
            msgs: 0
        }
        .is_span());
    }

    #[test]
    fn phase_names_are_registered_and_micro_flagged() {
        for &phase in Phase::ALL {
            assert!(
                EventKind::NAMES.contains(&phase.name()),
                "{} missing from NAMES",
                phase.name()
            );
            assert_eq!(Phase::ALL[phase.index()], phase);
        }
        assert!(Phase::KernelPop.is_micro());
        assert!(!Phase::ParallelGrant.is_micro());
        assert!(EventKind::PhaseSpan {
            phase: Phase::KernelAdvance,
            depth: 0
        }
        .is_span());
        assert_eq!(
            EventKind::PhaseSpan {
                phase: Phase::KernelAdvance,
                depth: 0
            }
            .name(),
            "kernel.advance"
        );
    }

    #[test]
    fn word_codec_round_trips_every_kind() {
        for (i, kind) in one_of_each().into_iter().enumerate() {
            for track in [Track::Originator, Track::Follower] {
                let ev = TraceEvent {
                    t_ps: 1000 + i as u64,
                    wall_ns: 2000 + i as u64,
                    dur_ns: i as u64,
                    track,
                    kind,
                };
                let back = TraceEvent::from_words(&ev.to_words()).expect("decodable");
                assert_eq!(back, ev, "{} did not round-trip", kind.name());
            }
        }
        assert_eq!(TraceEvent::from_words(&[0xff, 0, 0, 0, 0, 0, 0]), None);
    }

    #[test]
    fn start_ns_saturates() {
        let ev = TraceEvent {
            t_ps: 0,
            wall_ns: 5,
            dur_ns: 9,
            track: Track::Originator,
            kind: EventKind::NetWindow { events: 0 },
        };
        assert_eq!(ev.start_ns(), 0);
    }
}
