//! The typed protocol-event taxonomy.
//!
//! Every event carries the *simulated* time it refers to (`t_ps`,
//! picoseconds — the unit every simulator in the workspace shares), the
//! *wall-clock* time it was recorded at (`wall_ns`, nanoseconds since the
//! telemetry handle was created) and, for span-like events, the wall-clock
//! duration the operation took. The split matters: simulated time orders
//! the protocol, wall time shows where the run actually spent its life —
//! the Chrome exporter lays events out on the wall-time axis so the
//! parallel executor's thread overlap and stalls are visually inspectable.

/// Which logical engine an event belongs to. The Chrome exporter renders
/// one track per value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Track {
    /// The network simulator — the engine whose clock runs ahead.
    Originator,
    /// The HDL simulator / test board — the engine whose clock lags.
    Follower,
}

impl Track {
    /// Stable lower-case label used by every exporter.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Track::Originator => "originator",
            Track::Follower => "follower",
        }
    }

    /// Chrome `trace_event` thread id of this track.
    #[must_use]
    pub fn tid(self) -> u32 {
        match self {
            Track::Originator => 1,
            Track::Follower => 2,
        }
    }
}

/// What happened. Field units: `*_ps` are simulated picoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The originator executed a batch of network events (span).
    NetWindow {
        /// Network events executed inside the window.
        events: u64,
    },
    /// A timing-window grant (the time-stamped null message of §3.1) was
    /// issued to the follower.
    WindowGranted {
        /// The grant horizon (exclusive).
        grant_ps: u64,
        /// Stimulus messages shipped with the grant.
        msgs: u64,
    },
    /// A stimulus message was enqueued into per-type input queue `I_j`.
    StimulusEnqueued {
        /// The message type `j` of the queue.
        type_id: u32,
        /// The co-simulation port addressed.
        port: u32,
        /// The originator stamp carried by the message.
        stamp_ps: u64,
    },
    /// A δ_j-delayed follower response was injected into the network model.
    ResponseInjected {
        /// The follower's stamp on the response.
        stamp_ps: u64,
        /// The network time it was injected at.
        at_ps: u64,
        /// The co-simulation port it returned on.
        port: u32,
    },
    /// A response arrived behind the network clock under the *serial*
    /// executor — a feedforward-assumption violation (see
    /// `CouplingStats::late_responses`).
    LateResponse {
        /// The follower's stamp on the response.
        stamp_ps: u64,
        /// The network clock when it surfaced.
        net_ps: u64,
    },
    /// A response arrived behind the network clock because the originator
    /// pipelined ahead (expected under the parallel executor; see
    /// `CouplingStats::deferred_responses`).
    DeferredResponse {
        /// The follower's stamp on the response.
        stamp_ps: u64,
        /// The network clock when it surfaced.
        net_ps: u64,
    },
    /// The follower swept one granted window (span).
    FollowerAdvance {
        /// The grant horizon swept to.
        granted_ps: u64,
        /// Responses the sweep produced.
        responses: u64,
    },
    /// One chunk of the end-of-run drain phase (span).
    DrainChunk {
        /// The horizon the chunk advanced to.
        horizon_ps: u64,
        /// Responses the chunk surfaced.
        responses: u64,
    },
    /// The originator blocked on the bounded command channel — the
    /// follower is the bottleneck (span over the blocked send).
    BackpressureStall {
        /// Windows in flight when the stall began.
        in_flight: u64,
    },
    /// The optimistic synchronizer rolled back to an earlier state.
    Rollback {
        /// The restored simulated time.
        to_ps: u64,
        /// Events replayed because of the rollback.
        replayed: u64,
    },
}

impl EventKind {
    /// Stable snake_case event name used by every exporter and the JSONL
    /// schema. Names are append-only: renaming one breaks recorded traces.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::NetWindow { .. } => "net_window",
            EventKind::WindowGranted { .. } => "window_granted",
            EventKind::StimulusEnqueued { .. } => "stimulus_enqueued",
            EventKind::ResponseInjected { .. } => "response_injected",
            EventKind::LateResponse { .. } => "late_response",
            EventKind::DeferredResponse { .. } => "deferred_response",
            EventKind::FollowerAdvance { .. } => "follower_advance",
            EventKind::DrainChunk { .. } => "drain_chunk",
            EventKind::BackpressureStall { .. } => "backpressure_stall",
            EventKind::Rollback { .. } => "rollback",
        }
    }

    /// Every event name the taxonomy defines, for schema validation.
    pub const NAMES: &'static [&'static str] = &[
        "net_window",
        "window_granted",
        "stimulus_enqueued",
        "response_injected",
        "late_response",
        "deferred_response",
        "follower_advance",
        "drain_chunk",
        "backpressure_stall",
        "rollback",
    ];

    /// The kind-specific payload as `(key, value)` pairs, in a stable
    /// order. Exporters render these as the event's `args`.
    #[must_use]
    pub fn args(&self) -> Vec<(&'static str, u64)> {
        match *self {
            EventKind::NetWindow { events } => vec![("events", events)],
            EventKind::WindowGranted { grant_ps, msgs } => {
                vec![("grant_ps", grant_ps), ("msgs", msgs)]
            }
            EventKind::StimulusEnqueued {
                type_id,
                port,
                stamp_ps,
            } => vec![
                ("type_id", u64::from(type_id)),
                ("port", u64::from(port)),
                ("stamp_ps", stamp_ps),
            ],
            EventKind::ResponseInjected {
                stamp_ps,
                at_ps,
                port,
            } => vec![
                ("stamp_ps", stamp_ps),
                ("at_ps", at_ps),
                ("port", u64::from(port)),
            ],
            EventKind::LateResponse { stamp_ps, net_ps }
            | EventKind::DeferredResponse { stamp_ps, net_ps } => {
                vec![("stamp_ps", stamp_ps), ("net_ps", net_ps)]
            }
            EventKind::FollowerAdvance {
                granted_ps,
                responses,
            } => vec![("granted_ps", granted_ps), ("responses", responses)],
            EventKind::DrainChunk {
                horizon_ps,
                responses,
            } => vec![("horizon_ps", horizon_ps), ("responses", responses)],
            EventKind::BackpressureStall { in_flight } => vec![("in_flight", in_flight)],
            EventKind::Rollback { to_ps, replayed } => {
                vec![("to_ps", to_ps), ("replayed", replayed)]
            }
        }
    }

    /// `true` for events that describe an operation with a wall-clock
    /// extent (rendered as Chrome "complete" events), `false` for
    /// instantaneous protocol points.
    #[must_use]
    pub fn is_span(&self) -> bool {
        matches!(
            self,
            EventKind::NetWindow { .. }
                | EventKind::FollowerAdvance { .. }
                | EventKind::DrainChunk { .. }
                | EventKind::BackpressureStall { .. }
        )
    }
}

/// One recorded telemetry event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated time the event refers to, in picoseconds.
    pub t_ps: u64,
    /// Wall-clock nanoseconds since the telemetry handle was created,
    /// taken when the event (or, for spans, the operation) *ended*.
    pub wall_ns: u64,
    /// Wall-clock duration of the operation for span events; 0 for
    /// instantaneous events.
    pub dur_ns: u64,
    /// The engine the event belongs to.
    pub track: Track,
    /// What happened.
    pub kind: EventKind,
}

impl TraceEvent {
    /// Wall-clock nanoseconds the event (or the operation it spans)
    /// started at.
    #[must_use]
    pub fn start_ns(&self) -> u64 {
        self.wall_ns.saturating_sub(self.dur_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_of_each() -> Vec<EventKind> {
        vec![
            EventKind::NetWindow { events: 3 },
            EventKind::WindowGranted {
                grant_ps: 10,
                msgs: 2,
            },
            EventKind::StimulusEnqueued {
                type_id: 0,
                port: 1,
                stamp_ps: 5,
            },
            EventKind::ResponseInjected {
                stamp_ps: 7,
                at_ps: 8,
                port: 1,
            },
            EventKind::LateResponse {
                stamp_ps: 1,
                net_ps: 2,
            },
            EventKind::DeferredResponse {
                stamp_ps: 1,
                net_ps: 2,
            },
            EventKind::FollowerAdvance {
                granted_ps: 9,
                responses: 1,
            },
            EventKind::DrainChunk {
                horizon_ps: 11,
                responses: 0,
            },
            EventKind::BackpressureStall { in_flight: 4 },
            EventKind::Rollback {
                to_ps: 3,
                replayed: 6,
            },
        ]
    }

    #[test]
    fn every_kind_has_a_registered_name() {
        for kind in one_of_each() {
            assert!(
                EventKind::NAMES.contains(&kind.name()),
                "{} missing from NAMES",
                kind.name()
            );
        }
        assert_eq!(
            EventKind::NAMES.len(),
            one_of_each().len(),
            "NAMES and the enum drifted apart"
        );
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = EventKind::NAMES.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), EventKind::NAMES.len());
    }

    #[test]
    fn args_are_nonempty_and_stable() {
        for kind in one_of_each() {
            assert!(!kind.args().is_empty(), "{}", kind.name());
        }
        let k = EventKind::WindowGranted {
            grant_ps: 42,
            msgs: 7,
        };
        assert_eq!(k.args(), vec![("grant_ps", 42), ("msgs", 7)]);
    }

    #[test]
    fn span_classification() {
        assert!(EventKind::NetWindow { events: 0 }.is_span());
        assert!(!EventKind::WindowGranted {
            grant_ps: 0,
            msgs: 0
        }
        .is_span());
    }

    #[test]
    fn start_ns_saturates() {
        let ev = TraceEvent {
            t_ps: 0,
            wall_ns: 5,
            dur_ns: 9,
            track: Track::Originator,
            kind: EventKind::NetWindow { events: 0 },
        };
        assert_eq!(ev.start_ns(), 0);
    }
}
