//! The metrics registry: named counters, gauges and log2-bucketed
//! histograms.
//!
//! Instrumented code registers a metric once (getting back a cheap
//! atomically-updatable handle, a no-op when telemetry is disabled) and
//! updates it lock-free on the hot path. Any thread may snapshot the whole
//! registry mid-run — the quantities the paper's protocol lives on
//! (follower lag, window size, queue depth `|I_j|`, channel occupancy) are
//! exactly the ones an engineer needs to watch *while* a coupling stalls,
//! not after.
//!
//! Names are dotted paths (`originator.net_events`, `follower.lag_ps`,
//! `sync.queue_depth.type0`): the prefix is the entity, the suffix the
//! quantity, so the console exporter can group per entity.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Histogram bucket count: bucket 0 holds zeros, bucket `b >= 1` holds
/// values in `[2^(b-1), 2^b)`, so 65 buckets cover all of `u64`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The bucket index `value` falls into.
#[must_use]
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros()) as usize
    }
}

/// Inclusive lower bound of bucket `b` (0 for the zero bucket).
#[must_use]
pub fn bucket_floor(b: usize) -> u64 {
    if b == 0 {
        0
    } else {
        1u64 << (b - 1)
    }
}

#[derive(Debug, Default)]
struct CounterCell {
    value: AtomicU64,
}

#[derive(Debug, Default)]
struct GaugeCell {
    value: AtomicU64,
}

#[derive(Debug)]
struct HistogramCell {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramCell {
    fn default() -> Self {
        HistogramCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// A monotone counter handle. A disabled handle (the default) is a no-op.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<CounterCell>>);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 for a disabled handle).
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.value.load(Ordering::Relaxed))
    }
}

/// A last-value gauge handle. A disabled handle (the default) is a no-op.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<GaugeCell>>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: u64) {
        if let Some(cell) = &self.0 {
            cell.value.store(v, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a disabled handle).
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.value.load(Ordering::Relaxed))
    }
}

/// A log2-bucketed histogram handle. A disabled handle (the default) is a
/// no-op.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCell>>);

impl Histogram {
    /// Records one observation.
    pub fn record(&self, value: u64) {
        if let Some(cell) = &self.0 {
            cell.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
            cell.count.fetch_add(1, Ordering::Relaxed);
            cell.sum.fetch_add(value, Ordering::Relaxed);
            cell.min.fetch_min(value, Ordering::Relaxed);
            cell.max.fetch_max(value, Ordering::Relaxed);
        }
    }

    /// Observations recorded so far (0 for a disabled handle).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.count.load(Ordering::Relaxed))
    }
}

/// A point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (wraps only past `u64::MAX` total).
    pub sum: u64,
    /// Smallest observed value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Non-empty buckets as `(inclusive lower bound, count)`, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean of the observations (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper-bound estimate of the `p`-th percentile (`0.0..=1.0`): the
    /// floor of the first bucket whose cumulative count covers `p` — a
    /// log2-resolution estimate, which is all the bucketing retains.
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (p.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for &(floor, n) in &self.buckets {
            seen += n;
            if seen >= target {
                return floor;
            }
        }
        self.max
    }
}

/// A point-in-time copy of the whole registry, ordered by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name.
    pub gauges: Vec<(String, u64)>,
    /// Histogram snapshots by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Looks up a counter by name.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a gauge by name.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Looks up a histogram by name.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

#[derive(Debug)]
enum Metric {
    Counter(Arc<CounterCell>),
    Gauge(Arc<GaugeCell>),
    Histogram(Arc<HistogramCell>),
}

/// The registry: names to metric cells. Registration takes a lock;
/// updates through the returned handles are lock-free.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter named `name`, creating it on first use.
    /// Registering the same name as a different metric kind panics —
    /// that is a programming error, not a runtime condition.
    ///
    /// # Panics
    ///
    /// Panics when `name` is already registered as a gauge or histogram.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(CounterCell::default())));
        match metric {
            Metric::Counter(cell) => Counter(Some(Arc::clone(cell))),
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Returns the gauge named `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics when `name` is already registered as another kind.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(GaugeCell::default())));
        match metric {
            Metric::Gauge(cell) => Gauge(Some(Arc::clone(cell))),
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Returns the histogram named `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics when `name` is already registered as another kind.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(HistogramCell::default())));
        match metric {
            Metric::Histogram(cell) => Histogram(Some(Arc::clone(cell))),
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Copies every metric out. Safe to call from any thread mid-run;
    /// values are individually (not mutually) consistent — each atomic is
    /// read once, concurrent updates may land between reads.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let metrics = self.metrics.lock().expect("metrics registry poisoned");
        let mut snap = MetricsSnapshot::default();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(cell) => snap
                    .counters
                    .push((name.clone(), cell.value.load(Ordering::Relaxed))),
                Metric::Gauge(cell) => snap
                    .gauges
                    .push((name.clone(), cell.value.load(Ordering::Relaxed))),
                Metric::Histogram(cell) => {
                    let buckets: Vec<(u64, u64)> = cell
                        .buckets
                        .iter()
                        .enumerate()
                        .filter_map(|(b, n)| {
                            let n = n.load(Ordering::Relaxed);
                            (n > 0).then_some((bucket_floor(b), n))
                        })
                        .collect();
                    snap.histograms.push((
                        name.clone(),
                        HistogramSnapshot {
                            count: cell.count.load(Ordering::Relaxed),
                            sum: cell.sum.load(Ordering::Relaxed),
                            min: cell.min.load(Ordering::Relaxed),
                            max: cell.max.load(Ordering::Relaxed),
                            buckets,
                        },
                    ));
                }
            }
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        // The edge cases the log2 scheme must get right: zero has its own
        // bucket, powers of two open a new bucket, the value just below a
        // power stays in the previous one, u64::MAX lands in the last.
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of((1 << 32) - 1), 32);
        assert_eq!(bucket_of(1 << 32), 33);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert!(bucket_of(u64::MAX) < HISTOGRAM_BUCKETS);
    }

    #[test]
    fn bucket_floor_inverts_bucket_of() {
        for b in 0..HISTOGRAM_BUCKETS {
            let floor = bucket_floor(b);
            assert_eq!(bucket_of(floor), b, "floor of bucket {b}");
            if floor > 0 {
                assert_eq!(bucket_of(floor - 1), b - 1, "below bucket {b}");
            }
        }
    }

    #[test]
    fn histogram_records_extremes() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lag");
        for v in [0u64, 1, 2, 3, u64::MAX] {
            h.record(v);
        }
        let snap = reg.snapshot();
        let hs = snap.histogram("lag").unwrap();
        assert_eq!(hs.count, 5);
        assert_eq!(hs.min, 0);
        assert_eq!(hs.max, u64::MAX);
        // 0 -> bucket 0; 1 -> bucket 1; 2,3 -> bucket 2; MAX -> bucket 64.
        assert_eq!(
            hs.buckets,
            vec![(0, 1), (1, 1), (2, 2), (bucket_floor(64), 1)]
        );
    }

    #[test]
    fn empty_histogram_snapshot() {
        let reg = MetricsRegistry::new();
        let _ = reg.histogram("empty");
        let snap = reg.snapshot();
        let hs = snap.histogram("empty").unwrap();
        assert_eq!(hs.count, 0);
        assert_eq!(hs.mean(), 0.0);
        assert_eq!(hs.percentile(0.5), 0);
        assert_eq!(hs.min, u64::MAX, "min of nothing is the identity");
    }

    #[test]
    fn percentile_estimates_within_bucket_resolution() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("h");
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = reg.snapshot();
        let hs = snap.histogram("h").unwrap();
        let p50 = hs.percentile(0.5);
        // True median 500; log2 estimate returns the floor of its bucket.
        assert_eq!(p50, 256, "floor of [256, 512) which covers the median");
        assert_eq!(hs.percentile(1.0), 512, "floor of the last needed bucket");
        assert_eq!(hs.percentile(0.0), 1);
    }

    #[test]
    fn counters_and_gauges_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("a.count");
        c.add(5);
        c.inc();
        let g = reg.gauge("a.depth");
        g.set(7);
        g.set(3);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("a.count"), Some(6));
        assert_eq!(snap.gauge("a.depth"), Some(3));
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn same_name_returns_same_cell() {
        let reg = MetricsRegistry::new();
        let c1 = reg.counter("shared");
        let c2 = reg.counter("shared");
        c1.inc();
        c2.inc();
        assert_eq!(reg.snapshot().counter("shared"), Some(2));
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflict_panics() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("x");
        let _ = reg.gauge("x");
    }

    #[test]
    fn disabled_handles_are_noops() {
        let c = Counter::default();
        c.add(10);
        assert_eq!(c.get(), 0);
        let g = Gauge::default();
        g.set(10);
        assert_eq!(g.get(), 0);
        let h = Histogram::default();
        h.record(10);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn snapshot_under_concurrent_update() {
        let reg = Arc::new(MetricsRegistry::new());
        let h = reg.histogram("concurrent");
        let c = reg.counter("total");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let h = h.clone();
                let c = c.clone();
                scope.spawn(move || {
                    for v in 0..10_000u64 {
                        h.record(v);
                        c.inc();
                    }
                });
            }
            // Snapshot while the writers are live: totals must be monotone
            // and internally sane at every observation.
            let mut last = 0u64;
            for _ in 0..50 {
                let snap = reg.snapshot();
                let n = snap.counter("total").unwrap_or(0);
                assert!(n >= last, "counter went backwards");
                let hs = snap.histogram("concurrent").unwrap();
                let bucket_total: u64 = hs.buckets.iter().map(|&(_, n)| n).sum();
                // count is bumped after the bucket, so buckets >= count.
                assert!(bucket_total + 4 >= hs.count);
                last = n;
            }
        });
        let snap = reg.snapshot();
        assert_eq!(snap.counter("total"), Some(40_000));
        assert_eq!(snap.histogram("concurrent").unwrap().count, 40_000);
    }
}
