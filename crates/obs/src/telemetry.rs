//! The [`Telemetry`] handle instrumented code holds.
//!
//! The handle is a newtype over `Option<Arc<Inner>>`: the disabled default
//! is a `None` the branch predictor learns immediately, so instrumenting a
//! hot loop costs one predictable branch per call site. Enabled handles
//! share one [`TraceSink`] and one [`MetricsRegistry`] across clones —
//! `Coupling`, both `ParallelCoupling` threads, the kernel and the sync
//! engine all record into the same place, and any thread can snapshot
//! mid-run.

use crate::event::{EventKind, TraceEvent, Track};
use crate::metrics::{Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot};
use crate::sink::TraceSink;
use std::sync::Arc;
use std::time::Instant;

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    sink: TraceSink,
    metrics: MetricsRegistry,
}

/// A cloneable telemetry handle. The default is disabled: every recording
/// method is a no-op and every metric handle it hands out is inert.
#[derive(Debug, Clone, Default)]
pub struct Telemetry(Option<Arc<Inner>>);

impl Telemetry {
    /// The disabled handle — what uninstrumented runs pay for telemetry.
    #[must_use]
    pub fn disabled() -> Self {
        Telemetry(None)
    }

    /// An enabled handle with the default event-ring capacity.
    #[must_use]
    pub fn enabled() -> Self {
        Telemetry::with_capacity(crate::sink::DEFAULT_CAPACITY)
    }

    /// An enabled handle retaining at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Telemetry(Some(Arc::new(Inner {
            epoch: Instant::now(),
            sink: TraceSink::with_capacity(capacity),
            metrics: MetricsRegistry::new(),
        })))
    }

    /// `true` when this handle actually records.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Wall-clock nanoseconds since the handle was created (0 when
    /// disabled — callers use this to stamp spans and must not pay for a
    /// clock read on the no-op path).
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        self.0.as_ref().map_or(0, |inner| {
            u64::try_from(inner.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
        })
    }

    /// Records an instantaneous event at simulated time `t_ps`.
    pub fn record(&self, track: Track, t_ps: u64, kind: EventKind) {
        if let Some(inner) = &self.0 {
            inner.sink.push(TraceEvent {
                t_ps,
                wall_ns: u64::try_from(inner.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX),
                dur_ns: 0,
                track,
                kind,
            });
        }
    }

    /// Records a span event whose operation started at `start_ns` (a value
    /// previously obtained from [`Telemetry::now_ns`]) and ends now.
    pub fn record_span(&self, track: Track, t_ps: u64, start_ns: u64, kind: EventKind) {
        if let Some(inner) = &self.0 {
            let wall_ns = u64::try_from(inner.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
            inner.sink.push(TraceEvent {
                t_ps,
                wall_ns,
                dur_ns: wall_ns.saturating_sub(start_ns),
                track,
                kind,
            });
        }
    }

    /// A counter handle for `name` — inert when disabled, shared with
    /// every other holder of the same name when enabled.
    ///
    /// # Panics
    ///
    /// Panics when `name` is already registered as a different metric kind.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        self.0
            .as_ref()
            .map_or_else(Counter::default, |inner| inner.metrics.counter(name))
    }

    /// A gauge handle for `name` — inert when disabled.
    ///
    /// # Panics
    ///
    /// Panics when `name` is already registered as a different metric kind.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        self.0
            .as_ref()
            .map_or_else(Gauge::default, |inner| inner.metrics.gauge(name))
    }

    /// A histogram handle for `name` — inert when disabled.
    ///
    /// # Panics
    ///
    /// Panics when `name` is already registered as a different metric kind.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        self.0
            .as_ref()
            .map_or_else(Histogram::default, |inner| inner.metrics.histogram(name))
    }

    /// The retained events, oldest first (empty when disabled).
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        self.0.as_ref().map_or_else(Vec::new, |i| i.sink.snapshot())
    }

    /// Events evicted from the ring because it was full.
    #[must_use]
    pub fn dropped_events(&self) -> u64 {
        self.0.as_ref().map_or(0, |i| i.sink.dropped())
    }

    /// A point-in-time copy of every metric (empty when disabled). Safe to
    /// call from any thread while a run is in flight.
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.0
            .as_ref()
            .map_or_else(MetricsSnapshot::default, |i| i.metrics.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_inert() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        assert_eq!(tel.now_ns(), 0);
        tel.record(Track::Originator, 5, EventKind::NetWindow { events: 1 });
        assert!(tel.events().is_empty());
        let c = tel.counter("x");
        c.inc();
        assert_eq!(c.get(), 0);
        assert_eq!(tel.metrics_snapshot(), MetricsSnapshot::default());
        assert!(Telemetry::default().0.is_none(), "default is disabled");
    }

    #[test]
    fn clones_share_the_sink_and_registry() {
        let tel = Telemetry::enabled();
        let other = tel.clone();
        tel.record(Track::Originator, 1, EventKind::NetWindow { events: 1 });
        other.record(
            Track::Follower,
            2,
            EventKind::FollowerAdvance {
                granted_ps: 2,
                responses: 0,
            },
        );
        let events = tel.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].track, Track::Originator);
        assert_eq!(events[1].track, Track::Follower);

        let c = tel.counter("shared");
        other.counter("shared").add(3);
        assert_eq!(c.get(), 3);
    }

    #[test]
    fn span_durations_are_measured() {
        let tel = Telemetry::enabled();
        let start = tel.now_ns();
        std::thread::sleep(std::time::Duration::from_millis(2));
        tel.record_span(
            Track::Follower,
            100,
            start,
            EventKind::DrainChunk {
                horizon_ps: 100,
                responses: 0,
            },
        );
        let events = tel.events();
        assert_eq!(events.len(), 1);
        assert!(events[0].dur_ns >= 1_000_000, "slept 2ms, span too short");
        assert!(events[0].wall_ns >= events[0].dur_ns);
        assert_eq!(events[0].start_ns(), start);
    }

    #[test]
    fn wall_clock_is_monotone_across_events() {
        let tel = Telemetry::enabled();
        for i in 0..100u64 {
            tel.record(Track::Originator, i, EventKind::NetWindow { events: i });
        }
        let events = tel.events();
        assert!(events.windows(2).all(|w| w[0].wall_ns <= w[1].wall_ns));
    }
}
