//! The [`Telemetry`] handle instrumented code holds.
//!
//! The handle is a newtype over `Option<Arc<Inner>>`: the disabled default
//! is a `None` the branch predictor learns immediately, so instrumenting a
//! hot loop costs one predictable branch per call site. Enabled handles
//! share one [`TraceSink`] and one [`MetricsRegistry`] across clones —
//! `Coupling`, both `ParallelCoupling` threads, the kernel and the sync
//! engine all record into the same place, and any thread can snapshot
//! mid-run.
//!
//! Telemetry v2 adds three things on top:
//!
//! * **sampling policies** ([`TraceMode`]) — full tracing, 1-in-N event
//!   sampling, or counters-only. Metrics are *always* live on an enabled
//!   handle; only trace-event recording is thinned.
//! * **RAII timing spans** — [`Telemetry::span`] opens a nested
//!   [`SpanGuard`] that records a [`Phase`] span when dropped.
//! * **sampled micro-phases** — per-step kernel phases are far too hot to
//!   trace unconditionally, so call sites gate them on
//!   [`Telemetry::micro_gate`] (true once per [`MICRO_SAMPLE_STRIDE`]
//!   steps) and record via [`Telemetry::record_phase`]; the profile
//!   report extrapolates their totals by the stride.

use crate::event::{EventKind, Phase, TraceEvent, Track};
use crate::metrics::{Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot};
use crate::report::ProfileReport;
use crate::sink::TraceSink;
use std::cell::Cell;
use std::num::NonZeroU32;
use std::sync::Arc;
use std::time::Instant;

/// Stride of the micro-phase sampler: per-step phases (`kernel.pop`,
/// `cycle.eval`, …) are recorded once per this many occurrences per
/// thread, bounding tracing overhead on million-step runs.
pub const MICRO_SAMPLE_STRIDE: u64 = 64;

/// What an enabled handle records into its trace ring. Metric instruments
/// (counters, gauges, histograms) are unaffected — they are always live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// Record every protocol event (micro-phases still sample).
    Full,
    /// Record one in `n` protocol events (per recording thread).
    Sampled(NonZeroU32),
    /// Record no trace events at all — metrics only.
    CountersOnly,
}

thread_local! {
    /// Per-thread 1-in-N decimation counter for [`TraceMode::Sampled`].
    static SAMPLE_TICK: Cell<u64> = const { Cell::new(0) };
    /// Per-thread decimation counter for micro-phase sampling.
    static MICRO_TICK: Cell<u64> = const { Cell::new(0) };
    /// Per-thread open-span nesting depth.
    static SPAN_DEPTH: Cell<u32> = const { Cell::new(0) };
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    sink: TraceSink,
    metrics: MetricsRegistry,
    mode: TraceMode,
}

impl Inner {
    fn now_ns(&self) -> u64 {
        // u64 arithmetic, not `as_nanos()`: the u128 widening costs a
        // measurable fraction of a ~40 ns clock read on the hot path, and
        // a u64 of nanoseconds spans 584 years of process uptime.
        let elapsed = self.epoch.elapsed();
        elapsed
            .as_secs()
            .saturating_mul(1_000_000_000)
            .saturating_add(u64::from(elapsed.subsec_nanos()))
    }

    /// Should this trace event be recorded under the handle's mode?
    fn trace_gate(&self) -> bool {
        match self.mode {
            TraceMode::Full => true,
            TraceMode::CountersOnly => false,
            TraceMode::Sampled(n) => SAMPLE_TICK.with(|tick| {
                let t = tick.get();
                tick.set(t.wrapping_add(1));
                t % u64::from(n.get()) == 0
            }),
        }
    }
}

/// A cloneable telemetry handle. The default is disabled: every recording
/// method is a no-op and every metric handle it hands out is inert.
#[derive(Debug, Clone, Default)]
pub struct Telemetry(Option<Arc<Inner>>);

impl Telemetry {
    /// The disabled handle — what uninstrumented runs pay for telemetry.
    #[must_use]
    pub fn disabled() -> Self {
        Telemetry(None)
    }

    /// An enabled full-trace handle with the default per-producer ring
    /// capacity.
    #[must_use]
    pub fn enabled() -> Self {
        Telemetry::with_capacity(crate::sink::DEFAULT_CAPACITY)
    }

    /// An enabled full-trace handle retaining at most `capacity` events
    /// per producer thread.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Telemetry::with_mode(capacity, TraceMode::Full)
    }

    /// An enabled handle recording no trace events — counters, gauges and
    /// histograms only. The cheapest always-on production policy.
    #[must_use]
    pub fn counters_only() -> Self {
        Telemetry::with_mode(1, TraceMode::CountersOnly)
    }

    /// An enabled handle recording one in `one_in_n` protocol events.
    ///
    /// # Panics
    ///
    /// Panics if `one_in_n` is zero.
    #[must_use]
    pub fn sampled(one_in_n: u32) -> Self {
        let n = NonZeroU32::new(one_in_n).expect("sampling stride must be non-zero");
        Telemetry::with_mode(crate::sink::DEFAULT_CAPACITY, TraceMode::Sampled(n))
    }

    /// An enabled handle with an explicit capacity and [`TraceMode`].
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_mode(capacity: usize, mode: TraceMode) -> Self {
        Telemetry(Some(Arc::new(Inner {
            epoch: Instant::now(),
            sink: TraceSink::with_capacity(capacity),
            metrics: MetricsRegistry::new(),
            mode,
        })))
    }

    /// `true` when this handle actually records.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The handle's trace mode (`None` when disabled).
    #[must_use]
    pub fn mode(&self) -> Option<TraceMode> {
        self.0.as_ref().map(|inner| inner.mode)
    }

    /// Wall-clock nanoseconds since the handle was created (0 when
    /// disabled — callers use this to stamp spans and must not pay for a
    /// clock read on the no-op path).
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        self.0.as_ref().map_or(0, |inner| inner.now_ns())
    }

    /// Records an instantaneous event at simulated time `t_ps`.
    pub fn record(&self, track: Track, t_ps: u64, kind: EventKind) {
        if let Some(inner) = &self.0 {
            if inner.trace_gate() {
                inner.sink.push(TraceEvent {
                    t_ps,
                    wall_ns: inner.now_ns(),
                    dur_ns: 0,
                    track,
                    kind,
                });
            }
        }
    }

    /// Records a span event whose operation started at `start_ns` (a value
    /// previously obtained from [`Telemetry::now_ns`]) and ends now.
    pub fn record_span(&self, track: Track, t_ps: u64, start_ns: u64, kind: EventKind) {
        if let Some(inner) = &self.0 {
            if inner.trace_gate() {
                let wall_ns = inner.now_ns();
                inner.sink.push(TraceEvent {
                    t_ps,
                    wall_ns,
                    dur_ns: wall_ns.saturating_sub(start_ns),
                    track,
                    kind,
                });
            }
        }
    }

    /// Opens a RAII timing span over `phase`: the returned guard records a
    /// [`EventKind::PhaseSpan`] when dropped, carrying the wall-clock
    /// duration and the nesting depth it was opened at. Nesting is
    /// per-thread: spans opened while another guard is live record one
    /// level deeper. Inert when disabled, in counters-only mode, or when
    /// the 1-in-N sampler skips this occurrence.
    pub fn span(&self, track: Track, t_ps: u64, phase: Phase) -> SpanGuard<'_> {
        let armed = self.0.as_ref().is_some_and(|inner| inner.trace_gate());
        let start_ns = if armed {
            SPAN_DEPTH.with(|d| d.set(d.get().saturating_add(1)));
            self.now_ns()
        } else {
            0
        };
        SpanGuard {
            tel: self,
            track,
            t_ps,
            phase,
            start_ns,
            armed,
        }
    }

    /// `true` when trace events can record at all under this handle's
    /// mode. The cheap pre-check call sites use to avoid capturing a
    /// start stamp (a clock read) that `record_span` would then discard —
    /// disabled and counters-only handles never record trace events.
    #[must_use]
    pub fn trace_active(&self) -> bool {
        self.0
            .as_ref()
            .is_some_and(|inner| inner.mode != TraceMode::CountersOnly)
    }

    /// The micro-phase sampling gate: `true` once per
    /// [`MICRO_SAMPLE_STRIDE`] calls per thread while trace recording is
    /// active. Call sites capture `now_ns` and record via
    /// [`Telemetry::record_phase`] only when this returns `true`.
    #[must_use]
    pub fn micro_gate(&self) -> bool {
        match &self.0 {
            None => false,
            Some(inner) if inner.mode == TraceMode::CountersOnly => false,
            Some(_) => MICRO_TICK.with(|tick| {
                let t = tick.get();
                tick.set(t.wrapping_add(1));
                t % MICRO_SAMPLE_STRIDE == 0
            }),
        }
    }

    /// Records a phase span that started at `start_ns`, bypassing the
    /// 1-in-N sampler — the caller already made the sampling decision
    /// (via [`Telemetry::micro_gate`] or a [`SpanGuard`]).
    ///
    /// Returns the span's end stamp (0 when disabled) so back-to-back
    /// segments can reuse it as the next segment's start instead of paying
    /// a second clock read per boundary.
    pub fn record_phase(&self, track: Track, t_ps: u64, phase: Phase, start_ns: u64) -> u64 {
        let Some(inner) = &self.0 else {
            return 0;
        };
        let wall_ns = inner.now_ns();
        inner.sink.push(TraceEvent {
            t_ps,
            wall_ns,
            dur_ns: wall_ns.saturating_sub(start_ns),
            track,
            kind: EventKind::PhaseSpan {
                phase,
                depth: SPAN_DEPTH.with(Cell::get),
            },
        });
        wall_ns
    }

    /// A counter handle for `name` — inert when disabled, shared with
    /// every other holder of the same name when enabled.
    ///
    /// # Panics
    ///
    /// Panics when `name` is already registered as a different metric kind.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        self.0
            .as_ref()
            .map_or_else(Counter::default, |inner| inner.metrics.counter(name))
    }

    /// A gauge handle for `name` — inert when disabled.
    ///
    /// # Panics
    ///
    /// Panics when `name` is already registered as a different metric kind.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        self.0
            .as_ref()
            .map_or_else(Gauge::default, |inner| inner.metrics.gauge(name))
    }

    /// A histogram handle for `name` — inert when disabled.
    ///
    /// # Panics
    ///
    /// Panics when `name` is already registered as a different metric kind.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        self.0
            .as_ref()
            .map_or_else(Histogram::default, |inner| inner.metrics.histogram(name))
    }

    /// The retained events merged across every producer thread, oldest
    /// wall-clock stamp first (empty when disabled).
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        self.0.as_ref().map_or_else(Vec::new, |i| i.sink.snapshot())
    }

    /// Events evicted from a producer's ring because it was full.
    #[must_use]
    pub fn dropped_events(&self) -> u64 {
        self.0.as_ref().map_or(0, |i| i.sink.dropped())
    }

    /// A point-in-time copy of every metric (empty when disabled). Safe to
    /// call from any thread while a run is in flight.
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.0
            .as_ref()
            .map_or_else(MetricsSnapshot::default, |i| i.metrics.snapshot())
    }

    /// Builds the self-profiling report: per-phase wall-time rows
    /// aggregated from the recorded span events, with sampled micro-phase
    /// totals extrapolated by their stride.
    #[must_use]
    pub fn profile(&self) -> ProfileReport {
        ProfileReport::build(self)
    }
}

/// RAII guard of one open [`Telemetry::span`]. Records its phase span —
/// duration, track, nesting depth — when dropped. Leaking the guard
/// (`mem::forget`) loses that one record and leaves the thread's nesting
/// level raised, but never corrupts later spans: depth bookkeeping
/// saturates instead of underflowing.
#[must_use = "a span measures the scope it is bound to; dropping it immediately records nothing"]
#[derive(Debug)]
pub struct SpanGuard<'a> {
    tel: &'a Telemetry,
    track: Track,
    t_ps: u64,
    phase: Phase,
    start_ns: u64,
    armed: bool,
}

impl SpanGuard<'_> {
    /// Updates the simulated time the span will be stamped with (useful
    /// when the span opens before the horizon it covers is known).
    pub fn set_t_ps(&mut self, t_ps: u64) {
        self.t_ps = t_ps;
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            let depth = SPAN_DEPTH.with(|d| {
                let v = d.get().saturating_sub(1);
                d.set(v);
                v
            });
            if let Some(inner) = &self.tel.0 {
                let wall_ns = inner.now_ns();
                inner.sink.push(TraceEvent {
                    t_ps: self.t_ps,
                    wall_ns,
                    dur_ns: wall_ns.saturating_sub(self.start_ns),
                    track: self.track,
                    kind: EventKind::PhaseSpan {
                        phase: self.phase,
                        depth,
                    },
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_inert() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        assert_eq!(tel.now_ns(), 0);
        assert_eq!(tel.mode(), None);
        tel.record(Track::Originator, 5, EventKind::NetWindow { events: 1 });
        drop(tel.span(Track::Originator, 5, Phase::ParallelGrant));
        assert!(!tel.micro_gate());
        assert!(tel.events().is_empty());
        let c = tel.counter("x");
        c.inc();
        assert_eq!(c.get(), 0);
        assert_eq!(tel.metrics_snapshot(), MetricsSnapshot::default());
        assert!(Telemetry::default().0.is_none(), "default is disabled");
    }

    #[test]
    fn clones_share_the_sink_and_registry() {
        let tel = Telemetry::enabled();
        let other = tel.clone();
        tel.record(Track::Originator, 1, EventKind::NetWindow { events: 1 });
        other.record(
            Track::Follower,
            2,
            EventKind::FollowerAdvance {
                granted_ps: 2,
                responses: 0,
            },
        );
        let events = tel.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].track, Track::Originator);
        assert_eq!(events[1].track, Track::Follower);

        let c = tel.counter("shared");
        other.counter("shared").add(3);
        assert_eq!(c.get(), 3);
    }

    #[test]
    fn span_durations_are_measured() {
        let tel = Telemetry::enabled();
        let start = tel.now_ns();
        std::thread::sleep(std::time::Duration::from_millis(2));
        tel.record_span(
            Track::Follower,
            100,
            start,
            EventKind::DrainChunk {
                horizon_ps: 100,
                responses: 0,
            },
        );
        let events = tel.events();
        assert_eq!(events.len(), 1);
        assert!(events[0].dur_ns >= 1_000_000, "slept 2ms, span too short");
        assert!(events[0].wall_ns >= events[0].dur_ns);
        assert_eq!(events[0].start_ns(), start);
    }

    #[test]
    fn wall_clock_is_monotone_across_events() {
        let tel = Telemetry::enabled();
        for i in 0..100u64 {
            tel.record(Track::Originator, i, EventKind::NetWindow { events: i });
        }
        let events = tel.events();
        assert!(events.windows(2).all(|w| w[0].wall_ns <= w[1].wall_ns));
    }

    #[test]
    fn raii_spans_nest_and_record_depth() {
        let tel = Telemetry::enabled();
        {
            let _outer = tel.span(Track::Follower, 10, Phase::KernelAdvance);
            let _inner = tel.span(Track::Follower, 10, Phase::SyncDeferredWindow);
        }
        let events = tel.events();
        assert_eq!(events.len(), 2);
        // Inner guard drops first.
        assert_eq!(
            events[0].kind,
            EventKind::PhaseSpan {
                phase: Phase::SyncDeferredWindow,
                depth: 1
            }
        );
        assert_eq!(
            events[1].kind,
            EventKind::PhaseSpan {
                phase: Phase::KernelAdvance,
                depth: 0
            }
        );
        assert!(events[1].dur_ns >= events[0].dur_ns);
    }

    #[test]
    fn counters_only_mode_traces_nothing_but_counts() {
        let tel = Telemetry::counters_only();
        assert_eq!(tel.mode(), Some(TraceMode::CountersOnly));
        tel.record(Track::Originator, 1, EventKind::NetWindow { events: 1 });
        drop(tel.span(Track::Originator, 1, Phase::ParallelGrant));
        assert!(!tel.micro_gate());
        assert!(tel.events().is_empty());
        let c = tel.counter("still.counting");
        c.add(2);
        assert_eq!(c.get(), 2);
    }

    #[test]
    fn sampled_mode_records_one_in_n() {
        let tel = Telemetry::sampled(10);
        for i in 0..100u64 {
            tel.record(Track::Originator, i, EventKind::NetWindow { events: i });
        }
        assert_eq!(tel.events().len(), 10);
    }

    #[test]
    fn micro_gate_fires_once_per_stride() {
        let tel = Telemetry::enabled();
        let fired = (0..MICRO_SAMPLE_STRIDE * 3)
            .filter(|_| tel.micro_gate())
            .count();
        assert_eq!(fired, 3);
    }

    #[test]
    fn forgotten_span_does_not_corrupt_later_spans() {
        let tel = Telemetry::enabled();
        std::mem::forget(tel.span(Track::Follower, 1, Phase::KernelAdvance));
        {
            let _balanced = tel.span(Track::Follower, 2, Phase::KernelAdvance);
        }
        // The leaked guard never recorded; the balanced one did, one level
        // deep because the leaked depth increment is still outstanding.
        let events = tel.events();
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0].kind,
            EventKind::PhaseSpan {
                phase: Phase::KernelAdvance,
                depth: 1
            }
        );
    }
}
