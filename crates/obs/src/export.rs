//! Exporters: JSONL event dump, Chrome `trace_event` JSON, and a human
//! console summary.
//!
//! All JSON is hand-rolled — the workspace is dependency-free — and every
//! value emitted here is either an escaped string or a `u64`, so the
//! output is valid JSON by construction.
//!
//! The Chrome format targets Perfetto / `chrome://tracing`: one process,
//! two named threads (tid 1 = originator, tid 2 = follower), span events
//! as `ph:"X"` complete events and protocol points as `ph:"i"` instants.
//! Timestamps are wall-clock microseconds since the telemetry epoch, so
//! the rendered timeline shows the *real* overlap of the two engines.

use crate::event::TraceEvent;
use crate::metrics::MetricsSnapshot;
use std::fmt::Write as _;
use std::io::{self, Write};

/// Appends `s` to `out` as a JSON string literal (quotes included).
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders one event as a single JSONL line (no trailing newline).
///
/// The line shape is the schema [`crate::schema`] validates:
/// `{"ev":"<name>","track":"<label>","t_ps":N,"wall_ns":N,"dur_ns":N,`
/// `"args":{...}}` with every `args` value a `u64`.
#[must_use]
pub fn event_to_jsonl(event: &TraceEvent) -> String {
    let mut line = String::with_capacity(128);
    line.push_str("{\"ev\":");
    push_json_string(&mut line, event.kind.name());
    line.push_str(",\"track\":");
    push_json_string(&mut line, event.track.label());
    let _ = write!(
        line,
        ",\"t_ps\":{},\"wall_ns\":{},\"dur_ns\":{},\"args\":{{",
        event.t_ps, event.wall_ns, event.dur_ns
    );
    for (i, (key, value)) in event.kind.args().iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        push_json_string(&mut line, key);
        let _ = write!(line, ":{value}");
    }
    line.push_str("}}");
    line
}

/// Writes the events as JSON Lines: one event object per line.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_jsonl<W: Write>(out: &mut W, events: &[TraceEvent]) -> io::Result<()> {
    for event in events {
        out.write_all(event_to_jsonl(event).as_bytes())?;
        out.write_all(b"\n")?;
    }
    Ok(())
}

/// Renders the events as a Chrome `trace_event` JSON document.
#[must_use]
pub fn chrome_trace_to_string(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 160 + 512);
    out.push_str("{\"traceEvents\":[\n");
    // Thread-name metadata first, so the viewer labels the tracks even
    // when one side recorded nothing.
    for (tid, label) in [(1u32, "originator"), (2u32, "follower")] {
        let _ = writeln!(
            out,
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{label}\"}}}},"
        );
    }
    for (i, event) in events.iter().enumerate() {
        let ts_us = event.start_ns() / 1_000;
        out.push_str("{\"name\":");
        push_json_string(&mut out, event.kind.name());
        let _ = write!(
            out,
            ",\"cat\":\"castanet\",\"pid\":1,\"tid\":{},\"ts\":{ts_us}",
            event.track.tid()
        );
        if event.kind.is_span() {
            // Chrome drops zero-duration complete events; clamp to 1µs.
            let dur_us = (event.dur_ns / 1_000).max(1);
            let _ = write!(out, ",\"ph\":\"X\",\"dur\":{dur_us}");
        } else {
            out.push_str(",\"ph\":\"i\",\"s\":\"t\"");
        }
        out.push_str(",\"args\":{");
        let _ = write!(out, "\"t_ps\":{}", event.t_ps);
        for (key, value) in event.kind.args() {
            out.push(',');
            push_json_string(&mut out, key);
            let _ = write!(out, ":{value}");
        }
        out.push_str("}}");
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

/// Writes the events as Chrome `trace_event` JSON.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_chrome_trace<W: Write>(out: &mut W, events: &[TraceEvent]) -> io::Result<()> {
    out.write_all(chrome_trace_to_string(events).as_bytes())
}

/// Renders a human-readable run summary: event counts by kind, then every
/// metric grouped by its dotted-name prefix (the entity).
#[must_use]
pub fn render_summary(events: &[TraceEvent], metrics: &MetricsSnapshot, dropped: u64) -> String {
    let mut out = String::new();
    out.push_str("== castanet telemetry summary ==\n");
    let _ = writeln!(
        out,
        "events retained: {} (dropped: {dropped})",
        events.len()
    );

    let mut counts: Vec<(&'static str, u64)> = Vec::new();
    for event in events {
        let name = event.kind.name();
        match counts.iter_mut().find(|(n, _)| *n == name) {
            Some((_, c)) => *c += 1,
            None => counts.push((name, 1)),
        }
    }
    counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    for (name, count) in counts {
        let _ = writeln!(out, "  {name:<24} {count}");
    }

    if !metrics.counters.is_empty() {
        out.push_str("-- counters --\n");
        for (name, value) in &metrics.counters {
            let _ = writeln!(out, "  {name:<40} {value}");
        }
    }
    if !metrics.gauges.is_empty() {
        out.push_str("-- gauges --\n");
        for (name, value) in &metrics.gauges {
            let _ = writeln!(out, "  {name:<40} {value}");
        }
    }
    if !metrics.histograms.is_empty() {
        out.push_str("-- histograms --\n");
        for (name, h) in &metrics.histograms {
            if h.count == 0 {
                let _ = writeln!(out, "  {name:<40} (empty)");
            } else {
                let _ = writeln!(
                    out,
                    "  {name:<40} n={} min={} p50~{} p99~{} max={} mean={:.1}",
                    h.count,
                    h.min,
                    h.percentile(0.5),
                    h.percentile(0.99),
                    h.max,
                    h.mean()
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Track};
    use crate::metrics::MetricsRegistry;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                t_ps: 1_000,
                wall_ns: 5_000,
                dur_ns: 4_000,
                track: Track::Originator,
                kind: EventKind::NetWindow { events: 3 },
            },
            TraceEvent {
                t_ps: 2_000,
                wall_ns: 6_000,
                dur_ns: 0,
                track: Track::Originator,
                kind: EventKind::WindowGranted {
                    grant_ps: 2_000,
                    msgs: 2,
                },
            },
            TraceEvent {
                t_ps: 2_000,
                wall_ns: 9_000,
                dur_ns: 2_500,
                track: Track::Follower,
                kind: EventKind::FollowerAdvance {
                    granted_ps: 2_000,
                    responses: 1,
                },
            },
        ]
    }

    #[test]
    fn jsonl_lines_have_the_schema_shape() {
        let line = event_to_jsonl(&sample_events()[1]);
        assert_eq!(
            line,
            "{\"ev\":\"window_granted\",\"track\":\"originator\",\"t_ps\":2000,\
             \"wall_ns\":6000,\"dur_ns\":0,\"args\":{\"grant_ps\":2000,\"msgs\":2}}"
        );
    }

    #[test]
    fn write_jsonl_emits_one_line_per_event() {
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &sample_events()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 3);
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn chrome_trace_renders_both_tracks_and_phases() {
        let trace = chrome_trace_to_string(&sample_events());
        assert!(trace.starts_with("{\"traceEvents\":["));
        assert!(trace.contains("\"args\":{\"name\":\"originator\"}"));
        assert!(trace.contains("\"args\":{\"name\":\"follower\"}"));
        // Span on tid 1: started at 5000-4000=1000ns => ts 1µs, dur 4µs.
        assert!(trace.contains("\"tid\":1,\"ts\":1,\"ph\":\"X\",\"dur\":4"));
        // Instant on tid 1 at 6µs.
        assert!(trace.contains("\"ts\":6,\"ph\":\"i\",\"s\":\"t\""));
        // Follower span on tid 2.
        assert!(trace.contains("\"tid\":2,\"ts\":6,\"ph\":\"X\",\"dur\":2"));
        assert!(trace.trim_end().ends_with("]}"));
    }

    #[test]
    fn chrome_spans_never_render_zero_duration() {
        let events = vec![TraceEvent {
            t_ps: 0,
            wall_ns: 10,
            dur_ns: 10,
            track: Track::Follower,
            kind: EventKind::DrainChunk {
                horizon_ps: 0,
                responses: 0,
            },
        }];
        let trace = chrome_trace_to_string(&events);
        assert!(trace.contains("\"dur\":1"), "sub-µs span clamped to 1µs");
    }

    #[test]
    fn json_string_escaping() {
        let mut out = String::new();
        push_json_string(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn summary_mentions_counts_and_metrics() {
        let reg = MetricsRegistry::new();
        reg.counter("originator.net_events").add(42);
        reg.gauge("channel.occupancy").set(3);
        let h = reg.histogram("follower.lag_ps");
        h.record(100);
        h.record(900);
        let summary = render_summary(&sample_events(), &reg.snapshot(), 7);
        assert!(summary.contains("events retained: 3 (dropped: 7)"));
        assert!(summary.contains("net_window"));
        assert!(summary.contains("originator.net_events"));
        assert!(summary.contains("channel.occupancy"));
        assert!(summary.contains("follower.lag_ps"));
        assert!(summary.contains("n=2"));
    }
}
