//! # castanet-obs — telemetry for the co-verification loop
//!
//! The conservative synchronization protocol (paper §3.1) and the
//! abstraction interfaces (§3.2) are only debuggable when their moving
//! parts are *visible*: per-message-type input queues `I_j`, processing
//! delays `δ_j`, timing-window grants, the follower's lag behind the
//! originator, channel backpressure between the parallel executor's two
//! threads. This crate is the measurement layer the rest of the workspace
//! instruments itself with:
//!
//! * [`event`] — the typed protocol-event taxonomy (window granted,
//!   stimulus enqueued, response injected/deferred/late, drain chunks,
//!   rollbacks, backpressure stalls) plus the closed [`Phase`] taxonomy
//!   of timed execution phases, with sim-time and wall-time stamps;
//! * [`sink`] — the sharded [`sink::TraceSink`]: one lock-free seqlock
//!   ring per producer thread (claimed on first push, recycled on thread
//!   exit), merged on snapshot by epoch-relative wall stamps — the
//!   hot-path `record` is a handful of uncontended atomic stores;
//! * [`metrics`] — a registry of named counters, gauges and log2-bucketed
//!   histograms, snapshotable mid-run from any thread;
//! * [`telemetry`] — the [`Telemetry`] handle the instrumented code holds:
//!   a cheap `Option<Arc<..>>` that is a branch-predictable no-op when
//!   telemetry is disabled (the default), with RAII timing spans
//!   ([`Telemetry::span`]) and sampling policies ([`TraceMode`]:
//!   full / 1-in-N / counters-only);
//! * [`report`] — the self-profiling [`ProfileReport`]: per-phase
//!   wall-time breakdown rendered as a human table or JSON;
//! * [`export`] — exporters: JSONL event dump, human console summary, and
//!   Chrome `trace_event` JSON viewable in Perfetto / `chrome://tracing`,
//!   rendering originator and follower as separate tracks (phase spans
//!   appear as nested slices);
//! * [`schema`] — a dependency-free validator for the JSONL event format
//!   and the profile document, used by the `castanet-obs-check` binary
//!   and the CI smoke job.
//!
//! The crate deliberately depends on nothing (not even the workspace's
//! simulators): times are plain `u64` picoseconds, so every layer of the
//! stack — including `castanet-netsim`, which the core crates sit on — can
//! link against it without a cycle.

#![forbid(unsafe_code)]

pub mod event;
pub mod export;
pub mod metrics;
pub mod report;
pub mod schema;
pub mod sink;
pub mod telemetry;

pub use event::{EventKind, Phase, TraceEvent, Track};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot};
pub use report::{PhaseRow, ProfileReport};
pub use sink::TraceSink;
pub use telemetry::{SpanGuard, Telemetry, TraceMode, MICRO_SAMPLE_STRIDE};
