//! A dependency-free validator for the recorded-telemetry formats.
//!
//! The `castanet-obs-check` binary and the CI smoke job feed recorded
//! JSONL through [`validate_jsonl`] (and profile documents through
//! [`validate_profile`]) to catch exporter regressions: a line that is
//! not syntactically JSON, is missing a required key, names an event
//! outside the taxonomy, or stamps a field with the wrong type. The
//! parser below is a minimal recursive-descent JSON reader — just enough
//! to check the shapes this workspace emits, written here because the
//! workspace deliberately carries no serde.

use crate::event::EventKind;
use std::collections::BTreeMap;

/// Telemetry schema version. Version 1 was the ten protocol event kinds;
/// version 2 (telemetry v2) added the dotted phase-span names with their
/// `depth` argument and the `castanet-profile` report document. Event
/// lines are unversioned on the wire — names are append-only, so a v1
/// reader still accepts every v1 name — but the profile document embeds
/// this number and validation pins it.
pub const SCHEMA_VERSION: u64 = 2;

/// A parsed JSON value (numbers are kept as the raw token).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number, as its source token (the schema only needs `u64`s).
    Number(String),
    /// A string with escapes resolved.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; key order is not preserved (JSON objects are unordered).
    Object(BTreeMap<String, Value>),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn parse_number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digits"));
        }
        // Fraction / exponent — accepted syntactically.
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        Ok(Value::Number(token.to_string()))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates are tolerated as replacement chars;
                            // the exporters never emit them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a description of the first syntax error.
pub fn parse_json(text: &str) -> Result<Value, String> {
    let mut parser = Parser::new(text);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters"));
    }
    Ok(value)
}

fn require_u64(obj: &BTreeMap<String, Value>, key: &str) -> Result<u64, String> {
    match obj.get(key) {
        Some(Value::Number(token)) => token
            .parse::<u64>()
            .map_err(|_| format!("'{key}' is not a u64 (got {token})")),
        Some(other) => Err(format!(
            "'{key}' must be a number, got {}",
            other.type_name()
        )),
        None => Err(format!("missing required key '{key}'")),
    }
}

fn require_str<'a>(obj: &'a BTreeMap<String, Value>, key: &str) -> Result<&'a str, String> {
    match obj.get(key) {
        Some(Value::String(s)) => Ok(s),
        Some(other) => Err(format!(
            "'{key}' must be a string, got {}",
            other.type_name()
        )),
        None => Err(format!("missing required key '{key}'")),
    }
}

/// Validates one JSONL event line against the schema
/// [`crate::export::event_to_jsonl`] emits.
///
/// # Errors
///
/// Returns the first violation found.
pub fn validate_event_line(line: &str) -> Result<(), String> {
    let value = parse_json(line)?;
    let Value::Object(obj) = value else {
        return Err(format!(
            "event line must be an object, got {}",
            value.type_name()
        ));
    };
    let ev = require_str(&obj, "ev")?;
    if !EventKind::NAMES.contains(&ev) {
        return Err(format!("unknown event name '{ev}'"));
    }
    let track = require_str(&obj, "track")?;
    if track != "originator" && track != "follower" {
        return Err(format!("unknown track '{track}'"));
    }
    require_u64(&obj, "t_ps")?;
    require_u64(&obj, "wall_ns")?;
    require_u64(&obj, "dur_ns")?;
    match obj.get("args") {
        Some(Value::Object(args)) => {
            for (key, value) in args {
                if !matches!(value, Value::Number(t) if t.parse::<u64>().is_ok()) {
                    return Err(format!("args.{key} must be a u64"));
                }
            }
        }
        Some(other) => {
            return Err(format!(
                "'args' must be an object, got {}",
                other.type_name()
            ))
        }
        None => return Err("missing required key 'args'".to_string()),
    }
    for key in obj.keys() {
        if !matches!(
            key.as_str(),
            "ev" | "track" | "t_ps" | "wall_ns" | "dur_ns" | "args"
        ) {
            return Err(format!("unexpected key '{key}'"));
        }
    }
    Ok(())
}

/// Validates a whole JSONL document (blank lines are ignored). Returns the
/// number of event lines validated.
///
/// # Errors
///
/// Returns `(1-based line number, description)` for the first bad line.
pub fn validate_jsonl(text: &str) -> Result<usize, (usize, String)> {
    let mut validated = 0;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate_event_line(line).map_err(|e| (i + 1, e))?;
        validated += 1;
    }
    Ok(validated)
}

fn require_track(obj: &BTreeMap<String, Value>, key: &str) -> Result<(), String> {
    let track = require_str(obj, key)?;
    if track != "originator" && track != "follower" {
        return Err(format!("unknown track '{track}'"));
    }
    Ok(())
}

fn require_exact_keys(
    obj: &BTreeMap<String, Value>,
    allowed: &[&str],
    context: &str,
) -> Result<(), String> {
    for key in obj.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(format!("unexpected key '{key}' in {context}"));
        }
    }
    Ok(())
}

/// Validates a `castanet-profile` JSON document (the output of
/// `ProfileReport::to_json` / `castanet-trace --format profile-json`).
/// Returns the number of phase rows validated.
///
/// # Errors
///
/// Returns the first violation found.
pub fn validate_profile(text: &str) -> Result<usize, String> {
    let value = parse_json(text)?;
    let Value::Object(obj) = value else {
        return Err(format!(
            "profile must be an object, got {}",
            value.type_name()
        ));
    };
    let schema = require_str(&obj, "schema")?;
    if schema != "castanet-profile" {
        return Err(format!("unknown schema '{schema}'"));
    }
    let version = require_u64(&obj, "version")?;
    if version != SCHEMA_VERSION {
        return Err(format!(
            "unsupported profile version {version} (expected {SCHEMA_VERSION})"
        ));
    }
    require_u64(&obj, "events")?;
    require_u64(&obj, "dropped")?;
    require_exact_keys(
        &obj,
        &["schema", "version", "events", "dropped", "tracks", "rows"],
        "profile",
    )?;
    let Some(Value::Array(tracks)) = obj.get("tracks") else {
        return Err("'tracks' must be an array".to_string());
    };
    for entry in tracks {
        let Value::Object(track) = entry else {
            return Err("each track entry must be an object".to_string());
        };
        require_track(track, "track")?;
        require_u64(track, "wall_ns")?;
        require_exact_keys(track, &["track", "wall_ns"], "track entry")?;
    }
    let Some(Value::Array(rows)) = obj.get("rows") else {
        return Err("'rows' must be an array".to_string());
    };
    for (i, entry) in rows.iter().enumerate() {
        let Value::Object(row) = entry else {
            return Err(format!("row {i} must be an object"));
        };
        (|| {
            require_track(row, "track")?;
            let phase = require_str(row, "phase")?;
            if !EventKind::NAMES.contains(&phase) {
                return Err(format!("unknown phase '{phase}'"));
            }
            for key in [
                "count",
                "sample_stride",
                "total_ns",
                "min_ns",
                "max_ns",
                "est_total_ns",
                "share_bp",
            ] {
                require_u64(row, key)?;
            }
            require_exact_keys(
                row,
                &[
                    "track",
                    "phase",
                    "count",
                    "sample_stride",
                    "total_ns",
                    "min_ns",
                    "max_ns",
                    "est_total_ns",
                    "share_bp",
                ],
                "row",
            )
        })()
        .map_err(|e| format!("row {i}: {e}"))?;
    }
    Ok(rows.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Phase, TraceEvent, Track};
    use crate::export::event_to_jsonl;

    #[test]
    fn parser_handles_the_basics() {
        assert_eq!(parse_json("null").unwrap(), Value::Null);
        assert_eq!(parse_json(" true ").unwrap(), Value::Bool(true));
        assert_eq!(
            parse_json("\"a\\u0041\\n\"").unwrap(),
            Value::String("aA\n".to_string())
        );
        assert_eq!(
            parse_json("[1, 2]").unwrap(),
            Value::Array(vec![
                Value::Number("1".to_string()),
                Value::Number("2".to_string())
            ])
        );
        assert!(parse_json("{\"a\":{\"b\":[1,-2.5e3,\"x\"]}}").is_ok());
        assert!(parse_json("{").is_err());
        assert!(parse_json("1 2").is_err(), "trailing characters");
        assert!(parse_json("{\"a\":}").is_err());
    }

    #[test]
    fn exporter_output_validates() {
        let events = [
            TraceEvent {
                t_ps: 10,
                wall_ns: 20,
                dur_ns: 5,
                track: Track::Originator,
                kind: EventKind::NetWindow { events: 2 },
            },
            TraceEvent {
                t_ps: 30,
                wall_ns: 40,
                dur_ns: 0,
                track: Track::Follower,
                kind: EventKind::StimulusEnqueued {
                    type_id: 1,
                    port: 2,
                    stamp_ps: 30,
                },
            },
        ];
        let mut doc = String::new();
        for event in &events {
            doc.push_str(&event_to_jsonl(event));
            doc.push('\n');
        }
        assert_eq!(validate_jsonl(&doc), Ok(2));
    }

    #[test]
    fn rejects_unknown_event_name() {
        let line = "{\"ev\":\"bogus\",\"track\":\"originator\",\"t_ps\":0,\
                    \"wall_ns\":0,\"dur_ns\":0,\"args\":{}}";
        assert!(validate_event_line(line).unwrap_err().contains("bogus"));
    }

    #[test]
    fn rejects_missing_and_mistyped_keys() {
        let missing = "{\"ev\":\"net_window\",\"track\":\"originator\",\
                       \"t_ps\":0,\"wall_ns\":0,\"args\":{}}";
        assert!(validate_event_line(missing).unwrap_err().contains("dur_ns"));
        let mistyped = "{\"ev\":\"net_window\",\"track\":\"originator\",\
                        \"t_ps\":\"zero\",\"wall_ns\":0,\"dur_ns\":0,\"args\":{}}";
        assert!(validate_event_line(mistyped).unwrap_err().contains("t_ps"));
        let negative = "{\"ev\":\"net_window\",\"track\":\"originator\",\
                        \"t_ps\":-5,\"wall_ns\":0,\"dur_ns\":0,\"args\":{}}";
        assert!(validate_event_line(negative).unwrap_err().contains("u64"));
        let bad_track = "{\"ev\":\"net_window\",\"track\":\"sideways\",\
                         \"t_ps\":0,\"wall_ns\":0,\"dur_ns\":0,\"args\":{}}";
        assert!(validate_event_line(bad_track)
            .unwrap_err()
            .contains("sideways"));
        let extra = "{\"ev\":\"net_window\",\"track\":\"originator\",\"t_ps\":0,\
                     \"wall_ns\":0,\"dur_ns\":0,\"args\":{},\"extra\":1}";
        assert!(validate_event_line(extra).unwrap_err().contains("extra"));
    }

    #[test]
    fn phase_span_lines_round_trip() {
        let ev = TraceEvent {
            t_ps: 5,
            wall_ns: 900,
            dur_ns: 250,
            track: Track::Follower,
            kind: EventKind::PhaseSpan {
                phase: Phase::KernelPop,
                depth: 2,
            },
        };
        let line = event_to_jsonl(&ev);
        assert!(line.contains("\"ev\":\"kernel.pop\""));
        assert!(line.contains("\"depth\":2"));
        assert_eq!(validate_event_line(&line), Ok(()));
    }

    #[test]
    fn profile_documents_round_trip() {
        use crate::telemetry::Telemetry;
        let tel = Telemetry::enabled();
        drop(tel.span(Track::Originator, 1, Phase::ParallelGrant));
        let start = tel.now_ns();
        tel.record_phase(Track::Follower, 2, Phase::CycleEval, start);
        let json = tel.profile().to_json();
        assert_eq!(validate_profile(&json), Ok(2));
    }

    #[test]
    fn profile_validation_rejects_drift() {
        assert!(validate_profile("[]").unwrap_err().contains("object"));
        let wrong_schema = "{\"schema\":\"other\",\"version\":2,\"events\":0,\
             \"dropped\":0,\"tracks\":[],\"rows\":[]}";
        assert!(validate_profile(wrong_schema)
            .unwrap_err()
            .contains("unknown schema"));
        let wrong_version = "{\"schema\":\"castanet-profile\",\"version\":1,\
             \"events\":0,\"dropped\":0,\"tracks\":[],\"rows\":[]}";
        assert!(validate_profile(wrong_version)
            .unwrap_err()
            .contains("version 1"));
        let bad_phase = "{\"schema\":\"castanet-profile\",\"version\":2,\
             \"events\":0,\"dropped\":0,\"tracks\":[],\"rows\":[{\
             \"track\":\"follower\",\"phase\":\"bogus\",\"count\":0,\
             \"sample_stride\":1,\"total_ns\":0,\"min_ns\":0,\"max_ns\":0,\
             \"est_total_ns\":0,\"share_bp\":0}]}";
        assert!(validate_profile(bad_phase).unwrap_err().contains("bogus"));
        let extra_key = "{\"schema\":\"castanet-profile\",\"version\":2,\
             \"events\":0,\"dropped\":0,\"tracks\":[],\"rows\":[],\"x\":1}";
        assert!(validate_profile(extra_key).unwrap_err().contains("'x'"));
    }

    #[test]
    fn jsonl_document_reports_line_numbers() {
        let doc = "{\"ev\":\"net_window\",\"track\":\"originator\",\"t_ps\":0,\
                   \"wall_ns\":0,\"dur_ns\":0,\"args\":{}}\n\nnot json\n";
        let (line, _) = validate_jsonl(doc).unwrap_err();
        assert_eq!(line, 3, "blank line skipped, bad line reported");
    }
}
