//! Pin-map validity pass: the configuration data set of §3.3 (Fig. 5).
//!
//! Unlike [`PinMapConfig::validate`], which fails on the first violation so
//! the board can refuse a broken configuration, this pass reports *every*
//! finding so the user can fix the whole data set in one round trip.

use crate::diagnostic::{Diagnostic, Severity};
use castanet_testboard::lane::{LaneConfig, LaneDirection, LANES, LANE_BITS};
use castanet_testboard::pinmap::{PinMapConfig, PinSegment};
use std::collections::HashMap;

fn check_numbers(diags: &mut Vec<Diagnostic>, kind: &str, numbers: impl Iterator<Item = usize>) {
    let mut seen: HashMap<usize, usize> = HashMap::new();
    for n in numbers {
        *seen.entry(n).or_insert(0) += 1;
    }
    let mut dups: Vec<usize> = seen
        .into_iter()
        .filter(|&(_, c)| c > 1)
        .map(|(n, _)| n)
        .collect();
    dups.sort_unstable();
    for n in dups {
        diags.push(
            Diagnostic::new(
                "CAST036",
                Severity::Error,
                format!("pinmap.{kind}[{n}]"),
                format!(
                    "{kind} number {n} is mapped more than once: lookups by number \
                     silently resolve to the first mapping"
                ),
            )
            .with_hint(format!("renumber the duplicate {kind} mappings")),
        );
    }
}

fn check_segments(
    diags: &mut Vec<Diagnostic>,
    kind: &str,
    number: usize,
    width: usize,
    segments: &[PinSegment],
    lanes: Option<&[LaneConfig; LANES]>,
    expect_direction: LaneDirection,
) {
    for (s, seg) in segments.iter().enumerate() {
        if seg.validate().is_err() {
            diags.push(
                Diagnostic::new(
                    "CAST031",
                    Severity::Error,
                    format!("pinmap.{kind}[{number}].segment[{s}]"),
                    format!(
                        "segment of {} bit(s) at start bit {} on lane {} exceeds the \
                         byte lane (lanes are {LANE_BITS} bits, MSB-anchored)",
                        seg.bits, seg.start_bit, seg.lane
                    ),
                )
                .with_hint(format!(
                    "keep lane < {LANES}, start_bit < {LANE_BITS} and bits <= start_bit + 1"
                )),
            );
            continue;
        }
        if let Some(lanes) = lanes {
            if lanes[seg.lane].direction != expect_direction {
                let (is, should) = match expect_direction {
                    LaneDirection::Drive => ("sampling", "driving"),
                    LaneDirection::Sample => ("driving", "sampling"),
                };
                diags.push(
                    Diagnostic::new(
                        "CAST034",
                        Severity::Error,
                        format!("pinmap.{kind}[{number}].segment[{s}]"),
                        format!(
                            "{kind} {number} maps lane {lane} which is configured as a \
                             {is} lane, but a {kind} needs a {should} lane",
                            lane = seg.lane
                        ),
                    )
                    .with_hint(format!("reconfigure lane {} or move the segment", seg.lane)),
                );
            }
        }
    }
    let mapped: usize = segments.iter().map(|s| s.bits).sum();
    if mapped != width || width == 0 || width > 64 {
        diags.push(
            Diagnostic::new(
                "CAST033",
                Severity::Error,
                format!("pinmap.{kind}[{number}]"),
                format!("{kind} {number} declares {width} bit(s) but its segments map {mapped}"),
            )
            .with_hint(format!("set width = {mapped} or adjust the segments")),
        );
    }
}

/// Checks the whole pin-mapping data set, reporting every finding.
///
/// Pass the board's lane configuration to additionally check mapping
/// directions against lane directions (`CAST034`); without it that check
/// is skipped.
#[must_use]
pub fn check_pinmap(cfg: &PinMapConfig, lanes: Option<&[LaneConfig; LANES]>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    check_numbers(&mut diags, "inport", cfg.inports.iter().map(|p| p.number));
    check_numbers(&mut diags, "outport", cfg.outports.iter().map(|p| p.number));
    check_numbers(
        &mut diags,
        "ctrlport",
        cfg.ctrlports.iter().map(|p| p.number),
    );

    for p in &cfg.inports {
        check_segments(
            &mut diags,
            "inport",
            p.number,
            p.width,
            &p.segments,
            lanes,
            LaneDirection::Drive,
        );
    }
    for p in &cfg.outports {
        check_segments(
            &mut diags,
            "outport",
            p.number,
            p.width,
            &p.segments,
            lanes,
            LaneDirection::Sample,
        );
    }
    for p in &cfg.ctrlports {
        check_segments(
            &mut diags,
            "ctrlport",
            p.number,
            p.width,
            &p.segments,
            lanes,
            LaneDirection::Sample,
        );
        if p.width < 64 && p.write_value >= (1u64 << p.width) {
            diags.push(
                Diagnostic::new(
                    "CAST035",
                    Severity::Error,
                    format!("pinmap.ctrlport[{}]", p.number),
                    format!(
                        "write flag {:#x} does not fit ctrlport {}'s declared width of {} bit(s)",
                        p.write_value, p.number, p.width
                    ),
                )
                .with_hint("shrink the write flag or widen the control port"),
            );
        }
    }

    for (lane, bit) in cfg.pin_conflicts() {
        diags.push(
            Diagnostic::new(
                "CAST030",
                Severity::Error,
                format!("pinmap.lane[{lane}].bit[{bit}]"),
                format!(
                    "pin {bit} of byte lane {lane} is claimed by more than one segment: \
                     encode/decode would silently clobber the shared pin"
                ),
            )
            .with_hint("move one of the overlapping segments to free pins"),
        );
    }

    for io in &cfg.ioports {
        for (role, number, present) in [
            ("inport", io.inport, cfg.inport(io.inport).is_some()),
            ("outport", io.outport, cfg.outport(io.outport).is_some()),
            ("ctrlport", io.ctrlport, cfg.ctrlport(io.ctrlport).is_some()),
        ] {
            if !present {
                diags.push(
                    Diagnostic::new(
                        "CAST032",
                        Severity::Error,
                        format!(
                            "pinmap.ioport[{}/{}/{}]",
                            io.inport, io.outport, io.ctrlport
                        ),
                        format!(
                            "bus interface references {role} {number}, which is not mapped: \
                             a DUT bus needs its full inport/outport/ctrlport triple (§3.3)"
                        ),
                    )
                    .with_hint(format!("add the missing {role} mapping number {number}")),
                );
            }
        }
    }

    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use castanet_testboard::pinmap::{CtrlportMapping, InportMapping, IoPortMapping};

    #[test]
    fn fig5_example_lints_clean() {
        let (cfg, lanes) = PinMapConfig::fig5_example();
        assert!(check_pinmap(&cfg, Some(&lanes)).is_empty());
    }

    #[test]
    fn overlap_is_cast030() {
        let mut cfg = PinMapConfig::default();
        cfg.inports.push(InportMapping {
            number: 0,
            width: 6,
            segments: vec![PinSegment::new(0, 7, 6)],
        });
        cfg.inports.push(InportMapping {
            number: 1,
            width: 4,
            segments: vec![PinSegment::new(0, 4, 4)], // bits 4..=1 overlap 7..=2
        });
        let codes: Vec<_> = check_pinmap(&cfg, None).iter().map(|d| d.code).collect();
        assert_eq!(
            codes,
            ["CAST030", "CAST030", "CAST030"],
            "bits 4, 3, 2 overlap"
        );
    }

    #[test]
    fn out_of_lane_segment_is_cast031() {
        let mut cfg = PinMapConfig::default();
        cfg.inports.push(InportMapping {
            number: 0,
            width: 5,
            segments: vec![PinSegment::new(2, 3, 5)], // only 4 bits below start 3
        });
        let diags = check_pinmap(&cfg, None);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "CAST031");
    }

    #[test]
    fn missing_triple_member_is_cast032() {
        let mut cfg = PinMapConfig::default();
        cfg.ioports.push(IoPortMapping {
            inport: 1,
            outport: 2,
            ctrlport: 3,
        });
        let codes: Vec<_> = check_pinmap(&cfg, None).iter().map(|d| d.code).collect();
        assert_eq!(codes, ["CAST032", "CAST032", "CAST032"]);
    }

    #[test]
    fn width_mismatch_is_cast033() {
        let mut cfg = PinMapConfig::default();
        cfg.inports.push(InportMapping {
            number: 0,
            width: 7,
            segments: vec![PinSegment::new(0, 7, 6)],
        });
        let diags = check_pinmap(&cfg, None);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "CAST033");
    }

    #[test]
    fn direction_conflict_is_cast034() {
        let (_, lanes) = PinMapConfig::fig5_example();
        let mut cfg = PinMapConfig::default();
        // fig5 lanes: lane 3 samples; an inport needs a driving lane.
        cfg.inports.push(InportMapping {
            number: 0,
            width: 2,
            segments: vec![PinSegment::new(3, 1, 2)],
        });
        let diags = check_pinmap(&cfg, Some(&lanes));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "CAST034");
    }

    #[test]
    fn wide_write_flag_is_cast035() {
        let mut cfg = PinMapConfig::default();
        cfg.ctrlports.push(CtrlportMapping {
            number: 0,
            width: 1,
            segments: vec![PinSegment::new(9, 0, 1)],
            write_value: 2,
        });
        let diags = check_pinmap(&cfg, None);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "CAST035");
    }

    #[test]
    fn duplicate_numbers_are_cast036() {
        let mut cfg = PinMapConfig::default();
        cfg.inports.push(InportMapping {
            number: 0,
            width: 2,
            segments: vec![PinSegment::new(0, 1, 2)],
        });
        cfg.inports.push(InportMapping {
            number: 0,
            width: 2,
            segments: vec![PinSegment::new(1, 1, 2)],
        });
        let diags = check_pinmap(&cfg, None);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "CAST036");
    }
}
