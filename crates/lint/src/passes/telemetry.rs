//! Telemetry exporter path analysis (`CAST050`).
//!
//! The telemetry exporters (`castanet-obs`) and the `castanet-trace` binary
//! write JSONL / Chrome-trace files at user-supplied paths. Two mistakes
//! surface only *after* a potentially long run has completed: the output
//! path is not writable (missing or read-only parent directory, or the
//! path names a directory), so the trace is lost when the exporter finally
//! opens it; or the output path collides with the trace-replay *input*, so
//! exporting would clobber the very vectors being replayed. This pass
//! checks both up front, before the run starts.

use crate::diagnostic::{Diagnostic, Severity};
use std::path::{Path, PathBuf};

/// Lints a telemetry exporter's output path against the filesystem and,
/// when replaying, against the replay input path.
///
/// `output` of `None` means "write to stdout" — nothing to check. Findings
/// are warnings (`CAST050`): the run itself is unaffected, only the export
/// at the end is at risk.
#[must_use]
pub fn check_export_paths(output: Option<&Path>, replay_input: Option<&Path>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let Some(output) = output else {
        return diags;
    };
    if let Some(input) = replay_input {
        if same_path(output, input) {
            diags.push(
                Diagnostic::new(
                    "CAST050",
                    Severity::Warning,
                    "telemetry.export.out",
                    format!(
                        "exporter output path {} collides with the trace-replay input; \
                         exporting would overwrite the vectors being replayed",
                        output.display()
                    ),
                )
                .with_hint("export to a different path (or stdout)"),
            );
        }
    }
    if let Some(reason) = unwritable_reason(output) {
        diags.push(
            Diagnostic::new(
                "CAST050",
                Severity::Warning,
                "telemetry.export.out",
                format!(
                    "exporter output path {} is not writable: {reason}; \
                     the trace would be lost after the run",
                    output.display()
                ),
            )
            .with_hint("create the parent directory or pick a writable path"),
        );
    }
    diags
}

/// Two paths name the same file. Canonicalization resolves `.`/`..`/links
/// when both paths exist; otherwise fall back to lexical comparison.
fn same_path(a: &Path, b: &Path) -> bool {
    match (a.canonicalize(), b.canonicalize()) {
        (Ok(ca), Ok(cb)) => ca == cb,
        _ => a == b,
    }
}

/// Why `path` cannot be created or truncated for writing, if it cannot.
fn unwritable_reason(path: &Path) -> Option<String> {
    if let Ok(meta) = std::fs::metadata(path) {
        if meta.is_dir() {
            return Some("it is a directory".to_string());
        }
        if meta.permissions().readonly() {
            return Some("the file exists and is read-only".to_string());
        }
        return None;
    }
    // The file does not exist yet: its parent must be a writable directory.
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    match std::fs::metadata(&parent) {
        Err(_) => Some(format!(
            "parent directory {} does not exist",
            parent.display()
        )),
        Ok(meta) if !meta.is_dir() => {
            Some(format!("parent {} is not a directory", parent.display()))
        }
        Ok(meta) if meta.permissions().readonly() => Some(format!(
            "parent directory {} is read-only",
            parent.display()
        )),
        Ok(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A unique scratch directory per test, removed on drop.
    struct Scratch(PathBuf);

    impl Scratch {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir().join(format!(
                "castanet-lint-telemetry-{tag}-{}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).expect("scratch dir");
            Scratch(dir)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn stdout_and_clean_paths_are_silent() {
        let scratch = Scratch::new("clean");
        assert!(check_export_paths(None, None).is_empty());
        let out = scratch.0.join("trace.json");
        let replay = scratch.0.join("vectors.trace");
        assert!(check_export_paths(Some(&out), Some(&replay)).is_empty());
    }

    #[test]
    fn collision_with_replay_input_warns() {
        let scratch = Scratch::new("collide");
        let path = scratch.0.join("run.trace");
        let diags = check_export_paths(Some(&path), Some(&path));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "CAST050");
        assert_eq!(diags[0].severity, Severity::Warning);
        assert!(
            diags[0].message.contains("collides"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn collision_is_detected_through_path_aliases() {
        let scratch = Scratch::new("alias");
        let path = scratch.0.join("run.trace");
        std::fs::write(&path, "# castanet-trace v1\n").unwrap();
        let aliased = scratch.0.join(".").join("run.trace");
        let diags = check_export_paths(Some(&aliased), Some(&path));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("collides"));
    }

    #[test]
    fn missing_parent_directory_warns() {
        let scratch = Scratch::new("noparent");
        let out = scratch.0.join("no").join("such").join("dir").join("t.json");
        let diags = check_export_paths(Some(&out), None);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "CAST050");
        assert!(
            diags[0].message.contains("does not exist"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn output_naming_a_directory_warns() {
        let scratch = Scratch::new("isdir");
        let diags = check_export_paths(Some(&scratch.0), None);
        assert_eq!(diags.len(), 1);
        assert!(
            diags[0].message.contains("is a directory"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn readonly_existing_file_warns() {
        let scratch = Scratch::new("readonly");
        let out = scratch.0.join("frozen.json");
        std::fs::write(&out, "{}").unwrap();
        let mut perms = std::fs::metadata(&out).unwrap().permissions();
        perms.set_readonly(true);
        std::fs::set_permissions(&out, perms.clone()).unwrap();
        let diags = check_export_paths(Some(&out), None);
        // Restore before asserting so cleanup succeeds even on failure.
        #[cfg(unix)]
        {
            use std::os::unix::fs::PermissionsExt;
            perms.set_mode(0o644);
        }
        #[cfg(not(unix))]
        #[allow(clippy::permissions_set_readonly_false)]
        perms.set_readonly(false);
        std::fs::set_permissions(&out, perms).unwrap();
        assert_eq!(diags.len(), 1);
        assert!(
            diags[0].message.contains("read-only"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn collision_and_unwritable_can_both_fire() {
        let scratch = Scratch::new("both");
        let diags = check_export_paths(Some(&scratch.0), Some(&scratch.0));
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().all(|d| d.code == "CAST050"));
    }
}
