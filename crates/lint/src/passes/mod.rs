//! The analysis passes, one module per pass category.

pub mod interface;
pub mod pinmap;
pub mod rtl_structure;
pub mod sync_liveness;
pub mod telemetry;
pub mod topology;
