//! RTL structural analysis: the `CAST1xx` family over the netlist graph.
//!
//! [`check_netlist`] maps every [`StructuralFinding`] of
//! [`NetlistGraph::analyze`] to a stable `CAST1xx` diagnostic:
//!
//! | code | severity | finding |
//! |------|----------|---------|
//! | `CAST100` | error | combinational loop (full cycle path reported) |
//! | `CAST110` | error | signal driven by ≥2 combinational processes |
//! | `CAST111` | warning | same-clock write-after-write race |
//! | `CAST120` | error | combinational read missing from sensitivity list |
//! | `CAST121` | error | clocked process not sensitive to its own clock |
//! | `CAST122` | info | sensitivity entry the process never reads |
//! | `CAST130` | warning | written-but-never-observed (dead) signal |
//! | `CAST131` | warning | read-but-undriven signal |
//! | `CAST140` | error | gated-clock busy combinationally fed from its own domain |
//! | `CAST141` | error | gated-clock busy line has no driver |
//!
//! On a loop-free netlist, [`levelization_report`] builds the topo-ordered
//! combinational schedule (levels, cone widths, fanout stats) that
//! `castanet-lint --rtl` prints and the ROADMAP's compiled bit-parallel
//! backend consumes.

use crate::diagnostic::{Diagnostic, Severity};
use castanet_rtl::netlist::{NetlistGraph, StructuralFinding};
use castanet_rtl::sim::Simulator;
use std::fmt::Write as _;

/// Maps a structural finding to its stable diagnostic code.
#[must_use]
pub fn finding_code(finding: &StructuralFinding) -> (&'static str, Severity) {
    match finding {
        StructuralFinding::CombinationalLoop { .. } => ("CAST100", Severity::Error),
        StructuralFinding::MultiDriverConflict { .. } => ("CAST110", Severity::Error),
        StructuralFinding::SameEdgeWriteRace { .. } => ("CAST111", Severity::Warning),
        StructuralFinding::MissingSensitivity { .. } => ("CAST120", Severity::Error),
        StructuralFinding::ClockNotInSensitivity { .. } => ("CAST121", Severity::Error),
        StructuralFinding::UnreadSensitivity { .. } => ("CAST122", Severity::Info),
        StructuralFinding::DeadSignal { .. } => ("CAST130", Severity::Warning),
        StructuralFinding::UndrivenSignal { .. } => ("CAST131", Severity::Warning),
        StructuralFinding::GatedBusyFeedback { .. } => ("CAST140", Severity::Error),
        StructuralFinding::GatedBusyUndriven { .. } => ("CAST141", Severity::Error),
    }
}

fn hint(finding: &StructuralFinding) -> &'static str {
    match finding {
        StructuralFinding::CombinationalLoop { .. } => {
            "break the cycle: register one stage on a clock, or remove the feedback read"
        }
        StructuralFinding::MultiDriverConflict { .. } => {
            "drive the signal from one combinational process, or gate each driver to high-Z when deselected"
        }
        StructuralFinding::SameEdgeWriteRace { .. } => {
            "merge the writers into one clocked process, or move one writer to another clock"
        }
        StructuralFinding::MissingSensitivity { .. } => {
            "add the read signal to the process's sensitivity list"
        }
        StructuralFinding::ClockNotInSensitivity { .. } => {
            "register the process with its clock in the rising (or any-edge) sensitivity list"
        }
        StructuralFinding::UnreadSensitivity { .. } => {
            "drop the unused entry from the sensitivity list to avoid spurious wake-ups"
        }
        StructuralFinding::DeadSignal { .. } => {
            "read the signal somewhere, trace it, mark it an external output, or delete the driving logic"
        }
        StructuralFinding::UndrivenSignal { .. } => {
            "add a driver, or mark the signal an external input if the test bench pokes it"
        }
        StructuralFinding::GatedBusyFeedback { .. } => {
            "derive busy from un-gated logic, or register the request in a free-running domain"
        }
        StructuralFinding::GatedBusyUndriven { .. } => {
            "drive busy from the DUT wrapper, or mark it an external input"
        }
    }
}

/// Runs the structural checks on an extracted netlist graph and returns
/// the findings as `CAST1xx` diagnostics.
#[must_use]
pub fn check_netlist(net: &NetlistGraph) -> Vec<Diagnostic> {
    net.analyze()
        .iter()
        .map(|f| {
            let (code, severity) = finding_code(f);
            Diagnostic::new(code, severity, net.location(f), net.describe(f)).with_hint(hint(f))
        })
        .collect()
}

/// Convenience: extracts the netlist from an elaborable simulator and runs
/// [`check_netlist`].
#[must_use]
pub fn check_rtl_structure(sim: &Simulator) -> Vec<Diagnostic> {
    check_netlist(&sim.netlist())
}

/// A levelization report over the loop-free combinational subgraph, plus
/// the coverage counts the acceptance gate needs.
#[derive(Debug, Clone)]
pub struct LevelReport {
    /// Per-level rows: `(level, processes, cone_bits, max_fanout, mean_fanout)`.
    pub rows: Vec<(usize, usize, usize, usize, f64)>,
    /// Combinational processes covered by the schedule.
    pub combinational: usize,
    /// Clocked processes (evaluated per clock edge, outside the levels).
    pub clocked: usize,
    /// Generator processes.
    pub generators: usize,
    /// Opaque processes the schedule cannot place.
    pub opaque: usize,
    /// Labels of the opaque processes, for the report.
    pub opaque_labels: Vec<String>,
}

impl LevelReport {
    /// Fraction of analyzable (non-generator) processes the levelized
    /// schedule plus the clocked set covers; opaque processes count
    /// against coverage.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        let placed = self.combinational + self.clocked;
        let total = placed + self.opaque;
        if total == 0 {
            1.0
        } else {
            placed as f64 / total as f64
        }
    }
}

/// Levelizes the netlist and assembles the report.
///
/// # Errors
///
/// Returns the `CAST100` diagnostics of the combinational loops when the
/// zero-delay subgraph is not a DAG (levelization is undefined then).
pub fn levelization_report(net: &NetlistGraph) -> Result<LevelReport, Vec<Diagnostic>> {
    match net.levelize() {
        Ok(lev) => {
            let stats = net.level_stats(&lev);
            Ok(LevelReport {
                rows: stats
                    .iter()
                    .map(|s| {
                        (
                            s.level,
                            s.processes,
                            s.cone_bits,
                            s.max_fanout,
                            s.mean_fanout,
                        )
                    })
                    .collect(),
                combinational: lev.combinational_count(),
                clocked: lev.clocked.len(),
                generators: lev.generators.len(),
                opaque: lev.opaque.len(),
                opaque_labels: lev
                    .opaque
                    .iter()
                    .map(|&p| net.processes[p.index()].label(p.index()))
                    .collect(),
            })
        }
        Err(_) => {
            let loops: Vec<Diagnostic> = check_netlist(net)
                .into_iter()
                .filter(|d| d.code == "CAST100")
                .collect();
            Err(loops)
        }
    }
}

/// Renders a [`LevelReport`] as an aligned text table.
#[must_use]
pub fn render_levelization_human(report: &LevelReport) -> String {
    let mut out = String::from("levelization report (combinational schedule)\n");
    let _ = writeln!(
        out,
        "{:>5} {:>9} {:>9} {:>10} {:>11}",
        "level", "processes", "cone_bits", "max_fanout", "mean_fanout"
    );
    for &(level, processes, cone_bits, max_fanout, mean_fanout) in &report.rows {
        let _ = writeln!(
            out,
            "{level:>5} {processes:>9} {cone_bits:>9} {max_fanout:>10} {mean_fanout:>11.2}"
        );
    }
    let _ = writeln!(
        out,
        "coverage: {} combinational in {} levels, {} clocked, {} generators, {} opaque ({:.0}%)",
        report.combinational,
        report.rows.len(),
        report.clocked,
        report.generators,
        report.opaque,
        report.coverage() * 100.0
    );
    if !report.opaque_labels.is_empty() {
        let _ = writeln!(
            out,
            "opaque (unplaced): {}",
            report.opaque_labels.join(", ")
        );
    }
    out
}

/// Renders a [`LevelReport`] as a JSON document:
/// `{"levels": [{"level": N, "processes": N, "cone_bits": N, "max_fanout": N,
/// "mean_fanout": F}], "combinational": N, "clocked": N, "generators": N,
/// "opaque": N, "coverage": F}`.
#[must_use]
pub fn render_levelization_json(report: &LevelReport) -> String {
    let mut out = String::from("{\n  \"levels\": [");
    for (i, &(level, processes, cone_bits, max_fanout, mean_fanout)) in
        report.rows.iter().enumerate()
    {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        let _ = write!(
            out,
            "    {{\"level\": {level}, \"processes\": {processes}, \"cone_bits\": {cone_bits}, \
             \"max_fanout\": {max_fanout}, \"mean_fanout\": {mean_fanout:.4}}}"
        );
    }
    if !report.rows.is_empty() {
        out.push_str("\n  ");
    }
    let _ = write!(
        out,
        "],\n  \"combinational\": {},\n  \"clocked\": {},\n  \"generators\": {},\n  \
         \"opaque\": {},\n  \"coverage\": {:.4}\n}}",
        report.combinational,
        report.clocked,
        report.generators,
        report.opaque,
        report.coverage()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use castanet_netsim::time::SimDuration;
    use castanet_rtl::netlist::ProcessIo;
    use castanet_rtl::signal::SignalId;
    use castanet_rtl::sim::{RtlCtx, RtlProcess};

    struct Decl {
        io: ProcessIo,
    }
    impl RtlProcess for Decl {
        fn run(&mut self, _ctx: &mut RtlCtx) {}
        fn io(&self) -> Option<ProcessIo> {
            Some(self.io.clone())
        }
    }

    fn comb(sim: &mut Simulator, name: &str, reads: &[SignalId], writes: &[SignalId]) {
        let io = ProcessIo::combinational(name)
            .reads(reads.iter().copied())
            .writes(writes.iter().copied());
        sim.add_process(Box::new(Decl { io }), reads);
    }

    /// Builds `in -> a -> t -> b -> out` with a register behind it.
    fn clean_sim() -> Simulator {
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", SimDuration::from_ns(10));
        let input = sim.add_signal("in", 8);
        let t = sim.add_signal("t", 8);
        let out = sim.add_signal("out", 8);
        let q = sim.add_signal("q", 8);
        sim.mark_external_input(input);
        sim.mark_external_output(q);
        comb(&mut sim, "a", &[input], &[t]);
        comb(&mut sim, "b", &[t], &[out]);
        let io = ProcessIo::clocked("reg", clk).reads([clk, out]).writes([q]);
        sim.add_process_rising(Box::new(Decl { io }), &[clk], &[]);
        sim
    }

    #[test]
    fn clean_netlist_yields_no_diagnostics_and_a_report() {
        let sim = clean_sim();
        let diags = check_rtl_structure(&sim);
        assert!(diags.is_empty(), "{diags:?}");
        let report = levelization_report(&sim.netlist()).expect("loop-free");
        assert_eq!(report.rows.len(), 2);
        assert_eq!(report.combinational, 2);
        assert_eq!(report.clocked, 1);
        assert!((report.coverage() - 1.0).abs() < f64::EPSILON);
        let human = render_levelization_human(&report);
        assert!(human.contains("levelization report"), "{human}");
        assert!(human.contains("100%"), "{human}");
        let json = render_levelization_json(&report);
        assert!(json.contains("\"combinational\": 2"), "{json}");
        assert!(json.contains("\"coverage\": 1.0000"), "{json}");
    }

    #[test]
    fn loop_turns_levelization_into_cast100() {
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 1);
        let b = sim.add_signal("b", 1);
        comb(&mut sim, "fwd", &[a], &[b]);
        comb(&mut sim, "bwd", &[b], &[a]);
        let net = sim.netlist();
        let diags = check_netlist(&net);
        assert!(diags.iter().any(|d| d.code == "CAST100"), "{diags:?}");
        let err = levelization_report(&net).unwrap_err();
        assert!(err.iter().all(|d| d.code == "CAST100"));
        assert!(!err.is_empty());
        // The cycle path names both processes.
        assert!(err[0].message.contains("fwd") && err[0].message.contains("bwd"));
    }

    #[test]
    fn every_code_maps_to_a_registered_entry() {
        use castanet_rtl::netlist::LoopStep;
        let mut sim = Simulator::new();
        let s = sim.add_signal("s", 1);
        let io = ProcessIo::combinational("p").reads([s]).writes([s]);
        let p = sim.add_process(Box::new(Decl { io }), &[s]);
        let findings = [
            StructuralFinding::CombinationalLoop {
                cycle: vec![LoopStep { process: p, via: s }],
            },
            StructuralFinding::MultiDriverConflict {
                signal: s,
                drivers: vec![p],
            },
            StructuralFinding::SameEdgeWriteRace {
                signal: s,
                drivers: vec![p],
                clock: s,
            },
            StructuralFinding::MissingSensitivity {
                process: p,
                signal: s,
            },
            StructuralFinding::ClockNotInSensitivity {
                process: p,
                clock: s,
            },
            StructuralFinding::UnreadSensitivity {
                process: p,
                signal: s,
            },
            StructuralFinding::DeadSignal { signal: s },
            StructuralFinding::UndrivenSignal {
                signal: s,
                reader: p,
            },
            StructuralFinding::GatedBusyFeedback {
                clock: s,
                busy: s,
                origin: s,
            },
            StructuralFinding::GatedBusyUndriven { clock: s, busy: s },
        ];
        for f in &findings {
            let (code, severity) = finding_code(f);
            let (registered, _) =
                crate::diagnostic::code_info(code).unwrap_or_else(|| panic!("unregistered {code}"));
            assert_eq!(registered, severity, "{code} severity drift");
        }
    }
}
