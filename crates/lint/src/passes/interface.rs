//! Interface-consistency pass: the abstraction interface of §3.2.
//!
//! The CASTANET interface process converts ATM cells into byte-wide bus
//! operations and forwards DUT responses back into the network model. Three
//! things must line up for that to work: the RTL signals carrying the bus
//! operations must have the widths the converter produces (8-bit data,
//! 1-bit strobes), the interface's input port numbers must stay clear of
//! the `RESPONSE_PORT_BASE..` namespace reserved for response injection,
//! and every egress line needs a matching interface output connection —
//! the interface process panics when a response arrives for an output port
//! nothing is connected to.

use crate::diagnostic::{Diagnostic, Severity};
use castanet::entity::CosimEntity;
use castanet::interface::RESPONSE_PORT_BASE;
use castanet_netsim::event::ModuleId;
use castanet_netsim::kernel::Kernel;
use castanet_rtl::signal::SignalId;
use castanet_rtl::sim::Simulator;

/// The byte-lane width the cell converter drives (§3.2: "53 consecutive
/// bus operations", one octet each).
const DATA_BITS: usize = 8;

/// Checks port-number consistency between the interface process and the
/// network kernel's connection graph.
#[must_use]
pub fn check_interface(net: &Kernel, iface: ModuleId, entity: &CosimEntity) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    if iface.index() >= net.module_count() {
        diags.push(Diagnostic::new(
            "CAST040",
            Severity::Error,
            format!("net.module[{}]", iface.index()),
            format!(
                "interface module id {} does not exist in the kernel ({} modules registered)",
                iface.index(),
                net.module_count()
            ),
        ));
        return diags;
    }

    let mut inputs_connected = vec![false; entity.ingress_count()];
    let mut outputs_connected = vec![false; entity.egress_count()];
    for (src, src_port, dst, dst_port) in net.connection_edges() {
        if dst == iface {
            if dst_port.0 >= RESPONSE_PORT_BASE {
                diags.push(
                    Diagnostic::new(
                        "CAST021",
                        Severity::Error,
                        format!("net.module[{}].in[{}]", iface.index(), dst_port.0),
                        format!(
                            "interface input port {} collides with the response injection \
                             namespace (ports {RESPONSE_PORT_BASE} and above are reserved \
                             for follower responses)",
                            dst_port.0
                        ),
                    )
                    .with_hint(format!(
                        "renumber the input port below {RESPONSE_PORT_BASE}"
                    )),
                );
            } else if let Some(slot) = inputs_connected.get_mut(dst_port.0) {
                *slot = true;
            }
        }
        if src == iface {
            if let Some(slot) = outputs_connected.get_mut(src_port.0) {
                *slot = true;
            }
        }
    }

    for (port, connected) in outputs_connected.iter().enumerate() {
        if !connected {
            diags.push(
                Diagnostic::new(
                    "CAST022",
                    Severity::Warning,
                    format!("net.module[{}].out[{port}]", iface.index()),
                    format!(
                        "egress line {port} has no matching interface output connection: \
                         the interface process panics if the DUT ever responds on it"
                    ),
                )
                .with_hint(format!(
                    "connect_stream(iface, PortId({port}), sink, ...) or drop the egress line"
                )),
            );
        }
    }

    for (port, connected) in inputs_connected.iter().enumerate() {
        if !connected {
            diags.push(
                Diagnostic::new(
                    "CAST023",
                    Severity::Info,
                    format!("net.module[{}].in[{port}]", iface.index()),
                    format!(
                        "ingress line {port} is registered but nothing connects to \
                         interface input port {port}: the line will never be stimulated"
                    ),
                )
                .with_hint(format!(
                    "connect a source to interface input port {port} or drop the ingress line"
                )),
            );
        }
    }

    diags
}

fn check_width(
    diags: &mut Vec<Diagnostic>,
    sim: &Simulator,
    id: SignalId,
    expect: usize,
    location: String,
    role: &str,
) {
    let info = sim.signal_info(id);
    if info.width != expect {
        diags.push(
            Diagnostic::new(
                "CAST020",
                Severity::Error,
                location,
                format!(
                    "{role} signal \"{}\" is {} bit(s) wide but the cell interface \
                     drives {expect} (§3.2 byte-wide bus operations)",
                    info.name, info.width
                ),
            )
            .with_hint(format!("declare \"{}\" with width {expect}", info.name)),
        );
    }
}

/// Checks that every ingress/egress signal triple has the widths the §3.2
/// converter produces: 8-bit data, 1-bit cellsync / enable / valid.
#[must_use]
pub fn check_rtl_widths(sim: &Simulator, entity: &CosimEntity) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (i, signals) in entity.ingress_signals().enumerate() {
        let loc = |part: &str| format!("rtl.ingress[{i}].{part}");
        check_width(
            &mut diags,
            sim,
            signals.data,
            DATA_BITS,
            loc("data"),
            "ingress data",
        );
        check_width(
            &mut diags,
            sim,
            signals.sync,
            1,
            loc("sync"),
            "ingress cellsync",
        );
        check_width(
            &mut diags,
            sim,
            signals.enable,
            1,
            loc("enable"),
            "ingress enable",
        );
    }
    for (i, signals) in entity.egress_signals().enumerate() {
        let loc = |part: &str| format!("rtl.egress[{i}].{part}");
        check_width(
            &mut diags,
            sim,
            signals.data,
            DATA_BITS,
            loc("data"),
            "egress data",
        );
        check_width(
            &mut diags,
            sim,
            signals.sync,
            1,
            loc("sync"),
            "egress cellsync",
        );
        check_width(
            &mut diags,
            sim,
            signals.valid,
            1,
            loc("valid"),
            "egress valid",
        );
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use castanet::entity::IngressSignals;
    use castanet::message::MessageTypeId;
    use castanet_atm::addr::HeaderFormat;
    use castanet_netsim::time::SimDuration;

    fn entity() -> CosimEntity {
        CosimEntity::new(
            SimDuration::from_ns(20),
            HeaderFormat::Uni,
            MessageTypeId(0),
        )
    }

    #[test]
    fn narrow_data_signal_is_cast020() {
        let mut sim = Simulator::new();
        let data = sim.add_signal("atmdata", 4); // should be 8
        let sync = sim.add_signal("cellsync", 1);
        let enable = sim.add_signal("enable", 1);
        let mut e = entity();
        e.add_ingress(IngressSignals { data, sync, enable });
        let diags = check_rtl_widths(&sim, &e);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "CAST020");
        assert_eq!(diags[0].location, "rtl.ingress[0].data");
    }

    #[test]
    fn wide_strobe_is_cast020() {
        let mut sim = Simulator::new();
        let data = sim.add_signal("atmdata", 8);
        let sync = sim.add_signal("cellsync", 2); // should be 1
        let enable = sim.add_signal("enable", 1);
        let mut e = entity();
        e.add_ingress(IngressSignals { data, sync, enable });
        let diags = check_rtl_widths(&sim, &e);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].location, "rtl.ingress[0].sync");
    }

    #[test]
    fn correct_widths_lint_clean() {
        let mut sim = Simulator::new();
        let data = sim.add_signal("atmdata", 8);
        let sync = sim.add_signal("cellsync", 1);
        let enable = sim.add_signal("enable", 1);
        let mut e = entity();
        e.add_ingress(IngressSignals { data, sync, enable });
        assert!(check_rtl_widths(&sim, &e).is_empty());
    }
}
