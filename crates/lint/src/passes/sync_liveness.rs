//! Sync-liveness pass: the deadlock-freedom preconditions of §3.1.
//!
//! The conservative protocol is deadlock-free because (a) the grant horizon
//! is monotone in the received stamps and (b) batch windows add `min_j δ_j`
//! of processing lookahead. Both degenerate when the configuration is
//! malformed: with no registered types no grant is ever issued, and a type
//! with `δ_j = 0` contributes zero lookahead — a batch window then grants no
//! extra time and progress relies entirely on explicit null messages.

use crate::diagnostic::{Diagnostic, Severity};
use castanet::message::MessageTypeId;
use castanet::sync::conservative::ConservativeSync;
use castanet_netsim::time::SimDuration;

/// Checks the synchronizer's liveness preconditions.
///
/// `cell_type` is the message type the coupling will send stimulus as, when
/// known; pass `None` when linting a bare synchronizer.
#[must_use]
pub fn check_sync(sync: &ConservativeSync, cell_type: Option<MessageTypeId>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    if sync.type_count() == 0 {
        diags.push(
            Diagnostic::new(
                "CAST001",
                Severity::Error,
                "sync",
                "no message types registered: the follower can never be granted \
                 simulation time, so the coupled run cannot start",
            )
            .with_hint(
                "call ConservativeSync::register_type(delta) before assembling the coupling",
            ),
        );
    }

    for (type_id, delta) in sync.deltas() {
        if delta == SimDuration::ZERO {
            diags.push(
                Diagnostic::new(
                    "CAST002",
                    Severity::Warning,
                    format!("sync.type[{}]", type_id.0),
                    "processing delay δ_j is zero: this type contributes no lookahead, \
                     so batch windows add no grant and the protocol risks deadlock \
                     unless null messages always arrive (§3.1)",
                )
                .with_hint(
                    "register the type with its worst-case processing delay, e.g. \
                     clock_period * 53 for a full cell transfer",
                ),
            );
        }
    }

    if let Some(cell_type) = cell_type {
        if sync.type_delta(cell_type).is_none() {
            diags.push(
                Diagnostic::new(
                    "CAST003",
                    Severity::Error,
                    format!("coupling.cell_type[{}]", cell_type.0),
                    format!(
                        "cell type {} is not registered with the synchronizer: every \
                         stimulus delivery would fail with UnknownMessageType",
                        cell_type.0
                    ),
                )
                .with_hint("use the MessageTypeId returned by register_type for the coupling"),
            );
        }
    }

    // The monotonicity invariant, expressed as a checkable predicate. On a
    // freshly assembled synchronizer it holds by construction; it can only
    // fail when a pre-run synchronizer was reused after a protocol error.
    if !sync.grant_horizon_monotone() {
        diags.push(
            Diagnostic::new(
                "CAST010",
                Severity::Error,
                "sync.grant",
                "grant-horizon monotonicity predicate violated: a received stamp or the \
                 local clock lies beyond the grant, so §3.1's lag invariant cannot be \
                 maintained",
            )
            .with_hint("assemble the coupling with a fresh synchronizer"),
        );
    }

    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use castanet_netsim::time::SimDuration;

    #[test]
    fn empty_sync_is_cast001() {
        let sync = ConservativeSync::new();
        let diags = check_sync(&sync, None);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "CAST001");
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn zero_delta_is_cast002() {
        let mut sync = ConservativeSync::new();
        sync.register_type(SimDuration::from_us(1));
        let zero = sync.register_type(SimDuration::ZERO);
        let diags = check_sync(&sync, None);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "CAST002");
        assert_eq!(diags[0].location, format!("sync.type[{}]", zero.0));
        assert_eq!(diags[0].severity, Severity::Warning);
    }

    #[test]
    fn unregistered_cell_type_is_cast003() {
        let mut sync = ConservativeSync::new();
        let t = sync.register_type(SimDuration::from_us(1));
        assert!(check_sync(&sync, Some(t)).is_empty());
        let diags = check_sync(&sync, Some(MessageTypeId(7)));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "CAST003");
    }

    #[test]
    fn healthy_sync_lints_clean() {
        let mut sync = ConservativeSync::new();
        let t = sync.register_type(SimDuration::from_ns(20) * 53);
        assert!(check_sync(&sync, Some(t)).is_empty());
    }
}
