//! Topology-reachability pass over the network kernel's connection graph.
//!
//! The CASTANET network model is a graph of behavioural modules joined by
//! point-to-point connections. A connection naming a module that was never
//! registered panics the kernel at delivery time; a module no connection
//! touches can never take part in the run; and a module the interface
//! process cannot reach (treating connections as undirected links) cannot
//! influence or observe the co-verified DUT.

use crate::diagnostic::{Diagnostic, Severity};
use castanet_netsim::event::ModuleId;
use castanet_netsim::kernel::Kernel;
use std::collections::VecDeque;

/// Checks the connection graph for dangling ids, isolated modules and
/// modules unreachable from the interface process.
///
/// `iface` is the interface module the coupling routes cells through, when
/// known; pass `None` when linting a bare kernel (the reachability check
/// `CAST042` is then skipped).
#[must_use]
pub fn check_topology(net: &Kernel, iface: Option<ModuleId>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let n = net.module_count();

    let mut touched = vec![false; n];
    // Undirected adjacency over valid endpoints only.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut dangling_reported = false;
    for (src, src_port, dst, dst_port) in net.connection_edges() {
        let mut dangling = false;
        for (role, id) in [("source", src), ("destination", dst)] {
            if id.index() >= n {
                dangling = true;
                dangling_reported = true;
                diags.push(
                    Diagnostic::new(
                        "CAST040",
                        Severity::Error,
                        format!(
                            "net.connection[{}.{}->{}.{}]",
                            src.index(),
                            src_port.0,
                            dst.index(),
                            dst_port.0
                        ),
                        format!(
                            "connection {role} names module {}, but only {n} module(s) are \
                             registered: delivery along this edge panics the kernel",
                            id.index()
                        ),
                    )
                    .with_hint("connect only ModuleIds returned by Kernel::add_module"),
                );
            }
        }
        if dangling {
            continue;
        }
        touched[src.index()] = true;
        touched[dst.index()] = true;
        adj[src.index()].push(dst.index());
        adj[dst.index()].push(src.index());
    }

    if let Some(iface) = iface {
        if iface.index() >= n {
            diags.push(
                Diagnostic::new(
                    "CAST040",
                    Severity::Error,
                    format!("net.module[{}]", iface.index()),
                    format!(
                        "interface module id {} does not exist in the kernel \
                         ({n} modules registered)",
                        iface.index()
                    ),
                )
                .with_hint("pass the ModuleId returned when the interface process was added"),
            );
            dangling_reported = true;
        }
    }

    for (idx, touched) in touched.iter().enumerate() {
        if !touched {
            diags.push(
                Diagnostic::new(
                    "CAST041",
                    Severity::Warning,
                    format!("net.module[{idx}]"),
                    format!(
                        "module {idx} is isolated: no connection touches it, so it can \
                         neither send nor receive during the run"
                    ),
                )
                .with_hint("connect the module or remove it from the setup"),
            );
        }
    }

    // Reachability from the interface, over undirected links. Skipped when
    // the graph already has dangling references — partial adjacency would
    // drown the report in misleading CAST042s.
    if let Some(iface) = iface {
        if !dangling_reported && n > 0 {
            let mut reachable = vec![false; n];
            reachable[iface.index()] = true;
            let mut queue = VecDeque::from([iface.index()]);
            while let Some(at) = queue.pop_front() {
                for &next in &adj[at] {
                    if !reachable[next] {
                        reachable[next] = true;
                        queue.push_back(next);
                    }
                }
            }
            for (idx, ok) in reachable.iter().enumerate() {
                if !ok && touched[idx] {
                    diags.push(
                        Diagnostic::new(
                            "CAST042",
                            Severity::Warning,
                            format!("net.module[{idx}]"),
                            format!(
                                "module {idx} is connected but cannot reach the interface \
                                 process (module {}): it never exchanges traffic with the DUT",
                                iface.index()
                            ),
                        )
                        .with_hint("bridge the module's component to the interface process"),
                    );
                }
            }
        }
    }

    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use castanet_netsim::event::PortId;
    use castanet_netsim::kernel::Kernel;
    use castanet_netsim::process::NullProcess;

    fn kernel_with(n: usize) -> (Kernel, Vec<ModuleId>) {
        let mut net = Kernel::new(0xCA57);
        let node = net.add_node("board");
        let ids = (0..n)
            .map(|i| net.add_module(node, format!("m{i}"), Box::new(NullProcess)))
            .collect();
        (net, ids)
    }

    #[test]
    fn connected_graph_lints_clean() {
        let (mut net, ids) = kernel_with(3);
        net.connect_stream(ids[0], PortId(0), ids[1], PortId(0))
            .unwrap();
        net.connect_stream(ids[1], PortId(1), ids[2], PortId(0))
            .unwrap();
        assert!(check_topology(&net, Some(ids[1])).is_empty());
    }

    #[test]
    fn isolated_module_is_cast041() {
        let (mut net, ids) = kernel_with(3);
        net.connect_stream(ids[0], PortId(0), ids[1], PortId(0))
            .unwrap();
        let diags = check_topology(&net, None);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "CAST041");
        assert_eq!(diags[0].location, "net.module[2]");
    }

    #[test]
    fn unreachable_component_is_cast042() {
        let (mut net, ids) = kernel_with(4);
        net.connect_stream(ids[0], PortId(0), ids[1], PortId(0))
            .unwrap();
        net.connect_stream(ids[2], PortId(0), ids[3], PortId(0))
            .unwrap();
        let diags = check_topology(&net, Some(ids[0]));
        let codes: Vec<_> = diags.iter().map(|d| d.code).collect();
        assert_eq!(codes, ["CAST042", "CAST042"]);
    }

    #[test]
    fn dangling_interface_is_cast040() {
        // A ModuleId minted by a bigger kernel dangles in a smaller one.
        let (_, foreign_ids) = kernel_with(10);
        let (net, _) = kernel_with(2);
        let diags = check_topology(&net, Some(foreign_ids[9]));
        assert!(diags.iter().any(|d| d.code == "CAST040"));
    }
}
