//! The diagnostic model: stable codes, severities, locations and hints.

use std::fmt;

/// How serious a finding is.
///
/// Ordered so that sorting ascending puts errors first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The configuration will fail at run time (panic, protocol violation
    /// or rejected call). Strict pre-flight refuses to run.
    Error,
    /// The configuration can run but risks deadlock, silent data loss or a
    /// latent panic on specific inputs.
    Warning,
    /// Advisory: something looks unusual but is legal.
    Info,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        })
    }
}

/// One finding of a lint pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable machine-readable code (`CAST0xx`). Codes are never reused or
    /// renumbered; retired codes are retired forever.
    pub code: &'static str,
    /// Finding severity.
    pub severity: Severity,
    /// Where in the assembled setup the finding points, in a dotted path
    /// notation, e.g. `sync.type[2]` or `pinmap.inport[0]`.
    pub location: String,
    /// Human-readable description of the problem.
    pub message: String,
    /// Machine-applicable fix suggestion, when one exists.
    pub hint: Option<String>,
}

impl Diagnostic {
    /// Creates a diagnostic without a hint.
    #[must_use]
    pub fn new(
        code: &'static str,
        severity: Severity,
        location: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity,
            location: location.into(),
            message: message.into(),
            hint: None,
        }
    }

    /// Attaches a machine-applicable hint.
    #[must_use]
    pub fn with_hint(mut self, hint: impl Into<String>) -> Self {
        self.hint = Some(hint.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.severity, self.code, self.location, self.message
        )?;
        if let Some(hint) = &self.hint {
            write!(f, " (hint: {hint})")?;
        }
        Ok(())
    }
}

/// The documented diagnostic-code registry: `(code, severity, summary)`.
///
/// This table is what `castanet-lint --codes` prints and what README's
/// code table is generated from; tests assert every emitted diagnostic
/// uses a registered code.
pub const CODES: &[(&str, Severity, &str)] = &[
    (
        "CAST001",
        Severity::Error,
        "no message types registered with the synchronizer (no grant can ever be issued)",
    ),
    (
        "CAST002",
        Severity::Warning,
        "message type has zero processing delay δ_j — zero lookahead, deadlock risk (§3.1)",
    ),
    (
        "CAST003",
        Severity::Error,
        "coupling cell type is not registered with the synchronizer",
    ),
    (
        "CAST010",
        Severity::Error,
        "grant-horizon monotonicity predicate violated on the assembled synchronizer (§3.1)",
    ),
    (
        "CAST020",
        Severity::Error,
        "RTL signal width inconsistent with the byte-wide cell interface (§3.2)",
    ),
    (
        "CAST021",
        Severity::Error,
        "interface input port collides with the RESPONSE_PORT_BASE.. namespace",
    ),
    (
        "CAST022",
        Severity::Warning,
        "egress line's response output port is not connected (interface panics if a cell arrives)",
    ),
    (
        "CAST023",
        Severity::Info,
        "ingress line's interface input port has no incoming connection (line never stimulated)",
    ),
    (
        "CAST030",
        Severity::Error,
        "overlapping pin segments: a board pin is claimed by more than one mapping (§3.3)",
    ),
    (
        "CAST031",
        Severity::Error,
        "pin segment exceeds its byte lane or addresses an invalid lane",
    ),
    (
        "CAST032",
        Severity::Error,
        "bus interface references a missing inport/outport/ctrlport (§3.3 triple)",
    ),
    (
        "CAST033",
        Severity::Error,
        "port's declared width disagrees with the sum of its segment widths",
    ),
    (
        "CAST034",
        Severity::Error,
        "mapping direction disagrees with the configured lane direction",
    ),
    (
        "CAST035",
        Severity::Error,
        "control port write flag does not fit the port's declared width",
    ),
    (
        "CAST036",
        Severity::Error,
        "duplicate port number within a port class",
    ),
    (
        "CAST040",
        Severity::Error,
        "dangling reference: module or port id does not exist in the kernel",
    ),
    (
        "CAST041",
        Severity::Warning,
        "isolated module: no connection touches it",
    ),
    (
        "CAST042",
        Severity::Warning,
        "module is unreachable from the interface process in the connection graph",
    ),
    (
        "CAST050",
        Severity::Warning,
        "telemetry exporter output path is unwritable or collides with the trace-replay input",
    ),
    (
        "CAST100",
        Severity::Error,
        "combinational loop: a zero-delay cycle through the netlist never settles (full path reported)",
    ),
    (
        "CAST110",
        Severity::Error,
        "signal driven by two or more combinational processes — continuous resolution fight",
    ),
    (
        "CAST111",
        Severity::Warning,
        "write-after-write race: two clocked processes on the same clock write one signal in one delta cycle",
    ),
    (
        "CAST120",
        Severity::Error,
        "combinational process reads a signal absent from its sensitivity list (sim/synth mismatch)",
    ),
    (
        "CAST121",
        Severity::Error,
        "clocked process is not sensitive to its own clock — it can never run",
    ),
    (
        "CAST122",
        Severity::Info,
        "sensitivity entry the process never reads (spurious wake-ups only)",
    ),
    (
        "CAST130",
        Severity::Warning,
        "dead logic: signal is written but never read, sensed, traced or exported",
    ),
    (
        "CAST131",
        Severity::Warning,
        "signal is read but has no driver and is not an external input (stays U/X forever)",
    ),
    (
        "CAST140",
        Severity::Error,
        "gated-clock busy is combinationally derived from the gated domain itself (restart deadlock)",
    ),
    (
        "CAST141",
        Severity::Error,
        "gated-clock busy line has no driver — the clock parks at elaboration and never starts",
    ),
    (
        "CAST150",
        Severity::Error,
        "compiled-follower ingress/egress pin index out of range for the lane bank's port list",
    ),
    (
        "CAST151",
        Severity::Error,
        "compiled-follower pin is narrower than its line role requires (8-bit data, 1-bit strobes)",
    ),
];

/// Looks up the registered severity and summary of `code`.
#[must_use]
pub fn code_info(code: &str) -> Option<(Severity, &'static str)> {
    CODES
        .iter()
        .find(|(c, _, _)| *c == code)
        .map(|&(_, sev, summary)| (sev, summary))
}

/// Sorts findings for presentation: errors first, then by code and location.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| (a.severity, a.code, &a.location).cmp(&(b.severity, b.code, &b.location)));
}

/// `true` when any finding is an error.
#[must_use]
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_well_formed() {
        for (i, (code, _, _)) in CODES.iter().enumerate() {
            assert!(code.starts_with("CAST") && code.len() == 7, "{code}");
            assert!(
                CODES.iter().skip(i + 1).all(|(c, _, _)| c != code),
                "duplicate code {code}"
            );
        }
    }

    #[test]
    fn severity_orders_errors_first() {
        let mut diags = vec![
            Diagnostic::new("CAST041", Severity::Warning, "b", "w"),
            Diagnostic::new("CAST023", Severity::Info, "c", "i"),
            Diagnostic::new("CAST001", Severity::Error, "a", "e"),
        ];
        sort_diagnostics(&mut diags);
        assert_eq!(diags[0].code, "CAST001");
        assert_eq!(diags[2].code, "CAST023");
        assert!(has_errors(&diags));
    }

    #[test]
    fn display_includes_code_and_hint() {
        let d = Diagnostic::new("CAST002", Severity::Warning, "sync.type[1]", "δ is zero")
            .with_hint("register the type with a positive delay");
        let s = d.to_string();
        assert!(s.contains("CAST002") && s.contains("hint:"), "{s}");
    }
}
