//! Static pre-flight analysis for CASTANET co-verification setups.
//!
//! The DATE'98 paper's environment couples a network model, an abstraction
//! interface and an RTL/hardware follower. Most misconfigurations — a
//! message type with zero lookahead, a cell bus mapped onto a 4-bit signal,
//! two pin segments claiming the same board pin — only surface minutes into
//! a run, as a deadlock or a panic. This crate analyses an *assembled but
//! not yet running* setup and reports every such finding up front, each
//! with a stable `CAST0xx` code, a severity, a dotted location path and,
//! where possible, a machine-applicable hint.
//!
//! The pass categories cover the paper's configuration layers plus the
//! telemetry layer this reproduction adds:
//!
//! | pass | paper layer | codes |
//! |------|-------------|-------|
//! | [`passes::sync_liveness`] | §3.1 conservative synchronization | `CAST001`–`CAST010` |
//! | [`passes::interface`] | §3.2 abstraction interface | `CAST020`–`CAST023` |
//! | [`passes::pinmap`] | §3.3 pin mapping | `CAST030`–`CAST036` |
//! | [`passes::topology`] | network model graph | `CAST040`–`CAST042` |
//! | [`passes::telemetry`] | telemetry exporter paths | `CAST050` |
//! | [`passes::rtl_structure`] | RTL netlist structure | `CAST100`–`CAST141` |
//!
//! [`check_coupling`] runs everything applicable to an assembled
//! [`Coupling`]; the `castanet-lint` binary wraps it (and the pin-map pass)
//! with human and JSON output. `Coupling::preflight` in the core crate
//! enforces the error-level subset of these analyses at `run()` time when
//! the coupling is built `with_strict(true)`.

pub mod diagnostic;
pub mod passes;
pub mod report;

pub use diagnostic::{code_info, has_errors, sort_diagnostics, Diagnostic, Severity, CODES};
pub use report::{render_human, render_json};

use castanet::coupling::{CoupledSimulator, Coupling, RtlCosim};

/// Lints the layers common to every follower type: the synchronizer (§3.1)
/// and the network topology.
#[must_use]
pub fn check_coupling_setup<S: CoupledSimulator>(coupling: &Coupling<S>) -> Vec<Diagnostic> {
    let mut diags = passes::sync_liveness::check_sync(coupling.sync(), Some(coupling.cell_type()));
    diags.extend(passes::topology::check_topology(
        coupling.net(),
        Some(coupling.iface_module()),
    ));
    sort_diagnostics(&mut diags);
    diags
}

/// Lints a fully assembled RTL coupling: synchronizer liveness, topology
/// reachability, interface port consistency and RTL signal widths.
///
/// This is the complete pre-flight analysis; run it on a setup *before*
/// `Coupling::run` to get every finding at once instead of the first panic.
#[must_use]
pub fn check_coupling(coupling: &Coupling<RtlCosim>) -> Vec<Diagnostic> {
    let mut diags = passes::sync_liveness::check_sync(coupling.sync(), Some(coupling.cell_type()));
    diags.extend(passes::topology::check_topology(
        coupling.net(),
        Some(coupling.iface_module()),
    ));
    diags.extend(passes::interface::check_interface(
        coupling.net(),
        coupling.iface_module(),
        coupling.follower().entity(),
    ));
    diags.extend(passes::interface::check_rtl_widths(
        coupling.follower().sim(),
        coupling.follower().entity(),
    ));
    diags.extend(passes::rtl_structure::check_rtl_structure(
        coupling.follower().sim(),
    ));
    sort_diagnostics(&mut diags);
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_pass_emits_only_registered_codes() {
        // The pass modules hard-code their codes; cross-check the registry
        // covers every code this crate can emit.
        for code in [
            "CAST001", "CAST002", "CAST003", "CAST010", "CAST020", "CAST021", "CAST022", "CAST023",
            "CAST030", "CAST031", "CAST032", "CAST033", "CAST034", "CAST035", "CAST036", "CAST040",
            "CAST041", "CAST042", "CAST050", "CAST100", "CAST110", "CAST111", "CAST120", "CAST121",
            "CAST122", "CAST130", "CAST131", "CAST140", "CAST141",
        ] {
            assert!(code_info(code).is_some(), "unregistered code {code}");
        }
    }
}
