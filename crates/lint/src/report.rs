//! Rendering findings for people (compiler-style text) and machines (JSON).

use crate::diagnostic::{Diagnostic, Severity};
use std::fmt::Write as _;

/// Renders findings the way a compiler would: one line per finding plus a
/// severity tally, e.g. `2 errors, 1 warning`.
#[must_use]
pub fn render_human(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        let _ = writeln!(out, "{d}");
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags
        .iter()
        .filter(|d| d.severity == Severity::Warning)
        .count();
    let infos = diags
        .iter()
        .filter(|d| d.severity == Severity::Info)
        .count();
    if diags.is_empty() {
        out.push_str("no findings: configuration passes all pre-flight checks\n");
    } else {
        let plural = |n: usize| if n == 1 { "" } else { "s" };
        let _ = writeln!(
            out,
            "{errors} error{}, {warnings} warning{}, {infos} advisory note{}",
            plural(errors),
            plural(warnings),
            plural(infos)
        );
    }
    out
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    escape_json(s, out);
    out.push('"');
}

/// Renders findings as a JSON document:
/// `{"findings": [...], "errors": N, "warnings": N, "infos": N}`.
///
/// Each finding is an object with `code`, `severity`, `location`, `message`
/// and (when present) `hint`. The encoder is hand-rolled so the lint tool
/// stays dependency-free; fields never contain non-string scalars.
#[must_use]
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, d) in diags.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    {\"code\": ");
        push_json_string(&mut out, d.code);
        out.push_str(", \"severity\": ");
        push_json_string(&mut out, &d.severity.to_string());
        out.push_str(", \"location\": ");
        push_json_string(&mut out, &d.location);
        out.push_str(", \"message\": ");
        push_json_string(&mut out, &d.message);
        if let Some(hint) = &d.hint {
            out.push_str(", \"hint\": ");
            push_json_string(&mut out, hint);
        }
        out.push('}');
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    let count = |sev| diags.iter().filter(|d| d.severity == sev).count();
    let _ = write!(
        out,
        "],\n  \"errors\": {},\n  \"warnings\": {},\n  \"infos\": {}\n}}",
        count(Severity::Error),
        count(Severity::Warning),
        count(Severity::Info)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic::new("CAST002", Severity::Warning, "sync.type[0]", "δ_j is zero")
                .with_hint("register a positive delay"),
            Diagnostic::new(
                "CAST030",
                Severity::Error,
                "pinmap.lane[0].bit[3]",
                "pin claimed twice",
            ),
        ]
    }

    #[test]
    fn human_report_has_tally() {
        let text = render_human(&sample());
        assert!(text.contains("warning [CAST002]"), "{text}");
        assert!(
            text.contains("1 error, 1 warning, 0 advisory notes"),
            "{text}"
        );
        assert!(render_human(&[]).contains("no findings"));
    }

    #[test]
    fn json_report_is_well_formed() {
        let json = render_json(&sample());
        assert!(json.contains("\"code\": \"CAST030\""), "{json}");
        assert!(json.contains("\"errors\": 1"), "{json}");
        assert!(
            json.contains("\"hint\": \"register a positive delay\""),
            "{json}"
        );
        // Braces and brackets balance (cheap well-formedness check; none of
        // the emitted strings contain braces).
        let opens = json.matches('{').count();
        assert_eq!(opens, json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_strings_are_escaped() {
        let d = Diagnostic::new(
            "CAST001",
            Severity::Error,
            "a\"b",
            "line\nbreak\tand\\slash",
        );
        let json = render_json(&[d]);
        assert!(json.contains("a\\\"b"), "{json}");
        assert!(json.contains("line\\nbreak\\tand\\\\slash"), "{json}");
    }

    #[test]
    fn empty_json_report() {
        let json = render_json(&[]);
        assert!(json.contains("\"findings\": []"), "{json}");
        assert!(json.contains("\"errors\": 0"), "{json}");
    }
}
