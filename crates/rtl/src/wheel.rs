//! Hierarchical timing wheel for the event-driven scheduler.
//!
//! The simulator's pending-transaction queue used to be a global
//! `BinaryHeap`, which charges `O(log n)` per push/pop even though the
//! overwhelming majority of HDL traffic is "a clock edge a half-period
//! away" or "a drive event a few nanoseconds out". The wheel replaces
//! that with a hashed hierarchical timing wheel (Varghese–Lauck): eleven
//! levels of 64 slots, six bits of the picosecond timestamp per level,
//! which together cover the full `u64` time range. A push indexes the
//! level whose digit first differs from the wheel base and appends to a
//! slot vector — `O(1)`, no comparisons. Popping drains the slot holding
//! the earliest timestamp; entries parked in coarse levels cascade down
//! at most once per level as the base advances, so the amortized cost per
//! entry is `O(levels)` with tiny constants.
//!
//! Ordering contract (what the simulator relies on):
//!
//! * [`TimingWheel::peek`] returns the minimum pending timestamp;
//! * [`TimingWheel::pop_into`] removes *all* entries carrying exactly
//!   that timestamp and appends them to the output in push order (pushes
//!   are globally sequence-numbered by the caller and monotone, so push
//!   order *is* seq order — the property-based test against a
//!   `BinaryHeap` reference model in `tests/rtl_kernel_props.rs` checks
//!   this end to end);
//! * the base only advances inside `pop_into`, so a caller may keep
//!   pushing timestamps as early as the last popped time (the simulator's
//!   `poke(at >= now)` contract) without tripping the base assertion.

/// Bits of the timestamp consumed per wheel level.
const LEVEL_BITS: usize = 6;
/// Slots per level (64).
const SLOTS: usize = 1 << LEVEL_BITS;
/// Number of levels; `11 * 6 = 66 >= 64` bits covers any `u64` time.
const LEVELS: usize = 11;
/// Low-bits mask selecting a slot index.
const SLOT_MASK: u64 = (SLOTS as u64) - 1;

/// Hierarchical timing wheel keyed on `u64` timestamps (picoseconds in
/// the simulator), holding opaque payloads of type `T`.
pub struct TimingWheel<T> {
    /// `LEVELS * SLOTS` slot vectors, flattened level-major.
    slots: Vec<Vec<(u64, T)>>,
    /// One occupancy bitmask per level; bit `s` set iff slot `s` is
    /// non-empty. Keeps "find earliest slot" a `trailing_zeros` call.
    occupied: [u64; LEVELS],
    /// All stored timestamps are `>= base`; advanced by `pop_into`.
    base: u64,
    len: usize,
    /// Entries moved between slots since the last [`Self::take_cascaded`].
    cascaded: u64,
}

impl<T> Default for TimingWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for TimingWheel<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimingWheel")
            .field("base", &self.base)
            .field("len", &self.len)
            .finish()
    }
}

impl<T> TimingWheel<T> {
    /// Creates an empty wheel based at time zero.
    #[must_use]
    pub fn new() -> Self {
        let mut slots = Vec::with_capacity(LEVELS * SLOTS);
        slots.resize_with(LEVELS * SLOTS, Vec::new);
        Self {
            slots,
            occupied: [0; LEVELS],
            base: 0,
            len: 0,
            cascaded: 0,
        }
    }

    /// Number of pending entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Entries relocated by cascading since the last call; resets the
    /// counter. Feeds the `rtl.wheel_cascade` telemetry counter.
    pub fn take_cascaded(&mut self) -> u64 {
        std::mem::take(&mut self.cascaded)
    }

    /// Occupied slots across every level — how spread-out the pending
    /// transactions are. Feeds the `rtl.wheel_occupancy` telemetry gauge.
    #[must_use]
    pub fn occupied_slots(&self) -> u32 {
        self.occupied.iter().map(|bits| bits.count_ones()).sum()
    }

    /// Level whose digit distinguishes `time` from the current base.
    #[inline]
    fn level_of(&self, time: u64) -> usize {
        let diff = time ^ self.base;
        if diff == 0 {
            0
        } else {
            (63 - diff.leading_zeros() as usize) / LEVEL_BITS
        }
    }

    /// Schedules `item` at `time`. Panics if `time` precedes the wheel
    /// base (i.e. an already-popped instant).
    pub fn push(&mut self, time: u64, item: T) {
        assert!(
            time >= self.base,
            "timing wheel: push at {time} before base {}",
            self.base
        );
        let level = self.level_of(time);
        let slot = ((time >> (level * LEVEL_BITS)) & SLOT_MASK) as usize;
        self.slots[level * SLOTS + slot].push((time, item));
        self.occupied[level] |= 1 << slot;
        self.len += 1;
    }

    /// Earliest pending timestamp, without disturbing the wheel.
    ///
    /// Within one level every surviving entry shares the base's digits
    /// above that level (anything else would be `< base`), so the first
    /// occupied slot of each level bounds that level's minimum; level 0
    /// slots hold a single exact time, coarser slots are scanned.
    #[must_use]
    pub fn peek(&self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let mut best: Option<u64> = None;
        for level in 0..LEVELS {
            if self.occupied[level] == 0 {
                continue;
            }
            let slot = self.occupied[level].trailing_zeros() as usize;
            let candidate = if level == 0 {
                (self.base & !SLOT_MASK) | slot as u64
            } else {
                self.slots[level * SLOTS + slot]
                    .iter()
                    .map(|&(t, _)| t)
                    .min()
                    .expect("occupancy bit set for empty slot")
            };
            best = Some(best.map_or(candidate, |b| b.min(candidate)));
        }
        best
    }

    /// Removes every entry scheduled for the earliest pending timestamp,
    /// appending them to `out` in push order, and returns that timestamp.
    /// Advances the wheel base to it.
    pub fn pop_into(&mut self, out: &mut Vec<T>) -> Option<u64> {
        let time = self.peek()?;
        self.base = time;
        // `time`'s slot index at a given level does not depend on the
        // base, so every entry stamped `time` lives in one of these
        // eleven slots. Walk coarse-to-fine: pushes migrate toward level
        // 0 as the base advances, so coarser copies carry earlier
        // sequence numbers and must be emitted first. Bystanders sharing
        // a coarse slot are strictly later than `time` (it is the
        // minimum) and re-file under the advanced base, never into a
        // slot this loop still has to visit.
        for level in (0..LEVELS).rev() {
            let slot = ((time >> (level * LEVEL_BITS)) & SLOT_MASK) as usize;
            if self.occupied[level] & (1 << slot) == 0 {
                continue;
            }
            let index = level * SLOTS + slot;
            let mut entries = std::mem::take(&mut self.slots[index]);
            self.occupied[level] &= !(1 << slot);
            self.len -= entries.len();
            for (t, item) in entries.drain(..) {
                if t == time {
                    out.push(item);
                } else {
                    debug_assert!(t > time);
                    self.cascaded += 1;
                    self.push(t, item);
                }
            }
            // Hand the emptied vector back to keep its capacity.
            if self.slots[index].is_empty() {
                self.slots[index] = entries;
            }
        }
        Some(time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_all(wheel: &mut TimingWheel<u64>) -> Vec<(u64, Vec<u64>)> {
        let mut out = Vec::new();
        let mut batch = Vec::new();
        while let Some(t) = wheel.pop_into(&mut batch) {
            out.push((t, batch.clone()));
            batch.clear();
        }
        out
    }

    #[test]
    fn pops_in_time_order_across_levels() {
        let mut wheel = TimingWheel::new();
        for (seq, &t) in [5u64, 63, 64, 65, 4096, 262_144, 1, 0].iter().enumerate() {
            wheel.push(t, seq as u64);
        }
        let order: Vec<u64> = drain_all(&mut wheel).iter().map(|&(t, _)| t).collect();
        assert_eq!(order, vec![0, 1, 5, 63, 64, 65, 4096, 262_144]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn same_time_entries_pop_together_in_push_order() {
        let mut wheel = TimingWheel::new();
        wheel.push(100, 0);
        wheel.push(50, 1);
        wheel.push(100, 2);
        wheel.push(100, 3);
        let mut batch = Vec::new();
        assert_eq!(wheel.pop_into(&mut batch), Some(50));
        assert_eq!(batch, vec![1]);
        batch.clear();
        assert_eq!(wheel.pop_into(&mut batch), Some(100));
        assert_eq!(batch, vec![0, 2, 3]);
        assert!(wheel.pop_into(&mut batch).is_none());
    }

    #[test]
    fn push_order_survives_a_base_advance_between_pushes() {
        // An entry parked in a coarse level must still pop before entries
        // pushed later (higher seq) directly into level 0.
        let mut wheel = TimingWheel::new();
        wheel.push(100, 0); // base 0: lands in level 1
        wheel.push(64, 1);
        let mut batch = Vec::new();
        assert_eq!(wheel.pop_into(&mut batch), Some(64)); // base -> 64
        batch.clear();
        wheel.push(100, 2); // base 64: lands in level 0
        assert_eq!(wheel.pop_into(&mut batch), Some(100));
        assert_eq!(batch, vec![0, 2]);
    }

    #[test]
    fn peek_is_exact_with_mixed_levels() {
        let mut wheel = TimingWheel::new();
        wheel.push(80, 0); // level 1 under base 0
        let mut batch = Vec::new();
        wheel.push(64, 1);
        assert_eq!(wheel.pop_into(&mut batch), Some(64)); // base -> 64
        wheel.push(100, 2); // level 0 under base 64
        assert_eq!(wheel.peek(), Some(80)); // min sits in level 1, not 0
        batch.clear();
        assert_eq!(wheel.pop_into(&mut batch), Some(80));
        assert_eq!(batch, vec![0]);
    }

    #[test]
    fn full_range_timestamps_are_accepted() {
        let mut wheel = TimingWheel::new();
        wheel.push(u64::MAX, 0);
        wheel.push(u64::MAX - 1, 1);
        wheel.push(0, 2);
        let popped = drain_all(&mut wheel);
        assert_eq!(
            popped,
            vec![(0, vec![2]), (u64::MAX - 1, vec![1]), (u64::MAX, vec![0]),]
        );
    }

    #[test]
    fn len_and_cascade_counters_track() {
        let mut wheel = TimingWheel::new();
        for t in 0..200u64 {
            wheel.push(t * 37, t);
        }
        assert_eq!(wheel.len(), 200);
        let mut batch = Vec::new();
        let mut seen = 0;
        while wheel.pop_into(&mut batch).is_some() {
            seen += batch.len();
            batch.clear();
        }
        assert_eq!(seen, 200);
        assert_eq!(wheel.len(), 0);
        assert!(wheel.take_cascaded() > 0);
        assert_eq!(wheel.take_cascaded(), 0);
    }

    #[test]
    fn push_at_current_base_is_allowed_and_pops_immediately() {
        let mut wheel = TimingWheel::new();
        wheel.push(10, 0);
        let mut batch = Vec::new();
        assert_eq!(wheel.pop_into(&mut batch), Some(10));
        batch.clear();
        wheel.push(10, 1); // same instant again (poke at `now`)
        assert_eq!(wheel.pop_into(&mut batch), Some(10));
        assert_eq!(batch, vec![1]);
    }

    #[test]
    #[should_panic(expected = "before base")]
    fn push_before_base_panics() {
        let mut wheel = TimingWheel::new();
        wheel.push(100, 0);
        let mut batch = Vec::new();
        wheel.pop_into(&mut batch);
        wheel.push(99, 1);
    }
}
