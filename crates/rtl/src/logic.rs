//! The nine-value logic system of IEEE Std 1164 (`std_logic`).
//!
//! The paper's hardware models are VHDL; their ports are
//! `STD_LOGIC_VECTOR`s (Fig. 4). This module provides the same value system
//! — `U X 0 1 Z W L H -` — including the *resolution function* that combines
//! multiple drivers of one signal, which is what makes bidirectional buses
//! (the test board's I/O ports, §3.3) representable.

use std::fmt;

/// One `std_logic` value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(u8)]
pub enum Logic {
    /// Uninitialized.
    #[default]
    U = 0,
    /// Forcing unknown.
    X = 1,
    /// Forcing 0.
    Zero = 2,
    /// Forcing 1.
    One = 3,
    /// High impedance.
    Z = 4,
    /// Weak unknown.
    W = 5,
    /// Weak 0.
    L = 6,
    /// Weak 1.
    H = 7,
    /// Don't care.
    DontCare = 8,
}

/// The IEEE 1164 resolution table: `RESOLUTION[a][b]` is the value of a
/// signal driven simultaneously with `a` and `b`. Crate-visible so the
/// packed `LogicVector` can pre-expand it into a byte-pair lookup table.
pub(crate) const RESOLUTION: [[Logic; 9]; 9] = {
    use Logic::{One as I, Zero as O, H, L, U, W, X, Z};
    [
        // U  X  0  1  Z  W  L  H  -
        [U, U, U, U, U, U, U, U, U], // U
        [U, X, X, X, X, X, X, X, X], // X
        [U, X, O, X, O, O, O, O, X], // 0
        [U, X, X, I, I, I, I, I, X], // 1
        [U, X, O, I, Z, W, L, H, X], // Z
        [U, X, O, I, W, W, W, W, X], // W
        [U, X, O, I, L, W, L, W, X], // L
        [U, X, O, I, H, W, W, H, X], // H
        [U, X, X, X, X, X, X, X, X], // -
    ]
};

impl Logic {
    /// All nine values, in standard order.
    pub const ALL: [Logic; 9] = [
        Logic::U,
        Logic::X,
        Logic::Zero,
        Logic::One,
        Logic::Z,
        Logic::W,
        Logic::L,
        Logic::H,
        Logic::DontCare,
    ];

    /// Resolves two simultaneous drivers per IEEE 1164.
    #[must_use]
    pub fn resolve(self, other: Logic) -> Logic {
        RESOLUTION[self as usize][other as usize]
    }

    /// Decodes the 4-bit packed encoding used by `LogicVector` (the
    /// discriminant itself). Out-of-range nibbles decode to `DontCare`;
    /// the packed representation never produces them.
    #[must_use]
    pub(crate) const fn from_nibble(nibble: u8) -> Logic {
        match nibble {
            0 => Logic::U,
            1 => Logic::X,
            2 => Logic::Zero,
            3 => Logic::One,
            4 => Logic::Z,
            5 => Logic::W,
            6 => Logic::L,
            7 => Logic::H,
            _ => Logic::DontCare,
        }
    }

    /// Resolves any number of drivers; no drivers yields `Z`.
    #[must_use]
    pub fn resolve_all(drivers: impl IntoIterator<Item = Logic>) -> Logic {
        drivers.into_iter().fold(Logic::Z, Logic::resolve)
    }

    /// `to_x01`-style strength stripping: weak values map onto their forcing
    /// counterparts, everything unknown onto `X`.
    #[must_use]
    pub fn to_x01(self) -> Logic {
        match self {
            Logic::Zero | Logic::L => Logic::Zero,
            Logic::One | Logic::H => Logic::One,
            _ => Logic::X,
        }
    }

    /// `true` when the value reads as logic 1 after strength stripping.
    #[must_use]
    pub fn is_one(self) -> bool {
        self.to_x01() == Logic::One
    }

    /// `true` when the value reads as logic 0 after strength stripping.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.to_x01() == Logic::Zero
    }

    /// `true` for `U`, `X`, `W`, `Z`, `-` (no defined binary reading).
    #[must_use]
    pub fn is_unknown(self) -> bool {
        self.to_x01() == Logic::X
    }

    /// Converts a bool to the corresponding forcing value.
    #[must_use]
    pub fn from_bool(b: bool) -> Logic {
        if b {
            Logic::One
        } else {
            Logic::Zero
        }
    }

    /// Binary reading: `Some(true/false)` for defined values, else `None`.
    #[must_use]
    pub fn to_bool(self) -> Option<bool> {
        match self.to_x01() {
            Logic::One => Some(true),
            Logic::Zero => Some(false),
            _ => None,
        }
    }

    /// The character of the value in VHDL source / VCD files.
    #[must_use]
    pub fn to_char(self) -> char {
        match self {
            Logic::U => 'U',
            Logic::X => 'X',
            Logic::Zero => '0',
            Logic::One => '1',
            Logic::Z => 'Z',
            Logic::W => 'W',
            Logic::L => 'L',
            Logic::H => 'H',
            Logic::DontCare => '-',
        }
    }

    /// Parses the VHDL character form.
    #[must_use]
    pub fn from_char(c: char) -> Option<Logic> {
        Some(match c.to_ascii_uppercase() {
            'U' => Logic::U,
            'X' => Logic::X,
            '0' => Logic::Zero,
            '1' => Logic::One,
            'Z' => Logic::Z,
            'W' => Logic::W,
            'L' => Logic::L,
            'H' => Logic::H,
            '-' => Logic::DontCare,
            _ => return None,
        })
    }

    /// Logical NOT (on the stripped value; unknown stays `X`).
    // Not the `ops::Not` trait: 1164 negation is X-propagating, not a
    // boolean involution, and the named form matches `and`/`or` below.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn not(self) -> Logic {
        match self.to_x01() {
            Logic::Zero => Logic::One,
            Logic::One => Logic::Zero,
            _ => Logic::X,
        }
    }

    /// Logical AND with 1164 pessimism (`0 and X = 0`).
    #[must_use]
    pub fn and(self, other: Logic) -> Logic {
        match (self.to_x01(), other.to_x01()) {
            (Logic::Zero, _) | (_, Logic::Zero) => Logic::Zero,
            (Logic::One, Logic::One) => Logic::One,
            _ => Logic::X,
        }
    }

    /// Logical OR with 1164 pessimism (`1 or X = 1`).
    #[must_use]
    pub fn or(self, other: Logic) -> Logic {
        match (self.to_x01(), other.to_x01()) {
            (Logic::One, _) | (_, Logic::One) => Logic::One,
            (Logic::Zero, Logic::Zero) => Logic::Zero,
            _ => Logic::X,
        }
    }

    /// Logical XOR (`X` whenever an operand is unknown).
    #[must_use]
    pub fn xor(self, other: Logic) -> Logic {
        match (self.to_x01(), other.to_x01()) {
            (Logic::Zero, Logic::Zero) | (Logic::One, Logic::One) => Logic::Zero,
            (Logic::Zero, Logic::One) | (Logic::One, Logic::Zero) => Logic::One,
            _ => Logic::X,
        }
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

impl From<bool> for Logic {
    fn from(b: bool) -> Logic {
        Logic::from_bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_is_commutative() {
        for a in Logic::ALL {
            for b in Logic::ALL {
                assert_eq!(a.resolve(b), b.resolve(a), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn resolution_is_associative() {
        for a in Logic::ALL {
            for b in Logic::ALL {
                for c in Logic::ALL {
                    assert_eq!(
                        a.resolve(b).resolve(c),
                        a.resolve(b.resolve(c)),
                        "{a},{b},{c}"
                    );
                }
            }
        }
    }

    #[test]
    fn z_is_the_identity_of_resolution_except_dont_care() {
        for a in Logic::ALL {
            if a == Logic::DontCare {
                // IEEE 1164: '-' resolves to X against anything but U.
                assert_eq!(a.resolve(Logic::Z), Logic::X);
            } else {
                assert_eq!(a.resolve(Logic::Z), a, "{a}");
            }
        }
    }

    #[test]
    fn forcing_conflict_is_x() {
        assert_eq!(Logic::Zero.resolve(Logic::One), Logic::X);
        assert_eq!(Logic::One.resolve(Logic::Zero), Logic::X);
    }

    #[test]
    fn strong_beats_weak() {
        assert_eq!(Logic::Zero.resolve(Logic::H), Logic::Zero);
        assert_eq!(Logic::One.resolve(Logic::L), Logic::One);
        assert_eq!(Logic::L.resolve(Logic::H), Logic::W);
    }

    #[test]
    fn u_dominates_everything() {
        for a in Logic::ALL {
            assert_eq!(a.resolve(Logic::U), Logic::U);
        }
    }

    #[test]
    fn resolve_all_of_empty_is_z() {
        assert_eq!(Logic::resolve_all([]), Logic::Z);
        assert_eq!(Logic::resolve_all([Logic::One]), Logic::One);
        assert_eq!(
            Logic::resolve_all([Logic::Z, Logic::H, Logic::Zero]),
            Logic::Zero
        );
    }

    #[test]
    fn to_x01_strips_strength() {
        assert_eq!(Logic::L.to_x01(), Logic::Zero);
        assert_eq!(Logic::H.to_x01(), Logic::One);
        assert_eq!(Logic::Z.to_x01(), Logic::X);
        assert_eq!(Logic::U.to_x01(), Logic::X);
        assert_eq!(Logic::DontCare.to_x01(), Logic::X);
    }

    #[test]
    fn bool_conversions() {
        assert_eq!(Logic::from(true), Logic::One);
        assert_eq!(Logic::from(false), Logic::Zero);
        assert_eq!(Logic::H.to_bool(), Some(true));
        assert_eq!(Logic::L.to_bool(), Some(false));
        assert_eq!(Logic::Z.to_bool(), None);
        assert!(Logic::One.is_one());
        assert!(Logic::L.is_zero());
        assert!(Logic::W.is_unknown());
    }

    #[test]
    fn char_roundtrip() {
        for v in Logic::ALL {
            assert_eq!(Logic::from_char(v.to_char()), Some(v));
        }
        assert_eq!(Logic::from_char('z'), Some(Logic::Z));
        assert_eq!(Logic::from_char('q'), None);
    }

    #[test]
    fn boolean_operators() {
        assert_eq!(Logic::One.not(), Logic::Zero);
        assert_eq!(Logic::Z.not(), Logic::X);
        assert_eq!(Logic::Zero.and(Logic::X), Logic::Zero);
        assert_eq!(Logic::One.and(Logic::H), Logic::One);
        assert_eq!(Logic::One.or(Logic::U), Logic::One);
        assert_eq!(Logic::L.or(Logic::Zero), Logic::Zero);
        assert_eq!(Logic::One.xor(Logic::H), Logic::Zero);
        assert_eq!(Logic::One.xor(Logic::Zero), Logic::One);
        assert_eq!(Logic::One.xor(Logic::Z), Logic::X);
    }
}
