//! Library of synthesizable-style RTL components as event-driven processes.
//!
//! The building blocks a VHDL designer instantiates: flip-flops, counters,
//! shift registers and synchronous FIFOs, written against the event-driven
//! kernel with sensitivity lists — both to exercise the kernel the way real
//! RTL does and to compose test benches and DUT scaffolding.

use crate::logic::Logic;
use crate::netlist::ProcessIo;
use crate::signal::SignalId;
use crate::sim::{RtlCtx, RtlProcess};
use crate::vector::LogicVector;
use std::collections::VecDeque;

/// A D flip-flop with synchronous active-high reset:
/// `q <= (others => '0') when rst else d` on rising `clk`.
#[derive(Debug)]
pub struct DFlipFlop {
    /// Clock input.
    pub clk: SignalId,
    /// Synchronous reset input.
    pub rst: SignalId,
    /// Data input.
    pub d: SignalId,
    /// Registered output.
    pub q: SignalId,
}

impl RtlProcess for DFlipFlop {
    fn run(&mut self, ctx: &mut RtlCtx) {
        if ctx.rising(self.clk) {
            if ctx.read_bit(self.rst).is_one() {
                let width = ctx.read(self.q).width();
                ctx.assign(self.q, LogicVector::filled(Logic::Zero, width));
            } else {
                let v = ctx.read(self.d).clone();
                ctx.assign(self.q, v);
            }
        }
    }

    fn io(&self) -> Option<ProcessIo> {
        Some(
            ProcessIo::clocked("dff", self.clk)
                .with_reset(self.rst)
                .reads([self.clk, self.rst, self.d])
                .writes([self.q]),
        )
    }
}

/// A binary up-counter with synchronous reset and enable; wraps at the
/// output width.
#[derive(Debug)]
pub struct Counter {
    /// Clock input.
    pub clk: SignalId,
    /// Synchronous reset input.
    pub rst: SignalId,
    /// Count enable input.
    pub en: SignalId,
    /// Counter value output.
    pub q: SignalId,
    value: u64,
    width: usize,
}

impl Counter {
    /// Creates a counter of `width` bits (`q` must be declared with the same
    /// width).
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 64.
    #[must_use]
    pub fn new(clk: SignalId, rst: SignalId, en: SignalId, q: SignalId, width: usize) -> Self {
        assert!((1..=64).contains(&width), "counter width must be 1..=64");
        Counter {
            clk,
            rst,
            en,
            q,
            value: 0,
            width,
        }
    }
}

impl RtlProcess for Counter {
    fn init(&mut self, ctx: &mut RtlCtx) {
        ctx.assign(self.q, LogicVector::from_u64(0, self.width));
    }

    fn run(&mut self, ctx: &mut RtlCtx) {
        if ctx.rising(self.clk) {
            if ctx.read_bit(self.rst).is_one() {
                self.value = 0;
            } else if ctx.read_bit(self.en).is_one() {
                self.value = if self.width == 64 {
                    self.value.wrapping_add(1)
                } else {
                    (self.value + 1) & ((1u64 << self.width) - 1)
                };
            }
            ctx.assign(self.q, LogicVector::from_u64(self.value, self.width));
        }
    }

    fn io(&self) -> Option<ProcessIo> {
        Some(
            ProcessIo::clocked("counter", self.clk)
                .with_reset(self.rst)
                .reads([self.clk, self.rst, self.en])
                .writes([self.q]),
        )
    }
}

/// A serial-in, parallel-out shift register (LSB-first: the incoming bit
/// enters at bit 0 and older bits shift up).
#[derive(Debug)]
pub struct ShiftRegister {
    /// Clock input.
    pub clk: SignalId,
    /// Serial data input (1 bit).
    pub din: SignalId,
    /// Shift enable.
    pub en: SignalId,
    /// Parallel output.
    pub q: SignalId,
    state: LogicVector,
}

impl ShiftRegister {
    /// Creates a shift register matching `q`'s width.
    #[must_use]
    pub fn new(clk: SignalId, din: SignalId, en: SignalId, q: SignalId, width: usize) -> Self {
        ShiftRegister {
            clk,
            din,
            en,
            q,
            state: LogicVector::filled(Logic::Zero, width),
        }
    }
}

impl RtlProcess for ShiftRegister {
    fn init(&mut self, ctx: &mut RtlCtx) {
        ctx.assign(self.q, self.state.clone());
    }

    fn run(&mut self, ctx: &mut RtlCtx) {
        if ctx.rising(self.clk) && ctx.read_bit(self.en).is_one() {
            let w = self.state.width();
            let mut next = LogicVector::filled(Logic::Zero, w);
            next.set_bit(0, ctx.read_bit(self.din));
            for i in 1..w {
                next.set_bit(i, self.state.bit(i - 1));
            }
            self.state = next.clone();
            ctx.assign(self.q, next);
        }
    }

    fn io(&self) -> Option<ProcessIo> {
        Some(
            ProcessIo::clocked("shift_register", self.clk)
                .reads([self.clk, self.din, self.en])
                .writes([self.q]),
        )
    }
}

/// A synchronous FIFO with registered outputs.
///
/// Interface (all sampled/updated on rising `clk`):
/// * `wr_en`/`wr_data` — push when asserted and not full;
/// * `rd_en` — pop when asserted and not empty; `rd_data` shows the head;
/// * `full`/`empty` — status flags.
#[derive(Debug)]
pub struct SyncFifo {
    /// Clock input.
    pub clk: SignalId,
    /// Synchronous reset.
    pub rst: SignalId,
    /// Write enable.
    pub wr_en: SignalId,
    /// Write data.
    pub wr_data: SignalId,
    /// Read enable.
    pub rd_en: SignalId,
    /// Head-of-queue data output.
    pub rd_data: SignalId,
    /// Full flag output.
    pub full: SignalId,
    /// Empty flag output.
    pub empty: SignalId,
    depth: usize,
    width: usize,
    store: VecDeque<LogicVector>,
    overflows: u64,
}

impl SyncFifo {
    /// Creates a FIFO of `depth` entries of `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `depth` or `width` is zero.
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn new(
        clk: SignalId,
        rst: SignalId,
        wr_en: SignalId,
        wr_data: SignalId,
        rd_en: SignalId,
        rd_data: SignalId,
        full: SignalId,
        empty: SignalId,
        depth: usize,
        width: usize,
    ) -> Self {
        assert!(depth > 0, "fifo depth must be non-zero");
        assert!(width > 0, "fifo width must be non-zero");
        SyncFifo {
            clk,
            rst,
            wr_en,
            wr_data,
            rd_en,
            rd_data,
            full,
            empty,
            depth,
            width,
            store: VecDeque::new(),
            overflows: 0,
        }
    }

    /// Writes dropped because the FIFO was full.
    #[must_use]
    pub fn overflows(&self) -> u64 {
        self.overflows
    }

    fn publish(&self, ctx: &mut RtlCtx) {
        let head = self
            .store
            .front()
            .cloned()
            .unwrap_or_else(|| LogicVector::filled(Logic::Zero, self.width));
        ctx.assign(self.rd_data, head);
        ctx.assign_bit(self.full, Logic::from_bool(self.store.len() >= self.depth));
        ctx.assign_bit(self.empty, Logic::from_bool(self.store.is_empty()));
    }
}

impl RtlProcess for SyncFifo {
    fn init(&mut self, ctx: &mut RtlCtx) {
        self.publish(ctx);
    }

    fn run(&mut self, ctx: &mut RtlCtx) {
        if !ctx.rising(self.clk) {
            return;
        }
        if ctx.read_bit(self.rst).is_one() {
            self.store.clear();
            self.publish(ctx);
            return;
        }
        // Pop first (simultaneous read+write on a full FIFO succeeds).
        if ctx.read_bit(self.rd_en).is_one() && !self.store.is_empty() {
            self.store.pop_front();
        }
        if ctx.read_bit(self.wr_en).is_one() {
            if self.store.len() < self.depth {
                self.store.push_back(ctx.read(self.wr_data).clone());
            } else {
                self.overflows += 1;
            }
        }
        self.publish(ctx);
    }

    fn io(&self) -> Option<ProcessIo> {
        Some(
            ProcessIo::clocked("sync_fifo", self.clk)
                .with_reset(self.rst)
                .reads([self.clk, self.rst, self.wr_en, self.wr_data, self.rd_en])
                .writes([self.rd_data, self.full, self.empty]),
        )
    }
}

/// A Fibonacci LFSR pseudo-random pattern generator — the classic RTL
/// stimulus source hand-written test benches instantiate.
///
/// Taps are given as a mask over the state bits; the generator shifts on
/// every enabled rising edge and never enters the all-zero lock-up state.
#[derive(Debug)]
pub struct Lfsr {
    /// Clock input.
    pub clk: SignalId,
    /// Shift enable.
    pub en: SignalId,
    /// Current state output.
    pub q: SignalId,
    state: u64,
    taps: u64,
    width: usize,
}

impl Lfsr {
    /// Creates an LFSR of `width` bits with the given tap mask and nonzero
    /// seed.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 64, the seed is zero, or the tap
    /// mask selects bits outside the state.
    #[must_use]
    pub fn new(
        clk: SignalId,
        en: SignalId,
        q: SignalId,
        width: usize,
        taps: u64,
        seed: u64,
    ) -> Self {
        assert!((1..=64).contains(&width), "lfsr width must be 1..=64");
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        assert!(seed & mask != 0, "lfsr seed must be non-zero");
        assert!(taps & !mask == 0, "tap mask exceeds lfsr width");
        assert!(taps != 0, "lfsr needs at least one tap");
        Lfsr {
            clk,
            en,
            q,
            state: seed & mask,
            taps,
            width,
        }
    }

    /// The standard maximal-length 16-bit LFSR (taps 16,15,13,4).
    #[must_use]
    pub fn standard16(clk: SignalId, en: SignalId, q: SignalId, seed: u16) -> Self {
        Lfsr::new(
            clk,
            en,
            q,
            16,
            0b1101_0000_0000_1000,
            u64::from(seed.max(1)),
        )
    }
}

impl RtlProcess for Lfsr {
    fn init(&mut self, ctx: &mut RtlCtx) {
        ctx.assign(self.q, LogicVector::from_u64(self.state, self.width));
    }

    fn run(&mut self, ctx: &mut RtlCtx) {
        if ctx.rising(self.clk) && ctx.read_bit(self.en).is_one() {
            let feedback = u64::from((self.state & self.taps).count_ones()) & 1;
            let mask = if self.width == 64 {
                u64::MAX
            } else {
                (1u64 << self.width) - 1
            };
            self.state = ((self.state << 1) | feedback) & mask;
            if self.state == 0 {
                self.state = 1; // lock-up escape (cannot happen with odd taps, kept defensively)
            }
            ctx.assign(self.q, LogicVector::from_u64(self.state, self.width));
        }
    }

    fn io(&self) -> Option<ProcessIo> {
        Some(
            ProcessIo::clocked("lfsr", self.clk)
                .reads([self.clk, self.en])
                .writes([self.q]),
        )
    }
}

/// A Gray-code up-counter: successive outputs differ in exactly one bit —
/// the pattern used to cross clock domains safely.
#[derive(Debug)]
pub struct GrayCounter {
    /// Clock input.
    pub clk: SignalId,
    /// Synchronous reset.
    pub rst: SignalId,
    /// Count enable.
    pub en: SignalId,
    /// Gray-coded output.
    pub q: SignalId,
    binary: u64,
    width: usize,
}

impl GrayCounter {
    /// Creates a Gray counter of `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 64.
    #[must_use]
    pub fn new(clk: SignalId, rst: SignalId, en: SignalId, q: SignalId, width: usize) -> Self {
        assert!(
            (1..=64).contains(&width),
            "gray counter width must be 1..=64"
        );
        GrayCounter {
            clk,
            rst,
            en,
            q,
            binary: 0,
            width,
        }
    }

    fn gray(&self) -> u64 {
        self.binary ^ (self.binary >> 1)
    }
}

impl RtlProcess for GrayCounter {
    fn init(&mut self, ctx: &mut RtlCtx) {
        ctx.assign(self.q, LogicVector::from_u64(0, self.width));
    }

    fn run(&mut self, ctx: &mut RtlCtx) {
        if ctx.rising(self.clk) {
            if ctx.read_bit(self.rst).is_one() {
                self.binary = 0;
            } else if ctx.read_bit(self.en).is_one() {
                let mask = if self.width == 64 {
                    u64::MAX
                } else {
                    (1u64 << self.width) - 1
                };
                self.binary = (self.binary + 1) & mask;
            }
            ctx.assign(self.q, LogicVector::from_u64(self.gray(), self.width));
        }
    }

    fn io(&self) -> Option<ProcessIo> {
        Some(
            ProcessIo::clocked("gray_counter", self.clk)
                .with_reset(self.rst)
                .reads([self.clk, self.rst, self.en])
                .writes([self.q]),
        )
    }
}

/// A two-stage synchronizer chain: the canonical clock-domain-crossing
/// structure. `q` follows `d` with a two-clock latency, never exposing the
/// first stage's potentially metastable value.
#[derive(Debug)]
pub struct Synchronizer {
    /// Destination-domain clock.
    pub clk: SignalId,
    /// Asynchronous input.
    pub d: SignalId,
    /// Synchronized output.
    pub q: SignalId,
    stage1: Logic,
    stage2: Logic,
}

impl Synchronizer {
    /// Creates a two-flop synchronizer.
    #[must_use]
    pub fn new(clk: SignalId, d: SignalId, q: SignalId) -> Self {
        Synchronizer {
            clk,
            d,
            q,
            stage1: Logic::U,
            stage2: Logic::U,
        }
    }
}

impl RtlProcess for Synchronizer {
    fn run(&mut self, ctx: &mut RtlCtx) {
        if ctx.rising(self.clk) {
            self.stage2 = self.stage1;
            self.stage1 = ctx.read_bit(self.d);
            ctx.assign_bit(self.q, self.stage2);
        }
    }

    fn io(&self) -> Option<ProcessIo> {
        Some(
            ProcessIo::clocked("synchronizer", self.clk)
                .reads([self.clk, self.d])
                .writes([self.q]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;
    use castanet_netsim::time::{SimDuration, SimTime};

    const PERIOD: SimDuration = SimDuration::from_ns(10);

    /// Advances to just after the n-th rising edge (edges at 5, 15, 25 …).
    fn after_edge(sim: &mut Simulator, n: u64) {
        sim.run_until(SimTime::from_ns(5 + 10 * (n - 1) + 1))
            .unwrap();
    }

    #[test]
    fn dff_resets_synchronously() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", PERIOD);
        let rst = sim.add_signal("rst", 1);
        let d = sim.add_signal("d", 4);
        let q = sim.add_signal("q", 4);
        sim.add_process(Box::new(DFlipFlop { clk, rst, d, q }), &[clk]);
        sim.poke_bit(rst, Logic::Zero, SimTime::ZERO).unwrap();
        sim.poke(d, LogicVector::from_u64(0xF, 4), SimTime::ZERO)
            .unwrap();
        after_edge(&mut sim, 1);
        assert_eq!(sim.read_u64(q), Some(0xF));
        sim.poke_bit(rst, Logic::One, SimTime::from_ns(7)).unwrap();
        after_edge(&mut sim, 2);
        assert_eq!(sim.read_u64(q), Some(0));
    }

    #[test]
    fn counter_counts_when_enabled() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", PERIOD);
        let rst = sim.add_signal("rst", 1);
        let en = sim.add_signal("en", 1);
        let q = sim.add_signal("q", 3);
        sim.add_process(Box::new(Counter::new(clk, rst, en, q, 3)), &[clk]);
        sim.poke_bit(rst, Logic::Zero, SimTime::ZERO).unwrap();
        sim.poke_bit(en, Logic::One, SimTime::ZERO).unwrap();
        after_edge(&mut sim, 5);
        assert_eq!(sim.read_u64(q), Some(5));
        // Disable: holds.
        sim.poke_bit(en, Logic::Zero, SimTime::from_ns(47)).unwrap();
        after_edge(&mut sim, 8);
        assert_eq!(sim.read_u64(q), Some(5));
    }

    #[test]
    fn counter_wraps_at_width() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", PERIOD);
        let rst = sim.add_signal("rst", 1);
        let en = sim.add_signal("en", 1);
        let q = sim.add_signal("q", 2);
        sim.add_process(Box::new(Counter::new(clk, rst, en, q, 2)), &[clk]);
        sim.poke_bit(rst, Logic::Zero, SimTime::ZERO).unwrap();
        sim.poke_bit(en, Logic::One, SimTime::ZERO).unwrap();
        after_edge(&mut sim, 6);
        assert_eq!(sim.read_u64(q), Some(2)); // 6 mod 4
    }

    #[test]
    fn shift_register_collects_bits_lsb_first() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", PERIOD);
        let din = sim.add_signal("din", 1);
        let en = sim.add_signal("en", 1);
        let q = sim.add_signal("q", 4);
        sim.add_process(Box::new(ShiftRegister::new(clk, din, en, q, 4)), &[clk]);
        sim.poke_bit(en, Logic::One, SimTime::ZERO).unwrap();
        // Shift in 1,0,1,1 (LSB-first as sent).
        for (i, b) in [true, false, true, true].into_iter().enumerate() {
            sim.poke_bit(din, Logic::from_bool(b), SimTime::from_ns(10 * i as u64))
                .unwrap();
        }
        after_edge(&mut sim, 4);
        // After 4 shifts: first bit has moved to position 3.
        // state = din3 din2 din1 din0-at-bit3... bit0 = last in (1),
        // bit1 = 1, bit2 = 0, bit3 = 1 -> 0b1011.
        assert_eq!(sim.read_u64(q), Some(0b1011));
    }

    #[test]
    fn fifo_push_pop_and_flags() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", PERIOD);
        let rst = sim.add_signal("rst", 1);
        let wr_en = sim.add_signal("wr_en", 1);
        let wr_data = sim.add_signal("wr_data", 8);
        let rd_en = sim.add_signal("rd_en", 1);
        let rd_data = sim.add_signal("rd_data", 8);
        let full = sim.add_signal("full", 1);
        let empty = sim.add_signal("empty", 1);
        sim.add_process(
            Box::new(SyncFifo::new(
                clk, rst, wr_en, wr_data, rd_en, rd_data, full, empty, 2, 8,
            )),
            &[clk],
        );
        sim.poke_bit(rst, Logic::Zero, SimTime::ZERO).unwrap();
        sim.poke_bit(rd_en, Logic::Zero, SimTime::ZERO).unwrap();
        sim.poke_bit(wr_en, Logic::One, SimTime::ZERO).unwrap();
        sim.poke(wr_data, LogicVector::from_u64(0x11, 8), SimTime::ZERO)
            .unwrap();
        after_edge(&mut sim, 1);
        assert_eq!(sim.read_bit(empty), Logic::Zero);
        assert_eq!(sim.read_u64(rd_data), Some(0x11));
        sim.poke(wr_data, LogicVector::from_u64(0x22, 8), SimTime::from_ns(7))
            .unwrap();
        after_edge(&mut sim, 2);
        assert_eq!(sim.read_bit(full), Logic::One);
        // Stop writing, start reading.
        sim.poke_bit(wr_en, Logic::Zero, SimTime::from_ns(17))
            .unwrap();
        sim.poke_bit(rd_en, Logic::One, SimTime::from_ns(17))
            .unwrap();
        after_edge(&mut sim, 3);
        assert_eq!(sim.read_u64(rd_data), Some(0x22));
        assert_eq!(sim.read_bit(full), Logic::Zero);
        after_edge(&mut sim, 4);
        assert_eq!(sim.read_bit(empty), Logic::One);
    }

    #[test]
    fn fifo_simultaneous_read_write_when_full() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", PERIOD);
        let rst = sim.add_signal("rst", 1);
        let wr_en = sim.add_signal("wr_en", 1);
        let wr_data = sim.add_signal("wr_data", 8);
        let rd_en = sim.add_signal("rd_en", 1);
        let rd_data = sim.add_signal("rd_data", 8);
        let full = sim.add_signal("full", 1);
        let empty = sim.add_signal("empty", 1);
        sim.add_process(
            Box::new(SyncFifo::new(
                clk, rst, wr_en, wr_data, rd_en, rd_data, full, empty, 1, 8,
            )),
            &[clk],
        );
        sim.poke_bit(rst, Logic::Zero, SimTime::ZERO).unwrap();
        sim.poke_bit(wr_en, Logic::One, SimTime::ZERO).unwrap();
        sim.poke_bit(rd_en, Logic::Zero, SimTime::ZERO).unwrap();
        sim.poke(wr_data, LogicVector::from_u64(1, 8), SimTime::ZERO)
            .unwrap();
        after_edge(&mut sim, 1); // fifo now full with 1
        sim.poke_bit(rd_en, Logic::One, SimTime::from_ns(7))
            .unwrap();
        sim.poke(wr_data, LogicVector::from_u64(2, 8), SimTime::from_ns(7))
            .unwrap();
        after_edge(&mut sim, 2); // read 1, write 2 in the same cycle
        assert_eq!(sim.read_u64(rd_data), Some(2));
        assert_eq!(sim.read_bit(full), Logic::One);
    }

    #[test]
    fn lfsr_runs_a_maximal_period_without_repeats_early() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", PERIOD);
        let en = sim.add_signal("en", 1);
        let q = sim.add_signal("q", 16);
        sim.add_process(Box::new(Lfsr::standard16(clk, en, q, 0xACE1)), &[clk]);
        sim.poke_bit(en, Logic::One, SimTime::ZERO).unwrap();
        let mut seen = std::collections::HashSet::new();
        for edge in 1..=2000u64 {
            after_edge(&mut sim, edge);
            let v = sim.read_u64(q).unwrap();
            assert_ne!(v, 0, "lfsr must never reach all-zero");
            assert!(seen.insert(v), "state repeated after only {edge} steps");
        }
    }

    #[test]
    fn lfsr_holds_when_disabled() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", PERIOD);
        let en = sim.add_signal("en", 1);
        let q = sim.add_signal("q", 16);
        sim.add_process(Box::new(Lfsr::standard16(clk, en, q, 1)), &[clk]);
        sim.poke_bit(en, Logic::Zero, SimTime::ZERO).unwrap();
        after_edge(&mut sim, 5);
        assert_eq!(sim.read_u64(q), Some(1));
    }

    #[test]
    fn gray_counter_changes_one_bit_per_step() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", PERIOD);
        let rst = sim.add_signal("rst", 1);
        let en = sim.add_signal("en", 1);
        let q = sim.add_signal("q", 4);
        sim.add_process(Box::new(GrayCounter::new(clk, rst, en, q, 4)), &[clk]);
        sim.poke_bit(rst, Logic::Zero, SimTime::ZERO).unwrap();
        sim.poke_bit(en, Logic::One, SimTime::ZERO).unwrap();
        let mut prev = None;
        for edge in 1..=32u64 {
            after_edge(&mut sim, edge);
            let v = sim.read_u64(q).unwrap();
            if let Some(p) = prev {
                let diff: u64 = v ^ p;
                assert_eq!(diff.count_ones(), 1, "gray step {p:#x} -> {v:#x}");
            }
            prev = Some(v);
        }
    }

    #[test]
    fn gray_counter_resets_to_zero() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", PERIOD);
        let rst = sim.add_signal("rst", 1);
        let en = sim.add_signal("en", 1);
        let q = sim.add_signal("q", 4);
        sim.add_process(Box::new(GrayCounter::new(clk, rst, en, q, 4)), &[clk]);
        sim.poke_bit(rst, Logic::Zero, SimTime::ZERO).unwrap();
        sim.poke_bit(en, Logic::One, SimTime::ZERO).unwrap();
        after_edge(&mut sim, 5);
        assert_ne!(sim.read_u64(q), Some(0));
        sim.poke_bit(rst, Logic::One, SimTime::from_ns(47)).unwrap();
        after_edge(&mut sim, 6);
        assert_eq!(sim.read_u64(q), Some(0));
    }

    #[test]
    fn synchronizer_delays_two_clocks() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", PERIOD);
        let d = sim.add_signal("d", 1);
        let q = sim.add_signal("q", 1);
        sim.add_process(Box::new(Synchronizer::new(clk, d, q)), &[clk]);
        sim.poke_bit(d, Logic::Zero, SimTime::ZERO).unwrap();
        after_edge(&mut sim, 2);
        // Async input rises between edges 2 and 3.
        sim.poke_bit(d, Logic::One, SimTime::from_ns(27)).unwrap();
        after_edge(&mut sim, 3);
        assert_eq!(
            sim.read_bit(q),
            Logic::Zero,
            "one clock after capture: stage1 only"
        );
        after_edge(&mut sim, 4);
        assert_eq!(sim.read_bit(q), Logic::Zero, "stage2 holds previous value");
        after_edge(&mut sim, 5);
        assert_eq!(sim.read_bit(q), Logic::One, "two clocks after capture");
    }

    #[test]
    #[should_panic(expected = "seed must be non-zero")]
    fn zero_seed_lfsr_panics() {
        let mut sim = Simulator::new();
        let clk = sim.add_signal("clk", 1);
        let en = sim.add_signal("en", 1);
        let q = sim.add_signal("q", 8);
        let _ = Lfsr::new(clk, en, q, 8, 0b1000_1110, 0);
    }

    #[test]
    #[should_panic(expected = "width must be 1..=64")]
    fn zero_width_counter_panics() {
        let mut sim = Simulator::new();
        let clk = sim.add_signal("clk", 1);
        let rst = sim.add_signal("rst", 1);
        let en = sim.add_signal("en", 1);
        let q = sim.add_signal("q", 1);
        let _ = Counter::new(clk, rst, en, q, 0);
    }
}
