//! The classic hand-written RTL regression test bench — the *baseline*
//! practice the paper argues against.
//!
//! "Common approaches … are based on the creation of regression test
//! benches to perform simulative validation of functionality. The time
//! needed to develop test benches has proven to be a significant
//! bottleneck" (§1). Here that approach is implemented faithfully: stimulus
//! drivers and response monitors are themselves event-driven processes
//! inside the HDL simulator, the line is driven on *every* clock (idle
//! cells included, since a real line never stops), and the expected
//! responses are precomputed vectors. Experiment E1 measures this test
//! bench against the CASTANET coupling on the same switch DUT.

use crate::cycle::{attach_cycle_dut, AttachedDut, CycleDut};
use crate::logic::Logic;
use crate::netlist::ProcessIo;
use crate::signal::SignalId;
use crate::sim::{RtlCtx, RtlProcess, Simulator};
use castanet_atm::cell::CELL_OCTETS;
use castanet_atm::idle::idle_cell_bytes;
use castanet_netsim::time::{SimDuration, SimTime};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// A cell scheduled for a specific cell slot on one line.
#[derive(Debug, Clone)]
pub struct ScheduledCell {
    /// Cell-slot index (slot `s` occupies clocks `[53·s, 53·(s+1))`).
    pub slot: u64,
    /// The 53-octet wire image.
    pub bytes: [u8; CELL_OCTETS],
}

/// Drives one ingress line byte-serially on every clock, inserting idle
/// cells into empty slots — the continuously-filled line a pure-RTL test
/// bench must model.
pub struct CellStreamDriver {
    clk: SignalId,
    data: SignalId,
    sync: SignalId,
    enable: SignalId,
    cells: VecDeque<ScheduledCell>,
    clock_index: u64,
    idle: [u8; CELL_OCTETS],
    current: Option<[u8; CELL_OCTETS]>,
}

impl std::fmt::Debug for CellStreamDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CellStreamDriver")
            .field("pending_cells", &self.cells.len())
            .field("clock_index", &self.clock_index)
            .finish()
    }
}

impl CellStreamDriver {
    /// Creates a driver for the given line signals. `cells` must be sorted
    /// by slot with no duplicates.
    ///
    /// # Panics
    ///
    /// Panics when `cells` is not strictly slot-ordered.
    #[must_use]
    pub fn new(
        clk: SignalId,
        data: SignalId,
        sync: SignalId,
        enable: SignalId,
        cells: Vec<ScheduledCell>,
    ) -> Self {
        for w in cells.windows(2) {
            assert!(w[0].slot < w[1].slot, "cells must be strictly slot-ordered");
        }
        CellStreamDriver {
            clk,
            data,
            sync,
            enable,
            cells: cells.into(),
            clock_index: 0,
            idle: idle_cell_bytes(),
            current: None,
        }
    }
}

impl RtlProcess for CellStreamDriver {
    fn init(&mut self, ctx: &mut RtlCtx) {
        ctx.assign_u64(self.data, 0);
        ctx.assign_bit(self.sync, Logic::Zero);
        ctx.assign_bit(self.enable, Logic::Zero);
    }

    fn run(&mut self, ctx: &mut RtlCtx) {
        if !ctx.rising(self.clk) {
            return;
        }
        let slot = self.clock_index / CELL_OCTETS as u64;
        let offset = (self.clock_index % CELL_OCTETS as u64) as usize;
        if offset == 0 {
            // New slot: pick the scheduled cell or fill with idle.
            self.current = if self.cells.front().is_some_and(|c| c.slot == slot) {
                Some(self.cells.pop_front().expect("peeked").bytes)
            } else {
                Some(self.idle)
            };
        }
        let bytes = self.current.as_ref().expect("slot fill set above");
        ctx.assign_u64(self.data, u64::from(bytes[offset]));
        ctx.assign_bit(self.sync, Logic::from_bool(offset == 0));
        ctx.assign_bit(self.enable, Logic::One);
        self.clock_index += 1;
    }

    fn io(&self) -> Option<ProcessIo> {
        Some(
            ProcessIo::clocked("cell_stream_driver", self.clk)
                .reads([self.clk])
                .writes([self.data, self.sync, self.enable]),
        )
    }
}

/// Collects completed cells from an egress line (data/sync/valid signals),
/// exposing them through a shared handle.
pub struct CellStreamMonitor {
    clk: SignalId,
    data: SignalId,
    sync: SignalId,
    valid: SignalId,
    shift: [u8; CELL_OCTETS],
    index: usize,
    in_cell: bool,
    out: MonitorHandle,
}

impl std::fmt::Debug for CellStreamMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CellStreamMonitor")
            .field("in_cell", &self.in_cell)
            .field("index", &self.index)
            .finish()
    }
}

/// A captured cell: arrival time plus the 53 raw octets.
type CapturedCell = (SimTime, [u8; CELL_OCTETS]);

/// Shared view onto the cells a [`CellStreamMonitor`] captured.
#[derive(Debug, Clone, Default)]
pub struct MonitorHandle {
    cells: Arc<Mutex<Vec<CapturedCell>>>,
}

impl MonitorHandle {
    /// Number of captured cells.
    ///
    /// # Panics
    ///
    /// Panics if the lock is poisoned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.lock().expect("monitor lock poisoned").len()
    }

    /// `true` when nothing has been captured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains the captured `(completion time, cell)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if the lock is poisoned.
    #[must_use]
    pub fn take(&self) -> Vec<(SimTime, [u8; CELL_OCTETS])> {
        std::mem::take(&mut *self.cells.lock().expect("monitor lock poisoned"))
    }

    /// Drains the captured `(completion time, cell)` pairs into `out`,
    /// preserving order. Unlike [`MonitorHandle::take`] this keeps the
    /// internal buffer's capacity, so a polling collector allocates
    /// nothing in steady state.
    ///
    /// # Panics
    ///
    /// Panics if the lock is poisoned.
    pub fn drain_into(&self, out: &mut Vec<(SimTime, [u8; CELL_OCTETS])>) {
        out.extend(self.cells.lock().expect("monitor lock poisoned").drain(..));
    }
}

impl CellStreamMonitor {
    /// Creates a monitor and its handle.
    #[must_use]
    pub fn new(
        clk: SignalId,
        data: SignalId,
        sync: SignalId,
        valid: SignalId,
    ) -> (Self, MonitorHandle) {
        let handle = MonitorHandle::default();
        (
            CellStreamMonitor {
                clk,
                data,
                sync,
                valid,
                shift: [0; CELL_OCTETS],
                index: 0,
                in_cell: false,
                out: handle.clone(),
            },
            handle,
        )
    }
}

impl RtlProcess for CellStreamMonitor {
    fn run(&mut self, ctx: &mut RtlCtx) {
        if !ctx.rising(self.clk) || !ctx.read_bit(self.valid).is_one() {
            return;
        }
        if ctx.read_bit(self.sync).is_one() {
            self.index = 0;
            self.in_cell = true;
        }
        if self.in_cell {
            self.shift[self.index] = ctx.read_u64(self.data).unwrap_or(0) as u8;
            self.index += 1;
            if self.index == CELL_OCTETS {
                self.index = 0;
                self.in_cell = false;
                self.out
                    .cells
                    .lock()
                    .expect("monitor lock poisoned")
                    .push((ctx.now(), self.shift));
            }
        }
    }

    fn io(&self) -> Option<ProcessIo> {
        Some(
            ProcessIo::clocked("cell_stream_monitor", self.clk)
                .reads([self.clk, self.data, self.sync, self.valid]),
        )
    }
}

/// The checker half of a hand-written regression bench: a per-clock
/// scoreboard process that compares the egress byte stream against the
/// precomputed expected cell sequence, recomputing the header CRC octet by
/// octet the way synthesizable checkers do. Idle cells on the line are
/// recognized and skipped. This per-clock checking work — not just driving
/// stimulus — is a large part of why pure-RTL test benches are slow, which
/// is exactly the cost the E1 baseline must carry.
pub struct CellStreamScoreboard {
    clk: SignalId,
    data: SignalId,
    sync: SignalId,
    valid: SignalId,
    expected: VecDeque<[u8; CELL_OCTETS]>,
    shift: [u8; CELL_OCTETS],
    crc: u8,
    index: usize,
    in_cell: bool,
    results: ScoreboardHandle,
}

impl std::fmt::Debug for CellStreamScoreboard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CellStreamScoreboard")
            .field("expected_left", &self.expected.len())
            .finish()
    }
}

/// Shared result counters of a [`CellStreamScoreboard`].
#[derive(Debug, Clone, Default)]
pub struct ScoreboardHandle {
    inner: Arc<Mutex<ScoreboardCounters>>,
}

/// Counter block of a scoreboard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScoreboardCounters {
    /// Cells that matched the expectation byte-for-byte.
    pub matched: u64,
    /// Cells that differed.
    pub mismatched: u64,
    /// Cells whose recomputed HEC disagreed with the received octet.
    pub hec_errors: u64,
    /// Idle cells observed (and skipped).
    pub idle: u64,
    /// Cells received with no expectation left.
    pub unexpected: u64,
}

impl ScoreboardHandle {
    /// Snapshot of the counters.
    ///
    /// # Panics
    ///
    /// Panics if the lock is poisoned.
    #[must_use]
    pub fn counters(&self) -> ScoreboardCounters {
        *self.inner.lock().expect("scoreboard lock poisoned")
    }
}

impl CellStreamScoreboard {
    /// Creates a scoreboard expecting `expected` cells (wire images, in
    /// order) on the given egress signals.
    #[must_use]
    pub fn new(
        clk: SignalId,
        data: SignalId,
        sync: SignalId,
        valid: SignalId,
        expected: Vec<[u8; CELL_OCTETS]>,
    ) -> (Self, ScoreboardHandle) {
        let handle = ScoreboardHandle::default();
        (
            CellStreamScoreboard {
                clk,
                data,
                sync,
                valid,
                expected: expected.into(),
                shift: [0; CELL_OCTETS],
                crc: 0,
                index: 0,
                in_cell: false,
                results: handle.clone(),
            },
            handle,
        )
    }

    fn crc_step(crc: u8, byte: u8) -> u8 {
        // CRC-8 x^8+x^2+x+1, one octet at a time — the form a
        // synthesizable checker computes each clock.
        let mut crc = crc ^ byte;
        for _ in 0..8 {
            crc = if crc & 0x80 != 0 {
                (crc << 1) ^ 0x07
            } else {
                crc << 1
            };
        }
        crc
    }

    fn finish_cell(&mut self) {
        let mut c = self.results.inner.lock().expect("scoreboard lock poisoned");
        if castanet_atm::idle::is_idle_cell(&self.shift) {
            c.idle += 1;
            return;
        }
        // The CRC accumulated over octets 0..4 must equal octet 4 ^ 0x55.
        if self.crc ^ 0x55 != self.shift[4] {
            c.hec_errors += 1;
        }
        match self.expected.pop_front() {
            Some(want) if want == self.shift => c.matched += 1,
            Some(_) => c.mismatched += 1,
            None => c.unexpected += 1,
        }
    }
}

impl RtlProcess for CellStreamScoreboard {
    fn run(&mut self, ctx: &mut RtlCtx) {
        if !ctx.rising(self.clk) || !ctx.read_bit(self.valid).is_one() {
            return;
        }
        if ctx.read_bit(self.sync).is_one() {
            self.index = 0;
            self.in_cell = true;
            self.crc = 0;
        }
        if self.in_cell {
            let byte = ctx.read_u64(self.data).unwrap_or(0) as u8;
            self.shift[self.index] = byte;
            if self.index < 4 {
                self.crc = Self::crc_step(self.crc, byte);
            }
            self.index += 1;
            if self.index == CELL_OCTETS {
                self.index = 0;
                self.in_cell = false;
                self.finish_cell();
            }
        }
    }

    fn io(&self) -> Option<ProcessIo> {
        Some(
            ProcessIo::clocked("cell_stream_scoreboard", self.clk)
                .reads([self.clk, self.data, self.sync, self.valid]),
        )
    }
}

/// A complete pure-RTL regression bench around any byte-serial-line DUT
/// built from [`crate::dut::AtmSwitchRtl`]-style port conventions: clock,
/// per-port drivers, per-port monitors, DUT attachment — everything inside
/// one event-driven simulation, the way the paper's "common approach" does
/// it.
pub struct RegressionTestbench {
    sim: Simulator,
    dut: AttachedDut,
    ports: usize,
    monitors: Vec<MonitorHandle>,
    clock_period: SimDuration,
    clk: SignalId,
}

impl std::fmt::Debug for RegressionTestbench {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegressionTestbench")
            .field("ports", &self.ports)
            .field("now", &self.sim.now())
            .finish()
    }
}

impl RegressionTestbench {
    /// Builds the bench: `dut` must follow the switch port convention
    /// (inputs `rx_data/rx_sync/rx_en` × ports then config; outputs
    /// `tx_data/tx_sync/tx_valid` × ports then counters). `stimuli[i]` is
    /// the scheduled cell list of line `i`.
    ///
    /// # Panics
    ///
    /// Panics when `stimuli.len()` differs from the DUT's port count.
    #[must_use]
    pub fn new(
        dut: Box<dyn CycleDut>,
        ports: usize,
        clock_period: SimDuration,
        stimuli: Vec<Vec<ScheduledCell>>,
    ) -> Self {
        assert_eq!(stimuli.len(), ports, "one stimulus list per port");
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", clock_period);
        let attached = attach_cycle_dut(&mut sim, "switch", dut, clk);

        let mut monitors = Vec::new();
        for (i, cells) in stimuli.into_iter().enumerate() {
            let driver = CellStreamDriver::new(
                clk,
                attached.inputs[3 * i],
                attached.inputs[3 * i + 1],
                attached.inputs[3 * i + 2],
                cells,
            );
            sim.add_process(Box::new(driver), &[clk]);
            let (mon, handle) = CellStreamMonitor::new(
                clk,
                attached.outputs[3 * i],
                attached.outputs[3 * i + 1],
                attached.outputs[3 * i + 2],
            );
            sim.add_process(Box::new(mon), &[clk]);
            monitors.push(handle);
        }
        RegressionTestbench {
            sim,
            dut: attached,
            ports,
            monitors,
            clock_period,
            clk,
        }
    }

    /// Attaches a per-clock scoreboard to egress line `port`, expecting the
    /// given cells (in order). Call before running.
    ///
    /// # Panics
    ///
    /// Panics when `port` is out of range.
    pub fn add_scoreboard(
        &mut self,
        port: usize,
        expected: Vec<[u8; CELL_OCTETS]>,
    ) -> ScoreboardHandle {
        assert!(port < self.ports, "port {port} out of range");
        let (sb, handle) = CellStreamScoreboard::new(
            self.clk,
            self.dut.outputs[3 * port],
            self.dut.outputs[3 * port + 1],
            self.dut.outputs[3 * port + 2],
            expected,
        );
        self.sim.add_process(Box::new(sb), &[self.clk]);
        handle
    }

    /// Runs `clocks` clock cycles.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn run_clocks(&mut self, clocks: u64) -> Result<(), crate::error::RtlError> {
        let horizon = self.sim.now() + self.clock_period * clocks + SimDuration::from_picos(1);
        self.sim.run_until(horizon)
    }

    /// The monitor handle of egress line `port`.
    ///
    /// # Panics
    ///
    /// Panics when `port` is out of range.
    #[must_use]
    pub fn monitor(&self, port: usize) -> &MonitorHandle {
        &self.monitors[port]
    }

    /// Access to the underlying simulator (counters, VCD tracing).
    pub fn sim_mut(&mut self) -> &mut Simulator {
        &mut self.sim
    }

    /// The attached DUT's signal map.
    #[must_use]
    pub fn dut(&self) -> &AttachedDut {
        &self.dut
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dut::{AtmSwitchRtl, SwitchRtlConfig};
    use castanet_atm::addr::{HeaderFormat, VpiVci};
    use castanet_atm::cell::AtmCell;
    use castanet_atm::idle::is_idle_cell;

    fn wire_cell(vpi: u16, vci: u16, fill: u8) -> [u8; CELL_OCTETS] {
        AtmCell::user_data(VpiVci::uni(vpi, vci).unwrap(), [fill; 48])
            .encode(HeaderFormat::Uni)
            .unwrap()
    }

    #[test]
    fn bench_pushes_cells_through_the_switch() {
        let mut dut = AtmSwitchRtl::new(SwitchRtlConfig::default());
        dut.install_route(1, 40, 2, 7, 70);
        dut.install_route(1, 41, 0, 8, 80);

        let stimuli = vec![
            vec![
                ScheduledCell {
                    slot: 0,
                    bytes: wire_cell(1, 40, 0xAA),
                },
                ScheduledCell {
                    slot: 2,
                    bytes: wire_cell(1, 41, 0xBB),
                },
            ],
            vec![],
            vec![],
            vec![],
        ];
        let mut tb = RegressionTestbench::new(Box::new(dut), 4, SimDuration::from_ns(20), stimuli);
        tb.run_clocks(53 * 6).unwrap();

        let out2 = tb.monitor(2).take();
        assert_eq!(out2.len(), 1);
        let cell = AtmCell::decode(&out2[0].1, HeaderFormat::Uni).unwrap();
        assert_eq!(cell.id(), VpiVci::uni(7, 70).unwrap());
        assert_eq!(cell.payload, [0xAA; 48]);

        let out0 = tb.monitor(0).take();
        assert_eq!(out0.len(), 1);
        let cell = AtmCell::decode(&out0[0].1, HeaderFormat::Uni).unwrap();
        assert_eq!(cell.id(), VpiVci::uni(8, 80).unwrap());
    }

    #[test]
    fn idle_slots_fill_the_line() {
        // A driver with one cell at slot 3 must still drive slots 0-2 with
        // idle cells (a loopback-style DUT shows them).
        struct Passthrough;
        impl CycleDut for Passthrough {
            fn input_ports(&self) -> Vec<crate::cycle::PortDecl> {
                vec![
                    crate::cycle::PortDecl::new("rx_data0", 8),
                    crate::cycle::PortDecl::new("rx_sync0", 1),
                    crate::cycle::PortDecl::new("rx_en0", 1),
                ]
            }
            fn output_ports(&self) -> Vec<crate::cycle::PortDecl> {
                vec![
                    crate::cycle::PortDecl::new("tx_data0", 8),
                    crate::cycle::PortDecl::new("tx_sync0", 1),
                    crate::cycle::PortDecl::new("tx_valid0", 1),
                ]
            }
            fn reset(&mut self) {}
            fn clock_edge(&mut self, inputs: &[u64]) -> Vec<u64> {
                vec![inputs[0], inputs[1], inputs[2]]
            }
        }
        let stimuli = vec![vec![ScheduledCell {
            slot: 3,
            bytes: wire_cell(1, 40, 1),
        }]];
        let mut tb =
            RegressionTestbench::new(Box::new(Passthrough), 1, SimDuration::from_ns(20), stimuli);
        tb.run_clocks(53 * 5).unwrap();
        let cells = tb.monitor(0).take();
        assert!(cells.len() >= 4, "got {}", cells.len());
        assert!(is_idle_cell(&cells[0].1));
        assert!(is_idle_cell(&cells[1].1));
        assert!(is_idle_cell(&cells[2].1));
        assert!(!is_idle_cell(&cells[3].1), "slot 3 carries the user cell");
    }

    #[test]
    #[should_panic(expected = "strictly slot-ordered")]
    fn unsorted_stimulus_rejected() {
        let cells = vec![
            ScheduledCell {
                slot: 2,
                bytes: [0; CELL_OCTETS],
            },
            ScheduledCell {
                slot: 1,
                bytes: [0; CELL_OCTETS],
            },
        ];
        let mut sim = Simulator::new();
        let clk = sim.add_signal("clk", 1);
        let d = sim.add_signal("d", 8);
        let s = sim.add_signal("s", 1);
        let e = sim.add_signal("e", 1);
        let _ = CellStreamDriver::new(clk, d, s, e, cells);
    }
}
