//! Signals: named, resolved, multi-driver carriers of logic vectors.
//!
//! Each signal has one *driver slot* per driving process (plus one for
//! external stimulus such as the co-simulation entity); its visible value is
//! the IEEE-1164 resolution of all driver contributions, recomputed whenever
//! any driver schedules a new transaction. A change of the resolved value is
//! an *event* — the thing processes' sensitivity lists react to and the
//! quantity the paper's E7 ablation counts.

use crate::logic::Logic;
use crate::vector::LogicVector;
use castanet_netsim::time::SimTime;
use std::fmt;

/// Identifies a signal within a [`crate::sim::Simulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignalId(pub(crate) usize);

impl SignalId {
    /// Raw index in the simulator's signal table.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for SignalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sig#{}", self.0)
    }
}

/// Identifies a process within a simulator. The reserved value
/// [`ProcId::EXTERNAL`] is the driver slot used by test benches and the
/// co-simulation entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcId(pub(crate) usize);

impl ProcId {
    /// The external-stimulus pseudo-process (test bench / co-simulation
    /// entity).
    pub const EXTERNAL: ProcId = ProcId(usize::MAX);

    /// Raw index in the simulator's process table.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

pub(crate) struct SignalState {
    pub(crate) name: String,
    pub(crate) width: usize,
    /// Driver contributions, one slot per driving process. Signals have a
    /// handful of drivers at most (usually one), so a linear-scan vector
    /// beats a `HashMap` on both lookup and iteration, and keeps the
    /// resolution order deterministic.
    drivers: Vec<(ProcId, LogicVector)>,
    /// Current resolved value.
    pub(crate) value: LogicVector,
    /// Value before the most recent event (for edge detection).
    pub(crate) previous: LogicVector,
    /// Time of the most recent event.
    pub(crate) last_event: Option<SimTime>,
    /// Number of events (resolved-value changes) on this signal.
    pub(crate) event_count: u64,
}

impl SignalState {
    pub(crate) fn new(name: String, width: usize) -> Self {
        SignalState {
            name,
            width,
            drivers: Vec::new(),
            value: LogicVector::uninitialized(width),
            previous: LogicVector::uninitialized(width),
            last_event: None,
            event_count: 0,
        }
    }

    /// Updates the contribution of `driver` and recomputes the resolved
    /// value. Returns `true` when the resolved value changed (an event).
    pub(crate) fn drive(&mut self, driver: ProcId, contribution: LogicVector, at: SimTime) -> bool {
        debug_assert_eq!(contribution.width(), self.width);
        if let Some(pos) = self.drivers.iter().position(|(d, _)| *d == driver) {
            if self.drivers[pos].1 == contribution {
                // Unchanged contribution resolves to the unchanged value;
                // skip the recompute entirely. This is the common case on
                // a clock edge: most outputs are re-driven with the value
                // they already carry.
                return false;
            }
            self.drivers[pos].1 = contribution;
        } else {
            self.drivers.push((driver, contribution));
        }
        let resolved = if self.drivers.len() == 1 {
            // Single driver (the overwhelmingly common topology): the
            // contribution is the resolved value, no table walks.
            self.drivers[0].1.clone()
        } else {
            let mut acc = self.drivers[0].1.clone();
            for (_, d) in &self.drivers[1..] {
                acc.resolve_assign(d);
            }
            acc
        };
        if resolved == self.value {
            false
        } else {
            self.previous = std::mem::replace(&mut self.value, resolved);
            self.last_event = Some(at);
            self.event_count += 1;
            true
        }
    }

    /// `true` when the signal had an event at exactly `t`.
    pub(crate) fn event_at(&self, t: SimTime) -> bool {
        self.last_event == Some(t)
    }

    /// Rising edge at `t` on bit 0.
    pub(crate) fn rising_at(&self, t: SimTime) -> bool {
        self.event_at(t) && self.value.bit(0).is_one() && !self.previous.bit(0).is_one()
    }

    /// Falling edge at `t` on bit 0.
    pub(crate) fn falling_at(&self, t: SimTime) -> bool {
        self.event_at(t) && self.value.bit(0).is_zero() && !self.previous.bit(0).is_zero()
    }
}

/// Read-only snapshot of a signal's public state, used by waveform dumping
/// and debug displays.
#[derive(Debug, Clone)]
pub struct SignalInfo {
    /// Signal name.
    pub name: String,
    /// Width in bits.
    pub width: usize,
    /// Current resolved value.
    pub value: LogicVector,
    /// Events so far.
    pub event_count: u64,
}

/// Convenience: the scalar value 1-wide vector for `Logic` writes.
#[must_use]
pub fn scalar(value: Logic) -> LogicVector {
    LogicVector::from(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_driver_events() {
        let mut s = SignalState::new("clk".into(), 1);
        let t0 = SimTime::ZERO;
        assert!(s.drive(ProcId(0), scalar(Logic::Zero), t0));
        assert_eq!(s.value.bit(0), Logic::Zero);
        // Same value again: no event.
        assert!(!s.drive(ProcId(0), scalar(Logic::Zero), t0));
        assert_eq!(s.event_count, 1);
        let t1 = SimTime::from_ns(5);
        assert!(s.drive(ProcId(0), scalar(Logic::One), t1));
        assert!(s.rising_at(t1));
        assert!(!s.falling_at(t1));
    }

    #[test]
    fn multi_driver_resolution() {
        let mut s = SignalState::new("bus".into(), 4);
        let t = SimTime::ZERO;
        s.drive(ProcId(0), LogicVector::high_z(4), t);
        s.drive(ProcId(1), LogicVector::from_u64(0x5, 4), t);
        assert_eq!(s.value.to_u64(), Some(0x5));
        // Second strong driver conflicts bitwise.
        s.drive(ProcId(0), LogicVector::from_u64(0x3, 4), t);
        assert_eq!(s.value.bit(0).to_x01(), Logic::One); // 1 resolve 1
        assert_eq!(s.value.bit(1), Logic::X); // 0 resolve 1
                                              // Releasing driver 0 restores driver 1's value.
        s.drive(ProcId(0), LogicVector::high_z(4), t);
        assert_eq!(s.value.to_u64(), Some(0x5));
    }

    #[test]
    fn falling_edge_detection() {
        let mut s = SignalState::new("clk".into(), 1);
        s.drive(ProcId(0), scalar(Logic::One), SimTime::ZERO);
        let t = SimTime::from_ns(3);
        s.drive(ProcId(0), scalar(Logic::Zero), t);
        assert!(s.falling_at(t));
        assert!(!s.rising_at(t));
        assert!(!s.falling_at(SimTime::from_ns(4)));
    }

    #[test]
    fn undriven_signal_is_uninitialized() {
        let s = SignalState::new("x".into(), 2);
        assert_eq!(s.value, LogicVector::uninitialized(2));
        assert_eq!(s.event_count, 0);
        assert!(!s.event_at(SimTime::ZERO));
    }
}
