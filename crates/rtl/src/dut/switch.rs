//! The RTL ATM switch: N port modules plus a global control unit.
//!
//! This is the DUT of the paper's headline measurement ("an ATM switch
//! consisting of four port modules, one global control unit", §2). Each
//! port module deserializes the byte-serial line (as [`super::CellReceiver`]
//! does), the global control unit owns the translation table and the
//! configuration interface, and each egress port streams queued cells back
//! out byte-serially. Header translation recomputes the HEC, cells with a
//! corrupted HEC are discarded, unroutable cells are absorbed by the
//! control unit — the same externally visible function as the algorithm
//! reference model [`castanet_atm::switch`].

use crate::cycle::{CycleDut, PortDecl};
use castanet_atm::cell::{CELL_OCTETS, HEADER_OCTETS};
use castanet_atm::hec;
use std::collections::{HashMap, VecDeque};

/// Build-time configuration of [`AtmSwitchRtl`].
#[derive(Debug, Clone, Copy)]
pub struct SwitchRtlConfig {
    /// Number of line ports (2..=8).
    pub ports: usize,
    /// Egress FIFO capacity per port, in cells.
    pub fifo_capacity: usize,
    /// Translation-table capacity (a CAM in silicon).
    pub table_capacity: usize,
}

impl Default for SwitchRtlConfig {
    /// The paper's configuration: 4 port modules, modest buffering.
    fn default() -> Self {
        SwitchRtlConfig {
            ports: 4,
            fifo_capacity: 128,
            table_capacity: 256,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct RxState {
    shift: [u8; CELL_OCTETS],
    index: usize,
    in_cell: bool,
}

impl Default for RxState {
    fn default() -> Self {
        RxState {
            shift: [0; CELL_OCTETS],
            index: 0,
            in_cell: false,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct TxState {
    buffer: [u8; CELL_OCTETS],
    index: usize,
    active: bool,
}

impl Default for TxState {
    fn default() -> Self {
        TxState {
            buffer: [0; CELL_OCTETS],
            index: 0,
            active: false,
        }
    }
}

/// The cycle-accurate N-port switch.
///
/// Input ports, in `clock_edge` order: for each line `i`
/// `rx_data{i}` (8), `rx_sync{i}` (1), `rx_en{i}` (1); then the control
/// unit's configuration interface `cfg_valid` (1), `cfg_in_vpi` (8),
/// `cfg_in_vci` (16), `cfg_out_port` (3), `cfg_out_vpi` (8),
/// `cfg_out_vci` (16).
///
/// Output ports: for each line `i` `tx_data{i}` (8), `tx_sync{i}` (1),
/// `tx_valid{i}` (1); then `unroutable` (16), `dropped` (16),
/// `table_count` (16).
#[derive(Debug, Clone)]
pub struct AtmSwitchRtl {
    cfg: SwitchRtlConfig,
    rx: Vec<RxState>,
    tx: Vec<TxState>,
    fifos: Vec<VecDeque<[u8; CELL_OCTETS]>>,
    table: HashMap<(u8, u16), (usize, u8, u16)>,
    unroutable: u16,
    dropped: u16,
    hec_errors: u16,
    switched: u64,
}

impl AtmSwitchRtl {
    /// Creates a switch with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= ports <= 8` and capacities are non-zero.
    #[must_use]
    pub fn new(cfg: SwitchRtlConfig) -> Self {
        assert!((2..=8).contains(&cfg.ports), "ports must be 2..=8");
        assert!(cfg.fifo_capacity > 0, "fifo capacity must be non-zero");
        assert!(cfg.table_capacity > 0, "table capacity must be non-zero");
        AtmSwitchRtl {
            cfg,
            rx: vec![RxState::default(); cfg.ports],
            tx: vec![TxState::default(); cfg.ports],
            fifos: (0..cfg.ports).map(|_| VecDeque::new()).collect(),
            table: HashMap::new(),
            unroutable: 0,
            dropped: 0,
            hec_errors: 0,
            switched: 0,
        }
    }

    /// Model-level route installation (the pin path is the `cfg_*` port).
    ///
    /// Returns `false` when the table is full or the entry exists.
    pub fn install_route(
        &mut self,
        in_vpi: u8,
        in_vci: u16,
        out_port: usize,
        out_vpi: u8,
        out_vci: u16,
    ) -> bool {
        if out_port >= self.cfg.ports
            || self.table.len() >= self.cfg.table_capacity
            || self.table.contains_key(&(in_vpi, in_vci))
        {
            return false;
        }
        self.table
            .insert((in_vpi, in_vci), (out_port, out_vpi, out_vci));
        true
    }

    /// Cells switched since reset.
    #[must_use]
    pub fn switched(&self) -> u64 {
        self.switched
    }

    /// Cells discarded for HEC errors since reset.
    #[must_use]
    pub fn hec_errors(&self) -> u16 {
        self.hec_errors
    }

    fn complete_cell(&mut self, cell: [u8; CELL_OCTETS]) {
        if !hec::check(&cell[..HEADER_OCTETS]) {
            self.hec_errors = self.hec_errors.wrapping_add(1);
            return;
        }
        let vpi = (cell[0] << 4) | (cell[1] >> 4);
        let vci =
            (u16::from(cell[1] & 0x0F) << 12) | (u16::from(cell[2]) << 4) | u16::from(cell[3] >> 4);
        match self.table.get(&(vpi, vci)) {
            Some(&(out_port, out_vpi, out_vci)) => {
                let mut out = cell;
                // Header translation, preserving GFC/PT/CLP, new HEC.
                out[0] = (cell[0] & 0xF0) | (out_vpi >> 4);
                out[1] = (out_vpi << 4) | ((out_vci >> 12) as u8);
                out[2] = (out_vci >> 4) as u8;
                out[3] = (((out_vci & 0x0F) as u8) << 4) | (cell[3] & 0x0F);
                out[4] = hec::compute(&out[..4]);
                if self.fifos[out_port].len() >= self.cfg.fifo_capacity {
                    self.dropped = self.dropped.wrapping_add(1);
                } else {
                    self.fifos[out_port].push_back(out);
                    self.switched += 1;
                }
            }
            None => {
                // Absorbed by the global control unit.
                self.unroutable = self.unroutable.wrapping_add(1);
            }
        }
    }
}

impl CycleDut for AtmSwitchRtl {
    fn input_ports(&self) -> Vec<PortDecl> {
        let mut ports = Vec::new();
        for i in 0..self.cfg.ports {
            ports.push(PortDecl::new(format!("rx_data{i}"), 8));
            ports.push(PortDecl::new(format!("rx_sync{i}"), 1));
            ports.push(PortDecl::new(format!("rx_en{i}"), 1));
        }
        ports.push(PortDecl::new("cfg_valid", 1));
        ports.push(PortDecl::new("cfg_in_vpi", 8));
        ports.push(PortDecl::new("cfg_in_vci", 16));
        ports.push(PortDecl::new("cfg_out_port", 3));
        ports.push(PortDecl::new("cfg_out_vpi", 8));
        ports.push(PortDecl::new("cfg_out_vci", 16));
        ports
    }

    fn output_ports(&self) -> Vec<PortDecl> {
        let mut ports = Vec::new();
        for i in 0..self.cfg.ports {
            ports.push(PortDecl::new(format!("tx_data{i}"), 8));
            ports.push(PortDecl::new(format!("tx_sync{i}"), 1));
            ports.push(PortDecl::new(format!("tx_valid{i}"), 1));
        }
        ports.push(PortDecl::new("unroutable", 16));
        ports.push(PortDecl::new("dropped", 16));
        ports.push(PortDecl::new("table_count", 16));
        ports
    }

    fn reset(&mut self) {
        let cfg = self.cfg;
        *self = AtmSwitchRtl::new(cfg);
    }

    fn is_idle(&self) -> bool {
        self.rx.iter().all(|r| !r.in_cell)
            && self.tx.iter().all(|t| !t.active)
            && self.fifos.iter().all(std::collections::VecDeque::is_empty)
    }

    fn fork_dut(&self) -> Option<Box<dyn CycleDut>> {
        Some(Box::new(self.clone()))
    }

    fn inputs_inert(&self, inputs: &[u64]) -> bool {
        let n = self.cfg.ports;
        if inputs.len() != 3 * n + 6 {
            return inputs.iter().all(|&w| w == 0);
        }
        // rx_data and the cfg_* payload words are don't-care while
        // rx_sync/rx_en/cfg_valid are all low: nothing is sampled.
        (0..n).all(|i| inputs[3 * i + 1] == 0 && inputs[3 * i + 2] == 0) && inputs[3 * n] == 0
    }

    fn outputs_inert(&self, outputs: &[u64]) -> bool {
        let n = self.cfg.ports;
        if outputs.len() != 3 * n + 3 {
            return outputs.iter().all(|&w| w == 0);
        }
        // tx_data and the status counters are level signals nobody samples
        // per cycle; a monitor only latches while tx_sync/tx_valid is high.
        (0..n).all(|i| outputs[3 * i + 1] == 0 && outputs[3 * i + 2] == 0)
    }

    fn clock_edge(&mut self, inputs: &[u64]) -> Vec<u64> {
        let n = self.cfg.ports;
        debug_assert_eq!(inputs.len(), 3 * n + 6);

        // Global control unit: configuration interface.
        let cfg_base = 3 * n;
        if inputs[cfg_base] == 1 {
            let in_vpi = inputs[cfg_base + 1] as u8;
            let in_vci = inputs[cfg_base + 2] as u16;
            let out_port = inputs[cfg_base + 3] as usize;
            let out_vpi = inputs[cfg_base + 4] as u8;
            let out_vci = inputs[cfg_base + 5] as u16;
            let _ = self.install_route(in_vpi, in_vci, out_port, out_vpi, out_vci);
        }

        // Ingress: one octet per port per clock.
        for i in 0..n {
            let data = inputs[3 * i] as u8;
            let sync = inputs[3 * i + 1] == 1;
            let en = inputs[3 * i + 2] == 1;
            if !en {
                continue;
            }
            if sync {
                self.rx[i].index = 0;
                self.rx[i].in_cell = true;
            }
            if self.rx[i].in_cell {
                let idx = self.rx[i].index;
                self.rx[i].shift[idx] = data;
                self.rx[i].index += 1;
                if self.rx[i].index == CELL_OCTETS {
                    self.rx[i].index = 0;
                    self.rx[i].in_cell = false;
                    let cell = self.rx[i].shift;
                    self.complete_cell(cell);
                }
            }
        }

        // Egress: stream queued cells, chaining back-to-back.
        let mut out = Vec::with_capacity(3 * n + 3);
        for i in 0..n {
            if !self.tx[i].active {
                if let Some(cell) = self.fifos[i].pop_front() {
                    self.tx[i].buffer = cell;
                    self.tx[i].index = 0;
                    self.tx[i].active = true;
                }
            }
            if self.tx[i].active {
                let idx = self.tx[i].index;
                let byte = self.tx[i].buffer[idx];
                let sync = idx == 0;
                self.tx[i].index += 1;
                if self.tx[i].index == CELL_OCTETS {
                    self.tx[i].active = false;
                    self.tx[i].index = 0;
                }
                out.push(u64::from(byte));
                out.push(u64::from(sync));
                out.push(1);
            } else {
                out.push(0);
                out.push(0);
                out.push(0);
            }
        }
        out.push(u64::from(self.unroutable));
        out.push(u64::from(self.dropped));
        out.push(self.table.len() as u64);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::CycleSim;
    use castanet_atm::addr::{HeaderFormat, VpiVci};
    use castanet_atm::cell::AtmCell;

    fn wire_cell(vpi: u16, vci: u16, fill: u8) -> [u8; CELL_OCTETS] {
        AtmCell::user_data(VpiVci::uni(vpi, vci).unwrap(), [fill; 48])
            .encode(HeaderFormat::Uni)
            .unwrap()
    }

    fn idle_inputs(ports: usize) -> Vec<u64> {
        vec![0u64; 3 * ports + 6]
    }

    /// Steps the switch feeding `cell` into line `port`; collects per-port
    /// byte streams while stepping `extra` idle cycles afterwards.
    fn run_cell(
        sim: &mut CycleSim,
        ports: usize,
        port: usize,
        cell: &[u8; CELL_OCTETS],
        extra: usize,
    ) -> Vec<Vec<(u8, bool)>> {
        let mut streams = vec![Vec::new(); ports];
        let capture = |out: &[u64], streams: &mut Vec<Vec<(u8, bool)>>| {
            for i in 0..ports {
                if out[3 * i + 2] == 1 {
                    streams[i].push((out[3 * i] as u8, out[3 * i + 1] == 1));
                }
            }
        };
        for (k, &b) in cell.iter().enumerate() {
            let mut inp = idle_inputs(ports);
            inp[3 * port] = u64::from(b);
            inp[3 * port + 1] = u64::from(k == 0);
            inp[3 * port + 2] = 1;
            let out = sim.step(&inp).unwrap();
            capture(&out, &mut streams);
        }
        for _ in 0..extra {
            let out = sim.step(&idle_inputs(ports)).unwrap();
            capture(&out, &mut streams);
        }
        streams
    }

    fn configure_route(
        sim: &mut CycleSim,
        ports: usize,
        in_vpi: u8,
        in_vci: u16,
        out_port: u64,
        out_vpi: u8,
        out_vci: u16,
    ) {
        let mut inp = idle_inputs(ports);
        let base = 3 * ports;
        inp[base] = 1;
        inp[base + 1] = u64::from(in_vpi);
        inp[base + 2] = u64::from(in_vci);
        inp[base + 3] = out_port;
        inp[base + 4] = u64::from(out_vpi);
        inp[base + 5] = u64::from(out_vci);
        sim.step(&inp).unwrap();
    }

    #[test]
    fn switches_and_retags_via_pin_config() {
        let mut sim = CycleSim::new(Box::new(AtmSwitchRtl::new(SwitchRtlConfig::default())));
        configure_route(&mut sim, 4, 1, 40, 2, 7, 70);
        let cell = wire_cell(1, 40, 0x99);
        let streams = run_cell(&mut sim, 4, 0, &cell, 60);
        assert!(streams[0].is_empty() && streams[1].is_empty() && streams[3].is_empty());
        let out: Vec<u8> = streams[2].iter().map(|&(b, _)| b).collect();
        assert_eq!(out.len(), CELL_OCTETS);
        assert!(streams[2][0].1, "cellsync on first octet");
        // Decode and verify translation + fresh HEC.
        let decoded = AtmCell::decode(&out, HeaderFormat::Uni).unwrap();
        assert_eq!(decoded.id(), VpiVci::uni(7, 70).unwrap());
        assert_eq!(decoded.payload, [0x99; 48]);
    }

    #[test]
    fn unroutable_cells_counted_and_absorbed() {
        let mut sim = CycleSim::new(Box::new(AtmSwitchRtl::new(SwitchRtlConfig::default())));
        let cell = wire_cell(9, 90, 0);
        let streams = run_cell(&mut sim, 4, 1, &cell, 60);
        assert!(streams.iter().all(std::vec::Vec::is_empty));
        let out = sim.step(&idle_inputs(4)).unwrap();
        assert_eq!(out[12], 1, "unroutable counter");
    }

    #[test]
    fn hec_corrupt_cells_discarded() {
        let mut switch = AtmSwitchRtl::new(SwitchRtlConfig::default());
        switch.install_route(1, 40, 2, 1, 40);
        let mut sim = CycleSim::new(Box::new(switch));
        // Reset wipes routes; re-install via pins instead.
        configure_route(&mut sim, 4, 1, 40, 2, 1, 40);
        let mut cell = wire_cell(1, 40, 0);
        cell[4] ^= 0x55;
        let streams = run_cell(&mut sim, 4, 0, &cell, 60);
        assert!(streams.iter().all(std::vec::Vec::is_empty));
    }

    #[test]
    fn back_to_back_cells_sustain_line_rate() {
        let mut sim = CycleSim::new(Box::new(AtmSwitchRtl::new(SwitchRtlConfig::default())));
        configure_route(&mut sim, 4, 1, 40, 1, 1, 40);
        let cell = wire_cell(1, 40, 0x11);
        // Stream 5 cells back-to-back into port 0, then drain.
        let mut valid_cycles = 0u32;
        for _c in 0..5 {
            for (k, &b) in cell.iter().enumerate() {
                let mut inp = idle_inputs(4);
                inp[0] = u64::from(b);
                inp[1] = u64::from(k == 0);
                inp[2] = 1;
                let out = sim.step(&inp).unwrap();
                valid_cycles += u32::from(out[3 + 2] == 1);
            }
        }
        for _ in 0..120 {
            let out = sim.step(&idle_inputs(4)).unwrap();
            valid_cycles += u32::from(out[3 + 2] == 1);
        }
        assert_eq!(
            valid_cycles,
            5 * CELL_OCTETS as u32,
            "all 5 cells egress completely"
        );
        let out = sim.step(&idle_inputs(4)).unwrap();
        assert_eq!(out[13], 0, "no drops at line rate");
    }

    #[test]
    fn fifo_overflow_drops_cells() {
        // Tiny FIFO + two ingress lines converging on one egress port.
        let mut switch = AtmSwitchRtl::new(SwitchRtlConfig {
            ports: 4,
            fifo_capacity: 1,
            table_capacity: 16,
        });
        assert!(switch.install_route(1, 40, 3, 1, 40));
        assert!(switch.install_route(2, 50, 3, 2, 50));
        let mut sim = CycleSim::new(Box::new(switch));
        configure_route(&mut sim, 4, 1, 40, 3, 1, 40);
        configure_route(&mut sim, 4, 2, 50, 3, 2, 50);
        let a = wire_cell(1, 40, 0xAA);
        let b = wire_cell(2, 50, 0xBB);
        // Feed both lines simultaneously, twice (4 cells at once into one
        // egress with capacity 1 + the one in flight).
        for _rep in 0..2 {
            for k in 0..CELL_OCTETS {
                let mut inp = idle_inputs(4);
                inp[0] = u64::from(a[k]);
                inp[1] = u64::from(k == 0);
                inp[2] = 1;
                inp[3] = u64::from(b[k]);
                inp[4] = u64::from(k == 0);
                inp[5] = 1;
                sim.step(&inp).unwrap();
            }
        }
        for _ in 0..300 {
            sim.step(&idle_inputs(4)).unwrap();
        }
        let out = sim.step(&idle_inputs(4)).unwrap();
        assert!(out[13] > 0, "expected drops with fifo capacity 1");
    }

    #[test]
    fn table_capacity_enforced() {
        let mut switch = AtmSwitchRtl::new(SwitchRtlConfig {
            ports: 2,
            fifo_capacity: 4,
            table_capacity: 2,
        });
        assert!(switch.install_route(1, 1, 0, 1, 1));
        assert!(switch.install_route(1, 2, 0, 1, 2));
        assert!(!switch.install_route(1, 3, 0, 1, 3), "table full");
        assert!(!switch.install_route(1, 1, 1, 9, 9), "duplicate rejected");
        assert!(!switch.install_route(1, 4, 7, 1, 4), "bad port rejected");
    }

    #[test]
    fn table_count_output_reflects_config() {
        let mut sim = CycleSim::new(Box::new(AtmSwitchRtl::new(SwitchRtlConfig::default())));
        configure_route(&mut sim, 4, 1, 40, 0, 1, 40);
        configure_route(&mut sim, 4, 1, 41, 0, 1, 41);
        let out = sim.step(&idle_inputs(4)).unwrap();
        assert_eq!(out[14], 2);
    }

    #[test]
    fn reset_clears_state() {
        let mut switch = AtmSwitchRtl::new(SwitchRtlConfig::default());
        switch.install_route(1, 40, 0, 1, 40);
        switch.reset();
        let mut sim = CycleSim::new(Box::new(switch));
        let out = sim.step(&idle_inputs(4)).unwrap();
        assert_eq!(out[14], 0, "routes wiped by reset");
    }
}
