//! The cell transmitter: Fig. 4's byte-serial ATM interface, transmit side.
//!
//! Mirror image of [`super::CellReceiver`]: a 53-octet buffer is loaded
//! through a write port, then streamed out one octet per clock with the
//! `cellsync` strobe marking octet 0.

use crate::cycle::{CycleDut, PortDecl};
use castanet_atm::cell::CELL_OCTETS;

/// Pin-level cell transmitter.
///
/// Inputs (in `clock_edge` order):
/// 1. `wr_en` (1), `wr_addr` (6), `wr_data` (8) — buffer load port;
/// 2. `tx_start` (1) — begin streaming the buffer (ignored while busy).
///
/// Outputs:
/// 1. `atmdata` (8) — the octet on the line this clock;
/// 2. `cellsync` (1) — high with octet 0;
/// 3. `valid` (1) — high while an octet is being transmitted;
/// 4. `busy` (1) — high from start until the last octet.
#[derive(Debug, Clone)]
pub struct CellTransmitter {
    buffer: [u8; CELL_OCTETS],
    index: usize,
    busy: bool,
    sent_cells: u64,
}

impl Default for CellTransmitter {
    fn default() -> Self {
        Self::new()
    }
}

impl CellTransmitter {
    /// Creates a transmitter in reset state.
    #[must_use]
    pub fn new() -> Self {
        CellTransmitter {
            buffer: [0; CELL_OCTETS],
            index: 0,
            busy: false,
            sent_cells: 0,
        }
    }

    /// Model-level buffer load (tests / co-simulation entity shortcut; the
    /// pin-accurate path is the `wr_*` port).
    pub fn load(&mut self, cell: &[u8; CELL_OCTETS]) {
        self.buffer = *cell;
    }

    /// Cells completely streamed since reset.
    #[must_use]
    pub fn sent_cells(&self) -> u64 {
        self.sent_cells
    }
}

impl CycleDut for CellTransmitter {
    fn input_ports(&self) -> Vec<PortDecl> {
        vec![
            PortDecl::new("wr_en", 1),
            PortDecl::new("wr_addr", 6),
            PortDecl::new("wr_data", 8),
            PortDecl::new("tx_start", 1),
        ]
    }

    fn output_ports(&self) -> Vec<PortDecl> {
        vec![
            PortDecl::new("atmdata", 8),
            PortDecl::new("cellsync", 1),
            PortDecl::new("valid", 1),
            PortDecl::new("busy", 1),
        ]
    }

    fn reset(&mut self) {
        *self = CellTransmitter::new();
    }

    fn fork_dut(&self) -> Option<Box<dyn CycleDut>> {
        Some(Box::new(self.clone()))
    }

    fn clock_edge(&mut self, inputs: &[u64]) -> Vec<u64> {
        let wr_en = inputs[0] == 1;
        let wr_addr = (inputs[1] as usize).min(CELL_OCTETS - 1);
        let wr_data = inputs[2] as u8;
        let tx_start = inputs[3] == 1;

        if wr_en && !self.busy {
            self.buffer[wr_addr] = wr_data;
        }

        let (data, sync, valid) = if self.busy {
            let b = self.buffer[self.index];
            let sync = self.index == 0;
            self.index += 1;
            if self.index == CELL_OCTETS {
                self.busy = false;
                self.index = 0;
                self.sent_cells += 1;
            }
            (b, sync, true)
        } else {
            (0, false, false)
        };

        // Start takes effect for the *next* clock (registered control).
        if tx_start && !self.busy && !valid {
            self.busy = true;
            self.index = 0;
        } else if tx_start && !self.busy && valid {
            // Start coinciding with the last octet: chain immediately.
            self.busy = true;
            self.index = 0;
        }

        vec![
            u64::from(data),
            u64::from(sync),
            u64::from(valid),
            u64::from(self.busy),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::CycleSim;
    use crate::dut::CellReceiver;
    use castanet_atm::addr::{HeaderFormat, VpiVci};
    use castanet_atm::cell::AtmCell;

    fn wire_cell(vpi: u16, vci: u16, fill: u8) -> [u8; CELL_OCTETS] {
        AtmCell::user_data(VpiVci::uni(vpi, vci).unwrap(), [fill; 48])
            .encode(HeaderFormat::Uni)
            .unwrap()
    }

    fn load_via_pins(sim: &mut CycleSim, cell: &[u8; CELL_OCTETS]) {
        for (i, &b) in cell.iter().enumerate() {
            sim.step(&[1, i as u64, u64::from(b), 0]).unwrap();
        }
    }

    fn capture_stream(sim: &mut CycleSim) -> Vec<(u8, bool)> {
        // Pulse start, then collect valid octets.
        sim.step(&[0, 0, 0, 1]).unwrap();
        let mut out = Vec::new();
        for _ in 0..60 {
            let o = sim.step(&[0, 0, 0, 0]).unwrap();
            if o[2] == 1 {
                out.push((o[0] as u8, o[1] == 1));
            }
        }
        out
    }

    #[test]
    fn streams_53_octets_with_sync_on_first() {
        let mut sim = CycleSim::new(Box::new(CellTransmitter::new()));
        let cell = wire_cell(7, 70, 0x3C);
        load_via_pins(&mut sim, &cell);
        let stream = capture_stream(&mut sim);
        assert_eq!(stream.len(), CELL_OCTETS);
        assert!(stream[0].1, "first octet carries cellsync");
        assert!(stream[1..].iter().all(|&(_, s)| !s));
        let bytes: Vec<u8> = stream.iter().map(|&(b, _)| b).collect();
        assert_eq!(bytes, cell.to_vec());
    }

    #[test]
    fn start_while_busy_is_ignored() {
        let mut sim = CycleSim::new(Box::new(CellTransmitter::new()));
        let cell = wire_cell(1, 40, 0x01);
        load_via_pins(&mut sim, &cell);
        sim.step(&[0, 0, 0, 1]).unwrap(); // arm
                                          // Pulse start mid-stream.
        let mut octets = 0;
        for i in 0..70 {
            let start = u64::from(i == 10);
            let o = sim.step(&[0, 0, 0, start]).unwrap();
            if o[2] == 1 {
                octets += 1;
            }
        }
        // The mid-stream start is ignored while busy; exactly one cell.
        assert_eq!(octets, CELL_OCTETS);
    }

    #[test]
    fn writes_ignored_while_busy() {
        let mut sim = CycleSim::new(Box::new(CellTransmitter::new()));
        let cell = wire_cell(1, 40, 0xAB);
        load_via_pins(&mut sim, &cell);
        sim.step(&[0, 0, 0, 1]).unwrap();
        // Attempt to overwrite byte 52 while streaming.
        sim.step(&[1, 52, 0xFF, 0]).unwrap();
        let mut last = 0u8;
        for _ in 0..60 {
            let o = sim.step(&[0, 0, 0, 0]).unwrap();
            if o[2] == 1 {
                last = o[0] as u8;
            }
        }
        assert_eq!(last, cell[52], "overwrite while busy must not land");
    }

    #[test]
    fn loopback_tx_to_rx() {
        let mut tx = CycleSim::new(Box::new(CellTransmitter::new()));
        let mut rx = CycleSim::new(Box::new(CellReceiver::new()));
        let cell = wire_cell(0x42, 0x1234, 0x5A);
        load_via_pins(&mut tx, &cell);
        tx.step(&[0, 0, 0, 1]).unwrap();
        let mut completed = None;
        for _ in 0..60 {
            let o = tx.step(&[0, 0, 0, 0]).unwrap();
            let r = rx.step(&[o[0], o[1], o[2], 0]).unwrap();
            if r[0] == 1 {
                completed = Some(r);
            }
        }
        let r = completed.expect("receiver completed a cell");
        assert_eq!(r[1], 1, "hec survives the loop");
        assert_eq!(r[2], 0x42);
        assert_eq!(r[3], 0x1234);
    }

    #[test]
    fn sent_cell_counter() {
        let mut sim = CycleSim::new(Box::new(CellTransmitter::new()));
        let cell = wire_cell(1, 40, 0);
        load_via_pins(&mut sim, &cell);
        capture_stream(&mut sim);
        capture_stream(&mut sim);
        // Access the model-level counter through the erased DUT is not
        // possible; stream counting above already proves two cells, so this
        // test exercises the model API directly instead.
        let mut tx = CellTransmitter::new();
        tx.load(&cell);
        for _ in 0..2 {
            tx.clock_edge(&[0, 0, 0, 1]);
            for _ in 0..CELL_OCTETS {
                tx.clock_edge(&[0, 0, 0, 0]);
            }
        }
        assert_eq!(tx.sent_cells(), 2);
    }
}
