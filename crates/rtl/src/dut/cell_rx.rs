//! The cell receiver: Fig. 4's byte-serial ATM interface, receive side.
//!
//! "The complete ATM cell comprises 53 bytes, therefore it takes 53 clock
//! cycles within the hardware simulator to read the cell. Additionally, the
//! interface model generates control signals such as a cell synchronization
//! signal that indicates the start of a new cell."
//!
//! The receiver deserializes the 8-bit `atmdata` stream, checks the HEC,
//! decodes the header fields and exposes the completed cell through a
//! read-back RAM port (double-buffered, as real cell delineation hardware
//! does).

use crate::cycle::{CycleDut, PortDecl};
use castanet_atm::cell::CELL_OCTETS;
use castanet_atm::hec;

/// Pin-level cell receiver.
///
/// Inputs (in `clock_edge` order):
/// 1. `atmdata` (8) — one cell octet per clock;
/// 2. `cellsync` (1) — high while the *first* octet of a cell is presented;
/// 3. `enable` (1) — byte-valid qualifier (low = no data this clock);
/// 4. `rd_addr` (6) — read-back address into the last completed cell.
///
/// Outputs:
/// 1. `cell_valid` (1) — pulses for one clock when octet 53 lands;
/// 2. `hec_ok` (1) — HEC verdict of the completed cell (valid with
///    `cell_valid`, held until the next completion);
/// 3. `vpi` (8), `vci` (16), `pt` (3), `clp` (1) — decoded header of the
///    last completed cell (UNI format);
/// 4. `rd_data` (8) — `last_cell[rd_addr]` (registered, 1-cycle latency);
/// 5. `cells` (16) — completed-cell counter (wraps).
#[derive(Debug, Clone)]
pub struct CellReceiver {
    shift: [u8; CELL_OCTETS],
    index: usize,
    in_cell: bool,
    done: [u8; CELL_OCTETS],
    cell_valid: bool,
    hec_ok: bool,
    vpi: u8,
    vci: u16,
    pt: u8,
    clp: bool,
    rd_data: u8,
    cells: u16,
}

impl Default for CellReceiver {
    fn default() -> Self {
        Self::new()
    }
}

impl CellReceiver {
    /// Creates a receiver in reset state.
    #[must_use]
    pub fn new() -> Self {
        CellReceiver {
            shift: [0; CELL_OCTETS],
            index: 0,
            in_cell: false,
            done: [0; CELL_OCTETS],
            cell_valid: false,
            hec_ok: false,
            vpi: 0,
            vci: 0,
            pt: 0,
            clp: false,
            rd_data: 0,
            cells: 0,
        }
    }

    /// The last completed cell's 53 octets (model-level readback for tests
    /// and the co-simulation entity; hardware uses the `rd_addr`/`rd_data`
    /// port).
    #[must_use]
    pub fn last_cell(&self) -> &[u8; CELL_OCTETS] {
        &self.done
    }

    /// Completed-cell count since reset.
    #[must_use]
    pub fn cell_count(&self) -> u16 {
        self.cells
    }
}

impl CycleDut for CellReceiver {
    fn input_ports(&self) -> Vec<PortDecl> {
        vec![
            PortDecl::new("atmdata", 8),
            PortDecl::new("cellsync", 1),
            PortDecl::new("enable", 1),
            PortDecl::new("rd_addr", 6),
        ]
    }

    fn output_ports(&self) -> Vec<PortDecl> {
        vec![
            PortDecl::new("cell_valid", 1),
            PortDecl::new("hec_ok", 1),
            PortDecl::new("vpi", 8),
            PortDecl::new("vci", 16),
            PortDecl::new("pt", 3),
            PortDecl::new("clp", 1),
            PortDecl::new("rd_data", 8),
            PortDecl::new("cells", 16),
        ]
    }

    fn reset(&mut self) {
        *self = CellReceiver::new();
    }

    fn fork_dut(&self) -> Option<Box<dyn CycleDut>> {
        Some(Box::new(self.clone()))
    }

    fn clock_edge(&mut self, inputs: &[u64]) -> Vec<u64> {
        let data = inputs[0] as u8;
        let sync = inputs[1] == 1;
        let enable = inputs[2] == 1;
        let rd_addr = (inputs[3] as usize).min(CELL_OCTETS - 1);

        self.cell_valid = false;
        if enable {
            if sync {
                // Resynchronize: this octet is byte 0 regardless of state.
                self.index = 0;
                self.in_cell = true;
            }
            if self.in_cell {
                self.shift[self.index] = data;
                self.index += 1;
                if self.index == CELL_OCTETS {
                    self.done = self.shift;
                    self.cell_valid = true;
                    self.hec_ok = hec::check(&self.done[..5]);
                    // UNI header decode.
                    self.vpi = (self.done[0] << 4) | (self.done[1] >> 4);
                    self.vci = (u16::from(self.done[1] & 0x0F) << 12)
                        | (u16::from(self.done[2]) << 4)
                        | u16::from(self.done[3] >> 4);
                    self.pt = (self.done[3] >> 1) & 0b111;
                    self.clp = self.done[3] & 1 == 1;
                    self.cells = self.cells.wrapping_add(1);
                    self.index = 0;
                    self.in_cell = false;
                }
            }
        }
        self.rd_data = self.done[rd_addr];

        vec![
            u64::from(self.cell_valid),
            u64::from(self.hec_ok),
            u64::from(self.vpi),
            u64::from(self.vci),
            u64::from(self.pt),
            u64::from(self.clp),
            u64::from(self.rd_data),
            u64::from(self.cells),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::CycleSim;
    use castanet_atm::addr::{HeaderFormat, VpiVci};
    use castanet_atm::cell::AtmCell;

    fn wire_cell(vpi: u16, vci: u16, fill: u8) -> [u8; CELL_OCTETS] {
        AtmCell::user_data(VpiVci::uni(vpi, vci).unwrap(), [fill; 48])
            .encode(HeaderFormat::Uni)
            .unwrap()
    }

    /// Streams a 53-octet cell into the receiver, returning the outputs of
    /// the final byte's clock edge.
    fn stream_cell(sim: &mut CycleSim, wire: &[u8; CELL_OCTETS]) -> Vec<u64> {
        let mut last = Vec::new();
        for (i, &b) in wire.iter().enumerate() {
            let sync = u64::from(i == 0);
            last = sim.step(&[u64::from(b), sync, 1, 0]).unwrap();
        }
        last
    }

    #[test]
    fn receives_one_cell_in_53_clocks() {
        let mut sim = CycleSim::new(Box::new(CellReceiver::new()));
        let wire = wire_cell(0x5C, 0xBEE, 0xAA);
        let out = stream_cell(&mut sim, &wire);
        assert_eq!(sim.cycles(), 53, "exactly 53 clocks per cell");
        assert_eq!(out[0], 1, "cell_valid pulses");
        assert_eq!(out[1], 1, "hec ok");
        assert_eq!(out[2], 0x5C, "vpi decoded");
        assert_eq!(out[3], 0xBEE, "vci decoded");
        assert_eq!(out[5], 0, "clp");
        assert_eq!(out[7], 1, "cell counter");
    }

    #[test]
    fn cell_valid_is_a_single_cycle_pulse() {
        let mut sim = CycleSim::new(Box::new(CellReceiver::new()));
        let wire = wire_cell(1, 40, 0);
        let out = stream_cell(&mut sim, &wire);
        assert_eq!(out[0], 1);
        let idle = sim.step(&[0, 0, 0, 0]).unwrap();
        assert_eq!(idle[0], 0, "valid deasserts after one clock");
        assert_eq!(idle[7], 1, "counter holds");
    }

    #[test]
    fn corrupted_hec_is_flagged() {
        let mut sim = CycleSim::new(Box::new(CellReceiver::new()));
        let mut wire = wire_cell(1, 40, 0);
        wire[4] ^= 0xFF;
        let out = stream_cell(&mut sim, &wire);
        assert_eq!(out[0], 1, "cell still completes");
        assert_eq!(out[1], 0, "hec flagged bad");
    }

    #[test]
    fn disabled_clocks_do_not_consume_bytes() {
        let mut sim = CycleSim::new(Box::new(CellReceiver::new()));
        let wire = wire_cell(9, 99, 0x42);
        // First byte with sync.
        sim.step(&[u64::from(wire[0]), 1, 1, 0]).unwrap();
        // Idle gaps between bytes (enable low).
        for _ in 0..5 {
            let out = sim.step(&[0xFF, 0, 0, 0]).unwrap();
            assert_eq!(out[0], 0);
        }
        // Remaining 52 bytes.
        let mut last = Vec::new();
        for &b in &wire[1..] {
            last = sim.step(&[u64::from(b), 0, 1, 0]).unwrap();
        }
        assert_eq!(last[0], 1);
        assert_eq!(last[1], 1, "gaps must not corrupt the cell");
    }

    #[test]
    fn resync_mid_cell_recovers() {
        let mut sim = CycleSim::new(Box::new(CellReceiver::new()));
        let wire = wire_cell(3, 77, 0x11);
        // Stream 20 bytes of a cell, then a fresh sync restarts.
        for (i, &b) in wire.iter().take(20).enumerate() {
            sim.step(&[u64::from(b), u64::from(i == 0), 1, 0]).unwrap();
        }
        let out = stream_cell(&mut sim, &wire);
        assert_eq!(out[0], 1);
        assert_eq!(out[1], 1);
        assert_eq!(out[7], 1, "only the complete cell counts");
    }

    #[test]
    fn readback_port_returns_last_cell() {
        let mut sim = CycleSim::new(Box::new(CellReceiver::new()));
        let wire = wire_cell(2, 55, 0x77);
        stream_cell(&mut sim, &wire);
        for addr in [0usize, 4, 5, 52] {
            let out = sim.step(&[0, 0, 0, addr as u64]).unwrap();
            assert_eq!(out[6], u64::from(wire[addr]), "readback at {addr}");
        }
    }

    #[test]
    fn bytes_without_sync_before_first_cell_are_ignored() {
        let mut sim = CycleSim::new(Box::new(CellReceiver::new()));
        for _ in 0..100 {
            let out = sim.step(&[0x6A, 0, 1, 0]).unwrap();
            assert_eq!(out[0], 0);
        }
        let wire = wire_cell(1, 40, 1);
        let out = stream_cell(&mut sim, &wire);
        assert_eq!(out[0], 1);
    }

    #[test]
    fn back_to_back_cells() {
        let mut sim = CycleSim::new(Box::new(CellReceiver::new()));
        let a = wire_cell(1, 40, 0xAA);
        let b = wire_cell(2, 50, 0xBB);
        stream_cell(&mut sim, &a);
        let out = stream_cell(&mut sim, &b);
        assert_eq!(out[7], 2);
        assert_eq!(out[2], 2);
        assert_eq!(out[3], 50);
        assert_eq!(sim.cycles(), 106);
    }
}
