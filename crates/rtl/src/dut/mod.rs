//! Devices under test: cycle-accurate models of the paper's ATM hardware.
//!
//! The paper verifies VHDL descriptions of ATM components — port modules, a
//! global control unit, and (the case study) an accounting unit — against
//! their algorithm reference models. The original ASIC sources are
//! unpublished, so these DUTs implement the same externally visible
//! functions as the reference models in `castanet-atm`, at clock level,
//! against the [`crate::cycle::CycleDut`] pin interface:
//!
//! * [`CellReceiver`] / [`CellTransmitter`] — the Fig. 4 interface: an
//!   8-bit `atmdata` port plus a `cellsync` strobe, 53 clocks per cell;
//! * [`AtmSwitchRtl`] — N port modules + global control unit, the DUT of
//!   the paper's throughput experiment (E1);
//! * [`AccountingUnitRtl`] — the charging unit of the §4 case study (E6),
//!   functionally identical to [`castanet_atm::accounting::AccountingUnit`].
//!
//! Any of them can run under the cycle engine ([`crate::cycle::CycleSim`]),
//! inside the event-driven kernel ([`crate::cycle::attach_cycle_dut`]), or
//! behind the hardware test board.

mod accounting;
mod cell_rx;
mod cell_tx;
mod switch;

pub use accounting::AccountingUnitRtl;
pub use cell_rx::CellReceiver;
pub use cell_tx::CellTransmitter;
pub use switch::{AtmSwitchRtl, SwitchRtlConfig};
