//! The RTL accounting unit — clock-level twin of the §4 case study.
//!
//! Functionally identical to [`castanet_atm::accounting::AccountingUnit`]:
//! per-connection cell counters and charge accumulators (per-cell `weight`
//! plus per-active-interval `fixed`), driven byte-serially from the Fig. 4
//! interface. Cells with a bad HEC are not accounted (the reference model
//! never sees them either: the network simulator does not generate them).
//! The table is a bounded CAM, as silicon would have.

use crate::cycle::{CycleDut, PortDecl};
use castanet_atm::cell::CELL_OCTETS;
use castanet_atm::hec;
use std::collections::HashMap;

#[derive(Debug, Clone, Copy, Default)]
struct Account {
    weight: u16,
    fixed: u16,
    cells: u32,
    cells_this_interval: u32,
    charge: u32,
    active_intervals: u32,
}

/// Pin-level accounting unit.
///
/// Inputs (in `clock_edge` order):
/// 1. `atmdata` (8), `cellsync` (1), `enable` (1) — the observed cell
///    stream;
/// 2. `tick` (1) — tariff-interval strobe;
/// 3. `cfg_valid` (1), `cfg_vpi` (8), `cfg_vci` (16), `cfg_weight` (16),
///    `cfg_fixed` (16) — connection registration;
/// 4. `rd_valid` (1), `rd_vpi` (8), `rd_vci` (16) — record readback select.
///
/// Outputs:
/// 1. `rd_found` (1), `rd_cells` (32), `rd_charge` (32) — readback of the
///    selected record (registered, valid the cycle after `rd_valid`);
/// 2. `unmatched` (32) — cells on unregistered connections;
/// 3. `table_count` (8) — registered connections;
/// 4. `cfg_full` (1) — last registration was refused (table full).
#[derive(Debug, Clone)]
pub struct AccountingUnitRtl {
    capacity: usize,
    shift: [u8; CELL_OCTETS],
    index: usize,
    in_cell: bool,
    table: HashMap<(u8, u16), Account>,
    unmatched: u32,
    cfg_full: bool,
    rd_found: bool,
    rd_cells: u32,
    rd_charge: u32,
    hec_errors: u32,
}

impl AccountingUnitRtl {
    /// Creates a unit with a table of `capacity` connections.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or exceeds 255 (the `table_count`
    /// output width).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!((1..=255).contains(&capacity), "capacity must be 1..=255");
        AccountingUnitRtl {
            capacity,
            shift: [0; CELL_OCTETS],
            index: 0,
            in_cell: false,
            table: HashMap::new(),
            unmatched: 0,
            cfg_full: false,
            rd_found: false,
            rd_cells: 0,
            rd_charge: 0,
            hec_errors: 0,
        }
    }

    /// Model-level connection registration (the pin path is the `cfg_*`
    /// port). Returns `false` when the table is full or the connection is
    /// already registered.
    pub fn register(&mut self, vpi: u8, vci: u16, weight: u16, fixed: u16) -> bool {
        let key = (vpi, vci);
        if self.table.contains_key(&key) {
            return false;
        }
        if self.table.len() >= self.capacity {
            return false;
        }
        self.table.insert(
            key,
            Account {
                weight,
                fixed,
                ..Account::default()
            },
        );
        true
    }

    /// Model-level record access for equivalence checks.
    #[must_use]
    pub fn record(&self, vpi: u8, vci: u16) -> Option<(u32, u32, u32)> {
        self.table
            .get(&(vpi, vci))
            .map(|a| (a.cells, a.charge, a.active_intervals))
    }

    /// Cells observed on unregistered connections.
    #[must_use]
    pub fn unmatched(&self) -> u32 {
        self.unmatched
    }

    /// Cells dropped for HEC errors.
    #[must_use]
    pub fn hec_errors(&self) -> u32 {
        self.hec_errors
    }

    fn account_cell(&mut self, cell: [u8; CELL_OCTETS]) {
        if !hec::check(&cell[..5]) {
            self.hec_errors = self.hec_errors.wrapping_add(1);
            return;
        }
        let vpi = (cell[0] << 4) | (cell[1] >> 4);
        let vci =
            (u16::from(cell[1] & 0x0F) << 12) | (u16::from(cell[2]) << 4) | u16::from(cell[3] >> 4);
        match self.table.get_mut(&(vpi, vci)) {
            Some(a) => {
                a.cells = a.cells.saturating_add(1);
                a.cells_this_interval = a.cells_this_interval.saturating_add(1);
                a.charge = a.charge.saturating_add(u32::from(a.weight));
            }
            None => self.unmatched = self.unmatched.saturating_add(1),
        }
    }
}

impl CycleDut for AccountingUnitRtl {
    fn input_ports(&self) -> Vec<PortDecl> {
        vec![
            PortDecl::new("atmdata", 8),
            PortDecl::new("cellsync", 1),
            PortDecl::new("enable", 1),
            PortDecl::new("tick", 1),
            PortDecl::new("cfg_valid", 1),
            PortDecl::new("cfg_vpi", 8),
            PortDecl::new("cfg_vci", 16),
            PortDecl::new("cfg_weight", 16),
            PortDecl::new("cfg_fixed", 16),
            PortDecl::new("rd_valid", 1),
            PortDecl::new("rd_vpi", 8),
            PortDecl::new("rd_vci", 16),
        ]
    }

    fn output_ports(&self) -> Vec<PortDecl> {
        vec![
            PortDecl::new("rd_found", 1),
            PortDecl::new("rd_cells", 32),
            PortDecl::new("rd_charge", 32),
            PortDecl::new("unmatched", 32),
            PortDecl::new("table_count", 8),
            PortDecl::new("cfg_full", 1),
        ]
    }

    fn reset(&mut self) {
        let cap = self.capacity.max(1);
        *self = AccountingUnitRtl::new(cap);
    }

    fn is_idle(&self) -> bool {
        // Charging state persists, but absent input bytes nothing changes:
        // clocks may be skipped whenever no cell is mid-reception.
        !self.in_cell
    }

    fn fork_dut(&self) -> Option<Box<dyn CycleDut>> {
        Some(Box::new(self.clone()))
    }

    fn clock_edge(&mut self, inputs: &[u64]) -> Vec<u64> {
        let data = inputs[0] as u8;
        let sync = inputs[1] == 1;
        let enable = inputs[2] == 1;
        let tick = inputs[3] == 1;
        let cfg_valid = inputs[4] == 1;
        let rd_valid = inputs[9] == 1;

        if cfg_valid {
            let key = (inputs[5] as u8, inputs[6] as u16);
            if self.table.len() >= self.capacity && !self.table.contains_key(&key) {
                self.cfg_full = true;
            } else {
                self.cfg_full = false;
                self.table.entry(key).or_insert(Account {
                    weight: inputs[7] as u16,
                    fixed: inputs[8] as u16,
                    ..Account::default()
                });
            }
        }

        if enable {
            if sync {
                self.index = 0;
                self.in_cell = true;
            }
            if self.in_cell {
                self.shift[self.index] = data;
                self.index += 1;
                if self.index == CELL_OCTETS {
                    self.index = 0;
                    self.in_cell = false;
                    let cell = self.shift;
                    self.account_cell(cell);
                }
            }
        }

        if tick {
            for a in self.table.values_mut() {
                if a.cells_this_interval > 0 {
                    a.charge = a.charge.saturating_add(u32::from(a.fixed));
                    a.active_intervals = a.active_intervals.saturating_add(1);
                }
                a.cells_this_interval = 0;
            }
        }

        if rd_valid {
            if let Some(a) = self.table.get(&(inputs[10] as u8, inputs[11] as u16)) {
                self.rd_found = true;
                self.rd_cells = a.cells;
                self.rd_charge = a.charge;
            } else {
                self.rd_found = false;
                self.rd_cells = 0;
                self.rd_charge = 0;
            }
        }

        vec![
            u64::from(self.rd_found),
            u64::from(self.rd_cells),
            u64::from(self.rd_charge),
            u64::from(self.unmatched),
            self.table.len() as u64,
            u64::from(self.cfg_full),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::CycleSim;
    use castanet_atm::accounting::{AccountingUnit, Tariff};
    use castanet_atm::addr::{HeaderFormat, VpiVci};
    use castanet_atm::cell::AtmCell;

    const N_IN: usize = 12;

    fn wire_cell(vpi: u16, vci: u16) -> [u8; CELL_OCTETS] {
        AtmCell::user_data(VpiVci::uni(vpi, vci).unwrap(), [0x33; 48])
            .encode(HeaderFormat::Uni)
            .unwrap()
    }

    fn idle() -> Vec<u64> {
        vec![0u64; N_IN]
    }

    fn register(sim: &mut CycleSim, vpi: u8, vci: u16, weight: u16, fixed: u16) -> Vec<u64> {
        let mut inp = idle();
        inp[4] = 1;
        inp[5] = u64::from(vpi);
        inp[6] = u64::from(vci);
        inp[7] = u64::from(weight);
        inp[8] = u64::from(fixed);
        sim.step(&inp).unwrap()
    }

    fn stream_cell(sim: &mut CycleSim, cell: &[u8; CELL_OCTETS]) {
        for (i, &b) in cell.iter().enumerate() {
            let mut inp = idle();
            inp[0] = u64::from(b);
            inp[1] = u64::from(i == 0);
            inp[2] = 1;
            sim.step(&inp).unwrap();
        }
    }

    fn tick(sim: &mut CycleSim) {
        let mut inp = idle();
        inp[3] = 1;
        sim.step(&inp).unwrap();
    }

    fn read_record(sim: &mut CycleSim, vpi: u8, vci: u16) -> (bool, u32, u32) {
        let mut inp = idle();
        inp[9] = 1;
        inp[10] = u64::from(vpi);
        inp[11] = u64::from(vci);
        let out = sim.step(&inp).unwrap();
        (out[0] == 1, out[1] as u32, out[2] as u32)
    }

    #[test]
    fn charges_per_cell_and_per_interval() {
        let mut sim = CycleSim::new(Box::new(AccountingUnitRtl::new(16)));
        register(&mut sim, 1, 40, 2, 100);
        let cell = wire_cell(1, 40);
        stream_cell(&mut sim, &cell);
        stream_cell(&mut sim, &cell);
        tick(&mut sim);
        let (found, cells, charge) = read_record(&mut sim, 1, 40);
        assert!(found);
        assert_eq!(cells, 2);
        assert_eq!(charge, 2 * 2 + 100);
    }

    #[test]
    fn idle_interval_not_charged() {
        let mut sim = CycleSim::new(Box::new(AccountingUnitRtl::new(16)));
        register(&mut sim, 1, 40, 0, 50);
        stream_cell(&mut sim, &wire_cell(1, 40));
        tick(&mut sim);
        tick(&mut sim); // no traffic in this interval
        let (_, _, charge) = read_record(&mut sim, 1, 40);
        assert_eq!(charge, 50);
    }

    #[test]
    fn unmatched_cells_counted() {
        let mut sim = CycleSim::new(Box::new(AccountingUnitRtl::new(16)));
        register(&mut sim, 1, 40, 1, 0);
        stream_cell(&mut sim, &wire_cell(9, 99));
        let out = sim.step(&idle()).unwrap();
        assert_eq!(out[3], 1);
        let (found, ..) = read_record(&mut sim, 9, 99);
        assert!(!found);
    }

    #[test]
    fn hec_corrupt_cells_not_accounted() {
        let mut sim = CycleSim::new(Box::new(AccountingUnitRtl::new(16)));
        register(&mut sim, 1, 40, 1, 0);
        let mut cell = wire_cell(1, 40);
        cell[0] ^= 0x08;
        stream_cell(&mut sim, &cell);
        let (_, cells, _) = read_record(&mut sim, 1, 40);
        assert_eq!(cells, 0);
        let out = sim.step(&idle()).unwrap();
        assert_eq!(out[3], 0, "hec errors are not 'unmatched'");
    }

    #[test]
    fn table_capacity_and_cfg_full_flag() {
        let mut sim = CycleSim::new(Box::new(AccountingUnitRtl::new(2)));
        let o1 = register(&mut sim, 1, 1, 1, 1);
        assert_eq!(o1[5], 0);
        register(&mut sim, 1, 2, 1, 1);
        let o3 = register(&mut sim, 1, 3, 1, 1);
        assert_eq!(o3[5], 1, "cfg_full raised");
        assert_eq!(o3[4], 2, "table_count capped");
    }

    #[test]
    fn duplicate_registration_keeps_original_tariff() {
        let mut sim = CycleSim::new(Box::new(AccountingUnitRtl::new(4)));
        register(&mut sim, 1, 40, 5, 0);
        register(&mut sim, 1, 40, 99, 0); // ignored
        stream_cell(&mut sim, &wire_cell(1, 40));
        let (_, _, charge) = read_record(&mut sim, 1, 40);
        assert_eq!(charge, 5);
    }

    /// The key co-verification property: the RTL twin matches the algorithm
    /// reference model over a randomized workload.
    #[test]
    fn matches_reference_model_over_random_workload() {
        let mut reference = AccountingUnit::new();
        let mut sim = CycleSim::new(Box::new(AccountingUnitRtl::new(32)));
        let conns: Vec<(u8, u16, u16, u16)> =
            vec![(1, 40, 2, 10), (1, 41, 1, 0), (2, 50, 0, 25), (3, 60, 7, 3)];
        for &(vpi, vci, w, f) in &conns {
            reference
                .register(
                    VpiVci::uni(u16::from(vpi), vci).unwrap(),
                    Tariff {
                        weight: u32::from(w),
                        fixed: u32::from(f),
                    },
                )
                .unwrap();
            register(&mut sim, vpi, vci, w, f);
        }
        // Deterministic pseudo-random workload: 400 cells + 10 ticks.
        let mut x: u64 = 0x1234_5678;
        for step in 0..400 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let pick = (x % 5) as usize; // 4 known conns + 1 unknown
            let (vpi, vci) = if pick < 4 {
                (conns[pick].0, conns[pick].1)
            } else {
                (200, 200)
            };
            reference.on_cell(VpiVci::uni(u16::from(vpi), vci).unwrap());
            stream_cell(&mut sim, &wire_cell(u16::from(vpi), vci));
            if step % 40 == 39 {
                reference.interval_tick();
                tick(&mut sim);
            }
        }
        for &(vpi, vci, ..) in &conns {
            let r = reference
                .record(VpiVci::uni(u16::from(vpi), vci).unwrap())
                .unwrap();
            let (found, cells, charge) = read_record(&mut sim, vpi, vci);
            assert!(found);
            assert_eq!(u64::from(cells), r.cells, "{vpi}/{vci} cells");
            assert_eq!(u64::from(charge), r.charge, "{vpi}/{vci} charge");
        }
        let out = sim.step(&idle()).unwrap();
        assert_eq!(out[3], reference.unmatched());
    }

    #[test]
    #[should_panic(expected = "capacity must be 1..=255")]
    fn zero_capacity_panics() {
        let _ = AccountingUnitRtl::new(0);
    }
}
