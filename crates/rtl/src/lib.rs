//! # castanet-rtl — event-driven and cycle-based RTL simulation
//!
//! A from-scratch substitute for the Synopsys VHDL System Simulator the
//! DATE'98 CASTANET paper couples to its network simulator:
//!
//! * [`logic`] / [`vector`] — the IEEE-1164 nine-value system and
//!   `STD_LOGIC_VECTOR`s;
//! * [`sim`] — an event-driven kernel with delta cycles, sensitivity lists
//!   and multi-driver signal resolution;
//! * [`cycle`] — the cycle-based engine the paper's conclusion calls for,
//!   sharing DUTs with the event-driven kernel via
//!   [`cycle::attach_cycle_dut`];
//! * [`compiled`] — the compiled bit-parallel backend: the levelized
//!   netlist lowered to word-level ops over bit-sliced state, 64 scenario
//!   lanes per instruction, plus the [`compiled::LaneBank`] batching
//!   fallback for behavioral DUTs;
//! * [`comp`] — a library of RTL building blocks (flip-flops, counters,
//!   FIFOs) written as event-driven processes;
//! * [`netlist`] — netlist introspection: the signal→process→signal
//!   dataflow graph, structural checks (combinational loops, multi-driver
//!   conflicts, sensitivity completeness, gated-clock safety) and the
//!   levelization schedule for a compiled backend;
//! * [`dut`] — the paper's ATM hardware: byte-serial cell receiver and
//!   transmitter (Fig. 4), the 4-port switch with global control unit (the
//!   headline workload) and the accounting unit of the §4 case study;
//! * [`testbench`] — the classic pure-RTL regression bench used as the E1
//!   baseline;
//! * [`timing`] — setup/hold monitors (the timing half of "verification
//!   of timing and functionality by simulation");
//! * [`wave`] — VCD waveform dumping.
//!
//! ## Quick start
//!
//! ```
//! use castanet_rtl::cycle::CycleSim;
//! use castanet_rtl::dut::CellReceiver;
//! use castanet_atm::addr::{HeaderFormat, VpiVci};
//! use castanet_atm::cell::AtmCell;
//!
//! // Stream one ATM cell into the receiver DUT, one octet per clock.
//! let cell = AtmCell::user_data(VpiVci::uni(1, 42)?, [0; 48]);
//! let wire = cell.encode(HeaderFormat::Uni)?;
//! let mut sim = CycleSim::new(Box::new(CellReceiver::new()));
//! let mut last = Vec::new();
//! for (i, &byte) in wire.iter().enumerate() {
//!     last = sim.step(&[u64::from(byte), u64::from(i == 0), 1, 0])?;
//! }
//! assert_eq!(last[0], 1, "cell_valid after 53 clocks");
//! assert_eq!(last[3], 42, "vci decoded");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod comp;
pub mod compiled;
pub mod cycle;
pub mod dut;
pub mod error;
pub mod logic;
pub mod netlist;
pub mod signal;
pub mod sim;
pub mod testbench;
pub mod timing;
pub mod vector;
pub mod wave;
pub mod wheel;

pub use compiled::{CompileError, CompiledSchedule, CompiledSim, LaneBank, PackedBit, LANES};
pub use cycle::{CycleDut, CycleSim, PortDecl};
pub use error::RtlError;
pub use logic::Logic;
pub use netlist::{NetlistGraph, ProcessIo, ProcessKind, StructuralFinding};
pub use signal::SignalId;
pub use sim::{RtlCtx, RtlProcess, SimCounters, Simulator};
pub use vector::LogicVector;
