//! `STD_LOGIC_VECTOR`: fixed-width vectors of nine-value logic.
//!
//! Fig. 4 of the paper maps ATM cells onto `atmdata :
//! STD_LOGIC_VECTOR(7 DOWNTO 0)`. `LogicVector` is that type: a descending
//! bit vector (index 0 = least significant bit) with integer conversions,
//! slicing and element-wise resolution.

use crate::logic::Logic;
use std::fmt;

/// A fixed-width vector of [`Logic`] values, LSB at index 0
/// (`(N-1 DOWNTO 0)` in VHDL terms).
///
/// # Examples
///
/// ```
/// use castanet_rtl::vector::LogicVector;
///
/// let v = LogicVector::from_u64(0xA5, 8);
/// assert_eq!(v.to_u64(), Some(0xA5));
/// assert_eq!(v.to_string(), "10100101");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LogicVector {
    bits: Vec<Logic>,
}

impl LogicVector {
    /// A vector of `width` uninitialized (`U`) bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    #[must_use]
    pub fn uninitialized(width: usize) -> Self {
        assert!(width > 0, "logic vector width must be non-zero");
        LogicVector {
            bits: vec![Logic::U; width],
        }
    }

    /// A vector of `width` bits, all `value`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    #[must_use]
    pub fn filled(value: Logic, width: usize) -> Self {
        assert!(width > 0, "logic vector width must be non-zero");
        LogicVector {
            bits: vec![value; width],
        }
    }

    /// A vector of `width` high-impedance bits (released bus).
    #[must_use]
    pub fn high_z(width: usize) -> Self {
        Self::filled(Logic::Z, width)
    }

    /// Encodes the low `width` bits of `value` (LSB at index 0).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero, exceeds 64, or `value` does not fit.
    #[must_use]
    pub fn from_u64(value: u64, width: usize) -> Self {
        assert!(
            (1..=64).contains(&width),
            "width must be 1..=64, got {width}"
        );
        assert!(
            width == 64 || value < (1u64 << width),
            "value {value:#x} does not fit in {width} bits"
        );
        LogicVector {
            bits: (0..width)
                .map(|i| Logic::from_bool(value >> i & 1 == 1))
                .collect(),
        }
    }

    /// Builds a vector from bits, LSB first.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    #[must_use]
    pub fn from_bits(bits: &[Logic]) -> Self {
        assert!(!bits.is_empty(), "logic vector width must be non-zero");
        LogicVector {
            bits: bits.to_vec(),
        }
    }

    /// Width in bits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// Bit `index` (0 = LSB).
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    #[must_use]
    pub fn bit(&self, index: usize) -> Logic {
        self.bits[index]
    }

    /// Sets bit `index` (0 = LSB).
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn set_bit(&mut self, index: usize, value: Logic) {
        self.bits[index] = value;
    }

    /// The bits, LSB first.
    #[must_use]
    pub fn as_bits(&self) -> &[Logic] {
        &self.bits
    }

    /// Unsigned integer reading; `None` when any bit lacks a binary value or
    /// the width exceeds 64.
    #[must_use]
    pub fn to_u64(&self) -> Option<u64> {
        if self.bits.len() > 64 {
            return None;
        }
        let mut out = 0u64;
        for (i, b) in self.bits.iter().enumerate() {
            match b.to_bool() {
                Some(true) => out |= 1 << i,
                Some(false) => {}
                None => return None,
            }
        }
        Some(out)
    }

    /// `true` when every bit has a defined binary value.
    #[must_use]
    pub fn is_fully_defined(&self) -> bool {
        self.bits.iter().all(|b| !b.is_unknown())
    }

    /// Bit slice `[lo, lo+width)` as a new vector (VHDL
    /// `v(lo+width-1 DOWNTO lo)`).
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds or `width` is zero.
    #[must_use]
    pub fn slice(&self, lo: usize, width: usize) -> LogicVector {
        assert!(width > 0, "slice width must be non-zero");
        assert!(lo + width <= self.bits.len(), "slice out of range");
        LogicVector {
            bits: self.bits[lo..lo + width].to_vec(),
        }
    }

    /// Concatenates `high & self` (the VHDL `&` with `high` in the upper
    /// bits).
    #[must_use]
    pub fn concat_high(&self, high: &LogicVector) -> LogicVector {
        let mut bits = self.bits.clone();
        bits.extend_from_slice(&high.bits);
        LogicVector { bits }
    }

    /// Element-wise resolution with another equal-width vector.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[must_use]
    pub fn resolve(&self, other: &LogicVector) -> LogicVector {
        assert_eq!(self.width(), other.width(), "resolution width mismatch");
        LogicVector {
            bits: self
                .bits
                .iter()
                .zip(&other.bits)
                .map(|(a, b)| a.resolve(*b))
                .collect(),
        }
    }
}

impl fmt::Display for LogicVector {
    /// MSB-first character form, as VHDL literals are written.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.bits.iter().rev() {
            write!(f, "{}", b.to_char())?;
        }
        Ok(())
    }
}

impl From<Logic> for LogicVector {
    fn from(l: Logic) -> Self {
        LogicVector { bits: vec![l] }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip() {
        for (v, w) in [(0u64, 1), (1, 1), (0xFF, 8), (0x1234, 16), (u64::MAX, 64)] {
            let lv = LogicVector::from_u64(v, w);
            assert_eq!(lv.width(), w);
            assert_eq!(lv.to_u64(), Some(v), "value {v:#x} width {w}");
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_value_panics() {
        let _ = LogicVector::from_u64(256, 8);
    }

    #[test]
    fn undefined_bits_block_integer_reading() {
        let mut v = LogicVector::from_u64(5, 4);
        assert!(v.is_fully_defined());
        v.set_bit(2, Logic::Z);
        assert!(!v.is_fully_defined());
        assert_eq!(v.to_u64(), None);
    }

    #[test]
    fn weak_values_still_read_as_integers() {
        let v = LogicVector::from_bits(&[Logic::H, Logic::L, Logic::H]);
        assert_eq!(v.to_u64(), Some(0b101));
    }

    #[test]
    fn display_is_msb_first() {
        assert_eq!(LogicVector::from_u64(0b0110, 4).to_string(), "0110");
        assert_eq!(LogicVector::high_z(3).to_string(), "ZZZ");
        assert_eq!(LogicVector::uninitialized(2).to_string(), "UU");
    }

    #[test]
    fn slicing_matches_vhdl_downto() {
        // v = "10100101" (0xA5). v(7 downto 4) = "1010".
        let v = LogicVector::from_u64(0xA5, 8);
        assert_eq!(v.slice(4, 4).to_u64(), Some(0xA));
        assert_eq!(v.slice(0, 4).to_u64(), Some(0x5));
        assert_eq!(v.slice(0, 8), v);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_slice_panics() {
        let _ = LogicVector::from_u64(0, 4).slice(2, 4);
    }

    #[test]
    fn concat_orders_bits() {
        let low = LogicVector::from_u64(0x5, 4);
        let high = LogicVector::from_u64(0xA, 4);
        assert_eq!(low.concat_high(&high).to_u64(), Some(0xA5));
    }

    #[test]
    fn elementwise_resolution() {
        let a = LogicVector::from_bits(&[Logic::Z, Logic::One, Logic::Zero]);
        let b = LogicVector::from_bits(&[Logic::Zero, Logic::Z, Logic::One]);
        let r = a.resolve(&b);
        assert_eq!(r.as_bits(), &[Logic::Zero, Logic::One, Logic::X]);
    }

    #[test]
    fn scalar_conversion() {
        let v: LogicVector = Logic::One.into();
        assert_eq!(v.width(), 1);
        assert_eq!(v.to_u64(), Some(1));
    }

    #[test]
    fn bit_accessors() {
        let mut v = LogicVector::high_z(2);
        v.set_bit(1, Logic::One);
        assert_eq!(v.bit(1), Logic::One);
        assert_eq!(v.bit(0), Logic::Z);
    }
}
