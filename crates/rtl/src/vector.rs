//! `STD_LOGIC_VECTOR`: fixed-width vectors of nine-value logic.
//!
//! Fig. 4 of the paper maps ATM cells onto `atmdata :
//! STD_LOGIC_VECTOR(7 DOWNTO 0)`. `LogicVector` is that type: a descending
//! bit vector (index 0 = least significant bit) with integer conversions,
//! slicing and element-wise resolution.
//!
//! # Representation
//!
//! Bits are nibble-packed: each [`Logic`] value is stored as its 4-bit
//! discriminant, sixteen bits per `u64` word, LSB in the lowest nibble.
//! Vectors of up to 64 bits — the `atmdata(7 DOWNTO 0)` case and every
//! other port this codebase models — live inline in four words with no
//! heap allocation; wider vectors spill to a `Vec<u64>`. Nibbles beyond
//! the vector width are always zero (`U`), which lets equality, hashing
//! and resolution work word-wise without masking.
//!
//! The packing is chosen so the hot queries are word-parallel:
//!
//! * a nibble holds a defined binary value (`0`, `1`, `L`, `H` — packed
//!   2, 3, 6, 7) exactly when `(nibble & 0b1010) == 0b0010`, so
//!   [`LogicVector::is_fully_defined`] and [`LogicVector::to_u64`] test
//!   sixteen bits per word with two masks;
//! * a defined nibble's LSB *is* its binary value (`L` packs as 6 → 0,
//!   `H` as 7 → 1), so integer reads compress `word & 0x1111…` with a
//!   Morton-style gather;
//! * IEEE 1164 resolution runs through a precomputed 256×256 byte table
//!   (two nibbles per lookup), eight lookups per word.

use crate::logic::{Logic, RESOLUTION};
use std::fmt;
use std::hash::{Hash, Hasher};

/// Logic values (nibbles) per packed word.
const NIBS_PER_WORD: usize = 16;
/// Words of inline storage; `4 * 16 = 64` bits covers every narrow port.
const INLINE_WORDS: usize = 4;
/// Widths up to this stay heap-free.
const INLINE_BITS: usize = INLINE_WORDS * NIBS_PER_WORD;
/// `1` in every nibble.
const REP_1: u64 = 0x1111_1111_1111_1111;
/// `2` (`Logic::Zero`) in every nibble.
const REP_2: u64 = 0x2222_2222_2222_2222;
/// `0b1010` in every nibble: the "defined" test mask.
const REP_A: u64 = 0xAAAA_AAAA_AAAA_AAAA;

/// Spreads the 16 bits of `v` into the nibble LSBs of a word
/// (bit `i` → bit `4 * i`).
const fn spread16(v: u16) -> u64 {
    let mut x = v as u64;
    x = (x | (x << 24)) & 0x0000_00FF_0000_00FF;
    x = (x | (x << 12)) & 0x000F_000F_000F_000F;
    x = (x | (x << 6)) & 0x0303_0303_0303_0303;
    x = (x | (x << 3)) & 0x1111_1111_1111_1111;
    x
}

/// Inverse of [`spread16`]: gathers nibble LSBs into 16 contiguous bits.
const fn compress16(x: u64) -> u16 {
    let mut x = x & 0x1111_1111_1111_1111;
    x = (x | (x >> 3)) & 0x0303_0303_0303_0303;
    x = (x | (x >> 6)) & 0x000F_000F_000F_000F;
    x = (x | (x >> 12)) & 0x0000_00FF_0000_00FF;
    x = (x | (x >> 24)) & 0xFFFF;
    x as u16
}

const fn resolve_nibble(a: u8, b: u8) -> u8 {
    let a = if a > 8 { 8 } else { a } as usize;
    let b = if b > 8 { 8 } else { b } as usize;
    RESOLUTION[a][b] as u8
}

// The "local" array only exists during compile-time evaluation; at run
// time the table is a static.
#[allow(clippy::large_stack_arrays)]
const fn build_res_byte() -> [[u8; 256]; 256] {
    let mut table = [[0u8; 256]; 256];
    let mut a = 0;
    while a < 256 {
        let mut b = 0;
        while b < 256 {
            let lo = resolve_nibble((a & 0xF) as u8, (b & 0xF) as u8);
            let hi = resolve_nibble((a >> 4) as u8, (b >> 4) as u8);
            table[a][b] = lo | (hi << 4);
            b += 1;
        }
        a += 1;
    }
    table
}

/// IEEE 1164 resolution expanded to byte pairs: resolves two packed
/// nibbles per lookup, eight lookups per word.
static RES_BYTE: [[u8; 256]; 256] = build_res_byte();

/// Resolves two packed words nibble-wise via [`RES_BYTE`].
#[inline]
fn resolve_word(a: u64, b: u64) -> u64 {
    let mut out = 0u64;
    let mut shift = 0;
    while shift < 64 {
        let ab = ((a >> shift) & 0xFF) as usize;
        let bb = ((b >> shift) & 0xFF) as usize;
        out |= u64::from(RES_BYTE[ab][bb]) << shift;
        shift += 8;
    }
    out
}

/// Backing storage: inline words for narrow vectors, heap for wide ones.
/// The variant is a function of the width alone (≤ 64 bits ⇒ inline), so
/// equality never has to compare across variants.
#[derive(Clone)]
enum Words {
    Inline([u64; INLINE_WORDS]),
    Heap(Vec<u64>),
}

/// A fixed-width vector of [`Logic`] values, LSB at index 0
/// (`(N-1 DOWNTO 0)` in VHDL terms).
///
/// # Examples
///
/// ```
/// use castanet_rtl::vector::LogicVector;
///
/// let v = LogicVector::from_u64(0xA5, 8);
/// assert_eq!(v.to_u64(), Some(0xA5));
/// assert_eq!(v.to_string(), "10100101");
/// ```
#[derive(Clone)]
pub struct LogicVector {
    len: u32,
    words: Words,
}

impl LogicVector {
    /// Packed words backing a vector of `width` bits.
    #[inline]
    fn word_count(width: usize) -> usize {
        width.div_ceil(NIBS_PER_WORD)
    }

    /// Mask of the nibbles actually used in the *last* backing word.
    #[inline]
    fn used_mask(width: usize) -> u64 {
        let rem = width % NIBS_PER_WORD;
        if rem == 0 {
            u64::MAX
        } else {
            (1u64 << (4 * rem)) - 1
        }
    }

    /// All-`U` vector (every nibble zero).
    fn new_zeroed(width: usize) -> Self {
        assert!(width > 0, "logic vector width must be non-zero");
        let len = u32::try_from(width).expect("logic vector width exceeds u32::MAX");
        let words = if width <= INLINE_BITS {
            Words::Inline([0; INLINE_WORDS])
        } else {
            Words::Heap(vec![0; Self::word_count(width)])
        };
        LogicVector { len, words }
    }

    /// The used backing words (trailing nibbles of the last one are zero).
    #[inline]
    fn words(&self) -> &[u64] {
        let n = Self::word_count(self.len as usize);
        match &self.words {
            Words::Inline(a) => &a[..n],
            Words::Heap(v) => &v[..n],
        }
    }

    #[inline]
    fn words_mut(&mut self) -> &mut [u64] {
        let n = Self::word_count(self.len as usize);
        match &mut self.words {
            Words::Inline(a) => &mut a[..n],
            Words::Heap(v) => &mut v[..n],
        }
    }

    /// A vector of `width` uninitialized (`U`) bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    #[must_use]
    pub fn uninitialized(width: usize) -> Self {
        Self::new_zeroed(width)
    }

    /// A vector of `width` bits, all `value`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    #[must_use]
    pub fn filled(value: Logic, width: usize) -> Self {
        let mut v = Self::new_zeroed(width);
        let pattern = (value as u64) * REP_1;
        let mask = Self::used_mask(width);
        let words = v.words_mut();
        let last = words.len() - 1;
        for (i, w) in words.iter_mut().enumerate() {
            *w = if i == last { pattern & mask } else { pattern };
        }
        v
    }

    /// A vector of `width` high-impedance bits (released bus).
    #[must_use]
    pub fn high_z(width: usize) -> Self {
        Self::filled(Logic::Z, width)
    }

    /// Encodes the low `width` bits of `value` (LSB at index 0).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero, exceeds 64, or `value` does not fit.
    #[must_use]
    pub fn from_u64(value: u64, width: usize) -> Self {
        assert!(
            (1..=64).contains(&width),
            "width must be 1..=64, got {width}"
        );
        assert!(
            width == 64 || value < (1u64 << width),
            "value {value:#x} does not fit in {width} bits"
        );
        let mut words = [0u64; INLINE_WORDS];
        let n = Self::word_count(width);
        for (i, w) in words.iter_mut().enumerate().take(n) {
            let chunk = ((value >> (i * NIBS_PER_WORD)) & 0xFFFF) as u16;
            // 0-bit → nibble 2 (`Zero`), 1-bit → nibble 3 (`One`).
            *w = REP_2 | spread16(chunk);
        }
        words[n - 1] &= Self::used_mask(width);
        LogicVector {
            len: width as u32,
            words: Words::Inline(words),
        }
    }

    /// Builds a vector from bits, LSB first.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    #[must_use]
    pub fn from_bits(bits: &[Logic]) -> Self {
        assert!(!bits.is_empty(), "logic vector width must be non-zero");
        let mut v = Self::new_zeroed(bits.len());
        let words = v.words_mut();
        for (i, &b) in bits.iter().enumerate() {
            words[i / NIBS_PER_WORD] |= (b as u64) << ((i % NIBS_PER_WORD) * 4);
        }
        v
    }

    /// Width in bits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.len as usize
    }

    /// Bit `index` (0 = LSB).
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    #[must_use]
    pub fn bit(&self, index: usize) -> Logic {
        assert!(
            index < self.len as usize,
            "bit index {index} out of range for width {}",
            self.len
        );
        let word = self.words()[index / NIBS_PER_WORD];
        Logic::from_nibble(((word >> ((index % NIBS_PER_WORD) * 4)) & 0xF) as u8)
    }

    /// Sets bit `index` (0 = LSB).
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn set_bit(&mut self, index: usize, value: Logic) {
        assert!(
            index < self.len as usize,
            "bit index {index} out of range for width {}",
            self.len
        );
        let shift = (index % NIBS_PER_WORD) * 4;
        let word = &mut self.words_mut()[index / NIBS_PER_WORD];
        *word = (*word & !(0xF << shift)) | ((value as u64) << shift);
    }

    /// Iterates the bits, LSB first.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = Logic> + ExactSizeIterator + '_ {
        (0..self.len as usize).map(move |i| self.bit(i))
    }

    /// The bits as a fresh vector, LSB first (unpacks the storage).
    #[must_use]
    pub fn to_bits(&self) -> Vec<Logic> {
        self.iter().collect()
    }

    /// Unsigned integer reading; `None` when any bit lacks a binary value or
    /// the width exceeds 64.
    #[must_use]
    pub fn to_u64(&self) -> Option<u64> {
        let width = self.len as usize;
        if width > 64 {
            return None;
        }
        let words = self.words();
        let last = words.len() - 1;
        let mut out = 0u64;
        for (i, &w) in words.iter().enumerate() {
            let mask = if i == last {
                Self::used_mask(width)
            } else {
                u64::MAX
            };
            if w & REP_A != REP_2 & mask {
                return None;
            }
            out |= u64::from(compress16(w & REP_1)) << (i * NIBS_PER_WORD);
        }
        Some(out)
    }

    /// `true` when every bit has a defined binary value.
    #[must_use]
    pub fn is_fully_defined(&self) -> bool {
        let words = self.words();
        let last = words.len() - 1;
        words.iter().enumerate().all(|(i, &w)| {
            let mask = if i == last {
                Self::used_mask(self.len as usize)
            } else {
                u64::MAX
            };
            w & REP_A == REP_2 & mask
        })
    }

    /// Bit slice `[lo, lo+width)` as a new vector (VHDL
    /// `v(lo+width-1 DOWNTO lo)`).
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds or `width` is zero.
    #[must_use]
    pub fn slice(&self, lo: usize, width: usize) -> LogicVector {
        assert!(width > 0, "slice width must be non-zero");
        assert!(lo + width <= self.len as usize, "slice out of range");
        let mut out = Self::new_zeroed(width);
        let src = self.words();
        let word_off = lo / NIBS_PER_WORD;
        let shift = (lo % NIBS_PER_WORD) * 4;
        let mask = Self::used_mask(width);
        let dst = out.words_mut();
        for (j, w) in dst.iter_mut().enumerate() {
            let mut v = src[word_off + j] >> shift;
            if shift != 0 {
                if let Some(&hi) = src.get(word_off + j + 1) {
                    v |= hi << (64 - shift);
                }
            }
            *w = v;
        }
        if let Some(last) = dst.last_mut() {
            *last &= mask;
        }
        out
    }

    /// Concatenates `high & self` (the VHDL `&` with `high` in the upper
    /// bits).
    #[must_use]
    pub fn concat_high(&self, high: &LogicVector) -> LogicVector {
        let low_width = self.len as usize;
        let total = low_width + high.len as usize;
        let mut out = Self::new_zeroed(total);
        let dst = out.words_mut();
        let low_words = self.words();
        dst[..low_words.len()].copy_from_slice(low_words);
        let word_off = low_width / NIBS_PER_WORD;
        let shift = (low_width % NIBS_PER_WORD) * 4;
        for (j, &hw) in high.words().iter().enumerate() {
            dst[word_off + j] |= hw << shift;
            if shift != 0 && word_off + j + 1 < dst.len() {
                dst[word_off + j + 1] |= hw >> (64 - shift);
            }
        }
        out
    }

    /// Element-wise resolution with another equal-width vector.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[must_use]
    pub fn resolve(&self, other: &LogicVector) -> LogicVector {
        let mut out = self.clone();
        out.resolve_assign(other);
        out
    }

    /// In-place element-wise resolution: `self = resolve(self, other)`.
    /// The allocation-free form the signal driver loop uses.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn resolve_assign(&mut self, other: &LogicVector) {
        assert_eq!(self.len, other.len, "resolution width mismatch");
        let theirs = other.words();
        for (w, &o) in self.words_mut().iter_mut().zip(theirs) {
            *w = resolve_word(*w, o);
        }
    }
}

impl PartialEq for LogicVector {
    fn eq(&self, other: &Self) -> bool {
        // Trailing nibbles are zero by invariant, so word equality is
        // exact bit equality.
        self.len == other.len && self.words() == other.words()
    }
}

impl Eq for LogicVector {}

impl Hash for LogicVector {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.len.hash(state);
        self.words().hash(state);
    }
}

impl fmt::Debug for LogicVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LogicVector(\"{self}\")")
    }
}

impl fmt::Display for LogicVector {
    /// MSB-first character form, as VHDL literals are written.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.iter().rev() {
            write!(f, "{}", b.to_char())?;
        }
        Ok(())
    }
}

impl From<Logic> for LogicVector {
    fn from(l: Logic) -> Self {
        let mut v = LogicVector::new_zeroed(1);
        v.set_bit(0, l);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip() {
        for (v, w) in [(0u64, 1), (1, 1), (0xFF, 8), (0x1234, 16), (u64::MAX, 64)] {
            let lv = LogicVector::from_u64(v, w);
            assert_eq!(lv.width(), w);
            assert_eq!(lv.to_u64(), Some(v), "value {v:#x} width {w}");
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_value_panics() {
        let _ = LogicVector::from_u64(256, 8);
    }

    #[test]
    fn undefined_bits_block_integer_reading() {
        let mut v = LogicVector::from_u64(5, 4);
        assert!(v.is_fully_defined());
        v.set_bit(2, Logic::Z);
        assert!(!v.is_fully_defined());
        assert_eq!(v.to_u64(), None);
    }

    #[test]
    fn weak_values_still_read_as_integers() {
        let v = LogicVector::from_bits(&[Logic::H, Logic::L, Logic::H]);
        assert_eq!(v.to_u64(), Some(0b101));
    }

    #[test]
    fn display_is_msb_first() {
        assert_eq!(LogicVector::from_u64(0b0110, 4).to_string(), "0110");
        assert_eq!(LogicVector::high_z(3).to_string(), "ZZZ");
        assert_eq!(LogicVector::uninitialized(2).to_string(), "UU");
    }

    #[test]
    fn slicing_matches_vhdl_downto() {
        // v = "10100101" (0xA5). v(7 downto 4) = "1010".
        let v = LogicVector::from_u64(0xA5, 8);
        assert_eq!(v.slice(4, 4).to_u64(), Some(0xA));
        assert_eq!(v.slice(0, 4).to_u64(), Some(0x5));
        assert_eq!(v.slice(0, 8), v);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_slice_panics() {
        let _ = LogicVector::from_u64(0, 4).slice(2, 4);
    }

    #[test]
    fn concat_orders_bits() {
        let low = LogicVector::from_u64(0x5, 4);
        let high = LogicVector::from_u64(0xA, 4);
        assert_eq!(low.concat_high(&high).to_u64(), Some(0xA5));
    }

    #[test]
    fn elementwise_resolution() {
        let a = LogicVector::from_bits(&[Logic::Z, Logic::One, Logic::Zero]);
        let b = LogicVector::from_bits(&[Logic::Zero, Logic::Z, Logic::One]);
        let r = a.resolve(&b);
        assert_eq!(r.to_bits(), vec![Logic::Zero, Logic::One, Logic::X]);
    }

    #[test]
    fn scalar_conversion() {
        let v: LogicVector = Logic::One.into();
        assert_eq!(v.width(), 1);
        assert_eq!(v.to_u64(), Some(1));
    }

    #[test]
    fn bit_accessors() {
        let mut v = LogicVector::high_z(2);
        v.set_bit(1, Logic::One);
        assert_eq!(v.bit(1), Logic::One);
        assert_eq!(v.bit(0), Logic::Z);
    }

    #[test]
    fn wide_vectors_cross_the_inline_boundary() {
        // 65+ bits take the heap path; exercise every op across words.
        let mut v = LogicVector::uninitialized(130);
        assert_eq!(v.width(), 130);
        assert!(!v.is_fully_defined());
        assert_eq!(v.to_u64(), None);
        for i in 0..130 {
            v.set_bit(i, if i % 3 == 0 { Logic::One } else { Logic::Zero });
        }
        assert!(v.is_fully_defined());
        assert_eq!(v.bit(129), Logic::One);
        assert_eq!(v.slice(63, 4).to_u64(), Some(0b1001));
        let lo = v.slice(0, 64);
        let hi = v.slice(64, 66);
        assert_eq!(lo.concat_high(&hi), v);
    }

    #[test]
    fn packed_encoding_survives_every_value_and_alignment() {
        for &value in &Logic::ALL {
            for width in [1usize, 15, 16, 17, 64] {
                let v = LogicVector::filled(value, width);
                for i in 0..width {
                    assert_eq!(v.bit(i), value, "{value:?} at bit {i} width {width}");
                }
                assert_eq!(v, LogicVector::from_bits(&vec![value; width]));
            }
        }
    }
}
