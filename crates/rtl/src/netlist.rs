//! Netlist introspection: the signal-level dataflow graph of an elaborated
//! design, and the structural analyses that run on it.
//!
//! Every [`crate::sim::Simulator::add_process`] /
//! [`crate::sim::Simulator::add_process_rising`] registration records the
//! process's sensitivity list together with the structural self-description
//! the process volunteers through [`crate::sim::RtlProcess::io`]: its read
//! set, write set and kind (combinational, clocked or generator).
//! [`crate::sim::Simulator::netlist`] assembles those records into a
//! [`NetlistGraph`] of signal→process→signal edges, tagged with clock/reset
//! domains, external pin marks and gated-clock busy links.
//!
//! Two consumers build on the graph:
//!
//! * [`NetlistGraph::analyze`] — the structural lint checks behind the
//!   `CAST1xx` diagnostic family: combinational loops (SCC over the
//!   zero-delay subgraph), multi-driver conflicts, sensitivity-list
//!   completeness, dead/undriven signals and gated-clock feedback hazards.
//!   A DUT with any of these defects simulates *differently* from its
//!   synthesized netlist — the sim/synth mismatch the co-verification flow
//!   must rule out before system-level simulation starts.
//! * [`NetlistGraph::levelize`] — the topo-ordered combinational schedule
//!   (levels, cone widths, fanout) that a compiled bit-parallel backend
//!   evaluates level by level instead of event by event.
//!
//! Processes that do not implement [`crate::sim::RtlProcess::io`] are
//! *opaque*: the analyses skip them (no false findings from guessed read
//! sets) and the levelization reports them separately, so coverage gaps are
//! visible instead of silent.

use crate::signal::{ProcId, SignalId};
use std::collections::HashMap;
use std::fmt;

/// What kind of behaviour a process implements, for dataflow purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcessKind {
    /// Zero-delay logic: an event on any read input re-evaluates the
    /// outputs within the same delta cycle. These processes form the
    /// combinational subgraph that must be loop-free and levelizable.
    Combinational,
    /// Edge-triggered logic: state changes only on rising edges of the
    /// given clock. Clocked writes break combinational cycles.
    Clocked {
        /// The clock whose rising edge triggers the process.
        clock: SignalId,
    },
    /// Self-scheduling stimulus (clock generators, test drivers): wakes on
    /// its own timer rather than on input events.
    Generator,
}

/// A process's structural self-description: what it reads, what it writes,
/// and how (see [`ProcessKind`]). Returned by
/// [`crate::sim::RtlProcess::io`] and recorded at registration time.
#[derive(Debug, Clone)]
pub struct ProcessIo {
    /// Human-readable label used in reports (`proc#N` when empty).
    pub name: String,
    /// Dataflow kind.
    pub kind: ProcessKind,
    /// Synchronous reset input, when the process has one (clocked kinds
    /// only; used for reset-domain tagging).
    pub reset: Option<SignalId>,
    /// Every signal the process reads while running.
    pub reads: Vec<SignalId>,
    /// Every signal the process assigns.
    pub writes: Vec<SignalId>,
}

impl ProcessIo {
    /// Describes a combinational process.
    #[must_use]
    pub fn combinational(name: impl Into<String>) -> Self {
        ProcessIo {
            name: name.into(),
            kind: ProcessKind::Combinational,
            reset: None,
            reads: Vec::new(),
            writes: Vec::new(),
        }
    }

    /// Describes a clocked process triggered by `clock`.
    #[must_use]
    pub fn clocked(name: impl Into<String>, clock: SignalId) -> Self {
        ProcessIo {
            name: name.into(),
            kind: ProcessKind::Clocked { clock },
            reset: None,
            reads: Vec::new(),
            writes: Vec::new(),
        }
    }

    /// Describes a self-scheduling generator process.
    #[must_use]
    pub fn generator(name: impl Into<String>) -> Self {
        ProcessIo {
            name: name.into(),
            kind: ProcessKind::Generator,
            reset: None,
            reads: Vec::new(),
            writes: Vec::new(),
        }
    }

    /// Tags the synchronous reset input.
    #[must_use]
    pub fn with_reset(mut self, reset: SignalId) -> Self {
        self.reset = Some(reset);
        self
    }

    /// Adds read-set entries.
    #[must_use]
    pub fn reads(mut self, signals: impl IntoIterator<Item = SignalId>) -> Self {
        self.reads.extend(signals);
        self
    }

    /// Adds write-set entries.
    #[must_use]
    pub fn writes(mut self, signals: impl IntoIterator<Item = SignalId>) -> Self {
        self.writes.extend(signals);
        self
    }
}

/// A signal node of the netlist graph.
#[derive(Debug, Clone)]
pub struct NetSignal {
    /// Declared name.
    pub name: String,
    /// Width in bits.
    pub width: usize,
    /// Declared as an external input pin: driven by the test bench or
    /// co-simulation entity via pokes, so "no process drives it" is fine.
    pub external_input: bool,
    /// Declared as an external output pin: observed from outside the
    /// kernel, so "no process reads it" is fine.
    pub external_output: bool,
    /// Marked for waveform tracing.
    pub traced: bool,
    /// `Some` when the signal is the output of [`Simulator::add_clock`] or
    /// [`Simulator::add_gated_clock`].
    ///
    /// [`Simulator::add_clock`]: crate::sim::Simulator::add_clock
    /// [`Simulator::add_gated_clock`]: crate::sim::Simulator::add_gated_clock
    pub clock_root: bool,
}

/// A process node of the netlist graph.
#[derive(Debug, Clone)]
pub struct NetProcess {
    /// Any-edge sensitivity list (deduplicated, registration order).
    pub sensitivity_any: Vec<SignalId>,
    /// Rising-edge-only sensitivity list.
    pub sensitivity_rising: Vec<SignalId>,
    /// Structural self-description; `None` for opaque processes.
    pub io: Option<ProcessIo>,
}

impl NetProcess {
    /// Report label: the declared name, or `proc#N` for opaque processes.
    #[must_use]
    pub fn label(&self, index: usize) -> String {
        match &self.io {
            Some(io) if !io.name.is_empty() => io.name.clone(),
            _ => format!("proc#{index}"),
        }
    }

    /// `true` when the process declared no [`ProcessIo`].
    #[must_use]
    pub fn is_opaque(&self) -> bool {
        self.io.is_none()
    }

    /// The union of both sensitivity lists.
    fn wake_set(&self) -> impl Iterator<Item = SignalId> + '_ {
        self.sensitivity_any
            .iter()
            .chain(self.sensitivity_rising.iter())
            .copied()
    }
}

/// A gated clock and the busy signal that controls it (one entry per
/// [`Simulator::add_gated_clock`]).
///
/// [`Simulator::add_gated_clock`]: crate::sim::Simulator::add_gated_clock
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatedClockLink {
    /// The generated clock signal.
    pub clk: SignalId,
    /// The 1-bit busy request line the generator samples.
    pub busy: SignalId,
}

/// How serious a structural finding is. Mirrors the lint crate's severity
/// scale without depending on it, so the core preflight can filter the
/// error subset natively.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StructuralSeverity {
    /// The netlist will misbehave at run time (delta runaway, resolution
    /// fight, sim/synth mismatch).
    Error,
    /// Suspicious structure that risks silent divergence.
    Warning,
    /// Advisory only.
    Info,
}

/// One step of a reported combinational cycle: the process and the signal
/// it drives onward.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopStep {
    /// The process on the cycle.
    pub process: ProcId,
    /// The signal it writes that the next process on the cycle reads.
    pub via: SignalId,
}

/// One finding of [`NetlistGraph::analyze`]. The lint crate maps each
/// variant to a stable `CAST1xx` diagnostic code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StructuralFinding {
    /// A cycle through zero-delay processes: the delta loop never settles
    /// (the kernel aborts with `DeltaRunaway`) and synthesis would reject
    /// or mis-build it. `cycle` walks the loop once, in order.
    CombinationalLoop {
        /// The processes on the cycle, each with its onward signal.
        cycle: Vec<LoopStep>,
    },
    /// Two or more combinational processes drive the same signal: every
    /// settling re-runs the resolution table and any disagreement poisons
    /// the value to `X`.
    MultiDriverConflict {
        /// The contested signal.
        signal: SignalId,
        /// All combinational drivers.
        drivers: Vec<ProcId>,
    },
    /// Two or more clocked processes in the *same* clock domain write the
    /// same signal: on a shared edge both contributions land in one delta
    /// cycle and the resolved value depends on driver resolution, not on
    /// program order — a write-after-write race.
    SameEdgeWriteRace {
        /// The contested signal.
        signal: SignalId,
        /// The same-domain clocked drivers.
        drivers: Vec<ProcId>,
        /// Their shared clock.
        clock: SignalId,
    },
    /// A combinational process reads a signal missing from its wake list:
    /// the simulator holds the stale output until some *other* listed
    /// signal changes, while the synthesized netlist updates immediately —
    /// the classic sim/synth mismatch.
    MissingSensitivity {
        /// The offending process.
        process: ProcId,
        /// The read-but-not-listed signal.
        signal: SignalId,
    },
    /// A clocked process's declared clock is absent from both sensitivity
    /// lists: the process can never be woken by its own clock.
    ClockNotInSensitivity {
        /// The offending process.
        process: ProcId,
        /// The declared clock.
        clock: SignalId,
    },
    /// A sensitivity entry the process never reads: each event is a
    /// spurious wake-up (pure simulation cost, no behaviour change).
    UnreadSensitivity {
        /// The over-subscribed process.
        process: ProcId,
        /// The listed-but-unread signal.
        signal: SignalId,
    },
    /// A signal some process writes but nothing reads, wakes on, traces or
    /// observes externally: dead logic.
    DeadSignal {
        /// The unobserved signal.
        signal: SignalId,
    },
    /// A signal some process reads but nothing drives — not a process, not
    /// an external input pin: it stays `U`/`X` forever.
    UndrivenSignal {
        /// The undriven signal.
        signal: SignalId,
        /// One of its readers.
        reader: ProcId,
    },
    /// A gated clock's busy line is combinationally derived from a signal
    /// registered in the domain of that same gated clock: once the clock
    /// parks, the only logic that could raise busy again is itself waiting
    /// for a clock edge — a feedback deadlock hazard.
    GatedBusyFeedback {
        /// The gated clock.
        clock: SignalId,
        /// Its busy line.
        busy: SignalId,
        /// The domain-registered signal busy combinationally depends on.
        origin: SignalId,
    },
    /// A gated clock's busy line has no driver at all (and is not an
    /// external input): the clock parks at elaboration and never starts.
    GatedBusyUndriven {
        /// The gated clock.
        clock: SignalId,
        /// Its undriven busy line.
        busy: SignalId,
    },
}

impl StructuralFinding {
    /// The finding's severity.
    #[must_use]
    pub fn severity(&self) -> StructuralSeverity {
        match self {
            StructuralFinding::CombinationalLoop { .. }
            | StructuralFinding::MultiDriverConflict { .. }
            | StructuralFinding::MissingSensitivity { .. }
            | StructuralFinding::ClockNotInSensitivity { .. }
            | StructuralFinding::GatedBusyFeedback { .. }
            | StructuralFinding::GatedBusyUndriven { .. } => StructuralSeverity::Error,
            StructuralFinding::SameEdgeWriteRace { .. }
            | StructuralFinding::DeadSignal { .. }
            | StructuralFinding::UndrivenSignal { .. } => StructuralSeverity::Warning,
            StructuralFinding::UnreadSensitivity { .. } => StructuralSeverity::Info,
        }
    }
}

/// The levelized combinational schedule of a loop-free netlist.
#[derive(Debug, Clone)]
pub struct Levelization {
    /// Combinational processes per level: level 0 reads only sequential,
    /// generator-driven or external signals; level `k` reads at least one
    /// signal driven at level `k-1`.
    pub levels: Vec<Vec<ProcId>>,
    /// Clocked processes (evaluated once per clock edge, after the
    /// combinational settle).
    pub clocked: Vec<ProcId>,
    /// Generator processes (self-scheduled stimulus).
    pub generators: Vec<ProcId>,
    /// Opaque processes the schedule cannot place.
    pub opaque: Vec<ProcId>,
}

/// Per-level statistics of a [`Levelization`], for the report.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelStats {
    /// Level index.
    pub level: usize,
    /// Processes evaluated at this level.
    pub processes: usize,
    /// Total width (bits) of all signals written at this level — the
    /// cone width a bit-parallel backend evaluates per lane.
    pub cone_bits: usize,
    /// Highest reader fan-out of any signal written at this level.
    pub max_fanout: usize,
    /// Mean reader fan-out across signals written at this level.
    pub mean_fanout: f64,
}

impl Levelization {
    /// Number of combinational processes covered by the schedule.
    #[must_use]
    pub fn combinational_count(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }
}

/// The signal-level dataflow graph of an elaborated design. Built by
/// [`crate::sim::Simulator::netlist`].
#[derive(Debug, Clone)]
pub struct NetlistGraph {
    /// Signal nodes, indexed by [`SignalId::index`].
    pub signals: Vec<NetSignal>,
    /// Process nodes, indexed by process id.
    pub processes: Vec<NetProcess>,
    /// Gated-clock control links.
    pub gated_clocks: Vec<GatedClockLink>,
    /// Process drivers of each signal (from declared write sets).
    drivers: Vec<Vec<ProcId>>,
    /// Process readers of each signal (from declared read sets).
    readers: Vec<Vec<ProcId>>,
}

impl NetlistGraph {
    /// Assembles the graph from raw node tables. Prefer
    /// [`crate::sim::Simulator::netlist`].
    #[must_use]
    pub fn new(
        signals: Vec<NetSignal>,
        processes: Vec<NetProcess>,
        gated_clocks: Vec<GatedClockLink>,
    ) -> Self {
        let mut drivers = vec![Vec::new(); signals.len()];
        let mut readers = vec![Vec::new(); signals.len()];
        for (idx, p) in processes.iter().enumerate() {
            if let Some(io) = &p.io {
                for &s in &io.writes {
                    let slot: &mut Vec<ProcId> = &mut drivers[s.index()];
                    if !slot.contains(&ProcId(idx)) {
                        slot.push(ProcId(idx));
                    }
                }
                for &s in &io.reads {
                    let slot: &mut Vec<ProcId> = &mut readers[s.index()];
                    if !slot.contains(&ProcId(idx)) {
                        slot.push(ProcId(idx));
                    }
                }
            }
        }
        NetlistGraph {
            signals,
            processes,
            gated_clocks,
            drivers,
            readers,
        }
    }

    /// Processes whose declared write set contains `signal`.
    #[must_use]
    pub fn drivers(&self, signal: SignalId) -> &[ProcId] {
        &self.drivers[signal.index()]
    }

    /// Processes whose declared read set contains `signal`.
    #[must_use]
    pub fn readers(&self, signal: SignalId) -> &[ProcId] {
        &self.readers[signal.index()]
    }

    /// The clock domain of `signal`: the clock of its clocked driver, when
    /// it has exactly one such domain. Signals written by combinational
    /// logic inherit the domain transitively only if forced; this tag is
    /// the *direct* one.
    #[must_use]
    pub fn domain(&self, signal: SignalId) -> Option<SignalId> {
        let mut domain = None;
        for &p in self.drivers(signal) {
            if let Some(ProcessIo {
                kind: ProcessKind::Clocked { clock },
                ..
            }) = self.processes[p.0].io
            {
                match domain {
                    None => domain = Some(clock),
                    Some(d) if d == clock => {}
                    Some(_) => return None, // multi-domain: no single tag
                }
            }
        }
        domain
    }

    /// The reset domain of `signal`: the reset of its clocked driver, when
    /// unique.
    #[must_use]
    pub fn reset_domain(&self, signal: SignalId) -> Option<SignalId> {
        let mut domain = None;
        for &p in self.drivers(signal) {
            if let Some(io) = &self.processes[p.0].io {
                if let (ProcessKind::Clocked { .. }, Some(rst)) = (io.kind, io.reset) {
                    match domain {
                        None => domain = Some(rst),
                        Some(d) if d == rst => {}
                        Some(_) => return None,
                    }
                }
            }
        }
        domain
    }

    fn kind(&self, p: ProcId) -> Option<ProcessKind> {
        self.processes[p.0].io.as_ref().map(|io| io.kind)
    }

    fn is_comb(&self, p: ProcId) -> bool {
        self.kind(p) == Some(ProcessKind::Combinational)
    }

    /// Zero-delay successor processes of `p`: combinational readers of the
    /// signals `p` writes.
    fn comb_successors(&self, p: ProcId) -> Vec<(ProcId, SignalId)> {
        let mut out = Vec::new();
        if let Some(io) = &self.processes[p.0].io {
            for &s in &io.writes {
                for &q in self.readers(s) {
                    if self.is_comb(q) && !out.contains(&(q, s)) {
                        out.push((q, s));
                    }
                }
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Combinational loops (SCC over the zero-delay subgraph)
    // ------------------------------------------------------------------

    /// Finds every combinational cycle: strongly connected components of
    /// the zero-delay process graph with more than one node, plus genuine
    /// self-loops. Each returned cycle walks the loop once in order.
    #[must_use]
    pub fn combinational_loops(&self) -> Vec<Vec<LoopStep>> {
        let sccs = self.comb_sccs();
        let mut loops = Vec::new();
        for scc in sccs {
            if scc.len() == 1 {
                let p = scc[0];
                // Self-loop: p reads a signal it also writes.
                let Some(io) = &self.processes[p.0].io else {
                    continue;
                };
                if let Some(&via) = io.writes.iter().find(|w| io.reads.contains(w)) {
                    loops.push(vec![LoopStep { process: p, via }]);
                }
            } else {
                loops.push(self.extract_cycle(&scc));
            }
        }
        loops
    }

    /// Tarjan's algorithm (iterative) over combinational processes.
    fn comb_sccs(&self) -> Vec<Vec<ProcId>> {
        let n = self.processes.len();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut sccs = Vec::new();

        // Explicit DFS state: (node, successor iterator position).
        for start in 0..n {
            if !self.is_comb(ProcId(start)) || index[start] != usize::MAX {
                continue;
            }
            let mut dfs: Vec<(usize, usize, Vec<usize>)> = Vec::new();
            let succs: Vec<usize> = self
                .comb_successors(ProcId(start))
                .into_iter()
                .map(|(q, _)| q.0)
                .collect();
            index[start] = next_index;
            low[start] = next_index;
            next_index += 1;
            stack.push(start);
            on_stack[start] = true;
            dfs.push((start, 0, succs));
            while let Some((v, i, succs)) = dfs.last_mut() {
                if let Some(&w) = succs.get(*i) {
                    *i += 1;
                    if index[w] == usize::MAX {
                        let v_copy = *v;
                        let w_succs: Vec<usize> = self
                            .comb_successors(ProcId(w))
                            .into_iter()
                            .map(|(q, _)| q.0)
                            .collect();
                        index[w] = next_index;
                        low[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        dfs.push((w, 0, w_succs));
                        let _ = v_copy;
                    } else if on_stack[w] {
                        let v = *v;
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    let (v, _, _) = dfs.pop().expect("frame");
                    if let Some(&(parent, _, _)) = dfs.last() {
                        low[parent] = low[parent].min(low[v]);
                    }
                    if low[v] == index[v] {
                        let mut scc = Vec::new();
                        loop {
                            let w = stack.pop().expect("scc stack");
                            on_stack[w] = false;
                            scc.push(ProcId(w));
                            if w == v {
                                break;
                            }
                        }
                        scc.sort_by_key(|p| p.0);
                        sccs.push(scc);
                    }
                }
            }
        }
        sccs
    }

    /// Walks one actual cycle inside a multi-node SCC, returning it in
    /// traversal order starting from the lowest-numbered process.
    fn extract_cycle(&self, scc: &[ProcId]) -> Vec<LoopStep> {
        let in_scc = |p: ProcId| scc.contains(&p);
        let start = scc[0];
        // DFS restricted to the SCC until we come back to `start`.
        let mut path: Vec<LoopStep> = Vec::new();
        let mut visited: Vec<ProcId> = vec![start];
        let mut current = start;
        'walk: loop {
            for (q, via) in self.comb_successors(current) {
                if !in_scc(q) {
                    continue;
                }
                if q == start {
                    path.push(LoopStep {
                        process: current,
                        via,
                    });
                    return path;
                }
                if !visited.contains(&q) {
                    visited.push(q);
                    path.push(LoopStep {
                        process: current,
                        via,
                    });
                    current = q;
                    continue 'walk;
                }
            }
            // Dead end inside the SCC (can't happen in a true SCC, but
            // don't loop forever on a malformed graph): back out.
            match path.pop() {
                Some(step) => current = step.process,
                None => return vec![],
            }
        }
    }

    // ------------------------------------------------------------------
    // Structural checks
    // ------------------------------------------------------------------

    /// Runs every structural check and returns all findings. Opaque
    /// processes are skipped (their reads/writes are unknown), except that
    /// their sensitivity lists still count as "reads" for dead-signal
    /// purposes.
    #[must_use]
    pub fn analyze(&self) -> Vec<StructuralFinding> {
        let mut findings = Vec::new();

        // CAST100 — combinational loops.
        for cycle in self.combinational_loops() {
            findings.push(StructuralFinding::CombinationalLoop { cycle });
        }

        // CAST110/111 — multi-driver conflicts and same-edge write races.
        for (idx, procs) in self.drivers.iter().enumerate() {
            if procs.len() < 2 {
                continue;
            }
            let signal = SignalId(idx);
            let comb: Vec<ProcId> = procs.iter().copied().filter(|&p| self.is_comb(p)).collect();
            if comb.len() >= 2 {
                findings.push(StructuralFinding::MultiDriverConflict {
                    signal,
                    drivers: comb,
                });
            }
            // Group clocked drivers by clock.
            let mut by_clock: HashMap<SignalId, Vec<ProcId>> = HashMap::new();
            for &p in procs {
                if let Some(ProcessKind::Clocked { clock }) = self.kind(p) {
                    by_clock.entry(clock).or_default().push(p);
                }
            }
            let mut races: Vec<(SignalId, Vec<ProcId>)> = by_clock
                .into_iter()
                .filter(|(_, ps)| ps.len() >= 2)
                .collect();
            races.sort_by_key(|(clk, _)| clk.index());
            for (clock, drivers) in races {
                findings.push(StructuralFinding::SameEdgeWriteRace {
                    signal,
                    drivers,
                    clock,
                });
            }
        }

        // CAST120/121/122 — sensitivity-list checks.
        for (idx, p) in self.processes.iter().enumerate() {
            let Some(io) = &p.io else { continue };
            let pid = ProcId(idx);
            match io.kind {
                ProcessKind::Combinational => {
                    for &r in &io.reads {
                        if !p.wake_set().any(|s| s == r) {
                            findings.push(StructuralFinding::MissingSensitivity {
                                process: pid,
                                signal: r,
                            });
                        }
                    }
                }
                ProcessKind::Clocked { clock } => {
                    if !p.wake_set().any(|s| s == clock) {
                        findings.push(StructuralFinding::ClockNotInSensitivity {
                            process: pid,
                            clock,
                        });
                    }
                }
                ProcessKind::Generator => {}
            }
            // Spurious wakes apply to all declared kinds: an entry that is
            // neither read nor the trigger clock costs wake-ups for free.
            // Clocked processes legitimately listen on input signals to
            // re-arm gated clocks, so only combinational processes are
            // held to the exact-match standard.
            if io.kind == ProcessKind::Combinational {
                for s in p.wake_set() {
                    if !io.reads.contains(&s) {
                        findings.push(StructuralFinding::UnreadSensitivity {
                            process: pid,
                            signal: s,
                        });
                    }
                }
            }
        }

        // CAST130/131 — dead and undriven signals. Opaque processes may
        // read anything, so a netlist containing any opaque process only
        // reports dead signals that are also absent from every sensitivity
        // list (the one observation channel opaque processes declare).
        let any_opaque = self.processes.iter().any(NetProcess::is_opaque);
        for (idx, sig) in self.signals.iter().enumerate() {
            let id = SignalId(idx);
            let written = !self.drivers[idx].is_empty();
            let read = !self.readers[idx].is_empty()
                || self.processes.iter().any(|p| p.wake_set().any(|s| s == id));
            if written
                && !read
                && !sig.external_output
                && !sig.traced
                && !sig.clock_root
                && !any_opaque
            {
                findings.push(StructuralFinding::DeadSignal { signal: id });
            }
            if !written && !sig.external_input && !sig.clock_root {
                if let Some(&reader) = self.readers[idx].first() {
                    findings.push(StructuralFinding::UndrivenSignal { signal: id, reader });
                }
            }
        }

        // CAST140/141 — gated-clock safety.
        for link in &self.gated_clocks {
            let busy_idx = link.busy.index();
            if self.drivers[busy_idx].is_empty() && !self.signals[busy_idx].external_input {
                findings.push(StructuralFinding::GatedBusyUndriven {
                    clock: link.clk,
                    busy: link.busy,
                });
                continue;
            }
            // Combinational ancestry of busy: walk back through comb
            // processes only. If any ancestor signal is registered in the
            // gated clock's own domain, the restart path is dead once the
            // clock parks.
            if let Some(origin) = self.comb_ancestor_in_domain(link.busy, link.clk) {
                findings.push(StructuralFinding::GatedBusyFeedback {
                    clock: link.clk,
                    busy: link.busy,
                    origin,
                });
            }
        }

        findings
    }

    /// Walks the combinational ancestry of `sig`; returns the first
    /// ancestor signal (possibly `sig`'s comb-driver input) that is written
    /// by a process clocked by `clock` — but only when the dependence runs
    /// through at least one combinational driver (a direct clocked write of
    /// `sig` itself is the safe, edge-aligned pattern).
    fn comb_ancestor_in_domain(&self, sig: SignalId, clock: SignalId) -> Option<SignalId> {
        let mut seen = vec![false; self.signals.len()];
        let mut frontier: Vec<SignalId> = Vec::new();
        seen[sig.index()] = true;
        // Seed: inputs of combinational drivers of `sig`.
        for &p in self.drivers(sig) {
            if !self.is_comb(p) {
                continue;
            }
            if let Some(io) = &self.processes[p.0].io {
                for &r in &io.reads {
                    if !seen[r.index()] {
                        seen[r.index()] = true;
                        frontier.push(r);
                    }
                }
            }
        }
        while let Some(s) = frontier.pop() {
            for &p in self.drivers(s) {
                match self.kind(p) {
                    Some(ProcessKind::Clocked { clock: c }) if c == clock => {
                        return Some(s);
                    }
                    Some(ProcessKind::Combinational) => {
                        if let Some(io) = &self.processes[p.0].io {
                            for &r in &io.reads {
                                if !seen[r.index()] {
                                    seen[r.index()] = true;
                                    frontier.push(r);
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // Levelization
    // ------------------------------------------------------------------

    /// Topo-sorts the combinational processes into evaluation levels
    /// (Kahn's algorithm over the zero-delay subgraph). Clocked, generator
    /// and opaque processes are returned alongside, unlevelled.
    ///
    /// # Errors
    ///
    /// Returns the processes stuck on combinational cycles when the
    /// zero-delay subgraph is not a DAG.
    pub fn levelize(&self) -> Result<Levelization, Vec<ProcId>> {
        let n = self.processes.len();
        let mut clocked = Vec::new();
        let mut generators = Vec::new();
        let mut opaque = Vec::new();
        let mut comb = Vec::new();
        for idx in 0..n {
            let pid = ProcId(idx);
            match self.kind(pid) {
                Some(ProcessKind::Combinational) => comb.push(pid),
                Some(ProcessKind::Clocked { .. }) => clocked.push(pid),
                Some(ProcessKind::Generator) => generators.push(pid),
                None => opaque.push(pid),
            }
        }
        // In-degree: number of distinct comb predecessor processes.
        let mut indegree = vec![0usize; n];
        let mut preds_of: Vec<Vec<ProcId>> = vec![Vec::new(); n];
        for &p in &comb {
            for (q, _) in self.comb_successors(p) {
                if !preds_of[q.0].contains(&p) {
                    preds_of[q.0].push(p);
                    indegree[q.0] += 1;
                }
            }
        }
        let mut level_of = vec![0usize; n];
        let mut ready: Vec<ProcId> = comb
            .iter()
            .copied()
            .filter(|p| indegree[p.0] == 0)
            .collect();
        let mut placed = 0usize;
        let mut levels: Vec<Vec<ProcId>> = Vec::new();
        while !ready.is_empty() {
            let mut next_ready = Vec::new();
            for &p in &ready {
                let lvl = preds_of[p.0]
                    .iter()
                    .map(|q| level_of[q.0] + 1)
                    .max()
                    .unwrap_or(0);
                level_of[p.0] = lvl;
                if levels.len() <= lvl {
                    levels.resize(lvl + 1, Vec::new());
                }
                levels[lvl].push(p);
                placed += 1;
                for (q, _) in self.comb_successors(p) {
                    if q != p {
                        indegree[q.0] -= 1;
                        if indegree[q.0] == 0 {
                            next_ready.push(q);
                        }
                    }
                }
            }
            ready = next_ready;
        }
        if placed != comb.len() {
            let stuck: Vec<ProcId> = comb.iter().copied().filter(|p| indegree[p.0] > 0).collect();
            return Err(stuck);
        }
        Ok(Levelization {
            levels,
            clocked,
            generators,
            opaque,
        })
    }

    /// Per-level statistics of a levelization, for the report.
    #[must_use]
    pub fn level_stats(&self, lev: &Levelization) -> Vec<LevelStats> {
        lev.levels
            .iter()
            .enumerate()
            .map(|(i, procs)| {
                let mut cone_bits = 0usize;
                let mut fanouts: Vec<usize> = Vec::new();
                for &p in procs {
                    if let Some(io) = &self.processes[p.0].io {
                        for &w in &io.writes {
                            cone_bits += self.signals[w.index()].width;
                            fanouts.push(self.readers(w).len());
                        }
                    }
                }
                let max_fanout = fanouts.iter().copied().max().unwrap_or(0);
                let mean_fanout = if fanouts.is_empty() {
                    0.0
                } else {
                    fanouts.iter().sum::<usize>() as f64 / fanouts.len() as f64
                };
                LevelStats {
                    level: i,
                    processes: procs.len(),
                    cone_bits,
                    max_fanout,
                    mean_fanout,
                }
            })
            .collect()
    }

    /// Formats a finding for people, resolving ids to names. This is the
    /// text the core preflight and the lint pass both present.
    #[must_use]
    pub fn describe(&self, finding: &StructuralFinding) -> String {
        let sig = |s: SignalId| self.signals[s.index()].name.clone();
        let proc_ = |p: ProcId| self.processes[p.0].label(p.0);
        match finding {
            StructuralFinding::CombinationalLoop { cycle } => {
                let mut path = String::new();
                for step in cycle {
                    let _ = fmt::Write::write_fmt(
                        &mut path,
                        format_args!("{} -> {} -> ", proc_(step.process), sig(step.via)),
                    );
                }
                let back_to = cycle
                    .first()
                    .map_or_else(String::new, |s| proc_(s.process));
                format!("combinational loop: {path}{back_to} (zero-delay cycle never settles)")
            }
            StructuralFinding::MultiDriverConflict { signal, drivers } => {
                let names: Vec<String> = drivers.iter().map(|&p| proc_(p)).collect();
                format!(
                    "signal {} is driven by {} combinational processes ({}) — \
                     continuous resolution fight, X poisoning on any disagreement",
                    sig(*signal),
                    drivers.len(),
                    names.join(", ")
                )
            }
            StructuralFinding::SameEdgeWriteRace {
                signal,
                drivers,
                clock,
            } => {
                let names: Vec<String> = drivers.iter().map(|&p| proc_(p)).collect();
                format!(
                    "signal {} is written by {} processes ({}) clocked by the same {} edge — \
                     same-delta write-after-write race",
                    sig(*signal),
                    drivers.len(),
                    names.join(", "),
                    sig(*clock)
                )
            }
            StructuralFinding::MissingSensitivity { process, signal } => format!(
                "combinational process {} reads {} but does not wake on it — \
                 simulation holds stale outputs that synthesized hardware would update",
                proc_(*process),
                sig(*signal)
            ),
            StructuralFinding::ClockNotInSensitivity { process, clock } => format!(
                "clocked process {} declares clock {} but is not sensitive to it — \
                 the process can never run",
                proc_(*process),
                sig(*clock)
            ),
            StructuralFinding::UnreadSensitivity { process, signal } => format!(
                "process {} wakes on {} but never reads it (spurious wake-ups)",
                proc_(*process),
                sig(*signal)
            ),
            StructuralFinding::DeadSignal { signal } => format!(
                "signal {} is written but never read, sensed, traced or exported — dead logic",
                sig(*signal)
            ),
            StructuralFinding::UndrivenSignal { signal, reader } => format!(
                "signal {} is read by {} but has no driver and is not an external input — \
                 it stays U/X forever",
                sig(*signal),
                proc_(*reader)
            ),
            StructuralFinding::GatedBusyFeedback {
                clock,
                busy,
                origin,
            } => format!(
                "gated clock {}: busy line {} combinationally depends on {}, which is \
                 registered in the gated domain itself — once parked, nothing can restart the clock",
                sig(*clock),
                sig(*busy),
                sig(*origin)
            ),
            StructuralFinding::GatedBusyUndriven { clock, busy } => format!(
                "gated clock {}: busy line {} has no driver — the clock parks at \
                 elaboration and never starts",
                sig(*clock),
                sig(*busy)
            ),
        }
    }

    /// A dotted location path for a finding (`rtl.sig[name]` /
    /// `rtl.proc[label]`), matching the lint crate's location convention.
    #[must_use]
    pub fn location(&self, finding: &StructuralFinding) -> String {
        match finding {
            StructuralFinding::CombinationalLoop { cycle } => cycle.first().map_or_else(
                || "rtl".to_string(),
                |s| {
                    format!(
                        "rtl.proc[{}]",
                        self.processes[s.process.0].label(s.process.0)
                    )
                },
            ),
            StructuralFinding::MultiDriverConflict { signal, .. }
            | StructuralFinding::SameEdgeWriteRace { signal, .. }
            | StructuralFinding::DeadSignal { signal }
            | StructuralFinding::UndrivenSignal { signal, .. } => {
                format!("rtl.sig[{}]", self.signals[signal.index()].name)
            }
            StructuralFinding::MissingSensitivity { process, .. }
            | StructuralFinding::ClockNotInSensitivity { process, .. }
            | StructuralFinding::UnreadSensitivity { process, .. } => {
                format!("rtl.proc[{}]", self.processes[process.0].label(process.0))
            }
            StructuralFinding::GatedBusyFeedback { clock, .. }
            | StructuralFinding::GatedBusyUndriven { clock, .. } => {
                format!("rtl.clock[{}]", self.signals[clock.index()].name)
            }
        }
    }

    /// Error-severity findings formatted as strings — the subset
    /// `Coupling::preflight` enforces for RTL-backed couplings.
    #[must_use]
    pub fn error_findings(&self) -> Vec<String> {
        self.analyze()
            .iter()
            .filter(|f| f.severity() == StructuralSeverity::Error)
            .map(|f| format!("{}: {}", self.location(f), self.describe(f)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logic::Logic;
    use crate::sim::{RtlCtx, RtlProcess, Simulator};

    /// A test process that declares arbitrary io and, when run, copies its
    /// first read to all writes (enough to exercise the kernel if needed).
    struct Decl {
        io: ProcessIo,
    }
    impl RtlProcess for Decl {
        fn run(&mut self, ctx: &mut RtlCtx) {
            if let (Some(&src), true) = (self.io.reads.first(), !self.io.writes.is_empty()) {
                let v = ctx.read_bit(src);
                for &w in &self.io.writes.clone() {
                    ctx.assign_bit(w, v);
                }
            }
        }
        fn io(&self) -> Option<ProcessIo> {
            Some(self.io.clone())
        }
    }

    fn comb(sim: &mut Simulator, name: &str, reads: &[SignalId], writes: &[SignalId]) -> ProcId {
        let io = ProcessIo::combinational(name)
            .reads(reads.iter().copied())
            .writes(writes.iter().copied());
        sim.add_process(Box::new(Decl { io }), reads)
    }

    fn clocked(
        sim: &mut Simulator,
        name: &str,
        clk: SignalId,
        reads: &[SignalId],
        writes: &[SignalId],
    ) -> ProcId {
        let io = ProcessIo::clocked(name, clk)
            .reads(reads.iter().copied())
            .writes(writes.iter().copied());
        sim.add_process_rising(Box::new(Decl { io }), &[clk], &[])
    }

    #[test]
    fn clean_pipeline_has_no_findings_and_levelizes() {
        // in -> comb a -> t1 -> comb b -> t2 -> reg (clocked) -> out.
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", castanet_netsim::time::SimDuration::from_ns(10));
        let input = sim.add_signal("in", 1);
        let t1 = sim.add_signal("t1", 1);
        let t2 = sim.add_signal("t2", 1);
        let out = sim.add_signal("out", 1);
        sim.mark_external_input(input);
        sim.mark_external_output(out);
        comb(&mut sim, "a", &[input], &[t1]);
        comb(&mut sim, "b", &[t1], &[t2]);
        clocked(&mut sim, "reg", clk, &[clk, t2], &[out]);
        let net = sim.netlist();
        let findings = net.analyze();
        assert!(findings.is_empty(), "clean netlist flagged: {findings:?}");
        let lev = net.levelize().expect("loop-free");
        assert_eq!(lev.levels.len(), 2);
        assert_eq!(lev.combinational_count(), 2);
        assert_eq!(lev.clocked.len(), 1);
        assert_eq!(lev.generators.len(), 1, "clock generator");
        assert!(lev.opaque.is_empty());
        // Domain tag: `out` is registered on clk.
        assert_eq!(net.domain(out), Some(clk));
    }

    #[test]
    fn combinational_loop_detected_with_full_path() {
        // a -> p -> b -> q -> a : two-process zero-delay cycle.
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 1);
        let b = sim.add_signal("b", 1);
        comb(&mut sim, "p", &[a], &[b]);
        comb(&mut sim, "q", &[b], &[a]);
        let net = sim.netlist();
        let loops = net.combinational_loops();
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].len(), 2, "both processes on the path");
        assert!(net.levelize().is_err());
        let findings = net.analyze();
        assert!(findings
            .iter()
            .any(|f| matches!(f, StructuralFinding::CombinationalLoop { .. })));
        // The break-the-loop near miss: register one stage instead.
        let mut sim2 = Simulator::new();
        let clk = sim2.add_clock("clk", castanet_netsim::time::SimDuration::from_ns(10));
        let a2 = sim2.add_signal("a", 1);
        let b2 = sim2.add_signal("b", 1);
        comb(&mut sim2, "p", &[a2], &[b2]);
        clocked(&mut sim2, "q", clk, &[clk, b2], &[a2]);
        sim2.mark_external_input(a2); // also clocked-driven; keeps b2 read
        sim2.mark_external_output(b2);
        let net2 = sim2.netlist();
        assert!(net2.combinational_loops().is_empty());
        assert!(net2.levelize().is_ok());
    }

    #[test]
    fn self_loop_detected() {
        let mut sim = Simulator::new();
        let y = sim.add_signal("y", 1);
        comb(&mut sim, "osc", &[y], &[y]);
        let net = sim.netlist();
        let loops = net.combinational_loops();
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].len(), 1);
        assert_eq!(loops[0][0].via, y);
    }

    #[test]
    fn multi_driver_and_same_edge_race() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", castanet_netsim::time::SimDuration::from_ns(10));
        let a = sim.add_signal("a", 1);
        let bus = sim.add_signal("bus", 1);
        let reg = sim.add_signal("reg", 1);
        sim.mark_external_input(a);
        sim.mark_external_output(bus);
        sim.mark_external_output(reg);
        comb(&mut sim, "d1", &[a], &[bus]);
        comb(&mut sim, "d2", &[a], &[bus]);
        clocked(&mut sim, "r1", clk, &[clk, a], &[reg]);
        clocked(&mut sim, "r2", clk, &[clk, a], &[reg]);
        let net = sim.netlist();
        let findings = net.analyze();
        assert!(findings.iter().any(
            |f| matches!(f, StructuralFinding::MultiDriverConflict { signal, drivers } if *signal == bus && drivers.len() == 2)
        ));
        assert!(findings.iter().any(
            |f| matches!(f, StructuralFinding::SameEdgeWriteRace { signal, clock, .. } if *signal == reg && *clock == clk)
        ));
    }

    #[test]
    fn two_clock_drivers_on_different_clocks_are_not_a_race() {
        let mut sim = Simulator::new();
        let clk_a = sim.add_clock("clk_a", castanet_netsim::time::SimDuration::from_ns(10));
        let clk_b = sim.add_clock("clk_b", castanet_netsim::time::SimDuration::from_ns(14));
        let a = sim.add_signal("a", 1);
        let reg = sim.add_signal("reg", 1);
        sim.mark_external_input(a);
        sim.mark_external_output(reg);
        clocked(&mut sim, "r1", clk_a, &[clk_a, a], &[reg]);
        clocked(&mut sim, "r2", clk_b, &[clk_b, a], &[reg]);
        let net = sim.netlist();
        assert!(!net
            .analyze()
            .iter()
            .any(|f| matches!(f, StructuralFinding::SameEdgeWriteRace { .. })));
        assert_eq!(net.domain(reg), None, "two domains -> no single tag");
    }

    #[test]
    fn missing_sensitivity_flagged_and_exact_list_clean() {
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 1);
        let b = sim.add_signal("b", 1);
        let y = sim.add_signal("y", 1);
        sim.mark_external_input(a);
        sim.mark_external_input(b);
        sim.mark_external_output(y);
        // Reads a and b but only wakes on a.
        let io = ProcessIo::combinational("and2").reads([a, b]).writes([y]);
        sim.add_process(Box::new(Decl { io }), &[a]);
        let net = sim.netlist();
        let findings = net.analyze();
        assert!(findings.iter().any(
            |f| matches!(f, StructuralFinding::MissingSensitivity { signal, .. } if *signal == b)
        ));
        // Near miss: full list is clean.
        let mut sim2 = Simulator::new();
        let a2 = sim2.add_signal("a", 1);
        let b2 = sim2.add_signal("b", 1);
        let y2 = sim2.add_signal("y", 1);
        sim2.mark_external_input(a2);
        sim2.mark_external_input(b2);
        sim2.mark_external_output(y2);
        comb(&mut sim2, "and2", &[a2, b2], &[y2]);
        assert!(sim2.netlist().analyze().is_empty());
    }

    #[test]
    fn clock_not_in_sensitivity_flagged() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", castanet_netsim::time::SimDuration::from_ns(10));
        let d = sim.add_signal("d", 1);
        let q = sim.add_signal("q", 1);
        sim.mark_external_input(d);
        sim.mark_external_output(q);
        // Clocked on clk but registered sensitive to d only.
        let io = ProcessIo::clocked("bad_reg", clk)
            .reads([clk, d])
            .writes([q]);
        sim.add_process(Box::new(Decl { io }), &[d]);
        let net = sim.netlist();
        assert!(net.analyze().iter().any(
            |f| matches!(f, StructuralFinding::ClockNotInSensitivity { clock, .. } if *clock == clk)
        ));
    }

    #[test]
    fn unread_sensitivity_is_info() {
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 1);
        let noise = sim.add_signal("noise", 1);
        let y = sim.add_signal("y", 1);
        sim.mark_external_input(a);
        sim.mark_external_input(noise);
        sim.mark_external_output(y);
        let io = ProcessIo::combinational("inv").reads([a]).writes([y]);
        sim.add_process(Box::new(Decl { io }), &[a, noise]);
        let net = sim.netlist();
        let findings = net.analyze();
        let f = findings
            .iter()
            .find(|f| matches!(f, StructuralFinding::UnreadSensitivity { signal, .. } if *signal == noise))
            .expect("unread sensitivity finding");
        assert_eq!(f.severity(), StructuralSeverity::Info);
    }

    #[test]
    fn dead_and_undriven_signals() {
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 1);
        let dead = sim.add_signal("dead", 1);
        let ghost = sim.add_signal("ghost", 1);
        let y = sim.add_signal("y", 1);
        sim.mark_external_input(a);
        sim.mark_external_output(y);
        comb(&mut sim, "p", &[a], &[dead]); // dead: written, never read
        comb(&mut sim, "q", &[ghost], &[y]); // ghost: read, never driven
        let net = sim.netlist();
        let findings = net.analyze();
        assert!(findings
            .iter()
            .any(|f| matches!(f, StructuralFinding::DeadSignal { signal } if *signal == dead)));
        assert!(findings.iter().any(
            |f| matches!(f, StructuralFinding::UndrivenSignal { signal, .. } if *signal == ghost)
        ));
        // Near misses: tracing the dead signal / marking ghost external.
        sim.trace(dead);
        sim.mark_external_input(ghost);
        let findings = sim.netlist().analyze();
        assert!(!findings
            .iter()
            .any(|f| matches!(f, StructuralFinding::DeadSignal { .. })));
        assert!(!findings
            .iter()
            .any(|f| matches!(f, StructuralFinding::UndrivenSignal { .. })));
    }

    #[test]
    fn gated_busy_feedback_and_undriven() {
        use castanet_netsim::time::SimDuration;
        // Feedback: busy is combinationally derived from a signal
        // registered in the gated domain.
        let mut sim = Simulator::new();
        let busy = sim.add_signal("busy", 1);
        let clk = sim.add_gated_clock("clk", SimDuration::from_ns(10), busy);
        let state = sim.add_signal("state", 1);
        clocked(&mut sim, "fsm", clk, &[clk], &[state]);
        comb(&mut sim, "busy_logic", &[state], &[busy]);
        let net = sim.netlist();
        let findings = net.analyze();
        assert!(findings.iter().any(
            |f| matches!(f, StructuralFinding::GatedBusyFeedback { origin, .. } if *origin == state)
        ));

        // Near miss: busy written directly by a clocked process (the
        // stock CycleDutProcess pattern) is safe.
        let mut sim2 = Simulator::new();
        let busy2 = sim2.add_signal("busy", 1);
        let clk2 = sim2.add_gated_clock("clk", SimDuration::from_ns(10), busy2);
        clocked(&mut sim2, "wrapper", clk2, &[clk2], &[busy2]);
        assert!(!sim2
            .netlist()
            .analyze()
            .iter()
            .any(|f| matches!(f, StructuralFinding::GatedBusyFeedback { .. })));

        // Undriven: nothing drives busy at all.
        let mut sim3 = Simulator::new();
        let busy3 = sim3.add_signal("busy", 1);
        let _clk3 = sim3.add_gated_clock("clk", SimDuration::from_ns(10), busy3);
        assert!(sim3
            .netlist()
            .analyze()
            .iter()
            .any(|f| matches!(f, StructuralFinding::GatedBusyUndriven { .. })));
        // Near miss: external busy (test-bench driven) is fine.
        let mut sim4 = Simulator::new();
        let busy4 = sim4.add_signal("busy", 1);
        let _clk4 = sim4.add_gated_clock("clk", SimDuration::from_ns(10), busy4);
        sim4.mark_external_input(busy4);
        assert!(!sim4
            .netlist()
            .analyze()
            .iter()
            .any(|f| matches!(f, StructuralFinding::GatedBusyUndriven { .. })));
    }

    #[test]
    fn opaque_processes_are_skipped_but_reported_in_levelization() {
        struct Opaque;
        impl RtlProcess for Opaque {
            fn run(&mut self, _ctx: &mut RtlCtx) {}
        }
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 1);
        sim.add_process(Box::new(Opaque), &[a]);
        let net = sim.netlist();
        assert!(net.analyze().is_empty(), "no guessing about opaque reads");
        let lev = net.levelize().expect("no comb processes at all");
        assert_eq!(lev.opaque.len(), 1);
        assert_eq!(lev.combinational_count(), 0);
    }

    #[test]
    fn level_stats_cone_widths_and_fanout() {
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 8);
        let t = sim.add_signal("t", 8);
        let y1 = sim.add_signal("y1", 4);
        let y2 = sim.add_signal("y2", 4);
        sim.mark_external_input(a);
        sim.mark_external_output(y1);
        sim.mark_external_output(y2);
        comb(&mut sim, "stage0", &[a], &[t]);
        comb(&mut sim, "s1a", &[t], &[y1]);
        comb(&mut sim, "s1b", &[t], &[y2]);
        let net = sim.netlist();
        let lev = net.levelize().unwrap();
        let stats = net.level_stats(&lev);
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].processes, 1);
        assert_eq!(stats[0].cone_bits, 8);
        assert_eq!(stats[0].max_fanout, 2, "t feeds two readers");
        assert_eq!(stats[1].processes, 2);
        assert_eq!(stats[1].cone_bits, 8, "two 4-bit cones");
    }

    #[test]
    fn describe_resolves_names() {
        let mut sim = Simulator::new();
        let a = sim.add_signal("sig_a", 1);
        let b = sim.add_signal("sig_b", 1);
        comb(&mut sim, "proc_p", &[a], &[b]);
        comb(&mut sim, "proc_q", &[b], &[a]);
        let net = sim.netlist();
        let findings = net.analyze();
        let loop_f = findings
            .iter()
            .find(|f| matches!(f, StructuralFinding::CombinationalLoop { .. }))
            .unwrap();
        let text = net.describe(loop_f);
        assert!(text.contains("proc_p") && text.contains("proc_q"), "{text}");
        assert!(text.contains("sig_a") || text.contains("sig_b"), "{text}");
        assert!(net.location(loop_f).starts_with("rtl.proc["));
    }

    #[test]
    fn error_findings_subset() {
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 1);
        let dead = sim.add_signal("dead", 1);
        let osc = sim.add_signal("osc", 1);
        sim.mark_external_input(a);
        comb(&mut sim, "p", &[a], &[dead]); // warning only
        comb(&mut sim, "q", &[osc], &[osc]); // self-loop: error
        let net = sim.netlist();
        let errors = net.error_findings();
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert!(errors[0].contains("combinational loop"), "{errors:?}");
    }

    #[test]
    fn level_order_evaluation_matches_event_kernel() {
        use castanet_netsim::time::SimTime;
        // A 3-level xor/inv cone evaluated by the kernel must agree with a
        // hand evaluation in level order.
        struct Xor2 {
            a: SignalId,
            b: SignalId,
            y: SignalId,
        }
        impl RtlProcess for Xor2 {
            fn run(&mut self, ctx: &mut RtlCtx) {
                let v = match (ctx.read_bit(self.a), ctx.read_bit(self.b)) {
                    (Logic::One, Logic::Zero) | (Logic::Zero, Logic::One) => Logic::One,
                    (Logic::Zero, Logic::Zero) | (Logic::One, Logic::One) => Logic::Zero,
                    _ => Logic::X,
                };
                ctx.assign_bit(self.y, v);
            }
            fn io(&self) -> Option<ProcessIo> {
                Some(
                    ProcessIo::combinational("xor2")
                        .reads([self.a, self.b])
                        .writes([self.y]),
                )
            }
        }
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 1);
        let b = sim.add_signal("b", 1);
        let c = sim.add_signal("c", 1);
        let t1 = sim.add_signal("t1", 1);
        let t2 = sim.add_signal("t2", 1);
        for s in [a, b, c] {
            sim.mark_external_input(s);
        }
        sim.mark_external_output(t2);
        sim.add_process(Box::new(Xor2 { a, b, y: t1 }), &[a, b]);
        sim.add_process(Box::new(Xor2 { a: t1, b: c, y: t2 }), &[t1, c]);
        let net = sim.netlist();
        assert!(net.analyze().is_empty());
        let lev = net.levelize().unwrap();
        assert_eq!(lev.levels.len(), 2);
        sim.poke_bit(a, Logic::One, SimTime::ZERO).unwrap();
        sim.poke_bit(b, Logic::Zero, SimTime::ZERO).unwrap();
        sim.poke_bit(c, Logic::One, SimTime::ZERO).unwrap();
        sim.run_to_quiescence().unwrap();
        // level-order: t1 = a^b = 1, t2 = t1^c = 0.
        assert_eq!(sim.read_bit(t2), Logic::Zero);
    }
}
