//! Setup/hold timing checks in the event-driven kernel.
//!
//! §1 of the paper: common practice performs "verification of **timing**
//! and functionality by simulation". This module provides the timing half:
//! [`SetupHoldMonitor`] is a process that watches a data signal against a
//! clock and records every setup violation (data changed less than
//! `t_setup` before a sampling edge) and hold violation (data changed less
//! than `t_hold` after one) — the checks a VHDL simulator performs from
//! `'SETUP`/`'HOLD` generics on synthesizable registers.

use crate::signal::SignalId;
use crate::sim::{RtlCtx, RtlProcess};
use castanet_netsim::time::{SimDuration, SimTime};
use std::sync::{Arc, Mutex};

/// One recorded timing violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingViolation {
    /// Kind of constraint violated.
    pub kind: ViolationKind,
    /// Time of the sampling clock edge involved.
    pub edge_at: SimTime,
    /// Time of the offending data change.
    pub data_at: SimTime,
}

/// Which constraint was violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// Data changed within the setup window before the edge.
    Setup,
    /// Data changed within the hold window after the edge.
    Hold,
}

/// Shared view of a monitor's findings.
#[derive(Debug, Clone, Default)]
pub struct TimingReport {
    inner: Arc<Mutex<Vec<TimingViolation>>>,
}

impl TimingReport {
    /// Number of violations recorded.
    ///
    /// # Panics
    ///
    /// Panics if the lock is poisoned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("timing report lock poisoned")
            .len()
    }

    /// `true` when no violation was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All recorded violations, in detection order.
    ///
    /// # Panics
    ///
    /// Panics if the lock is poisoned.
    #[must_use]
    pub fn violations(&self) -> Vec<TimingViolation> {
        self.inner
            .lock()
            .expect("timing report lock poisoned")
            .clone()
    }

    fn push(&self, v: TimingViolation) {
        self.inner
            .lock()
            .expect("timing report lock poisoned")
            .push(v);
    }
}

/// Watches one data signal against a clock's rising edges.
///
/// # Examples
///
/// ```
/// use castanet_rtl::sim::Simulator;
/// use castanet_rtl::timing::SetupHoldMonitor;
/// use castanet_rtl::logic::Logic;
/// use castanet_netsim::time::{SimDuration, SimTime};
///
/// let mut sim = Simulator::new();
/// let clk = sim.add_clock("clk", SimDuration::from_ns(10));
/// let d = sim.add_signal("d", 8);
/// let (monitor, report) = SetupHoldMonitor::new(
///     clk, d,
///     SimDuration::from_ns(2),  // setup
///     SimDuration::from_ns(1),  // hold
/// );
/// sim.add_process(Box::new(monitor), &[clk, d]);
/// // Change data 1 ns before the 5 ns edge: setup violation.
/// sim.poke(d, castanet_rtl::LogicVector::from_u64(1, 8), SimTime::from_ns(4))?;
/// sim.run_until(SimTime::from_ns(20))?;
/// assert_eq!(report.len(), 1);
/// # Ok::<(), castanet_rtl::error::RtlError>(())
/// ```
#[derive(Debug)]
pub struct SetupHoldMonitor {
    clk: SignalId,
    data: SignalId,
    setup: SimDuration,
    hold: SimDuration,
    last_data_change: Option<SimTime>,
    last_edge: Option<SimTime>,
    report: TimingReport,
}

impl SetupHoldMonitor {
    /// Creates a monitor with the given constraints; register it with a
    /// sensitivity list of `[clk, data]`.
    #[must_use]
    pub fn new(
        clk: SignalId,
        data: SignalId,
        setup: SimDuration,
        hold: SimDuration,
    ) -> (Self, TimingReport) {
        let report = TimingReport::default();
        (
            SetupHoldMonitor {
                clk,
                data,
                setup,
                hold,
                last_data_change: None,
                last_edge: None,
                report: report.clone(),
            },
            report,
        )
    }
}

impl RtlProcess for SetupHoldMonitor {
    fn run(&mut self, ctx: &mut RtlCtx) {
        let now = ctx.now();
        if ctx.event(self.data) {
            self.last_data_change = Some(now);
            // Hold check: did this change land too soon after an edge?
            if let Some(edge) = self.last_edge {
                if now >= edge && now - edge < self.hold {
                    self.report.push(TimingViolation {
                        kind: ViolationKind::Hold,
                        edge_at: edge,
                        data_at: now,
                    });
                }
            }
        }
        if ctx.rising(self.clk) {
            self.last_edge = Some(now);
            // Setup check: did data change too close before this edge?
            // A change in the same instant (delta race) violates too.
            if let Some(change) = self.last_data_change {
                if change <= now && now - change < self.setup {
                    self.report.push(TimingViolation {
                        kind: ViolationKind::Setup,
                        edge_at: now,
                        data_at: change,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logic::Logic;
    use crate::sim::Simulator;
    use crate::vector::LogicVector;

    const PERIOD: SimDuration = SimDuration::from_ns(10);

    fn fixture(setup_ns: u64, hold_ns: u64) -> (Simulator, SignalId, TimingReport) {
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", PERIOD);
        let d = sim.add_signal("d", 8);
        let (mon, report) = SetupHoldMonitor::new(
            clk,
            d,
            SimDuration::from_ns(setup_ns),
            SimDuration::from_ns(hold_ns),
        );
        sim.add_process(Box::new(mon), &[clk, d]);
        (sim, d, report)
    }

    #[test]
    fn clean_timing_produces_no_violations() {
        let (mut sim, d, report) = fixture(2, 1);
        // Edges at 5, 15, 25 ns; change at 10 ns is 5 ns before the 15 ns
        // edge and 5 ns after the 5 ns edge: both margins met.
        sim.poke(d, LogicVector::from_u64(1, 8), SimTime::from_ns(10))
            .unwrap();
        sim.poke(d, LogicVector::from_u64(2, 8), SimTime::from_ns(20))
            .unwrap();
        sim.run_until(SimTime::from_ns(40)).unwrap();
        assert!(report.is_empty(), "{:?}", report.violations());
    }

    #[test]
    fn setup_violation_detected() {
        let (mut sim, d, report) = fixture(3, 1);
        // Edge at 15 ns; change at 13 ns: 2 ns < 3 ns setup.
        sim.poke(d, LogicVector::from_u64(1, 8), SimTime::from_ns(13))
            .unwrap();
        sim.run_until(SimTime::from_ns(30)).unwrap();
        let v = report.violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::Setup);
        assert_eq!(v[0].edge_at, SimTime::from_ns(15));
        assert_eq!(v[0].data_at, SimTime::from_ns(13));
    }

    #[test]
    fn hold_violation_detected() {
        let (mut sim, d, report) = fixture(1, 3);
        // Edge at 5 ns; change at 7 ns: 2 ns < 3 ns hold.
        sim.poke(d, LogicVector::from_u64(1, 8), SimTime::from_ns(7))
            .unwrap();
        sim.run_until(SimTime::from_ns(20)).unwrap();
        let v = report.violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::Hold);
        assert_eq!(v[0].edge_at, SimTime::from_ns(5));
        assert_eq!(v[0].data_at, SimTime::from_ns(7));
    }

    #[test]
    fn simultaneous_change_and_edge_is_a_setup_violation() {
        let (mut sim, d, report) = fixture(2, 1);
        sim.poke(d, LogicVector::from_u64(1, 8), SimTime::from_ns(15))
            .unwrap();
        sim.run_until(SimTime::from_ns(30)).unwrap();
        let v = report.violations();
        assert!(
            v.iter()
                .any(|x| x.kind == ViolationKind::Setup && x.edge_at == SimTime::from_ns(15)),
            "{v:?}"
        );
    }

    #[test]
    fn exact_margins_are_legal() {
        let (mut sim, d, report) = fixture(2, 2);
        // Change exactly setup-time before the 15 ns edge.
        sim.poke(d, LogicVector::from_u64(1, 8), SimTime::from_ns(13))
            .unwrap();
        // Change exactly hold-time after the 25 ns edge.
        sim.poke(d, LogicVector::from_u64(2, 8), SimTime::from_ns(27))
            .unwrap();
        sim.run_until(SimTime::from_ns(40)).unwrap();
        assert!(report.is_empty(), "{:?}", report.violations());
    }

    #[test]
    fn redundant_pokes_without_value_change_are_not_events() {
        let (mut sim, d, report) = fixture(5, 5);
        sim.poke(d, LogicVector::from_u64(1, 8), SimTime::from_ns(2))
            .unwrap();
        // Same value re-poked near the edge: no signal event, no violation.
        sim.poke(d, LogicVector::from_u64(1, 8), SimTime::from_ns(14))
            .unwrap();
        sim.run_until(SimTime::from_ns(30)).unwrap();
        let v = report.violations();
        assert_eq!(
            v.iter()
                .filter(|x| x.data_at == SimTime::from_ns(14))
                .count(),
            0,
            "{v:?}"
        );
    }

    #[test]
    fn entity_driven_stimulus_meets_timing() {
        // The co-simulation entity pokes a quarter period before each edge;
        // with setup < period/4 this must be violation-free.
        let (mut sim, d, report) = fixture(2, 1);
        for k in 0..20u64 {
            // Pokes at edge - 2.5 ns (quarter period), edges at 5+10k.
            let poke = SimTime::from_picos((5 + 10 * k) * 1000 - 2_500);
            sim.poke(d, LogicVector::from_u64(k % 256, 8), poke)
                .unwrap();
        }
        sim.run_until(SimTime::from_ns(250)).unwrap();
        assert!(report.is_empty(), "{:?}", report.violations());
        let _ = Logic::One;
    }
}
