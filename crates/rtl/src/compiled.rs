//! Compiled bit-parallel backend: the levelized netlist lowered to a flat
//! word-level evaluation schedule, 64 scenario lanes per instruction.
//!
//! This is the "back half" of the CCSS approach the paper's conclusion
//! points at: [`crate::netlist::NetlistGraph::levelize`] produces a
//! topo-ordered combinational schedule; [`CompiledSchedule::compile`]
//! lowers every process on that schedule into straight-line [`Op`]s over a
//! flat word store, and [`CompiledSim`] evaluates the ops with signal state
//! held *structure-of-arrays*: one [`PackedBit`] word per signal bit, lane
//! `k` of every word belonging to scenario instance `k`. A single pass over
//! the op list therefore advances up to [`LANES`] independent simulations.
//!
//! Unknowns survive batching through a two-plane encoding (`val`/`unk`,
//! see [`PackedBit`]): the bitwise kernels reproduce the IEEE-1164 X01
//! algebra of [`Logic::and`]/[`Logic::or`]/[`Logic::xor`]/[`Logic::not`]
//! exactly, per lane, which the module tests pin against the scalar truth
//! tables.
//!
//! Sequential logic is synchronized between combinational settles: clocked
//! processes lower their writes into *shadow* words, and
//! [`CompiledSim::clock`] runs settle → sequential ops → shadow latch →
//! settle, so every register samples the pre-edge value of its inputs no
//! matter the op order — the delta-race discipline of the event kernel,
//! enforced structurally.
//!
//! Behavioral DUTs that cannot be lowered (the stock switch wrapper is an
//! opaque-to-lowering [`CycleDut`]) batch through [`LaneBank`] instead:
//! up to 64 replicated DUT instances behind one bit-sliced pin interface,
//! so the coupling layer sees the same SoA state model either way.

use crate::cycle::{CycleDut, PortDecl};
use crate::error::RtlError;
use crate::logic::Logic;
use crate::signal::SignalId;
use crate::sim::Simulator;
use crate::vector::LogicVector;
use castanet_obs::{Counter, Phase, Telemetry, Track};
use std::collections::HashMap;
use std::fmt;

/// Number of scenario instances evaluated per instruction: one per bit of
/// the `u64` lane words.
pub const LANES: usize = 64;

/// One signal bit across [`LANES`] scenario instances, two-plane encoded:
/// lane `k` is `X` when bit `k` of `unk` is set, otherwise `One`/`Zero`
/// per bit `k` of `val`. Invariant: `val & unk == 0`.
///
/// The nine-value IEEE-1164 system collapses to X01 here, exactly as the
/// scalar [`Logic`] operators do internally via [`Logic::to_x01`] — so the
/// packed kernels and the event kernel agree on every operator input.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PackedBit {
    /// Known-one plane: bit `k` set ⇒ lane `k` is `One`.
    pub val: u64,
    /// Unknown plane: bit `k` set ⇒ lane `k` is `X`.
    pub unk: u64,
}

impl PackedBit {
    /// All lanes `X` — the power-on value of every state word.
    pub const ALL_X: PackedBit = PackedBit { val: 0, unk: !0 };

    /// The same [`Logic`] value in every lane (via X01 collapse).
    #[must_use]
    pub fn splat(value: Logic) -> Self {
        match value.to_x01() {
            Logic::Zero => PackedBit { val: 0, unk: 0 },
            Logic::One => PackedBit { val: !0, unk: 0 },
            _ => PackedBit::ALL_X,
        }
    }

    /// Packs per-lane values (lane `i` from `bits[i]`); lanes past the end
    /// of the slice are `X`. Panics when more than [`LANES`] values are
    /// given.
    #[must_use]
    pub fn pack(bits: &[Logic]) -> Self {
        assert!(bits.len() <= LANES, "at most {LANES} lanes");
        let mut w = PackedBit::ALL_X;
        for (i, &b) in bits.iter().enumerate() {
            w.set_lane(i, b);
        }
        w
    }

    /// The X01 value of lane `lane`.
    #[must_use]
    pub fn lane(self, lane: usize) -> Logic {
        assert!(lane < LANES, "lane out of range");
        if self.unk >> lane & 1 == 1 {
            Logic::X
        } else {
            Logic::from_bool(self.val >> lane & 1 == 1)
        }
    }

    /// Sets lane `lane` to `value` (X01-collapsed), preserving the others.
    pub fn set_lane(&mut self, lane: usize, value: Logic) {
        assert!(lane < LANES, "lane out of range");
        let mask = 1u64 << lane;
        self.val &= !mask;
        self.unk &= !mask;
        match value.to_x01() {
            Logic::One => self.val |= mask,
            Logic::Zero => {}
            _ => self.unk |= mask,
        }
    }

    /// Lane-wise X01 AND, matching [`Logic::and`]: a known `Zero` on
    /// either input dominates an `X` on the other.
    #[must_use]
    pub fn and(self, rhs: Self) -> Self {
        let ones = self.val & rhs.val;
        let zeros = (!self.val & !self.unk) | (!rhs.val & !rhs.unk);
        PackedBit {
            val: ones,
            unk: (self.unk | rhs.unk) & !zeros,
        }
    }

    /// Lane-wise X01 OR, matching [`Logic::or`]: a known `One` dominates.
    #[must_use]
    pub fn or(self, rhs: Self) -> Self {
        let ones = self.val | rhs.val;
        PackedBit {
            val: ones,
            unk: (self.unk | rhs.unk) & !ones,
        }
    }

    /// Lane-wise X01 XOR, matching [`Logic::xor`]: any `X` input makes the
    /// lane `X`.
    #[must_use]
    pub fn xor(self, rhs: Self) -> Self {
        let unk = self.unk | rhs.unk;
        PackedBit {
            val: (self.val ^ rhs.val) & !unk,
            unk,
        }
    }

    /// Lane-wise 2:1 multiplexer: `sel ? a : b`, pessimistic on an unknown
    /// select (the lane goes `X` even when both data inputs agree —
    /// matching a gate-level and/or/not expansion under 1164 rules).
    #[must_use]
    pub fn mux(sel: Self, a: Self, b: Self) -> Self {
        let take_a = sel.val;
        let take_b = !sel.val & !sel.unk;
        PackedBit {
            val: (take_a & a.val) | (take_b & b.val),
            unk: (take_a & a.unk) | (take_b & b.unk) | sel.unk,
        }
    }
}

impl std::ops::Not for PackedBit {
    type Output = Self;

    /// Lane-wise X01 NOT, matching [`Logic::not`].
    fn not(self) -> Self {
        PackedBit {
            val: !self.val & !self.unk,
            unk: self.unk,
        }
    }
}

/// Bit-slices `vectors[i]` into lane `i`: word `j` of the result holds bit
/// `j` of every vector. All vectors must share one width; at most
/// [`LANES`] vectors. Lanes past `vectors.len()` read back `X`.
#[must_use]
pub fn pack_vectors(vectors: &[LogicVector]) -> Vec<PackedBit> {
    assert!(!vectors.is_empty(), "nothing to pack");
    assert!(vectors.len() <= LANES, "at most {LANES} lanes");
    let width = vectors[0].width();
    assert!(
        vectors.iter().all(|v| v.width() == width),
        "pack_vectors: mixed widths"
    );
    let mut words = vec![PackedBit::ALL_X; width];
    for (lane, v) in vectors.iter().enumerate() {
        for (bit, word) in words.iter_mut().enumerate() {
            word.set_lane(lane, v.bit(bit));
        }
    }
    words
}

/// Inverse of [`pack_vectors`]: rebuilds `lanes` per-lane vectors from the
/// bit-sliced words. Values come back X01-collapsed (the packed form keeps
/// no nine-value detail).
#[must_use]
pub fn unpack_vectors(words: &[PackedBit], lanes: usize) -> Vec<LogicVector> {
    assert!(lanes <= LANES, "at most {LANES} lanes");
    (0..lanes)
        .map(|lane| {
            let bits: Vec<Logic> = words.iter().map(|w| w.lane(lane)).collect();
            LogicVector::from_bits(&bits)
        })
        .collect()
}

/// One word-level instruction of a compiled schedule. Operands are indices
/// into the flat [`PackedBit`] store (state words first, then shadow and
/// temporary words).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `dst = value` in every lane.
    Const {
        /// Destination word.
        dst: u32,
        /// Splatted value.
        value: Logic,
    },
    /// `dst = a`.
    Copy {
        /// Destination word.
        dst: u32,
        /// Source word.
        a: u32,
    },
    /// `dst = not a`.
    Not {
        /// Destination word.
        dst: u32,
        /// Source word.
        a: u32,
    },
    /// `dst = a and b`.
    And {
        /// Destination word.
        dst: u32,
        /// Left operand.
        a: u32,
        /// Right operand.
        b: u32,
    },
    /// `dst = a or b`.
    Or {
        /// Destination word.
        dst: u32,
        /// Left operand.
        a: u32,
        /// Right operand.
        b: u32,
    },
    /// `dst = a xor b`.
    Xor {
        /// Destination word.
        dst: u32,
        /// Left operand.
        a: u32,
        /// Right operand.
        b: u32,
    },
    /// `dst = sel ? a : b` (pessimistic on unknown `sel`).
    Mux {
        /// Destination word.
        dst: u32,
        /// Select word.
        sel: u32,
        /// Taken when `sel` is `One`.
        a: u32,
        /// Taken when `sel` is `Zero`.
        b: u32,
    },
}

/// Why a netlist could not be compiled.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CompileError {
    /// The combinational subgraph has a cycle — the same condition the
    /// event kernel reports as delta runaway, caught statically here.
    CombinationalLoop {
        /// Labels of the processes on the cycle.
        processes: Vec<String>,
    },
    /// An opaque process (no [`crate::netlist::ProcessIo`]) cannot be
    /// placed on the schedule at all.
    Opaque {
        /// Label of the opaque process.
        process: String,
    },
    /// A combinational process declared its dataflow but did not implement
    /// [`crate::sim::RtlProcess::lower`] — the compiled settle would skip
    /// it and silently diverge, so compilation refuses instead.
    UnloweredCombinational {
        /// Label of the process.
        process: String,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::CombinationalLoop { processes } => {
                write!(f, "combinational loop through {}", processes.join(" -> "))
            }
            CompileError::Opaque { process } => {
                write!(f, "opaque process {process} cannot be scheduled")
            }
            CompileError::UnloweredCombinational { process } => {
                write!(
                    f,
                    "combinational process {process} does not implement lower()"
                )
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// The lowering context handed to [`crate::sim::RtlProcess::lower`]: word
/// allocation plus op emission for one process.
///
/// Combinational processes write their outputs in place; clocked processes
/// transparently write *shadow* words that [`CompiledSim::clock`] latches
/// into state after all sequential ops ran, so every register reads
/// pre-edge values. A clocked process must therefore assign each output
/// unconditionally — "hold" is expressed as a mux of the old value, not by
/// skipping the write.
#[derive(Debug)]
pub struct LowerCtx<'a> {
    sig_base: &'a [u32],
    sig_width: &'a [usize],
    ops: &'a mut Vec<Op>,
    next_word: &'a mut u32,
    clocked: bool,
    /// `(state_word, shadow_word)` latch pairs, in allocation order.
    latches: &'a mut Vec<(u32, u32)>,
    shadow_map: &'a mut HashMap<u32, u32>,
    temp_words: &'a mut u32,
    shadow_words: &'a mut u32,
}

impl LowerCtx<'_> {
    /// Declared width of `signal` in bits.
    #[must_use]
    pub fn width(&self, signal: SignalId) -> usize {
        self.sig_width[signal.index()]
    }

    /// The state word holding bit `bit` of `signal` — read current values
    /// through this.
    #[must_use]
    pub fn read(&self, signal: SignalId, bit: usize) -> u32 {
        assert!(bit < self.width(signal), "bit out of range for {signal}");
        self.sig_base[signal.index()] + bit as u32
    }

    /// The destination word for bit `bit` of `signal`: the state word
    /// itself for combinational processes, a lazily allocated shadow word
    /// (latched at the clock edge) for clocked ones.
    #[must_use]
    pub fn output(&mut self, signal: SignalId, bit: usize) -> u32 {
        let state = self.read(signal, bit);
        if !self.clocked {
            return state;
        }
        if let Some(&shadow) = self.shadow_map.get(&state) {
            return shadow;
        }
        let shadow = *self.next_word;
        *self.next_word += 1;
        *self.shadow_words += 1;
        self.shadow_map.insert(state, shadow);
        self.latches.push((state, shadow));
        shadow
    }

    /// Allocates a scratch word (valid within this process's ops only by
    /// convention; physically it persists, so don't read before writing).
    #[must_use]
    pub fn temp(&mut self) -> u32 {
        let w = *self.next_word;
        *self.next_word += 1;
        *self.temp_words += 1;
        w
    }

    /// Appends one instruction to the process's op stream.
    pub fn emit(&mut self, op: Op) {
        self.ops.push(op);
    }
}

/// Per-level slice of the combinational op stream.
#[derive(Debug, Clone, Copy)]
struct LevelSpan {
    processes: usize,
    ops_start: usize,
    ops_end: usize,
}

/// A netlist lowered to straight-line word code: the artifact
/// [`CompiledSim`] evaluates and the golden schedule dump pins.
#[derive(Debug, Clone)]
pub struct CompiledSchedule {
    /// Total words in the flat store (state + shadow + temp).
    words: u32,
    state_words: u32,
    shadow_words: u32,
    temp_words: u32,
    sig_base: Vec<u32>,
    sig_width: Vec<usize>,
    sig_name: Vec<String>,
    /// Combinational ops, concatenated in level order.
    comb_ops: Vec<Op>,
    levels: Vec<LevelSpan>,
    /// Sequential ops (all clocked processes, writes to shadow words).
    seq_ops: Vec<Op>,
    /// `(state_word, shadow_word)` pairs latched after the sequential ops.
    latches: Vec<(u32, u32)>,
    /// Labels of clocked processes that did not lower — they must be
    /// batched behaviorally (see [`LaneBank`]) instead.
    behavioral: Vec<String>,
    /// Labels of generator processes (external stimulus under compilation).
    generators: Vec<String>,
    gated_clocks: usize,
}

impl CompiledSchedule {
    /// Lowers the elaborated design of `sim` into word code.
    ///
    /// Every combinational process must implement
    /// [`crate::sim::RtlProcess::lower`]; clocked processes may decline
    /// (they are recorded as behavioral slots), generators are skipped
    /// (stimulus is external under compilation), opaque processes are
    /// rejected.
    pub fn compile(sim: &Simulator) -> Result<Self, CompileError> {
        let net = sim.netlist();
        let lev = net.levelize().map_err(|cycle| {
            let processes = cycle
                .iter()
                .map(|&p| net.processes[p.index()].label(p.index()))
                .collect();
            CompileError::CombinationalLoop { processes }
        })?;
        if let Some(&p) = lev.opaque.first() {
            return Err(CompileError::Opaque {
                process: net.processes[p.index()].label(p.index()),
            });
        }

        // One state word per signal bit, SoA, allocated up front so every
        // SignalId maps to a fixed word range.
        let mut sig_base = Vec::with_capacity(net.signals.len());
        let mut sig_width = Vec::with_capacity(net.signals.len());
        let mut sig_name = Vec::with_capacity(net.signals.len());
        let mut next_word: u32 = 0;
        for s in &net.signals {
            sig_base.push(next_word);
            sig_width.push(s.width);
            sig_name.push(s.name.clone());
            next_word += s.width as u32;
        }
        let state_words = next_word;

        let mut comb_ops = Vec::new();
        let mut seq_ops = Vec::new();
        let mut levels = Vec::new();
        let mut latches = Vec::new();
        let mut shadow_map = HashMap::new();
        let mut temp_words: u32 = 0;
        let mut shadow_words: u32 = 0;
        let mut behavioral = Vec::new();
        let mut generators = Vec::new();

        for level in &lev.levels {
            let ops_start = comb_ops.len();
            for &p in level {
                let mut ctx = LowerCtx {
                    sig_base: &sig_base,
                    sig_width: &sig_width,
                    ops: &mut comb_ops,
                    next_word: &mut next_word,
                    clocked: false,
                    latches: &mut latches,
                    shadow_map: &mut shadow_map,
                    temp_words: &mut temp_words,
                    shadow_words: &mut shadow_words,
                };
                let lowered = sim.process_ref(p).is_some_and(|proc| proc.lower(&mut ctx));
                if !lowered {
                    return Err(CompileError::UnloweredCombinational {
                        process: net.processes[p.index()].label(p.index()),
                    });
                }
            }
            levels.push(LevelSpan {
                processes: level.len(),
                ops_start,
                ops_end: comb_ops.len(),
            });
        }

        for &p in &lev.clocked {
            let mut ctx = LowerCtx {
                sig_base: &sig_base,
                sig_width: &sig_width,
                ops: &mut seq_ops,
                next_word: &mut next_word,
                clocked: true,
                latches: &mut latches,
                shadow_map: &mut shadow_map,
                temp_words: &mut temp_words,
                shadow_words: &mut shadow_words,
            };
            let lowered = sim.process_ref(p).is_some_and(|proc| proc.lower(&mut ctx));
            if !lowered {
                behavioral.push(net.processes[p.index()].label(p.index()));
            }
        }
        for &p in &lev.generators {
            generators.push(net.processes[p.index()].label(p.index()));
        }

        Ok(CompiledSchedule {
            words: next_word,
            state_words,
            shadow_words,
            temp_words,
            sig_base,
            sig_width,
            sig_name,
            comb_ops,
            levels,
            seq_ops,
            latches,
            behavioral,
            generators,
            gated_clocks: net.gated_clocks.len(),
        })
    }

    /// Combinational instruction count (all levels).
    #[must_use]
    pub fn comb_op_count(&self) -> usize {
        self.comb_ops.len()
    }

    /// Sequential instruction count.
    #[must_use]
    pub fn seq_op_count(&self) -> usize {
        self.seq_ops.len()
    }

    /// Number of combinational levels.
    #[must_use]
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Labels of clocked processes the schedule could not lower.
    #[must_use]
    pub fn behavioral_slots(&self) -> &[String] {
        &self.behavioral
    }

    /// `true` when every process is lowered (no behavioral slots): the
    /// netlist is fully evaluable by [`CompiledSim`] alone.
    #[must_use]
    pub fn fully_lowered(&self) -> bool {
        self.behavioral.is_empty()
    }

    /// Human-readable schedule summary: word budget, per-level op counts,
    /// sequential/latch counts and behavioral slots. Pinned as a golden
    /// file for the stock switch so schedule drift is reviewed, not silent.
    #[must_use]
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "compiled schedule");
        let _ = writeln!(
            out,
            "words: {} state + {} shadow + {} temp = {} total",
            self.state_words, self.shadow_words, self.temp_words, self.words
        );
        let _ = writeln!(
            out,
            "signals: {} ({} bits)",
            self.sig_name.len(),
            self.state_words
        );
        let _ = writeln!(
            out,
            "comb levels: {} ({} ops)",
            self.levels.len(),
            self.comb_ops.len()
        );
        for (i, l) in self.levels.iter().enumerate() {
            let _ = writeln!(
                out,
                "  level {i}: {} processes, {} ops",
                l.processes,
                l.ops_end - l.ops_start
            );
        }
        let _ = writeln!(
            out,
            "seq ops: {} ({} latches)",
            self.seq_ops.len(),
            self.latches.len()
        );
        let _ = writeln!(out, "behavioral clocked: {}", self.behavioral.len());
        for label in &self.behavioral {
            let _ = writeln!(out, "  {label}");
        }
        let _ = writeln!(out, "generators (external): {}", self.generators.len());
        for label in &self.generators {
            let _ = writeln!(out, "  {label}");
        }
        let _ = writeln!(out, "gated clocks: {}", self.gated_clocks);
        out
    }

    fn width_of(&self, signal: SignalId) -> usize {
        self.sig_width[signal.index()]
    }

    fn word_of(&self, signal: SignalId, bit: usize) -> usize {
        (self.sig_base[signal.index()] + bit as u32) as usize
    }
}

fn eval(ops: &[Op], state: &mut [PackedBit]) {
    for &op in ops {
        match op {
            Op::Const { dst, value } => state[dst as usize] = PackedBit::splat(value),
            Op::Copy { dst, a } => state[dst as usize] = state[a as usize],
            Op::Not { dst, a } => state[dst as usize] = !state[a as usize],
            Op::And { dst, a, b } => {
                state[dst as usize] = state[a as usize].and(state[b as usize]);
            }
            Op::Or { dst, a, b } => {
                state[dst as usize] = state[a as usize].or(state[b as usize]);
            }
            Op::Xor { dst, a, b } => {
                state[dst as usize] = state[a as usize].xor(state[b as usize]);
            }
            Op::Mux { dst, sel, a, b } => {
                state[dst as usize] =
                    PackedBit::mux(state[sel as usize], state[a as usize], state[b as usize]);
            }
        }
    }
}

/// Evaluates a fully lowered [`CompiledSchedule`] over up to [`LANES`]
/// independent scenario instances at once.
///
/// All state powers on `X` in every lane — including lanes beyond the
/// requested count, which simply stay `X` forever; the kernels need no
/// lane masking.
#[derive(Debug)]
pub struct CompiledSim {
    schedule: CompiledSchedule,
    state: Vec<PackedBit>,
    lanes: usize,
    cycles: u64,
    /// Full schedule sweeps (`compiled.schedule_evals`).
    obs_schedule_evals: Counter,
    tel: Telemetry,
}

impl CompiledSim {
    /// Builds an evaluator with `lanes` active instances (1..=[`LANES`]).
    /// Panics when the schedule still has behavioral clocked slots — those
    /// netlists batch through [`LaneBank`] instead.
    #[must_use]
    pub fn new(schedule: CompiledSchedule, lanes: usize) -> Self {
        assert!(
            (1..=LANES).contains(&lanes),
            "lanes must be 1..={LANES}, got {lanes}"
        );
        assert!(
            schedule.fully_lowered(),
            "schedule has behavioral clocked slots: {:?}",
            schedule.behavioral_slots()
        );
        let words = schedule.words as usize;
        CompiledSim {
            schedule,
            state: vec![PackedBit::ALL_X; words],
            lanes,
            cycles: 0,
            obs_schedule_evals: Counter::default(),
            tel: Telemetry::default(),
        }
    }

    /// Attaches a telemetry handle: registers `compiled.schedule_evals`
    /// and enables the sampled `compiled.schedule_eval` micro-phase around
    /// each clock edge.
    pub fn set_telemetry(&mut self, tel: &Telemetry) {
        self.obs_schedule_evals = tel.counter("compiled.schedule_evals");
        self.tel = tel.clone();
    }

    /// Active lane count.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Clock edges executed so far.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// The compiled schedule being evaluated.
    #[must_use]
    pub fn schedule(&self) -> &CompiledSchedule {
        &self.schedule
    }

    /// Overwrites `signal` in lane `lane` with `value` (call
    /// [`CompiledSim::settle`] afterwards to propagate).
    pub fn poke(
        &mut self,
        signal: SignalId,
        lane: usize,
        value: &LogicVector,
    ) -> Result<(), RtlError> {
        assert!(lane < self.lanes, "lane out of range");
        let width = self.schedule.width_of(signal);
        if value.width() != width {
            return Err(RtlError::WidthMismatch {
                expected: width,
                got: value.width(),
            });
        }
        for bit in 0..width {
            let w = self.schedule.word_of(signal, bit);
            self.state[w].set_lane(lane, value.bit(bit));
        }
        Ok(())
    }

    /// Overwrites `signal` with `value` in every active lane. One splat
    /// per bit instead of a per-lane loop, so driving a shared stimulus
    /// (a clock, a common input) costs O(width), not O(width × lanes);
    /// lanes beyond the active count keep reading `X`.
    pub fn poke_all_lanes(
        &mut self,
        signal: SignalId,
        value: &LogicVector,
    ) -> Result<(), RtlError> {
        let width = self.schedule.width_of(signal);
        if value.width() != width {
            return Err(RtlError::WidthMismatch {
                expected: width,
                got: value.width(),
            });
        }
        let active = if self.lanes == LANES {
            !0u64
        } else {
            (1u64 << self.lanes) - 1
        };
        for bit in 0..width {
            let mut word = PackedBit::splat(value.bit(bit));
            word.val &= active;
            word.unk |= !active;
            self.state[self.schedule.word_of(signal, bit)] = word;
        }
        Ok(())
    }

    /// Reads `signal` in lane `lane` (X01-collapsed).
    #[must_use]
    pub fn read(&self, signal: SignalId, lane: usize) -> LogicVector {
        let width = self.schedule.width_of(signal);
        let bits: Vec<Logic> = (0..width)
            .map(|bit| self.state[self.schedule.word_of(signal, bit)].lane(lane))
            .collect();
        LogicVector::from_bits(&bits)
    }

    /// Reads bit 0 of `signal` in lane `lane`.
    #[must_use]
    pub fn read_bit(&self, signal: SignalId, lane: usize) -> Logic {
        self.state[self.schedule.word_of(signal, 0)].lane(lane)
    }

    /// Reads `signal` in lane `lane` as an integer; `None` when any bit is
    /// unknown.
    #[must_use]
    pub fn read_u64(&self, signal: SignalId, lane: usize) -> Option<u64> {
        self.read(signal, lane).to_u64()
    }

    /// Runs the combinational schedule to its fixpoint (one pass — the
    /// levelization guarantees a single level-ordered sweep settles).
    pub fn settle(&mut self) {
        eval(&self.schedule.comb_ops, &mut self.state);
    }

    /// One clock edge, every lane: settle the combinational cones, run the
    /// sequential ops against pre-edge state (writes land in shadow
    /// words), latch the shadows, settle again.
    pub fn clock(&mut self) {
        let sampled = self.tel.micro_gate();
        let mark = if sampled { self.tel.now_ns() } else { 0 };
        self.settle();
        eval(&self.schedule.seq_ops, &mut self.state);
        for &(state_word, shadow_word) in &self.schedule.latches {
            self.state[state_word as usize] = self.state[shadow_word as usize];
        }
        self.settle();
        self.cycles += 1;
        self.obs_schedule_evals.inc();
        if sampled {
            self.tel.record_phase(
                Track::Follower,
                self.cycles,
                Phase::CompiledScheduleEval,
                mark,
            );
        }
    }
}

/// Up to [`LANES`] replicated behavioral [`CycleDut`] instances behind one
/// bit-sliced pin interface: the batching fallback for DUTs that cannot be
/// lowered to word code (the stock switch wrapper).
///
/// Pin state is held SoA exactly like [`CompiledSim`] signal state — one
/// [`PackedBit`] word per pin bit, lane `k` per instance `k` — so the
/// coupling layer manipulates both backends through the same layout.
/// Behavioral DUTs read integers, so unknown pin lanes gather as `0`
/// (matching the event kernel's cycle-DUT bridge, which reads
/// `read_u64().unwrap_or(0)`).
pub struct LaneBank {
    duts: Vec<Box<dyn CycleDut>>,
    in_ports: Vec<PortDecl>,
    out_ports: Vec<PortDecl>,
    in_base: Vec<usize>,
    out_base: Vec<usize>,
    in_words: Vec<PackedBit>,
    out_words: Vec<PackedBit>,
    cycles: u64,
}

impl fmt::Debug for LaneBank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LaneBank")
            .field("lanes", &self.duts.len())
            .field("in_ports", &self.in_ports)
            .field("out_ports", &self.out_ports)
            .field("cycles", &self.cycles)
            .finish_non_exhaustive()
    }
}

fn port_layout(ports: &[PortDecl]) -> (Vec<usize>, usize) {
    let mut base = Vec::with_capacity(ports.len());
    let mut words = 0;
    for p in ports {
        base.push(words);
        words += p.width;
    }
    (base, words)
}

impl LaneBank {
    /// Builds a bank from one DUT instance per lane. All instances must
    /// declare identical port lists. Instances are taken as configured —
    /// they are *not* reset, matching [`crate::cycle::CycleSim::new`], so
    /// pre-installed state (routing tables, …) survives banking. Panics on
    /// an empty bank, more than [`LANES`] instances, or mismatched ports.
    #[must_use]
    pub fn new(duts: Vec<Box<dyn CycleDut>>) -> Self {
        assert!(!duts.is_empty(), "lane bank needs at least one DUT");
        assert!(duts.len() <= LANES, "at most {LANES} lanes");
        let in_ports = duts[0].input_ports();
        let out_ports = duts[0].output_ports();
        for d in &duts[1..] {
            assert!(
                d.input_ports() == in_ports && d.output_ports() == out_ports,
                "lane bank DUTs must declare identical ports"
            );
        }
        let (in_base, in_words) = port_layout(&in_ports);
        let (out_base, out_words) = port_layout(&out_ports);
        LaneBank {
            duts,
            in_ports,
            out_ports,
            in_base,
            out_base,
            in_words: vec![PackedBit::default(); in_words],
            out_words: vec![PackedBit::default(); out_words],
            cycles: 0,
        }
    }

    /// Number of lanes (DUT instances).
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.duts.len()
    }

    /// Declared input ports (identical across lanes).
    #[must_use]
    pub fn input_ports(&self) -> &[PortDecl] {
        &self.in_ports
    }

    /// Declared output ports (identical across lanes).
    #[must_use]
    pub fn output_ports(&self) -> &[PortDecl] {
        &self.out_ports
    }

    /// Clock edges executed.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Forks the bank: every lane's DUT is duplicated via
    /// [`CycleDut::fork_dut`] and the packed pin state and cycle count are
    /// copied, so the fork replays identically from this point. Returns
    /// `None` when any lane's DUT does not support forking.
    #[must_use]
    pub fn fork(&self) -> Option<Self> {
        let mut duts = Vec::with_capacity(self.duts.len());
        for d in &self.duts {
            duts.push(d.fork_dut()?);
        }
        Some(LaneBank {
            duts,
            in_ports: self.in_ports.clone(),
            out_ports: self.out_ports.clone(),
            in_base: self.in_base.clone(),
            out_base: self.out_base.clone(),
            in_words: self.in_words.clone(),
            out_words: self.out_words.clone(),
            cycles: self.cycles,
        })
    }

    /// Lane `lane`'s DUT instance.
    #[must_use]
    pub fn dut(&self, lane: usize) -> &dyn CycleDut {
        self.duts[lane].as_ref()
    }

    /// Mutable access to lane `lane`'s DUT instance.
    pub fn dut_mut(&mut self, lane: usize) -> &mut dyn CycleDut {
        self.duts[lane].as_mut()
    }

    /// `true` when every lane's DUT reports idle — the bank-wide
    /// gated-clock park condition.
    #[must_use]
    pub fn idle(&self) -> bool {
        self.duts.iter().all(|d| d.is_idle())
    }

    /// Scatters `value` into input port `port` of lane `lane`.
    pub fn set_input(&mut self, lane: usize, port: usize, value: u64) {
        assert!(lane < self.duts.len(), "lane out of range");
        let decl = &self.in_ports[port];
        assert_eq!(value & !decl.mask(), 0, "value exceeds {} bits", decl.width);
        let base = self.in_base[port];
        for bit in 0..decl.width {
            self.in_words[base + bit].set_lane(lane, Logic::from_bool(value >> bit & 1 == 1));
        }
    }

    /// Scatters a full input-port value list into lane `lane`.
    pub fn set_inputs(&mut self, lane: usize, values: &[u64]) {
        assert_eq!(values.len(), self.in_ports.len(), "input port count");
        for (port, &v) in values.iter().enumerate() {
            self.set_input(lane, port, v);
        }
    }

    /// Gathers input port `port` of lane `lane` back from the pin words
    /// (unknown lanes read `0`).
    #[must_use]
    pub fn input(&self, lane: usize, port: usize) -> u64 {
        let base = self.in_base[port];
        gather(&self.in_words[base..base + self.in_ports[port].width], lane)
    }

    /// Output port `port` of lane `lane` after the latest clock edge.
    #[must_use]
    pub fn output(&self, lane: usize, port: usize) -> u64 {
        let base = self.out_base[port];
        gather(
            &self.out_words[base..base + self.out_ports[port].width],
            lane,
        )
    }

    /// One clock edge on every lane: gather each lane's pin words to
    /// integers, step that lane's DUT, scatter its outputs back.
    pub fn clock_edge(&mut self) {
        let mut inputs = vec![0u64; self.in_ports.len()];
        for lane in 0..self.duts.len() {
            for (port, value) in inputs.iter_mut().enumerate() {
                let base = self.in_base[port];
                *value = gather(&self.in_words[base..base + self.in_ports[port].width], lane);
            }
            let outputs = self.duts[lane].clock_edge(&inputs);
            for (port, &value) in outputs.iter().enumerate() {
                let base = self.out_base[port];
                for bit in 0..self.out_ports[port].width {
                    self.out_words[base + bit]
                        .set_lane(lane, Logic::from_bool(value >> bit & 1 == 1));
                }
            }
        }
        self.cycles += 1;
    }
}

fn gather(words: &[PackedBit], lane: usize) -> u64 {
    let mut v = 0u64;
    for (bit, w) in words.iter().enumerate() {
        if w.lane(lane).is_one() {
            v |= 1 << bit;
        }
    }
    v
}

/// Lowerable reference gates: small [`crate::sim::RtlProcess`]es whose
/// `run` (event-kernel) and `lower` (compiled) implementations are written
/// against the same X01 semantics, used by the differential property tests
/// and the `e11_compiled` benchmark.
pub mod gates {
    use super::{LowerCtx, Op};
    use crate::logic::Logic;
    use crate::netlist::ProcessIo;
    use crate::signal::SignalId;
    use crate::sim::{RtlCtx, RtlProcess};

    /// Combinational bitwise inverter: `y = not a` (equal widths).
    #[derive(Debug)]
    pub struct Inv {
        name: String,
        /// Input.
        pub a: SignalId,
        /// Output.
        pub y: SignalId,
    }

    impl Inv {
        /// New inverter `y = not a`.
        #[must_use]
        pub fn new(name: impl Into<String>, a: SignalId, y: SignalId) -> Self {
            Inv {
                name: name.into(),
                a,
                y,
            }
        }
    }

    impl RtlProcess for Inv {
        fn run(&mut self, ctx: &mut RtlCtx) {
            let v = ctx.read(self.a).clone();
            let bits: Vec<Logic> = v.iter().map(Logic::not).collect();
            ctx.assign(self.y, crate::vector::LogicVector::from_bits(&bits));
        }

        fn io(&self) -> Option<ProcessIo> {
            Some(
                ProcessIo::combinational(self.name.clone())
                    .reads([self.a])
                    .writes([self.y]),
            )
        }

        fn lower(&self, ctx: &mut LowerCtx) -> bool {
            for bit in 0..ctx.width(self.a) {
                let a = ctx.read(self.a, bit);
                let dst = ctx.output(self.y, bit);
                ctx.emit(Op::Not { dst, a });
            }
            true
        }
    }

    /// Registered inverter: `q <= not d` on the rising edge of `clk`.
    /// The unit stage of the `e11_compiled` benchmark pipeline.
    #[derive(Debug)]
    pub struct InvReg {
        name: String,
        /// Clock.
        pub clk: SignalId,
        /// Data input (sampled pre-edge).
        pub d: SignalId,
        /// Registered output.
        pub q: SignalId,
    }

    impl InvReg {
        /// New register `q <= not d @ posedge clk`.
        #[must_use]
        pub fn new(name: impl Into<String>, clk: SignalId, d: SignalId, q: SignalId) -> Self {
            InvReg {
                name: name.into(),
                clk,
                d,
                q,
            }
        }
    }

    impl RtlProcess for InvReg {
        fn run(&mut self, ctx: &mut RtlCtx) {
            if !ctx.rising(self.clk) {
                return;
            }
            let v = ctx.read(self.d).clone();
            let bits: Vec<Logic> = v.iter().map(Logic::not).collect();
            ctx.assign(self.q, crate::vector::LogicVector::from_bits(&bits));
        }

        fn io(&self) -> Option<ProcessIo> {
            Some(
                ProcessIo::clocked(self.name.clone(), self.clk)
                    .reads([self.clk, self.d])
                    .writes([self.q]),
            )
        }

        fn lower(&self, ctx: &mut LowerCtx) -> bool {
            for bit in 0..ctx.width(self.d) {
                let a = ctx.read(self.d, bit);
                let dst = ctx.output(self.q, bit);
                ctx.emit(Op::Not { dst, a });
            }
            true
        }
    }

    /// Combinational XOR reduction of 1-bit inputs: `y = a0 ^ a1 ^ ...`,
    /// X-propagating (any unknown input makes `y` unknown), exactly as a
    /// fold of [`Logic::xor`] behaves in the event kernel.
    #[derive(Debug)]
    pub struct XorReduce {
        name: String,
        /// 1-bit inputs.
        pub inputs: Vec<SignalId>,
        /// 1-bit output.
        pub y: SignalId,
    }

    impl XorReduce {
        /// New reduction `y = inputs[0] ^ inputs[1] ^ ...`.
        #[must_use]
        pub fn new(name: impl Into<String>, inputs: Vec<SignalId>, y: SignalId) -> Self {
            assert!(!inputs.is_empty(), "xor reduction needs inputs");
            XorReduce {
                name: name.into(),
                inputs,
                y,
            }
        }
    }

    impl RtlProcess for XorReduce {
        fn run(&mut self, ctx: &mut RtlCtx) {
            let mut acc = ctx.read_bit(self.inputs[0]);
            for &s in &self.inputs[1..] {
                acc = acc.xor(ctx.read_bit(s));
            }
            ctx.assign_bit(self.y, acc);
        }

        fn io(&self) -> Option<ProcessIo> {
            Some(
                ProcessIo::combinational(self.name.clone())
                    .reads(self.inputs.iter().copied())
                    .writes([self.y]),
            )
        }

        fn lower(&self, ctx: &mut LowerCtx) -> bool {
            let dst = ctx.output(self.y, 0);
            let mut acc = ctx.read(self.inputs[0], 0);
            for (i, &s) in self.inputs.iter().enumerate().skip(1) {
                let b = ctx.read(s, 0);
                let next = if i + 1 == self.inputs.len() {
                    dst
                } else {
                    ctx.temp()
                };
                ctx.emit(Op::Xor {
                    dst: next,
                    a: acc,
                    b,
                });
                acc = next;
            }
            if self.inputs.len() == 1 {
                ctx.emit(Op::Copy { dst, a: acc });
            }
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::gates::{Inv, InvReg, XorReduce};
    use super::*;
    use crate::cycle::CycleDut;
    use crate::logic::Logic;
    use crate::sim::Simulator;
    use castanet_netsim::time::SimTime;

    /// The packed kernels must match the scalar `Logic` operators on every
    /// X01 input pair — the X-propagation divergence class, exhaustively.
    #[test]
    fn packed_kernels_match_scalar_logic_truth_tables() {
        let domain = [Logic::Zero, Logic::One, Logic::X];
        for &a in &domain {
            let pa = PackedBit::splat(a);
            assert_eq!((!pa).lane(0), a.not(), "not {a:?}");
            assert_eq!((!pa).lane(63), a.not(), "not {a:?} lane 63");
            for &b in &domain {
                let pb = PackedBit::splat(b);
                assert_eq!(pa.and(pb).lane(7), a.and(b), "{a:?} and {b:?}");
                assert_eq!(pa.or(pb).lane(7), a.or(b), "{a:?} or {b:?}");
                assert_eq!(pa.xor(pb).lane(7), a.xor(b), "{a:?} xor {b:?}");
            }
        }
    }

    /// The full nine-value system collapses through the packed form the
    /// same way `Logic::to_x01` does.
    #[test]
    fn packing_collapses_nine_values_to_x01() {
        for &v in &Logic::ALL {
            let mut w = PackedBit::ALL_X;
            w.set_lane(13, v);
            assert_eq!(w.lane(13), v.to_x01().to_x01(), "{v:?}");
            assert_eq!(w.lane(12), Logic::X, "neighbour untouched");
        }
    }

    #[test]
    fn kernels_preserve_the_val_unk_invariant() {
        let domain = [Logic::Zero, Logic::One, Logic::X];
        let ok = |w: PackedBit| w.val & w.unk == 0;
        for &a in &domain {
            for &b in &domain {
                for &s in &domain {
                    let (pa, pb, ps) = (
                        PackedBit::splat(a),
                        PackedBit::splat(b),
                        PackedBit::splat(s),
                    );
                    assert!(ok(!pa));
                    assert!(ok(pa.and(pb)));
                    assert!(ok(pa.or(pb)));
                    assert!(ok(pa.xor(pb)));
                    assert!(ok(PackedBit::mux(ps, pa, pb)));
                }
            }
        }
    }

    #[test]
    fn mux_is_pessimistic_on_unknown_select() {
        let one = PackedBit::splat(Logic::One);
        let sel_x = PackedBit::splat(Logic::X);
        // Both inputs agree, but an unknown select still yields X.
        assert_eq!(PackedBit::mux(sel_x, one, one).lane(0), Logic::X);
        assert_eq!(
            PackedBit::mux(
                PackedBit::splat(Logic::One),
                one,
                PackedBit::splat(Logic::Zero)
            )
            .lane(0),
            Logic::One
        );
    }

    #[test]
    fn pack_unpack_round_trips_vectors() {
        let vecs: Vec<LogicVector> = (0..5)
            .map(|i| LogicVector::from_u64(0x1B * (i + 1), 9))
            .collect();
        let words = pack_vectors(&vecs);
        assert_eq!(words.len(), 9);
        let back = unpack_vectors(&words, 5);
        assert_eq!(back, vecs);
        // Lanes past the packed count are X.
        assert!(unpack_vectors(&words, 6)[5].iter().all(|b| b == Logic::X));
    }

    fn two_level_fixture() -> (Simulator, SignalId, SignalId, SignalId, SignalId) {
        // a -> inv -> m;  (m, b) -> xor -> y   — two combinational levels.
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 1);
        let b = sim.add_signal("b", 1);
        let m = sim.add_signal("m", 1);
        let y = sim.add_signal("y", 1);
        sim.mark_external_input(a);
        sim.mark_external_input(b);
        sim.mark_external_output(y);
        sim.add_process(Box::new(Inv::new("inv", a, m)), &[a]);
        sim.add_process(Box::new(XorReduce::new("xor", vec![m, b], y)), &[m, b]);
        (sim, a, b, m, y)
    }

    /// The delta-race divergence class: a two-level cone where level 1
    /// reads a level-0 output. The compiled sweep must order the inverter
    /// before the xor and reach the same fixpoint the event kernel settles
    /// to through delta cycles.
    #[test]
    fn two_level_cone_matches_event_kernel_fixpoint() {
        let (mut sim, a, b, _m, y) = two_level_fixture();
        let schedule = CompiledSchedule::compile(&sim).expect("compiles");
        assert_eq!(schedule.level_count(), 2);
        let mut csim = CompiledSim::new(schedule, 4);

        let cases = [
            (Logic::Zero, Logic::Zero),
            (Logic::Zero, Logic::One),
            (Logic::One, Logic::Zero),
            (Logic::One, Logic::X),
        ];
        for (lane, &(va, vb)) in cases.iter().enumerate() {
            csim.poke(a, lane, &LogicVector::from(va)).unwrap();
            csim.poke(b, lane, &LogicVector::from(vb)).unwrap();
        }
        csim.settle();

        for (lane, &(va, vb)) in cases.iter().enumerate() {
            let t = SimTime::from_ns(10 * (lane as u64 + 1));
            sim.poke_bit(a, va, t).unwrap();
            sim.poke_bit(b, vb, t).unwrap();
            sim.run_until(SimTime::from_ns(10 * (lane as u64 + 1) + 1))
                .unwrap();
            assert_eq!(
                csim.read_bit(y, lane),
                sim.read_bit(y).to_x01(),
                "lane {lane}: a={va:?} b={vb:?}"
            );
        }
    }

    /// Sequential sync: a register chain must sample pre-edge values —
    /// after one clock, stage k+1 holds what stage k held *before* the
    /// edge, regardless of op order. X from power-on must march through.
    #[test]
    fn register_pipeline_latches_pre_edge_state() {
        let mut sim = Simulator::new();
        let clk = sim.add_signal("clk", 1);
        sim.mark_external_input(clk);
        let d = sim.add_signal("d", 1);
        sim.mark_external_input(d);
        let q1 = sim.add_signal("q1", 1);
        let q2 = sim.add_signal("q2", 1);
        sim.add_process_rising(Box::new(InvReg::new("r1", clk, d, q1)), &[clk], &[]);
        sim.add_process_rising(Box::new(InvReg::new("r2", clk, q1, q2)), &[clk], &[]);

        let schedule = CompiledSchedule::compile(&sim).expect("compiles");
        assert!(schedule.fully_lowered());
        let mut csim = CompiledSim::new(schedule, 2);

        csim.poke(d, 0, &LogicVector::from(Logic::One)).unwrap();
        csim.poke(d, 1, &LogicVector::from(Logic::Zero)).unwrap();
        // Edge 1: q1 <= not d; q2 <= not q1(old) = not X = X.
        csim.clock();
        assert_eq!(csim.read_bit(q1, 0), Logic::Zero);
        assert_eq!(csim.read_bit(q1, 1), Logic::One);
        assert_eq!(csim.read_bit(q2, 0), Logic::X, "pre-edge q1 was X");
        // Edge 2: q2 <= not q1(pre-edge).
        csim.clock();
        assert_eq!(csim.read_bit(q2, 0), Logic::One);
        assert_eq!(csim.read_bit(q2, 1), Logic::Zero);
        assert_eq!(csim.cycles(), 2);
    }

    /// Telemetry on the schedule engine: every clock edge counts one
    /// `compiled.schedule_evals`, and with enough edges the 1-in-N micro
    /// sampler records at least one `compiled.schedule_eval` phase span.
    #[test]
    fn schedule_evals_are_counted_and_phase_sampled() {
        let mut sim = Simulator::new();
        let clk = sim.add_signal("clk", 1);
        sim.mark_external_input(clk);
        let d = sim.add_signal("d", 1);
        sim.mark_external_input(d);
        let q = sim.add_signal("q", 1);
        sim.add_process_rising(Box::new(InvReg::new("r", clk, d, q)), &[clk], &[]);
        let schedule = CompiledSchedule::compile(&sim).expect("compiles");
        let mut csim = CompiledSim::new(schedule, 2);

        let tel = Telemetry::enabled();
        csim.set_telemetry(&tel);
        let edges = 4 * castanet_obs::MICRO_SAMPLE_STRIDE;
        for _ in 0..edges {
            csim.clock();
        }
        assert_eq!(
            tel.metrics_snapshot().counter("compiled.schedule_evals"),
            Some(edges)
        );
        let sampled = tel
            .events()
            .iter()
            .filter(|e| e.kind.name() == Phase::CompiledScheduleEval.name())
            .count() as u64;
        assert!(
            sampled > 0 && sampled <= edges.div_ceil(castanet_obs::MICRO_SAMPLE_STRIDE),
            "expected ~1-in-{} sampling of {edges} edges, saw {sampled}",
            castanet_obs::MICRO_SAMPLE_STRIDE
        );
    }

    #[test]
    fn unlowered_combinational_is_rejected() {
        struct Plain {
            a: SignalId,
            y: SignalId,
        }
        impl crate::sim::RtlProcess for Plain {
            fn run(&mut self, ctx: &mut crate::sim::RtlCtx) {
                let v = ctx.read_bit(self.a).not();
                ctx.assign_bit(self.y, v);
            }
            fn io(&self) -> Option<crate::netlist::ProcessIo> {
                Some(
                    crate::netlist::ProcessIo::combinational("plain")
                        .reads([self.a])
                        .writes([self.y]),
                )
            }
        }
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 1);
        sim.mark_external_input(a);
        let y = sim.add_signal("y", 1);
        sim.mark_external_output(y);
        sim.add_process(Box::new(Plain { a, y }), &[a]);
        match CompiledSchedule::compile(&sim) {
            Err(CompileError::UnloweredCombinational { process }) => {
                assert_eq!(process, "plain");
            }
            other => panic!("expected UnloweredCombinational, got {other:?}"),
        }
    }

    /// A tiny behavioral DUT for the lane-bank tests: one-cycle-delayed
    /// accumulator of a 4-bit input.
    #[derive(Debug, Default)]
    struct Accum {
        total: u64,
    }
    impl CycleDut for Accum {
        fn input_ports(&self) -> Vec<PortDecl> {
            vec![PortDecl::new("din", 4)]
        }
        fn output_ports(&self) -> Vec<PortDecl> {
            vec![PortDecl::new("sum", 16)]
        }
        fn reset(&mut self) {
            self.total = 0;
        }
        fn clock_edge(&mut self, inputs: &[u64]) -> Vec<u64> {
            self.total = (self.total + inputs[0]) & 0xFFFF;
            vec![self.total]
        }
        fn is_idle(&self) -> bool {
            true
        }
    }

    #[test]
    fn lane_bank_keeps_lanes_independent() {
        let duts: Vec<Box<dyn CycleDut>> =
            (0..8).map(|_| Box::new(Accum::default()) as _).collect();
        let mut bank = LaneBank::new(duts);
        assert_eq!(bank.lanes(), 8);
        assert!(bank.idle());
        for clockno in 1..=3u64 {
            for lane in 0..8 {
                bank.set_input(lane, 0, lane as u64 + 1);
            }
            bank.clock_edge();
            for lane in 0..8u64 {
                assert_eq!(bank.output(lane as usize, 0), clockno * (lane + 1));
            }
        }
        assert_eq!(bank.cycles(), 3);
        // Gather/scatter round-trips the pin words.
        assert_eq!(bank.input(5, 0), 6);
    }

    #[test]
    #[should_panic(expected = "identical ports")]
    fn lane_bank_rejects_mismatched_ports() {
        #[derive(Debug)]
        struct Other;
        impl CycleDut for Other {
            fn input_ports(&self) -> Vec<PortDecl> {
                vec![PortDecl::new("x", 2)]
            }
            fn output_ports(&self) -> Vec<PortDecl> {
                vec![PortDecl::new("y", 2)]
            }
            fn reset(&mut self) {}
            fn clock_edge(&mut self, _inputs: &[u64]) -> Vec<u64> {
                vec![0]
            }
        }
        let _ = LaneBank::new(vec![Box::new(Accum::default()), Box::new(Other)]);
    }
}
