//! The event-driven simulation kernel with delta cycles.
//!
//! This is the workspace's stand-in for the Synopsys VHDL System Simulator:
//! processes with sensitivity lists, signal transactions scheduled for
//! future times or for the next *delta cycle* at the current time, and a
//! time-ordered queue executing them — the model of computation the paper's
//! §3.1 synchronization protocol assumes on the HDL side.
//!
//! The kernel counts executed transactions, events, delta cycles and
//! process activations; those counters feed experiment E7 (the paper's
//! closing observation that "the number of events that event-driven
//! simulators have to evaluate is an order of magnitude higher compared to
//! the system-level simulation").

use crate::error::RtlError;
use crate::logic::Logic;
use crate::netlist::{GatedClockLink, NetProcess, NetSignal, NetlistGraph, ProcessIo};
use crate::signal::{ProcId, SignalId, SignalInfo, SignalState};
use crate::vector::LogicVector;
use crate::wheel::TimingWheel;
use castanet_netsim::time::{SimDuration, SimTime};
use castanet_obs::{Counter, Gauge, Phase, Telemetry, Track};
use std::collections::HashMap;

/// A pending signal assignment or process wake-up. Time lives in the
/// scheduling structure (wheel slot or delta queue), not the entry;
/// `seq` is the global scheduling order that breaks same-time ties.
#[derive(Debug)]
struct Pending {
    seq: u64,
    action: Action,
}

#[derive(Debug)]
enum Action {
    Assign {
        driver: ProcId,
        signal: SignalId,
        value: LogicVector,
    },
    Wake(ProcId),
}

/// Sentinel for "signal is not traced" in the dense trace-index table.
const NOT_TRACED: u32 = u32::MAX;

/// A hardware process: the unit of behaviour, equivalent to a VHDL
/// `process` statement with a static sensitivity list.
pub trait RtlProcess: Send {
    /// Called once at elaboration. Register initial assignments here.
    fn init(&mut self, ctx: &mut RtlCtx) {
        let _ = ctx;
    }

    /// Called whenever a signal in the process's sensitivity list has an
    /// event, or a scheduled wake-up fires.
    fn run(&mut self, ctx: &mut RtlCtx);

    /// The process's structural self-description — read set, write set and
    /// kind — captured by the simulator at registration time and exposed
    /// through [`Simulator::netlist`]. The default `None` declares the
    /// process *opaque*: structural analyses skip it rather than guess.
    fn io(&self) -> Option<ProcessIo> {
        None
    }

    /// Emits this process's behaviour as word-level ops for the compiled
    /// bit-parallel backend (see [`crate::compiled`]) and returns `true`,
    /// or returns `false` (the default) to declare it not lowerable.
    /// Implementations must agree with [`RtlProcess::run`] on the X01
    /// domain; clocked processes must assign every output unconditionally
    /// (hold is a mux of the old value, not a skipped write).
    fn lower(&self, ctx: &mut crate::compiled::LowerCtx<'_>) -> bool {
        let _ = ctx;
        false
    }
}

/// Per-process registration record: the sensitivity lists as declared
/// (deduplicated) plus the structural self-description.
#[derive(Debug)]
struct ProcMeta {
    any: Vec<SignalId>,
    rising: Vec<SignalId>,
    io: Option<ProcessIo>,
}

/// Counter block for engine-comparison experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimCounters {
    /// Signal transactions applied (driver updates).
    pub transactions: u64,
    /// Signal events (resolved-value changes).
    pub events: u64,
    /// Delta cycles executed.
    pub delta_cycles: u64,
    /// Process activations.
    pub process_runs: u64,
    /// Distinct simulation time points visited.
    pub time_steps: u64,
}

/// The event-driven simulator.
///
/// # Examples
///
/// An inverter driven by a clock:
///
/// ```
/// use castanet_rtl::sim::{RtlCtx, RtlProcess, Simulator};
/// use castanet_rtl::logic::Logic;
/// use castanet_netsim::time::{SimDuration, SimTime};
///
/// struct Inverter { a: castanet_rtl::signal::SignalId, y: castanet_rtl::signal::SignalId }
/// impl RtlProcess for Inverter {
///     fn run(&mut self, ctx: &mut RtlCtx) {
///         let v = ctx.read_bit(self.a).not();
///         ctx.assign_bit(self.y, v);
///     }
/// }
///
/// let mut sim = Simulator::new();
/// let a = sim.add_signal("a", 1);
/// let y = sim.add_signal("y", 1);
/// let p = sim.add_process(Box::new(Inverter { a, y }), &[a]);
/// # let _ = p;
/// sim.poke_bit(a, Logic::Zero, SimTime::ZERO)?;
/// sim.poke_bit(a, Logic::One, SimTime::from_ns(10))?;
/// sim.run_until(SimTime::from_ns(20))?;
/// assert_eq!(sim.read_bit(y), Logic::Zero);
/// # Ok::<(), castanet_rtl::error::RtlError>(())
/// ```
pub struct Simulator {
    signals: Vec<SignalState>,
    names: HashMap<String, SignalId>,
    processes: Vec<Option<Box<dyn RtlProcess>>>,
    /// Dense watcher table, indexed by signal: processes sensitive to it.
    /// Deduplicated at [`Simulator::add_process`] time.
    watchers: Vec<Vec<ProcId>>,
    /// Rising-edge-only watchers, indexed by signal: woken only when the
    /// event drives bit 0 to `One`. Clocked processes that ignore falling
    /// edges register here and skip half of all clock wake-ups.
    watchers_rising: Vec<Vec<ProcId>>,
    /// Per-process registration metadata for netlist introspection.
    proc_meta: Vec<ProcMeta>,
    /// Per-signal external-input pin marks (see
    /// [`Simulator::mark_external_input`]).
    external_in: Vec<bool>,
    /// Per-signal external-output pin marks.
    external_out: Vec<bool>,
    /// Per-signal clock-root marks (outputs of `add_clock` /
    /// `add_gated_clock`).
    clock_roots: Vec<bool>,
    /// Gated clock → busy control links, one per `add_gated_clock`.
    gated_links: Vec<GatedClockLink>,
    /// Future transactions, keyed by absolute picosecond.
    queue: TimingWheel<Pending>,
    /// Zero-delay transactions staged for the next delta cycle at `now`.
    /// Keeping these out of the wheel makes delta churn a plain
    /// `Vec` push/drain.
    delta: Vec<Pending>,
    /// Scratch: the transaction batch of the delta cycle being applied.
    batch: Vec<Pending>,
    /// Scratch: processes to wake this delta cycle, in first-wake order.
    wake: Vec<ProcId>,
    /// Dense per-process "already in `wake`" flags (reusable bitset).
    woken: Vec<bool>,
    /// Scratch for `RtlCtx::staged`, reused across process activations.
    staged_scratch: Vec<(SignalId, LogicVector, SimDuration)>,
    /// Scratch for `RtlCtx::wakes`, reused across process activations.
    wakes_scratch: Vec<SimDuration>,
    next_seq: u64,
    now: SimTime,
    counters: SimCounters,
    elaborated: bool,
    max_deltas: u32,
    traced: Vec<SignalId>,
    /// Dense signal → index-in-`traced` table ([`NOT_TRACED`] otherwise).
    trace_pos: Vec<u32>,
    trace_log: Vec<(SimTime, usize, LogicVector)>,
    /// Pending-queue depth at each advance-window boundary
    /// (`rtl.queue_depth`).
    obs_queue_depth: Gauge,
    /// Wheel cascade relocations (`rtl.wheel_cascade`).
    obs_wheel_cascade: Counter,
    /// Occupied wheel slots at each advance-window boundary
    /// (`rtl.wheel_occupancy`).
    obs_wheel_occupancy: Gauge,
    /// Telemetry handle for the sampled kernel micro-phases
    /// (`kernel.pop`/`kernel.eval`/`kernel.delta`) and the
    /// `kernel.advance` span.
    tel: Telemetry,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("signals", &self.signals.len())
            .field("processes", &self.processes.len())
            .field("pending", &(self.queue.len() + self.delta.len()))
            .finish()
    }
}

impl Default for Simulator {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulator {
    /// Creates an empty simulator at time zero.
    #[must_use]
    pub fn new() -> Self {
        Simulator {
            signals: Vec::new(),
            names: HashMap::new(),
            processes: Vec::new(),
            watchers: Vec::new(),
            watchers_rising: Vec::new(),
            proc_meta: Vec::new(),
            external_in: Vec::new(),
            external_out: Vec::new(),
            clock_roots: Vec::new(),
            gated_links: Vec::new(),
            queue: TimingWheel::new(),
            delta: Vec::new(),
            batch: Vec::new(),
            wake: Vec::new(),
            woken: Vec::new(),
            staged_scratch: Vec::new(),
            wakes_scratch: Vec::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            counters: SimCounters::default(),
            elaborated: false,
            max_deltas: 10_000,
            traced: Vec::new(),
            trace_pos: Vec::new(),
            trace_log: Vec::new(),
            obs_queue_depth: Gauge::default(),
            obs_wheel_cascade: Counter::default(),
            obs_wheel_occupancy: Gauge::default(),
            tel: Telemetry::disabled(),
        }
    }

    /// Binds the kernel's telemetry instruments (`rtl.queue_depth`,
    /// `rtl.wheel_cascade`, `rtl.wheel_occupancy`) to `tel`'s registry and
    /// arms the sampled kernel micro-phases. With the default disabled
    /// telemetry the instruments are no-ops.
    pub fn set_telemetry(&mut self, tel: &Telemetry) {
        self.tel = tel.clone();
        self.obs_queue_depth = tel.gauge("rtl.queue_depth");
        self.obs_wheel_cascade = tel.counter("rtl.wheel_cascade");
        self.obs_wheel_occupancy = tel.gauge("rtl.wheel_occupancy");
    }

    /// Marks a signal for waveform tracing; its events will appear in the
    /// VCD written by [`Simulator::write_vcd`].
    pub fn trace(&mut self, signal: SignalId) {
        if self.trace_pos[signal.0] == NOT_TRACED {
            self.trace_pos[signal.0] = u32::try_from(self.traced.len()).expect("trace count");
            self.traced.push(signal);
        }
    }

    /// Writes all traced events as a VCD stream. Pass a `File` (or any
    /// `Write`; a `&mut Vec<u8>` works for tests).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_vcd<W: std::io::Write>(&self, w: W, module: &str) -> Result<(), RtlError> {
        let vars: Vec<crate::wave::VcdVar> = self
            .traced
            .iter()
            .map(|&id| crate::wave::VcdVar {
                name: self.signals[id.0].name.clone(),
                width: self.signals[id.0].width,
            })
            .collect();
        crate::wave::write_vcd(w, module, &vars, &self.trace_log)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Elaboration
    // ------------------------------------------------------------------

    /// Declares a signal of `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or the name is already taken.
    pub fn add_signal(&mut self, name: impl Into<String>, width: usize) -> SignalId {
        assert!(width > 0, "signal width must be non-zero");
        let name = name.into();
        assert!(
            !self.names.contains_key(&name),
            "signal name {name:?} already declared"
        );
        let id = SignalId(self.signals.len());
        self.signals.push(SignalState::new(name.clone(), width));
        self.watchers.push(Vec::new());
        self.watchers_rising.push(Vec::new());
        self.external_in.push(false);
        self.external_out.push(false);
        self.clock_roots.push(false);
        self.trace_pos.push(NOT_TRACED);
        self.names.insert(name, id);
        id
    }

    /// Declares `signal` an external input pin: the test bench or
    /// co-simulation entity drives it via [`Simulator::poke`], so the
    /// structural analyses must not flag it as undriven.
    pub fn mark_external_input(&mut self, signal: SignalId) {
        self.external_in[signal.0] = true;
    }

    /// Declares `signal` an external output pin: observed from outside the
    /// kernel via [`Simulator::read`], so the structural analyses must not
    /// flag it as dead.
    pub fn mark_external_output(&mut self, signal: SignalId) {
        self.external_out[signal.0] = true;
    }

    /// Adds a process with a static sensitivity list. A signal appearing
    /// more than once in the list (or the process being registered on it
    /// twice) still wakes the process only once per event, matching VHDL
    /// sensitivity semantics.
    pub fn add_process(
        &mut self,
        process: Box<dyn RtlProcess>,
        sensitivity: &[SignalId],
    ) -> ProcId {
        let id = ProcId(self.processes.len());
        let io = process.io();
        self.processes.push(Some(process));
        self.woken.push(false);
        let mut any = Vec::new();
        for &s in sensitivity {
            let watchers = &mut self.watchers[s.0];
            if !watchers.contains(&id) {
                watchers.push(id);
                any.push(s);
            }
        }
        self.proc_meta.push(ProcMeta {
            any,
            rising: Vec::new(),
            io,
        });
        id
    }

    /// Adds a process with an edge-filtered sensitivity list: signals in
    /// `rising` wake it only on rising edges (bit 0 driven to `One`),
    /// signals in `any` on every event. A clocked process that ignores
    /// falling edges registered this way skips half of all clock wake-ups
    /// — the same dedup rules as [`Simulator::add_process`] apply, and a
    /// signal listed in both `any` and `rising` keeps the stronger `any`
    /// subscription.
    pub fn add_process_rising(
        &mut self,
        process: Box<dyn RtlProcess>,
        rising: &[SignalId],
        any: &[SignalId],
    ) -> ProcId {
        let id = self.add_process(process, any);
        for &s in rising {
            let watchers = &mut self.watchers_rising[s.0];
            if !self.watchers[s.0].contains(&id) && !watchers.contains(&id) {
                watchers.push(id);
                self.proc_meta[id.0].rising.push(s);
            }
        }
        id
    }

    /// Adds a free-running clock: a signal toggling every `period / 2`,
    /// starting low at time zero with its first rising edge at `period / 2`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is shorter than 2 ps (cannot split into half
    /// periods).
    pub fn add_clock(&mut self, name: impl Into<String>, period: SimDuration) -> SignalId {
        let half = period / 2;
        assert!(!half.is_zero(), "clock period too short");
        let clk = self.add_signal(name, 1);
        struct ClockGen {
            clk: SignalId,
            half: SimDuration,
            level: bool,
        }
        impl RtlProcess for ClockGen {
            fn init(&mut self, ctx: &mut RtlCtx) {
                ctx.assign_bit(self.clk, Logic::Zero);
                ctx.wake_after(self.half);
            }
            fn run(&mut self, ctx: &mut RtlCtx) {
                self.level = !self.level;
                ctx.assign_bit(self.clk, Logic::from_bool(self.level));
                ctx.wake_after(self.half);
            }
            fn io(&self) -> Option<ProcessIo> {
                Some(ProcessIo::generator("clock_gen").writes([self.clk]))
            }
        }
        self.add_process(
            Box::new(ClockGen {
                clk,
                half,
                level: false,
            }),
            &[],
        );
        self.clock_roots[clk.0] = true;
        clk
    }

    /// Adds a *gated* clock: same grid as [`Simulator::add_clock`] (low at
    /// time zero, rising edges at odd multiples of `period / 2`), but the
    /// generator parks — holding the line low and scheduling nothing —
    /// whenever the 1-bit `busy` signal is low at a would-be rising edge,
    /// and resumes on the next `busy` event. Resumed rising edges always
    /// land back on the original grid, so any process that samples on
    /// rising edges observes *exactly* the free-running behaviour; only
    /// the idle toggling between de-assert and re-assert disappears. This
    /// is the event-driven kernel's idle-time optimization: with a DUT
    /// that reports quiescence (see [`crate::cycle::CycleDut::is_idle`]),
    /// long stimulus gaps cost zero simulation events instead of two per
    /// clock period.
    ///
    /// # Panics
    ///
    /// Panics if `period` is shorter than 2 ps.
    pub fn add_gated_clock(
        &mut self,
        name: impl Into<String>,
        period: SimDuration,
        busy: SignalId,
    ) -> SignalId {
        let half = period / 2;
        assert!(!half.is_zero(), "clock period too short");
        let clk = self.add_signal(name, 1);
        struct GatedClockGen {
            clk: SignalId,
            busy: SignalId,
            half: SimDuration,
            half_ps: u64,
            level: bool,
            /// A grid wake is pending at `next_edge`.
            scheduled: bool,
            next_edge: u64,
        }
        impl GatedClockGen {
            fn arm(&mut self, ctx: &mut RtlCtx, now: u64) {
                self.next_edge = now + self.half_ps;
                self.scheduled = true;
                ctx.wake_after(self.half);
            }
        }
        impl RtlProcess for GatedClockGen {
            fn init(&mut self, ctx: &mut RtlCtx) {
                ctx.assign_bit(self.clk, Logic::Zero);
                self.arm(ctx, ctx.now().as_picos());
            }
            fn run(&mut self, ctx: &mut RtlCtx) {
                let now = ctx.now().as_picos();
                if self.scheduled {
                    if now < self.next_edge {
                        // A busy event while the grid wake is pending:
                        // nothing to do, the wake will see the new level.
                        return;
                    }
                    self.scheduled = false;
                    if self.level {
                        // Falling edges always complete so the parked
                        // level is low; the park decision is taken at the
                        // following rising edge.
                        self.level = false;
                        ctx.assign_bit(self.clk, Logic::Zero);
                        self.arm(ctx, now);
                    } else if ctx.read_bit(self.busy) == Logic::One {
                        self.level = true;
                        ctx.assign_bit(self.clk, Logic::One);
                        self.arm(ctx, now);
                    }
                    // else: rising edge due but idle — park.
                    return;
                }
                if ctx.read_bit(self.busy) != Logic::One {
                    return;
                }
                // Restart from parked: resume at the next instant where
                // the free-running clock would have a *rising* edge (odd
                // half-multiples), keeping every sampling edge on grid.
                debug_assert!(!self.level, "parked clock must be low");
                let idx = now / self.half_ps;
                let mut rise = idx + u64::from(!now.is_multiple_of(self.half_ps));
                if rise.is_multiple_of(2) {
                    rise += 1;
                }
                let rise_at = rise * self.half_ps;
                if rise_at == now {
                    self.level = true;
                    ctx.assign_bit(self.clk, Logic::One);
                    self.arm(ctx, now);
                } else {
                    self.next_edge = rise_at;
                    self.scheduled = true;
                    ctx.wake_after(SimDuration::from_picos(rise_at - now));
                }
            }
            fn io(&self) -> Option<ProcessIo> {
                Some(
                    ProcessIo::generator("gated_clock_gen")
                        .reads([self.busy])
                        .writes([self.clk]),
                )
            }
        }
        // Rising-only: the generator restarts when `busy` goes high; a
        // falling `busy` needs no action (the pending edge completes and
        // the next rising-due wake parks by reading `busy` low).
        self.add_process_rising(
            Box::new(GatedClockGen {
                clk,
                busy,
                half,
                half_ps: half.as_picos(),
                level: false,
                scheduled: false,
                next_edge: 0,
            }),
            &[busy],
            &[],
        );
        self.clock_roots[clk.0] = true;
        self.gated_links.push(GatedClockLink { clk, busy });
        clk
    }

    /// Looks up a signal by name.
    #[must_use]
    pub fn signal_by_name(&self, name: &str) -> Option<SignalId> {
        self.names.get(name).copied()
    }

    /// Snapshot of a signal's public state.
    ///
    /// # Panics
    ///
    /// Panics on a foreign `SignalId`.
    #[must_use]
    pub fn signal_info(&self, id: SignalId) -> SignalInfo {
        let s = &self.signals[id.0];
        SignalInfo {
            name: s.name.clone(),
            width: s.width,
            value: s.value.clone(),
            event_count: s.event_count,
        }
    }

    /// Ids of all declared signals, in declaration order.
    pub fn signals(&self) -> impl Iterator<Item = SignalId> + '_ {
        (0..self.signals.len()).map(SignalId)
    }

    /// Borrow of a registered process, for compile-time introspection such
    /// as [`crate::compiled::CompiledSchedule::compile`]. `None` for a
    /// foreign id or while the process is being run.
    #[must_use]
    pub fn process_ref(&self, id: ProcId) -> Option<&dyn RtlProcess> {
        self.processes.get(id.0).and_then(|slot| slot.as_deref())
    }

    /// Builds the introspectable dataflow graph of the elaborated design:
    /// every registered process with its sensitivity lists and (when
    /// declared via [`RtlProcess::io`]) read/write sets, every signal with
    /// its external-pin / trace / clock-root marks, and the gated-clock
    /// busy links. Input to [`NetlistGraph::analyze`] (the `CAST1xx`
    /// structural checks) and [`NetlistGraph::levelize`].
    #[must_use]
    pub fn netlist(&self) -> NetlistGraph {
        let signals = self
            .signals
            .iter()
            .enumerate()
            .map(|(idx, s)| NetSignal {
                name: s.name.clone(),
                width: s.width,
                external_input: self.external_in[idx],
                external_output: self.external_out[idx],
                traced: self.trace_pos[idx] != NOT_TRACED,
                clock_root: self.clock_roots[idx],
            })
            .collect();
        let processes = self
            .proc_meta
            .iter()
            .map(|m| NetProcess {
                sensitivity_any: m.any.clone(),
                sensitivity_rising: m.rising.clone(),
                io: m.io.clone(),
            })
            .collect();
        NetlistGraph::new(signals, processes, self.gated_links.clone())
    }

    // ------------------------------------------------------------------
    // External stimulus & observation (test bench / co-simulation entity)
    // ------------------------------------------------------------------

    /// Schedules an external assignment of `value` to `signal` at absolute
    /// time `at` (driver slot [`ProcId::EXTERNAL`]).
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::SchedulingInPast`] when `at < now`, or
    /// [`RtlError::WidthMismatch`] when widths differ.
    pub fn poke(
        &mut self,
        signal: SignalId,
        value: LogicVector,
        at: SimTime,
    ) -> Result<(), RtlError> {
        if at < self.now {
            return Err(RtlError::SchedulingInPast {
                requested: at,
                now: self.now,
            });
        }
        let width = self.signals[signal.0].width;
        if value.width() != width {
            return Err(RtlError::WidthMismatch {
                expected: width,
                got: value.width(),
            });
        }
        let seq = self.bump_seq();
        self.queue.push(
            at.as_picos(),
            Pending {
                seq,
                action: Action::Assign {
                    driver: ProcId::EXTERNAL,
                    signal,
                    value,
                },
            },
        );
        Ok(())
    }

    /// Scalar convenience for [`Simulator::poke`].
    ///
    /// # Errors
    ///
    /// See [`Simulator::poke`].
    pub fn poke_bit(
        &mut self,
        signal: SignalId,
        value: Logic,
        at: SimTime,
    ) -> Result<(), RtlError> {
        self.poke(signal, LogicVector::from(value), at)
    }

    /// Current resolved value of a signal.
    ///
    /// # Panics
    ///
    /// Panics on a foreign `SignalId`.
    #[must_use]
    pub fn read(&self, signal: SignalId) -> &LogicVector {
        &self.signals[signal.0].value
    }

    /// Bit 0 of a signal.
    #[must_use]
    pub fn read_bit(&self, signal: SignalId) -> Logic {
        self.signals[signal.0].value.bit(0)
    }

    /// Unsigned reading of a signal, when fully defined.
    #[must_use]
    pub fn read_u64(&self, signal: SignalId) -> Option<u64> {
        self.signals[signal.0].value.to_u64()
    }

    // ------------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------------

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Engine counters (events, deltas, process runs).
    #[must_use]
    pub fn counters(&self) -> SimCounters {
        self.counters
    }

    /// Time of the next pending transaction.
    #[must_use]
    pub fn next_time(&mut self) -> Option<SimTime> {
        self.elaborate();
        if !self.delta.is_empty() {
            // Elaboration-staged zero-delay activity sits at `now`.
            return Some(self.now);
        }
        self.queue.peek().map(SimTime::from_picos)
    }

    fn bump_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    /// Runs every process's `init` once (first call only).
    fn elaborate(&mut self) {
        if self.elaborated {
            return;
        }
        self.elaborated = true;
        for idx in 0..self.processes.len() {
            self.run_process(ProcId(idx), true);
        }
        // Initial assignments land as zero-delay transactions at t=0 and are
        // consumed by the first advance.
    }

    /// Executes all activity at the next pending time point (all its delta
    /// cycles). Returns `false` when the queue is empty.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::DeltaRunaway`] if a combinational loop exceeds
    /// the delta limit.
    pub fn step_time(&mut self) -> Result<bool, RtlError> {
        self.elaborate();
        let t = if self.delta.is_empty() {
            let Some(t_ps) = self.queue.peek() else {
                return Ok(false);
            };
            SimTime::from_picos(t_ps)
        } else {
            // Zero-delay activity staged at `now` (elaboration).
            self.now
        };
        debug_assert!(t >= self.now);
        self.now = t;
        self.counters.time_steps += 1;

        // The scratch vectors move out of `self` for the duration of the
        // step so process callbacks can borrow `self` mutably; they move
        // back (retaining capacity) on every exit path below.
        let mut batch = std::mem::take(&mut self.batch);
        let mut wake = std::mem::take(&mut self.wake);
        let mut deltas_here: u32 = 0;
        let mut outcome = Ok(true);
        // Sampled micro-phase breakdown of this step: `kernel.pop` is the
        // first spin's transaction collection, `kernel.eval` the first
        // spin's apply/wake/run, `kernel.delta` every follow-up delta spin.
        let sampled = self.tel.micro_gate();
        let mut mark = if sampled { self.tel.now_ns() } else { 0 };
        loop {
            // Collect every transaction scheduled for exactly `t` *now*;
            // assignments scheduled during this delta land in `delta` (or
            // the wheel) with higher seq and are picked up next spin.
            batch.clear();
            if self.queue.peek() == Some(t.as_picos()) {
                self.queue.pop_into(&mut batch);
            }
            if batch.is_empty() {
                // Common delta spin: everything comes from the delta
                // queue, already in seq order.
                std::mem::swap(&mut batch, &mut self.delta);
            } else if !self.delta.is_empty() {
                // Both sources only meet on a step's first spin (later
                // spins can't add wheel entries at `t`), and each side is
                // seq-sorted; restore the global order.
                batch.append(&mut self.delta);
                batch.sort_by_key(|p| p.seq);
            }
            if batch.is_empty() {
                break;
            }
            if sampled && deltas_here == 0 {
                mark = self
                    .tel
                    .record_phase(Track::Follower, t.as_picos(), Phase::KernelPop, mark);
            }
            deltas_here += 1;
            self.counters.delta_cycles += 1;
            if deltas_here > self.max_deltas {
                outcome = Err(RtlError::DeltaRunaway {
                    at: t,
                    deltas: deltas_here,
                });
                break;
            }

            // Apply assignments, collect events, then wake processes.
            wake.clear();
            for txn in batch.drain(..) {
                match txn.action {
                    Action::Assign {
                        driver,
                        signal,
                        value,
                    } => {
                        self.counters.transactions += 1;
                        let had_event = self.signals[signal.0].drive(driver, value, t);
                        if had_event {
                            self.counters.events += 1;
                            let pos = self.trace_pos[signal.0];
                            if pos != NOT_TRACED {
                                self.trace_log.push((
                                    t,
                                    pos as usize,
                                    self.signals[signal.0].value.clone(),
                                ));
                            }
                            for &p in &self.watchers[signal.0] {
                                if !self.woken[p.0] {
                                    self.woken[p.0] = true;
                                    wake.push(p);
                                }
                            }
                            let rising = &self.watchers_rising[signal.0];
                            if !rising.is_empty() && self.signals[signal.0].rising_at(t) {
                                for &p in rising {
                                    if !self.woken[p.0] {
                                        self.woken[p.0] = true;
                                        wake.push(p);
                                    }
                                }
                            }
                        }
                    }
                    Action::Wake(p) => {
                        if !self.woken[p.0] {
                            self.woken[p.0] = true;
                            wake.push(p);
                        }
                    }
                }
            }
            for &p in &wake {
                self.run_process(p, false);
            }
            // Reset only the flags we set; the table stays zeroed between
            // deltas without a full clear.
            for &p in &wake {
                self.woken[p.0] = false;
            }
            if sampled && deltas_here == 1 {
                mark =
                    self.tel
                        .record_phase(Track::Follower, t.as_picos(), Phase::KernelEval, mark);
            }
        }
        if sampled && deltas_here > 1 {
            self.tel
                .record_phase(Track::Follower, t.as_picos(), Phase::KernelDelta, mark);
        }
        self.batch = batch;
        self.wake = wake;
        outcome
    }

    /// Publishes the kernel's queue-shape telemetry: the
    /// `rtl.queue_depth` and `rtl.wheel_occupancy` gauges and the wheel's
    /// accumulated cascade tally into `rtl.wheel_cascade`. Called once per
    /// advance window, not per step — the gauges are point-in-time
    /// snapshots either way, the cascade *sum* is preserved exactly, and
    /// keeping these off the per-step path is what holds the
    /// counters-only policy near zero overhead.
    pub fn publish_queue_telemetry(&mut self) {
        self.obs_queue_depth
            .set((self.queue.len() + self.delta.len()) as u64);
        self.obs_wheel_occupancy
            .set(u64::from(self.queue.occupied_slots()));
        let cascaded = self.queue.take_cascaded();
        if cascaded > 0 {
            self.obs_wheel_cascade.add(cascaded);
        }
    }

    /// Runs until no transaction earlier than `horizon` remains. Activity at
    /// exactly `horizon` stays pending — the semantics the conservative
    /// coupling needs ("process all events with a time stamp smaller than
    /// `t_k`, but not equal").
    ///
    /// # Errors
    ///
    /// See [`Simulator::step_time`].
    pub fn run_until(&mut self, horizon: SimTime) -> Result<(), RtlError> {
        // The span guard borrows its `Telemetry`; clone the cheap handle so
        // `self.step_time()` can still borrow `self` mutably underneath.
        let tel = self.tel.clone();
        let _span = tel.span(Track::Follower, horizon.as_picos(), Phase::KernelAdvance);
        while let Some(t) = self.next_time() {
            if t >= horizon {
                break;
            }
            self.step_time()?;
        }
        self.publish_queue_telemetry();
        // Time still advances to just before the horizon conceptually; we
        // leave `now` at the last executed step.
        Ok(())
    }

    /// Runs until the queue drains (finite stimulus only — a free-running
    /// clock never drains).
    ///
    /// # Errors
    ///
    /// See [`Simulator::step_time`].
    pub fn run_to_quiescence(&mut self) -> Result<(), RtlError> {
        while self.step_time()? {}
        self.publish_queue_telemetry();
        Ok(())
    }

    fn run_process(&mut self, id: ProcId, is_init: bool) {
        let Some(slot) = self.processes.get_mut(id.0) else {
            return;
        };
        let Some(mut proc_) = slot.take() else {
            return; // re-entrancy guard
        };
        self.counters.process_runs += 1;
        // Reuse the staging buffers across activations; they move out of
        // `self` so the context can borrow the signal table.
        let mut staged = std::mem::take(&mut self.staged_scratch);
        let mut wakes = std::mem::take(&mut self.wakes_scratch);
        debug_assert!(staged.is_empty() && wakes.is_empty());
        {
            let mut ctx = RtlCtx {
                id,
                now: self.now,
                signals: &self.signals,
                staged: &mut staged,
                wakes: &mut wakes,
            };
            if is_init {
                proc_.init(&mut ctx);
            } else {
                proc_.run(&mut ctx);
            }
        }
        self.processes[id.0] = Some(proc_);
        for (signal, value, delay) in staged.drain(..) {
            let seq = self.bump_seq();
            let action = Action::Assign {
                driver: id,
                signal,
                value,
            };
            if delay.is_zero() {
                self.delta.push(Pending { seq, action });
            } else {
                self.queue
                    .push((self.now + delay).as_picos(), Pending { seq, action });
            }
        }
        for delay in wakes.drain(..) {
            let seq = self.bump_seq();
            let action = Action::Wake(id);
            if delay.is_zero() {
                self.delta.push(Pending { seq, action });
            } else {
                self.queue
                    .push((self.now + delay).as_picos(), Pending { seq, action });
            }
        }
        self.staged_scratch = staged;
        self.wakes_scratch = wakes;
    }
}

/// The API a process sees while running: signal reads, edge tests, staged
/// assignments and wake-ups.
pub struct RtlCtx<'a> {
    id: ProcId,
    now: SimTime,
    signals: &'a [SignalState],
    staged: &'a mut Vec<(SignalId, LogicVector, SimDuration)>,
    wakes: &'a mut Vec<SimDuration>,
}

impl std::fmt::Debug for RtlCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RtlCtx")
            .field("process", &self.id.0)
            .field("now", &self.now)
            .finish()
    }
}

impl RtlCtx<'_> {
    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Current resolved value of a signal.
    #[must_use]
    pub fn read(&self, signal: SignalId) -> &LogicVector {
        &self.signals[signal.0].value
    }

    /// Bit 0 of a signal.
    #[must_use]
    pub fn read_bit(&self, signal: SignalId) -> Logic {
        self.signals[signal.0].value.bit(0)
    }

    /// Unsigned reading, when fully defined.
    #[must_use]
    pub fn read_u64(&self, signal: SignalId) -> Option<u64> {
        self.signals[signal.0].value.to_u64()
    }

    /// `true` when `signal` had an event in the delta cycle that woke this
    /// process.
    #[must_use]
    pub fn event(&self, signal: SignalId) -> bool {
        self.signals[signal.0].event_at(self.now)
    }

    /// `clk'event and clk = '1'`.
    #[must_use]
    pub fn rising(&self, signal: SignalId) -> bool {
        self.signals[signal.0].rising_at(self.now)
    }

    /// `clk'event and clk = '0'`.
    #[must_use]
    pub fn falling(&self, signal: SignalId) -> bool {
        self.signals[signal.0].falling_at(self.now)
    }

    /// Stages a delta-delayed assignment (visible next delta cycle).
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn assign(&mut self, signal: SignalId, value: LogicVector) {
        self.assign_after(signal, value, SimDuration::ZERO);
    }

    /// Scalar convenience for [`RtlCtx::assign`].
    pub fn assign_bit(&mut self, signal: SignalId, value: Logic) {
        self.assign(signal, LogicVector::from(value));
    }

    /// Stages an assignment after a transport delay.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn assign_after(&mut self, signal: SignalId, value: LogicVector, delay: SimDuration) {
        assert_eq!(
            value.width(),
            self.signals[signal.0].width,
            "width mismatch assigning {}",
            self.signals[signal.0].name
        );
        self.staged.push((signal, value, delay));
    }

    /// Unsigned convenience for [`RtlCtx::assign`].
    pub fn assign_u64(&mut self, signal: SignalId, value: u64) {
        let width = self.signals[signal.0].width;
        self.assign(signal, LogicVector::from_u64(value, width));
    }

    /// Schedules this process to run again after `delay` without any signal
    /// event (VHDL `wait for`).
    pub fn wake_after(&mut self, delay: SimDuration) {
        self.wakes.push(delay);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// y <= not a (combinational).
    struct Inverter {
        a: SignalId,
        y: SignalId,
    }
    impl RtlProcess for Inverter {
        fn run(&mut self, ctx: &mut RtlCtx) {
            let v = ctx.read_bit(self.a).not();
            ctx.assign_bit(self.y, v);
        }
    }

    /// q <= d on rising clk.
    struct Dff {
        clk: SignalId,
        d: SignalId,
        q: SignalId,
    }
    impl RtlProcess for Dff {
        fn run(&mut self, ctx: &mut RtlCtx) {
            if ctx.rising(self.clk) {
                let v = ctx.read(self.d).clone();
                ctx.assign(self.q, v);
            }
        }
    }

    #[test]
    fn combinational_chain_settles_in_deltas() {
        // a -> inv -> b -> inv -> c : two deltas after a changes.
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 1);
        let b = sim.add_signal("b", 1);
        let c = sim.add_signal("c", 1);
        sim.add_process(Box::new(Inverter { a, y: b }), &[a]);
        sim.add_process(Box::new(Inverter { a: b, y: c }), &[b]);
        sim.poke_bit(a, Logic::Zero, SimTime::ZERO).unwrap();
        sim.step_time().unwrap();
        assert_eq!(sim.read_bit(b), Logic::One);
        assert_eq!(sim.read_bit(c), Logic::Zero);
        sim.poke_bit(a, Logic::One, SimTime::from_ns(10)).unwrap();
        sim.step_time().unwrap();
        assert_eq!(sim.read_bit(b), Logic::Zero);
        assert_eq!(sim.read_bit(c), Logic::One);
        assert_eq!(sim.now(), SimTime::from_ns(10));
    }

    #[test]
    fn dff_samples_on_rising_edge_only() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", SimDuration::from_ns(10));
        let d = sim.add_signal("d", 8);
        let q = sim.add_signal("q", 8);
        sim.add_process(Box::new(Dff { clk, d, q }), &[clk]);
        sim.poke(d, LogicVector::from_u64(0x42, 8), SimTime::ZERO)
            .unwrap();
        // First rising edge at 5 ns.
        sim.run_until(SimTime::from_ns(5)).unwrap();
        assert_eq!(sim.read_u64(q), None, "before the edge q is U");
        sim.run_until(SimTime::from_ns(6)).unwrap();
        assert_eq!(sim.read_u64(q), Some(0x42));
        // Change d between edges: q holds.
        sim.poke(d, LogicVector::from_u64(0x99, 8), SimTime::from_ns(8))
            .unwrap();
        sim.run_until(SimTime::from_ns(14)).unwrap();
        assert_eq!(sim.read_u64(q), Some(0x42));
        sim.run_until(SimTime::from_ns(16)).unwrap();
        assert_eq!(sim.read_u64(q), Some(0x99));
    }

    #[test]
    fn run_until_excludes_the_horizon() {
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 1);
        sim.poke_bit(a, Logic::One, SimTime::from_ns(10)).unwrap();
        sim.run_until(SimTime::from_ns(10)).unwrap();
        assert_eq!(
            sim.read_bit(a),
            Logic::U,
            "event at the horizon must stay pending"
        );
        sim.run_until(SimTime::from_ns(11)).unwrap();
        assert_eq!(sim.read_bit(a), Logic::One);
    }

    #[test]
    fn delta_runaway_is_detected() {
        // y <= not y : a zero-delay oscillator.
        struct SelfInverter {
            y: SignalId,
        }
        impl RtlProcess for SelfInverter {
            fn init(&mut self, ctx: &mut RtlCtx) {
                ctx.assign_bit(self.y, Logic::Zero);
            }
            fn run(&mut self, ctx: &mut RtlCtx) {
                let v = ctx.read_bit(self.y).not();
                ctx.assign_bit(self.y, v);
            }
        }
        let mut sim = Simulator::new();
        let y = sim.add_signal("y", 1);
        sim.add_process(Box::new(SelfInverter { y }), &[y]);
        let err = sim.step_time().unwrap_err();
        assert!(matches!(err, RtlError::DeltaRunaway { .. }));
    }

    #[test]
    fn poke_in_past_rejected() {
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 1);
        sim.poke_bit(a, Logic::One, SimTime::from_ns(5)).unwrap();
        sim.step_time().unwrap();
        let err = sim
            .poke_bit(a, Logic::Zero, SimTime::from_ns(1))
            .unwrap_err();
        assert!(matches!(err, RtlError::SchedulingInPast { .. }));
    }

    #[test]
    fn poke_width_checked() {
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 4);
        let err = sim
            .poke(a, LogicVector::from_u64(1, 2), SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(
            err,
            RtlError::WidthMismatch {
                expected: 4,
                got: 2
            }
        ));
    }

    #[test]
    fn clock_produces_expected_edge_count() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", SimDuration::from_ns(10));
        sim.run_until(SimTime::from_ns(101)).unwrap();
        // Initialization U->0 at t=0 is one event, then edges at
        // 5,10,...,100 are 20 more.
        assert_eq!(sim.signal_info(clk).event_count, 21);
    }

    #[test]
    fn counters_accumulate() {
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 1);
        let y = sim.add_signal("y", 1);
        sim.add_process(Box::new(Inverter { a, y }), &[a]);
        sim.poke_bit(a, Logic::Zero, SimTime::ZERO).unwrap();
        sim.poke_bit(a, Logic::One, SimTime::from_ns(1)).unwrap();
        sim.run_to_quiescence().unwrap();
        let c = sim.counters();
        assert_eq!(c.time_steps, 2);
        assert!(c.events >= 4); // a twice, y twice
        assert!(c.process_runs >= 2);
        assert!(c.delta_cycles >= 4);
    }

    #[test]
    fn vcd_tracing_captures_events() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", SimDuration::from_ns(10));
        sim.trace(clk);
        sim.run_until(SimTime::from_ns(21)).unwrap();
        let mut out = Vec::new();
        sim.write_vcd(&mut out, "bench").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("$var wire 1 ! clk $end"));
        assert!(text.contains("#5000"));
        assert!(text.contains("#10000"));
    }

    #[test]
    fn name_lookup_and_duplicate_rejection() {
        let mut sim = Simulator::new();
        let a = sim.add_signal("data", 8);
        assert_eq!(sim.signal_by_name("data"), Some(a));
        assert_eq!(sim.signal_by_name("nope"), None);
        let info = sim.signal_info(a);
        assert_eq!(info.name, "data");
        assert_eq!(info.width, 8);
    }

    #[test]
    #[should_panic(expected = "already declared")]
    fn duplicate_signal_name_panics() {
        let mut sim = Simulator::new();
        sim.add_signal("x", 1);
        sim.add_signal("x", 1);
    }

    #[test]
    fn tristate_bus_with_two_drivers() {
        // Two processes share a bus; each drives only when selected.
        struct BusDriver {
            sel: SignalId,
            bus: SignalId,
            value: u64,
        }
        impl RtlProcess for BusDriver {
            fn init(&mut self, ctx: &mut RtlCtx) {
                ctx.assign(self.bus, LogicVector::high_z(8));
            }
            fn run(&mut self, ctx: &mut RtlCtx) {
                if ctx.read_bit(self.sel).is_one() {
                    ctx.assign_u64(self.bus, self.value);
                } else {
                    ctx.assign(self.bus, LogicVector::high_z(8));
                }
            }
        }
        let mut sim = Simulator::new();
        let sel_a = sim.add_signal("sel_a", 1);
        let sel_b = sim.add_signal("sel_b", 1);
        let bus = sim.add_signal("bus", 8);
        sim.add_process(
            Box::new(BusDriver {
                sel: sel_a,
                bus,
                value: 0x11,
            }),
            &[sel_a],
        );
        sim.add_process(
            Box::new(BusDriver {
                sel: sel_b,
                bus,
                value: 0x22,
            }),
            &[sel_b],
        );
        sim.poke_bit(sel_a, Logic::One, SimTime::ZERO).unwrap();
        sim.poke_bit(sel_b, Logic::Zero, SimTime::ZERO).unwrap();
        sim.step_time().unwrap();
        assert_eq!(sim.read_u64(bus), Some(0x11));
        // Swap ownership.
        sim.poke_bit(sel_a, Logic::Zero, SimTime::from_ns(5))
            .unwrap();
        sim.poke_bit(sel_b, Logic::One, SimTime::from_ns(5))
            .unwrap();
        sim.step_time().unwrap();
        assert_eq!(sim.read_u64(bus), Some(0x22));
    }

    #[test]
    fn duplicate_sensitivity_entries_wake_once() {
        // Regression: a signal listed twice in a sensitivity list must not
        // double-run the process per event.
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 1);
        let y = sim.add_signal("y", 1);
        sim.add_process(Box::new(Inverter { a, y }), &[a, a, a]);
        sim.poke_bit(a, Logic::Zero, SimTime::ZERO).unwrap();
        sim.step_time().unwrap();
        // One elaboration init + exactly one activation for the event.
        assert_eq!(sim.counters().process_runs, 2);
        assert_eq!(sim.read_bit(y), Logic::One);
    }

    #[test]
    fn far_future_and_near_events_interleave_correctly() {
        // Exercises wheel cascading: events parked in coarse levels must
        // pop in time order as the base sweeps forward.
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 8);
        let times: [u64; 6] = [1, 63, 64, 4_100, 300_000, 70_000_000];
        for (i, &t) in times.iter().enumerate() {
            sim.poke(
                a,
                LogicVector::from_u64(i as u64, 8),
                SimTime::from_picos(t),
            )
            .unwrap();
        }
        for (i, &t) in times.iter().enumerate() {
            assert!(sim.step_time().unwrap());
            assert_eq!(sim.now(), SimTime::from_picos(t));
            assert_eq!(sim.read_u64(a), Some(i as u64));
        }
        assert!(!sim.step_time().unwrap());
    }

    /// Records the time of every rising edge it observes on `clk`.
    struct EdgeRecorder {
        clk: SignalId,
        times: std::sync::Arc<std::sync::Mutex<Vec<u64>>>,
    }
    impl RtlProcess for EdgeRecorder {
        fn run(&mut self, ctx: &mut RtlCtx) {
            if ctx.rising(self.clk) {
                self.times.lock().unwrap().push(ctx.now().as_picos());
            }
        }
    }

    fn gated_fixture() -> (
        Simulator,
        SignalId,
        std::sync::Arc<std::sync::Mutex<Vec<u64>>>,
    ) {
        let mut sim = Simulator::new();
        let busy = sim.add_signal("busy", 1);
        let clk = sim.add_gated_clock("clk", SimDuration::from_ns(20), busy);
        let times = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        sim.add_process(
            Box::new(EdgeRecorder {
                clk,
                times: times.clone(),
            }),
            &[clk],
        );
        (sim, busy, times)
    }

    #[test]
    fn gated_clock_tracks_free_running_grid_while_busy() {
        // Held busy, the gated clock is indistinguishable from `add_clock`:
        // rising edges at odd multiples of the half period.
        let (mut sim, busy, times) = gated_fixture();
        sim.poke_bit(busy, Logic::One, SimTime::ZERO).unwrap();
        sim.run_until(SimTime::from_ns(100)).unwrap();
        let ns: Vec<u64> = times.lock().unwrap().iter().map(|t| t / 1000).collect();
        assert_eq!(ns, vec![10, 30, 50, 70, 90]);
    }

    #[test]
    fn gated_clock_parks_when_idle_and_restarts_on_grid() {
        // Drop busy after the first rising edge: the due edge at 30 ns is
        // skipped and nothing further happens until busy rises again —
        // whereupon the clock resumes on the *original* edge grid (90 ns),
        // not at a phase-shifted point.
        let (mut sim, busy, times) = gated_fixture();
        sim.poke_bit(busy, Logic::One, SimTime::ZERO).unwrap();
        sim.poke_bit(busy, Logic::Zero, SimTime::from_ns(12))
            .unwrap();
        sim.poke_bit(busy, Logic::One, SimTime::from_ns(75))
            .unwrap();
        sim.run_until(SimTime::from_ns(120)).unwrap();
        let ns: Vec<u64> = times.lock().unwrap().iter().map(|t| t / 1000).collect();
        assert_eq!(ns, vec![10, 90, 110]);
    }

    #[test]
    fn gated_clock_restarting_on_an_edge_instant_rises_immediately() {
        // Busy rises at exactly a grid rising instant: the edge must land
        // in that very time step (via a zero-delay assign), not one period
        // later.
        let (mut sim, busy, times) = gated_fixture();
        sim.poke_bit(busy, Logic::One, SimTime::ZERO).unwrap();
        sim.poke_bit(busy, Logic::Zero, SimTime::from_ns(12))
            .unwrap();
        sim.poke_bit(busy, Logic::One, SimTime::from_ns(90))
            .unwrap();
        sim.run_until(SimTime::from_ns(115)).unwrap();
        let ns: Vec<u64> = times.lock().unwrap().iter().map(|t| t / 1000).collect();
        assert_eq!(ns, vec![10, 90, 110]);
    }

    #[test]
    fn rising_only_watchers_skip_falling_edges() {
        // A rising-subscribed process runs for 0->1 transitions only; an
        // any-subscribed process sees both.
        struct RunCounter {
            runs: std::sync::Arc<std::sync::Mutex<u64>>,
        }
        impl RtlProcess for RunCounter {
            fn run(&mut self, _ctx: &mut RtlCtx) {
                *self.runs.lock().unwrap() += 1;
            }
        }
        let mut sim = Simulator::new();
        let s = sim.add_signal("s", 1);
        let rising_runs = std::sync::Arc::new(std::sync::Mutex::new(0));
        let any_runs = std::sync::Arc::new(std::sync::Mutex::new(0));
        sim.add_process_rising(
            Box::new(RunCounter {
                runs: rising_runs.clone(),
            }),
            &[s],
            &[],
        );
        sim.add_process(
            Box::new(RunCounter {
                runs: any_runs.clone(),
            }),
            &[s],
        );
        for (i, level) in [Logic::One, Logic::Zero, Logic::One, Logic::Zero]
            .into_iter()
            .enumerate()
        {
            sim.poke_bit(s, level, SimTime::from_ns(10 * (i as u64 + 1)))
                .unwrap();
        }
        sim.run_until(SimTime::from_ns(100)).unwrap();
        assert_eq!(*rising_runs.lock().unwrap(), 2, "two rising edges");
        assert_eq!(*any_runs.lock().unwrap(), 4, "four events in total");
    }

    #[test]
    fn rising_subscription_is_subsumed_by_an_any_subscription() {
        // A signal in both lists must not wake the process twice per
        // rising edge.
        struct RunCounter {
            runs: std::sync::Arc<std::sync::Mutex<u64>>,
        }
        impl RtlProcess for RunCounter {
            fn run(&mut self, _ctx: &mut RtlCtx) {
                *self.runs.lock().unwrap() += 1;
            }
        }
        let mut sim = Simulator::new();
        let s = sim.add_signal("s", 1);
        let runs = std::sync::Arc::new(std::sync::Mutex::new(0));
        sim.add_process_rising(Box::new(RunCounter { runs: runs.clone() }), &[s], &[s]);
        sim.poke_bit(s, Logic::One, SimTime::from_ns(10)).unwrap();
        sim.run_until(SimTime::from_ns(20)).unwrap();
        assert_eq!(*runs.lock().unwrap(), 1);
    }
}
