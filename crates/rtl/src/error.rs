//! Error type of the RTL simulator.

use castanet_netsim::time::SimTime;
use std::fmt;

/// Errors surfaced by the RTL simulation engines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RtlError {
    /// A stimulus was scheduled before the current simulation time.
    SchedulingInPast {
        /// The requested time.
        requested: SimTime,
        /// The simulator's current time.
        now: SimTime,
    },
    /// A value's width did not match the signal's declared width.
    WidthMismatch {
        /// Declared signal width.
        expected: usize,
        /// Width of the offered value.
        got: usize,
    },
    /// A zero-delay loop kept generating delta cycles at one time point.
    DeltaRunaway {
        /// The stuck time point.
        at: SimTime,
        /// Delta cycles executed before giving up.
        deltas: u32,
    },
    /// A pin-level DUT was driven with the wrong number of input words.
    PortCountMismatch {
        /// Number of declared input ports.
        expected: usize,
        /// Number of words offered.
        got: usize,
    },
    /// An I/O error while writing a waveform file.
    Io(String),
}

impl fmt::Display for RtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtlError::SchedulingInPast { requested, now } => {
                write!(f, "stimulus at {requested} is before current time {now}")
            }
            RtlError::WidthMismatch { expected, got } => {
                write!(f, "signal expects {expected} bits, got {got}")
            }
            RtlError::DeltaRunaway { at, deltas } => {
                write!(
                    f,
                    "delta cycles did not converge at {at} ({deltas} deltas; combinational loop?)"
                )
            }
            RtlError::PortCountMismatch { expected, got } => {
                write!(f, "dut has {expected} input ports, got {got} words")
            }
            RtlError::Io(msg) => write!(f, "waveform i/o failed: {msg}"),
        }
    }
}

impl std::error::Error for RtlError {}

impl From<std::io::Error> for RtlError {
    fn from(e: std::io::Error) -> Self {
        RtlError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = RtlError::WidthMismatch {
            expected: 8,
            got: 4,
        };
        assert_eq!(e.to_string(), "signal expects 8 bits, got 4");
        let e = RtlError::DeltaRunaway {
            at: SimTime::from_ns(3),
            deltas: 10001,
        };
        assert!(e.to_string().contains("combinational loop"));
    }

    #[test]
    fn io_conversion() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = RtlError::from(io);
        assert!(matches!(e, RtlError::Io(_)));
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RtlError>();
    }
}
