//! The cycle-based simulation engine.
//!
//! The paper closes with: "the integration of cycle-based simulation
//! techniques is required, as well as the development of design
//! methodologies that make cycle-accurate modeling sufficient" (§5). This
//! module is that integration: DUTs written against the pin-level
//! [`CycleDut`] trait advance one *clock cycle* per call with no event
//! queue, no delta cycles and no signal transactions — and the same DUT can
//! be dropped into the event-driven kernel through
//! [`attach_cycle_dut`], which is how experiment E7 compares the two
//! engines on identical hardware.

use crate::error::RtlError;
use crate::logic::Logic;
use crate::netlist::ProcessIo;
use crate::signal::SignalId;
use crate::sim::{RtlCtx, RtlProcess, Simulator};
use castanet_netsim::time::SimDuration;

/// Declaration of one pin-level port (≤ 64 bits).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortDecl {
    /// Port name (used for signal naming when attached to the event-driven
    /// kernel).
    pub name: String,
    /// Width in bits (1..=64).
    pub width: usize,
}

impl PortDecl {
    /// Creates a port declaration.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= width <= 64`.
    #[must_use]
    pub fn new(name: impl Into<String>, width: usize) -> Self {
        assert!((1..=64).contains(&width), "port width must be 1..=64");
        PortDecl {
            name: name.into(),
            width,
        }
    }

    /// Bit mask covering the port's width.
    #[must_use]
    pub fn mask(&self) -> u64 {
        if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        }
    }
}

/// A cycle-accurate, pin-level hardware model: state advances only on
/// rising clock edges. This is the contract shared by the cycle-based
/// engine, the event-driven wrapper and the hardware test board (whose
/// "prototype chip" is a `CycleDut` behind the pin interface).
pub trait CycleDut: Send {
    /// Input port declarations, in the order `clock_edge` expects.
    fn input_ports(&self) -> Vec<PortDecl>;

    /// Output port declarations, in the order `clock_edge` returns.
    fn output_ports(&self) -> Vec<PortDecl>;

    /// Returns all state to power-on values.
    fn reset(&mut self);

    /// Executes one rising clock edge: samples `inputs` (one word per input
    /// port) and returns the output pin values *after* the edge.
    fn clock_edge(&mut self, inputs: &[u64]) -> Vec<u64>;

    /// `true` when the DUT is quiescent: with all-zero inputs, further
    /// clocks provably change nothing observable. A cycle-based
    /// co-simulation may then *skip* clocks entirely — the idle-time
    /// optimization the paper's conclusion calls for. The default is
    /// conservative (`false`: never skip).
    fn is_idle(&self) -> bool {
        false
    }

    /// `true` when the sampled input words cannot start new work, i.e. a
    /// clock edge with these inputs on an [idle](CycleDut::is_idle) DUT is
    /// a provable no-op. The default only accepts the all-zero vector;
    /// DUTs whose data pins are don't-care while their enables are low
    /// should override this (data lines typically hold the last driven
    /// value between transfers).
    fn inputs_inert(&self, inputs: &[u64]) -> bool {
        inputs.iter().all(|&w| w == 0)
    }

    /// `true` when the output words just produced carry nothing a clocked
    /// observer still needs to sample. Observers read a DUT's outputs one
    /// edge *after* they were assigned, so a gated clock may only park on
    /// an edge whose outputs are inert — otherwise the final interesting
    /// value would be sampled late, at the restarted edge. The default
    /// only accepts the all-zero vector.
    fn outputs_inert(&self, outputs: &[u64]) -> bool {
        outputs.iter().all(|&w| w == 0)
    }

    /// Deep-copies the DUT state into a fresh boxed instance — the
    /// checkpoint primitive behind time-warp co-simulation. The default
    /// returns `None` ("not checkpointable"), which is the honest answer
    /// for DUTs wrapping external or shared state; pure-state models
    /// override it with a plain `Clone`.
    fn fork_dut(&self) -> Option<Box<dyn CycleDut>> {
        None
    }
}

/// The cycle-based engine: drives a [`CycleDut`] one clock at a time,
/// validating port counts/widths and counting cycles.
///
/// # Examples
///
/// ```
/// use castanet_rtl::cycle::{CycleDut, CycleSim, PortDecl};
///
/// struct Doubler;
/// impl CycleDut for Doubler {
///     fn input_ports(&self) -> Vec<PortDecl> { vec![PortDecl::new("x", 8)] }
///     fn output_ports(&self) -> Vec<PortDecl> { vec![PortDecl::new("y", 8)] }
///     fn reset(&mut self) {}
///     fn clock_edge(&mut self, inputs: &[u64]) -> Vec<u64> { vec![(inputs[0] * 2) & 0xFF] }
/// }
///
/// let mut sim = CycleSim::new(Box::new(Doubler));
/// assert_eq!(sim.step(&[21])?, vec![42]);
/// assert_eq!(sim.cycles(), 1);
/// # Ok::<(), castanet_rtl::error::RtlError>(())
/// ```
pub struct CycleSim {
    dut: Box<dyn CycleDut>,
    inputs: Vec<PortDecl>,
    outputs: Vec<PortDecl>,
    cycles: u64,
}

impl std::fmt::Debug for CycleSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CycleSim")
            .field("cycles", &self.cycles)
            .field("inputs", &self.inputs.len())
            .field("outputs", &self.outputs.len())
            .finish()
    }
}

impl CycleSim {
    /// Wraps a DUT as-is — deliberately without resetting it, so
    /// pre-loaded configuration (routing tables, tariffs) survives. Call
    /// [`CycleSim::reset`] explicitly for a power-on start.
    #[must_use]
    pub fn new(dut: Box<dyn CycleDut>) -> Self {
        let inputs = dut.input_ports();
        let outputs = dut.output_ports();
        CycleSim {
            dut,
            inputs,
            outputs,
            cycles: 0,
        }
    }

    /// Executes one clock edge.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::PortCountMismatch`] for a wrong input count or
    /// [`RtlError::WidthMismatch`] when a word exceeds its port width.
    pub fn step(&mut self, inputs: &[u64]) -> Result<Vec<u64>, RtlError> {
        if inputs.len() != self.inputs.len() {
            return Err(RtlError::PortCountMismatch {
                expected: self.inputs.len(),
                got: inputs.len(),
            });
        }
        for (word, port) in inputs.iter().zip(&self.inputs) {
            if *word & !port.mask() != 0 {
                return Err(RtlError::WidthMismatch {
                    expected: port.width,
                    got: 64 - word.leading_zeros() as usize,
                });
            }
        }
        self.cycles += 1;
        let out = self.dut.clock_edge(inputs);
        debug_assert_eq!(
            out.len(),
            self.outputs.len(),
            "dut returned wrong output count"
        );
        Ok(out)
    }

    /// Executes `n` cycles with constant inputs, returning the last outputs.
    ///
    /// # Errors
    ///
    /// See [`CycleSim::step`].
    pub fn step_n(&mut self, inputs: &[u64], n: u64) -> Result<Vec<u64>, RtlError> {
        let mut last = Vec::new();
        for _ in 0..n {
            last = self.step(inputs)?;
        }
        Ok(last)
    }

    /// Resets the DUT and the cycle counter.
    pub fn reset(&mut self) {
        self.dut.reset();
        self.cycles = 0;
    }

    /// Clock edges executed since construction/reset.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Input port declarations.
    #[must_use]
    pub fn input_ports(&self) -> &[PortDecl] {
        &self.inputs
    }

    /// Output port declarations.
    #[must_use]
    pub fn output_ports(&self) -> &[PortDecl] {
        &self.outputs
    }

    /// Direct access to the wrapped DUT (e.g. for configuration readback).
    #[must_use]
    pub fn dut(&self) -> &dyn CycleDut {
        self.dut.as_ref()
    }

    /// Deep-copies the whole engine (DUT state plus cycle counter), or
    /// `None` when the wrapped DUT does not support
    /// [`CycleDut::fork_dut`].
    #[must_use]
    pub fn fork(&self) -> Option<Self> {
        Some(CycleSim {
            dut: self.dut.fork_dut()?,
            inputs: self.inputs.clone(),
            outputs: self.outputs.clone(),
            cycles: self.cycles,
        })
    }

    /// Mutable access to the wrapped DUT.
    pub fn dut_mut(&mut self) -> &mut dyn CycleDut {
        self.dut.as_mut()
    }
}

/// The signals created for an attached DUT: index-aligned with the DUT's
/// port declarations.
#[derive(Debug, Clone)]
pub struct AttachedDut {
    /// Input signals (drive these).
    pub inputs: Vec<SignalId>,
    /// Output signals (observe these).
    pub outputs: Vec<SignalId>,
    /// The clock the wrapper listens on.
    pub clk: SignalId,
}

struct CycleDutProcess {
    dut: Box<dyn CycleDut>,
    label: String,
    clk: SignalId,
    inputs: Vec<SignalId>,
    outputs: Vec<SignalId>,
    out_widths: Vec<usize>,
    /// Reused input-word buffer: one sample per clock edge, no
    /// per-edge allocation.
    in_words: Vec<u64>,
    /// Output words assigned on the previous edge: an unchanged word is
    /// not re-driven (a same-value drive produces no event, so skipping
    /// it is observationally identical and saves the resolution work).
    out_prev: Vec<u64>,
    /// Clock-gate request line (gated attachment only): driven `One` while
    /// the DUT needs clocking, `Zero` once it is provably quiescent.
    busy: Option<SignalId>,
    /// `false` once the wrapper has parked its clock; input activity
    /// re-arms it.
    armed: bool,
}

impl RtlProcess for CycleDutProcess {
    fn init(&mut self, ctx: &mut RtlCtx) {
        if let Some(busy) = self.busy {
            ctx.assign_bit(busy, Logic::One);
        }
    }

    fn run(&mut self, ctx: &mut RtlCtx) {
        if !ctx.rising(self.clk) {
            // Gated attachments are also sensitive to their inputs: any
            // activity while parked raises `busy`, which restarts the
            // clock on its original edge grid — so the wake-up is
            // invisible to the sampled-value semantics.
            if !self.armed && self.inputs.iter().any(|&s| ctx.event(s)) {
                self.armed = true;
                if let Some(busy) = self.busy {
                    ctx.assign_bit(busy, Logic::One);
                }
            }
            return;
        }
        debug_assert!(self.armed, "gated clock rose while parked");
        // Undefined input bits sample as 0 — the pessimistic-X alternative
        // would poison the whole DUT state, which is not useful for the
        // co-simulation data path.
        self.in_words.clear();
        for i in 0..self.inputs.len() {
            self.in_words
                .push(ctx.read_u64(self.inputs[i]).unwrap_or(0));
        }
        let outs = self.dut.clock_edge(&self.in_words);
        let first = self.out_prev.is_empty();
        for (i, ((sig, &word), width)) in self
            .outputs
            .iter()
            .zip(&outs)
            .zip(&self.out_widths)
            .enumerate()
        {
            if first || self.out_prev[i] != word {
                ctx.assign(
                    *sig,
                    crate::vector::LogicVector::from_u64(word & mask(*width), *width),
                );
            }
        }
        self.out_prev.clear();
        self.out_prev.extend_from_slice(&outs);
        if let Some(busy) = self.busy {
            // With inert inputs, inert outputs and a quiescent DUT, every
            // further edge is a provable no-op — and nothing assigned on
            // this edge still needs to be sampled by a clocked observer on
            // the next one. Park the clock until an input event.
            if self.dut.is_idle()
                && self.dut.inputs_inert(&self.in_words)
                && self.dut.outputs_inert(&outs)
            {
                self.armed = false;
                ctx.assign_bit(busy, Logic::Zero);
            }
        }
    }

    fn io(&self) -> Option<ProcessIo> {
        // The wrapper samples every input on the clock edge and drives
        // every output (plus `busy` in the gated attachment); the DUT's
        // internal structure stays behind the pin interface.
        let mut io = ProcessIo::clocked(self.label.clone(), self.clk)
            .reads(self.inputs.iter().copied())
            .reads([self.clk])
            .writes(self.outputs.iter().copied());
        if let Some(busy) = self.busy {
            io = io.writes([busy]);
        }
        Some(io)
    }
}

fn mask(width: usize) -> u64 {
    if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Instantiates a [`CycleDut`] inside the event-driven kernel: declares one
/// signal per port (named `prefix.port`), registers a clocked wrapper
/// process sensitive to `clk`, and returns the signal map.
///
/// This is how "RTL in an event-driven simulator" is modelled for the E7
/// engine comparison: every output change becomes a real signal event with
/// delta-cycle processing, exactly the per-clock overhead the paper calls
/// the bottleneck.
pub fn attach_cycle_dut(
    sim: &mut Simulator,
    prefix: &str,
    dut: Box<dyn CycleDut>,
    clk: SignalId,
) -> AttachedDut {
    // Deliberately no reset: the caller may have configured the DUT
    // (routes, tariffs) before attaching it.
    let inputs: Vec<SignalId> = dut
        .input_ports()
        .iter()
        .map(|p| sim.add_signal(format!("{prefix}.{}", p.name), p.width))
        .collect();
    let out_decls = dut.output_ports();
    let outputs: Vec<SignalId> = out_decls
        .iter()
        .map(|p| sim.add_signal(format!("{prefix}.{}", p.name), p.width))
        .collect();
    let process = CycleDutProcess {
        dut,
        label: prefix.to_string(),
        clk,
        inputs: inputs.clone(),
        outputs: outputs.clone(),
        out_widths: out_decls.iter().map(|p| p.width).collect(),
        in_words: Vec::with_capacity(inputs.len()),
        out_prev: Vec::new(),
        busy: None,
        armed: true,
    };
    sim.add_process(Box::new(process), &[clk]);
    // The DUT's pins are the design's boundary: inputs arrive as external
    // pokes, outputs are observed by the test bench / co-simulation entity.
    for &s in &inputs {
        sim.mark_external_input(s);
    }
    for &s in &outputs {
        sim.mark_external_output(s);
    }
    AttachedDut {
        inputs,
        outputs,
        clk,
    }
}

/// Like [`attach_cycle_dut`], but the wrapper owns a *gated* clock
/// (`prefix.clk`) that parks whenever the DUT reports
/// [`CycleDut::is_idle`] with all-zero inputs, and restarts — on the same
/// rising-edge grid a free-running clock of this `period` would produce —
/// as soon as any input signal changes. Idle stretches therefore cost zero
/// simulation events instead of two edges per cycle, while every sampled
/// value any clocked observer can see is identical to the free-running
/// attachment.
///
/// The grid alignment is what makes the optimization safe: observers are
/// clocked by the same `prefix.clk`, so during a parked stretch nobody
/// samples, and the first restarted edge lands exactly where a free-running
/// edge would have.
pub fn attach_cycle_dut_gated(
    sim: &mut Simulator,
    prefix: &str,
    dut: Box<dyn CycleDut>,
    period: SimDuration,
) -> AttachedDut {
    // Deliberately no reset, exactly as in `attach_cycle_dut`.
    let inputs: Vec<SignalId> = dut
        .input_ports()
        .iter()
        .map(|p| sim.add_signal(format!("{prefix}.{}", p.name), p.width))
        .collect();
    let out_decls = dut.output_ports();
    let outputs: Vec<SignalId> = out_decls
        .iter()
        .map(|p| sim.add_signal(format!("{prefix}.{}", p.name), p.width))
        .collect();
    let busy = sim.add_signal(format!("{prefix}.busy"), 1);
    let clk = sim.add_gated_clock(format!("{prefix}.clk"), period, busy);
    let process = CycleDutProcess {
        dut,
        label: prefix.to_string(),
        clk,
        inputs: inputs.clone(),
        outputs: outputs.clone(),
        out_widths: out_decls.iter().map(|p| p.width).collect(),
        in_words: Vec::with_capacity(inputs.len()),
        out_prev: Vec::new(),
        busy: Some(busy),
        armed: true,
    };
    // Rising-only on the clock (falling edges are no-ops for the wrapper),
    // any-edge on the inputs so activity can re-arm a parked clock.
    sim.add_process_rising(Box::new(process), &[clk], &inputs);
    for &s in &inputs {
        sim.mark_external_input(s);
    }
    for &s in &outputs {
        sim.mark_external_output(s);
    }
    AttachedDut {
        inputs,
        outputs,
        clk,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logic::Logic;
    use castanet_netsim::time::{SimDuration, SimTime};

    /// An accumulator: out <= out + in each edge; clear input resets.
    struct Accumulator {
        acc: u64,
    }
    impl CycleDut for Accumulator {
        fn input_ports(&self) -> Vec<PortDecl> {
            vec![PortDecl::new("add", 8), PortDecl::new("clear", 1)]
        }
        fn output_ports(&self) -> Vec<PortDecl> {
            vec![PortDecl::new("sum", 16)]
        }
        fn reset(&mut self) {
            self.acc = 0;
        }
        fn clock_edge(&mut self, inputs: &[u64]) -> Vec<u64> {
            if inputs[1] == 1 {
                self.acc = 0;
            } else {
                self.acc = (self.acc + inputs[0]) & 0xFFFF;
            }
            vec![self.acc]
        }
    }

    #[test]
    fn cycle_sim_steps_and_counts() {
        let mut sim = CycleSim::new(Box::new(Accumulator { acc: 0 }));
        assert_eq!(sim.step(&[5, 0]).unwrap(), vec![5]);
        assert_eq!(sim.step(&[7, 0]).unwrap(), vec![12]);
        assert_eq!(sim.step(&[0, 1]).unwrap(), vec![0]);
        assert_eq!(sim.cycles(), 3);
        sim.reset();
        assert_eq!(sim.cycles(), 0);
        assert_eq!(sim.step(&[1, 0]).unwrap(), vec![1]);
    }

    #[test]
    fn step_n_repeats_inputs() {
        let mut sim = CycleSim::new(Box::new(Accumulator { acc: 0 }));
        assert_eq!(sim.step_n(&[3, 0], 4).unwrap(), vec![12]);
        assert_eq!(sim.cycles(), 4);
    }

    #[test]
    fn input_validation() {
        let mut sim = CycleSim::new(Box::new(Accumulator { acc: 0 }));
        assert!(matches!(
            sim.step(&[1]),
            Err(RtlError::PortCountMismatch {
                expected: 2,
                got: 1
            })
        ));
        assert!(matches!(
            sim.step(&[256, 0]),
            Err(RtlError::WidthMismatch { expected: 8, .. })
        ));
        assert_eq!(sim.cycles(), 0, "failed steps must not count");
    }

    #[test]
    fn port_decl_masks() {
        assert_eq!(PortDecl::new("a", 1).mask(), 1);
        assert_eq!(PortDecl::new("a", 8).mask(), 0xFF);
        assert_eq!(PortDecl::new("a", 64).mask(), u64::MAX);
    }

    #[test]
    fn attached_dut_matches_cycle_sim() {
        // Drive the same stimulus through both engines; outputs must agree.
        let stimulus: Vec<(u64, u64)> = vec![(3, 0), (4, 0), (0, 1), (9, 0)];

        // Cycle engine.
        let mut csim = CycleSim::new(Box::new(Accumulator { acc: 0 }));
        let mut expected = Vec::new();
        for &(a, c) in &stimulus {
            expected.push(csim.step(&[a, c]).unwrap()[0]);
        }

        // Event-driven engine.
        let mut esim = Simulator::new();
        let clk = esim.add_clock("clk", SimDuration::from_ns(10));
        let dut = attach_cycle_dut(&mut esim, "acc", Box::new(Accumulator { acc: 0 }), clk);
        let mut got = Vec::new();
        for (i, &(a, c)) in stimulus.iter().enumerate() {
            let t = SimTime::from_ns(10 * i as u64);
            esim.poke(dut.inputs[0], crate::vector::LogicVector::from_u64(a, 8), t)
                .unwrap();
            esim.poke(dut.inputs[1], crate::vector::LogicVector::from_u64(c, 1), t)
                .unwrap();
            // Edge at 10*i + 5; observe just after.
            esim.run_until(SimTime::from_ns(10 * i as u64 + 6)).unwrap();
            got.push(esim.read_u64(dut.outputs[0]).unwrap());
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn event_driven_wrapper_generates_kernel_activity() {
        let mut esim = Simulator::new();
        let clk = esim.add_clock("clk", SimDuration::from_ns(10));
        let dut = attach_cycle_dut(&mut esim, "acc", Box::new(Accumulator { acc: 0 }), clk);
        esim.poke(
            dut.inputs[0],
            crate::vector::LogicVector::from_u64(1, 8),
            SimTime::ZERO,
        )
        .unwrap();
        esim.poke_bit(dut.inputs[1], Logic::Zero, SimTime::ZERO)
            .unwrap();
        esim.run_until(SimTime::from_ns(101)).unwrap();
        let c = esim.counters();
        // 10 rising edges -> >= 10 process runs and >= 10 output events,
        // plus 20 clock events: far more kernel work than 10 cycle steps.
        assert!(c.process_runs >= 10, "{c:?}");
        assert!(c.events >= 30, "{c:?}");
    }

    /// A one-deep echo: an enabled input byte is emitted (with `valid`)
    /// on the following edge; idle whenever nothing is pending.
    struct PulseEcho {
        pending: Option<u64>,
    }
    impl CycleDut for PulseEcho {
        fn input_ports(&self) -> Vec<PortDecl> {
            vec![PortDecl::new("en", 1), PortDecl::new("data", 8)]
        }
        fn output_ports(&self) -> Vec<PortDecl> {
            vec![PortDecl::new("valid", 1), PortDecl::new("q", 8)]
        }
        fn reset(&mut self) {
            self.pending = None;
        }
        fn clock_edge(&mut self, inputs: &[u64]) -> Vec<u64> {
            let out = match self.pending.take() {
                Some(d) => vec![1, d],
                None => vec![0, 0],
            };
            if inputs[0] == 1 {
                self.pending = Some(inputs[1]);
            }
            out
        }
        fn is_idle(&self) -> bool {
            self.pending.is_none()
        }
        fn inputs_inert(&self, inputs: &[u64]) -> bool {
            // `data` is a don't-care while `en` is low.
            inputs[0] == 0
        }
    }

    /// Records every `(time_ps, valid, q)` change on the echo outputs.
    struct OutProbe {
        valid: SignalId,
        q: SignalId,
        log: std::sync::Arc<std::sync::Mutex<Vec<(u64, u64, u64)>>>,
    }
    impl RtlProcess for OutProbe {
        fn run(&mut self, ctx: &mut RtlCtx) {
            self.log.lock().unwrap().push((
                ctx.now().as_picos(),
                ctx.read_u64(self.valid).unwrap_or(99),
                ctx.read_u64(self.q).unwrap_or(99),
            ));
        }
    }

    /// Drives two transfers with a long idle gap between them and returns
    /// the probe log plus the number of time steps the kernel executed.
    fn run_echo(gated: bool) -> (Vec<(u64, u64, u64)>, u64) {
        let mut sim = Simulator::new();
        let dut = if gated {
            attach_cycle_dut_gated(
                &mut sim,
                "echo",
                Box::new(PulseEcho { pending: None }),
                SimDuration::from_ns(20),
            )
        } else {
            let clk = sim.add_clock("clk", SimDuration::from_ns(20));
            attach_cycle_dut(&mut sim, "echo", Box::new(PulseEcho { pending: None }), clk)
        };
        let log = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        sim.add_process(
            Box::new(OutProbe {
                valid: dut.outputs[0],
                q: dut.outputs[1],
                log: log.clone(),
            }),
            &[dut.outputs[0], dut.outputs[1]],
        );
        for (t_ns, en, data) in [
            (25, 1, 0xAB),
            (45, 0, 0xAB),
            (985, 1, 0x5C),
            (1005, 0, 0x5C),
        ] {
            sim.poke_bit(
                dut.inputs[0],
                if en == 1 { Logic::One } else { Logic::Zero },
                SimTime::from_ns(t_ns),
            )
            .unwrap();
            sim.poke(
                dut.inputs[1],
                crate::vector::LogicVector::from_u64(data, 8),
                SimTime::from_ns(t_ns),
            )
            .unwrap();
        }
        sim.run_until(SimTime::from_ns(1200)).unwrap();
        let entries = log.lock().unwrap().clone();
        (entries, sim.counters().time_steps)
    }

    #[test]
    fn gated_attachment_is_observationally_identical_but_cheaper() {
        // Same DUT, same stimulus: every output event of the free-running
        // attachment must appear in the gated one at the same instant with
        // the same value — while the ~900 ns idle gap costs the gated
        // kernel no clock activity at all.
        let (free_log, free_steps) = run_echo(false);
        let (gated_log, gated_steps) = run_echo(true);
        assert_eq!(free_log, gated_log);
        assert!(
            !free_log.is_empty(),
            "stimulus must produce output activity"
        );
        assert!(
            gated_steps * 3 < free_steps,
            "gated: {gated_steps} steps, free-running: {free_steps}"
        );
    }
}
