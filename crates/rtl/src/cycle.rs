//! The cycle-based simulation engine.
//!
//! The paper closes with: "the integration of cycle-based simulation
//! techniques is required, as well as the development of design
//! methodologies that make cycle-accurate modeling sufficient" (§5). This
//! module is that integration: DUTs written against the pin-level
//! [`CycleDut`] trait advance one *clock cycle* per call with no event
//! queue, no delta cycles and no signal transactions — and the same DUT can
//! be dropped into the event-driven kernel through
//! [`attach_cycle_dut`], which is how experiment E7 compares the two
//! engines on identical hardware.

use crate::error::RtlError;
use crate::signal::SignalId;
use crate::sim::{RtlCtx, RtlProcess, Simulator};

/// Declaration of one pin-level port (≤ 64 bits).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortDecl {
    /// Port name (used for signal naming when attached to the event-driven
    /// kernel).
    pub name: String,
    /// Width in bits (1..=64).
    pub width: usize,
}

impl PortDecl {
    /// Creates a port declaration.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= width <= 64`.
    #[must_use]
    pub fn new(name: impl Into<String>, width: usize) -> Self {
        assert!((1..=64).contains(&width), "port width must be 1..=64");
        PortDecl {
            name: name.into(),
            width,
        }
    }

    /// Bit mask covering the port's width.
    #[must_use]
    pub fn mask(&self) -> u64 {
        if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        }
    }
}

/// A cycle-accurate, pin-level hardware model: state advances only on
/// rising clock edges. This is the contract shared by the cycle-based
/// engine, the event-driven wrapper and the hardware test board (whose
/// "prototype chip" is a `CycleDut` behind the pin interface).
pub trait CycleDut: Send {
    /// Input port declarations, in the order `clock_edge` expects.
    fn input_ports(&self) -> Vec<PortDecl>;

    /// Output port declarations, in the order `clock_edge` returns.
    fn output_ports(&self) -> Vec<PortDecl>;

    /// Returns all state to power-on values.
    fn reset(&mut self);

    /// Executes one rising clock edge: samples `inputs` (one word per input
    /// port) and returns the output pin values *after* the edge.
    fn clock_edge(&mut self, inputs: &[u64]) -> Vec<u64>;

    /// `true` when the DUT is quiescent: with all-zero inputs, further
    /// clocks provably change nothing observable. A cycle-based
    /// co-simulation may then *skip* clocks entirely — the idle-time
    /// optimization the paper's conclusion calls for. The default is
    /// conservative (`false`: never skip).
    fn is_idle(&self) -> bool {
        false
    }
}

/// The cycle-based engine: drives a [`CycleDut`] one clock at a time,
/// validating port counts/widths and counting cycles.
///
/// # Examples
///
/// ```
/// use castanet_rtl::cycle::{CycleDut, CycleSim, PortDecl};
///
/// struct Doubler;
/// impl CycleDut for Doubler {
///     fn input_ports(&self) -> Vec<PortDecl> { vec![PortDecl::new("x", 8)] }
///     fn output_ports(&self) -> Vec<PortDecl> { vec![PortDecl::new("y", 8)] }
///     fn reset(&mut self) {}
///     fn clock_edge(&mut self, inputs: &[u64]) -> Vec<u64> { vec![(inputs[0] * 2) & 0xFF] }
/// }
///
/// let mut sim = CycleSim::new(Box::new(Doubler));
/// assert_eq!(sim.step(&[21])?, vec![42]);
/// assert_eq!(sim.cycles(), 1);
/// # Ok::<(), castanet_rtl::error::RtlError>(())
/// ```
pub struct CycleSim {
    dut: Box<dyn CycleDut>,
    inputs: Vec<PortDecl>,
    outputs: Vec<PortDecl>,
    cycles: u64,
}

impl std::fmt::Debug for CycleSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CycleSim")
            .field("cycles", &self.cycles)
            .field("inputs", &self.inputs.len())
            .field("outputs", &self.outputs.len())
            .finish()
    }
}

impl CycleSim {
    /// Wraps a DUT as-is — deliberately without resetting it, so
    /// pre-loaded configuration (routing tables, tariffs) survives. Call
    /// [`CycleSim::reset`] explicitly for a power-on start.
    #[must_use]
    pub fn new(dut: Box<dyn CycleDut>) -> Self {
        let inputs = dut.input_ports();
        let outputs = dut.output_ports();
        CycleSim {
            dut,
            inputs,
            outputs,
            cycles: 0,
        }
    }

    /// Executes one clock edge.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::PortCountMismatch`] for a wrong input count or
    /// [`RtlError::WidthMismatch`] when a word exceeds its port width.
    pub fn step(&mut self, inputs: &[u64]) -> Result<Vec<u64>, RtlError> {
        if inputs.len() != self.inputs.len() {
            return Err(RtlError::PortCountMismatch {
                expected: self.inputs.len(),
                got: inputs.len(),
            });
        }
        for (word, port) in inputs.iter().zip(&self.inputs) {
            if *word & !port.mask() != 0 {
                return Err(RtlError::WidthMismatch {
                    expected: port.width,
                    got: 64 - word.leading_zeros() as usize,
                });
            }
        }
        self.cycles += 1;
        let out = self.dut.clock_edge(inputs);
        debug_assert_eq!(
            out.len(),
            self.outputs.len(),
            "dut returned wrong output count"
        );
        Ok(out)
    }

    /// Executes `n` cycles with constant inputs, returning the last outputs.
    ///
    /// # Errors
    ///
    /// See [`CycleSim::step`].
    pub fn step_n(&mut self, inputs: &[u64], n: u64) -> Result<Vec<u64>, RtlError> {
        let mut last = Vec::new();
        for _ in 0..n {
            last = self.step(inputs)?;
        }
        Ok(last)
    }

    /// Resets the DUT and the cycle counter.
    pub fn reset(&mut self) {
        self.dut.reset();
        self.cycles = 0;
    }

    /// Clock edges executed since construction/reset.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Input port declarations.
    #[must_use]
    pub fn input_ports(&self) -> &[PortDecl] {
        &self.inputs
    }

    /// Output port declarations.
    #[must_use]
    pub fn output_ports(&self) -> &[PortDecl] {
        &self.outputs
    }

    /// Direct access to the wrapped DUT (e.g. for configuration readback).
    #[must_use]
    pub fn dut(&self) -> &dyn CycleDut {
        self.dut.as_ref()
    }

    /// Mutable access to the wrapped DUT.
    pub fn dut_mut(&mut self) -> &mut dyn CycleDut {
        self.dut.as_mut()
    }
}

/// The signals created for an attached DUT: index-aligned with the DUT's
/// port declarations.
#[derive(Debug, Clone)]
pub struct AttachedDut {
    /// Input signals (drive these).
    pub inputs: Vec<SignalId>,
    /// Output signals (observe these).
    pub outputs: Vec<SignalId>,
    /// The clock the wrapper listens on.
    pub clk: SignalId,
}

struct CycleDutProcess {
    dut: Box<dyn CycleDut>,
    clk: SignalId,
    inputs: Vec<SignalId>,
    outputs: Vec<SignalId>,
    out_widths: Vec<usize>,
}

impl RtlProcess for CycleDutProcess {
    fn run(&mut self, ctx: &mut RtlCtx) {
        if !ctx.rising(self.clk) {
            return;
        }
        // Undefined input bits sample as 0 — the pessimistic-X alternative
        // would poison the whole DUT state, which is not useful for the
        // co-simulation data path.
        let words: Vec<u64> = self
            .inputs
            .iter()
            .map(|&s| ctx.read_u64(s).unwrap_or(0))
            .collect();
        let outs = self.dut.clock_edge(&words);
        for ((sig, word), width) in self.outputs.iter().zip(outs).zip(&self.out_widths) {
            ctx.assign(
                *sig,
                crate::vector::LogicVector::from_u64(word & mask(*width), *width),
            );
        }
    }
}

fn mask(width: usize) -> u64 {
    if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Instantiates a [`CycleDut`] inside the event-driven kernel: declares one
/// signal per port (named `prefix.port`), registers a clocked wrapper
/// process sensitive to `clk`, and returns the signal map.
///
/// This is how "RTL in an event-driven simulator" is modelled for the E7
/// engine comparison: every output change becomes a real signal event with
/// delta-cycle processing, exactly the per-clock overhead the paper calls
/// the bottleneck.
pub fn attach_cycle_dut(
    sim: &mut Simulator,
    prefix: &str,
    dut: Box<dyn CycleDut>,
    clk: SignalId,
) -> AttachedDut {
    // Deliberately no reset: the caller may have configured the DUT
    // (routes, tariffs) before attaching it.
    let inputs: Vec<SignalId> = dut
        .input_ports()
        .iter()
        .map(|p| sim.add_signal(format!("{prefix}.{}", p.name), p.width))
        .collect();
    let out_decls = dut.output_ports();
    let outputs: Vec<SignalId> = out_decls
        .iter()
        .map(|p| sim.add_signal(format!("{prefix}.{}", p.name), p.width))
        .collect();
    let process = CycleDutProcess {
        dut,
        clk,
        inputs: inputs.clone(),
        outputs: outputs.clone(),
        out_widths: out_decls.iter().map(|p| p.width).collect(),
    };
    sim.add_process(Box::new(process), &[clk]);
    AttachedDut {
        inputs,
        outputs,
        clk,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logic::Logic;
    use castanet_netsim::time::{SimDuration, SimTime};

    /// An accumulator: out <= out + in each edge; clear input resets.
    struct Accumulator {
        acc: u64,
    }
    impl CycleDut for Accumulator {
        fn input_ports(&self) -> Vec<PortDecl> {
            vec![PortDecl::new("add", 8), PortDecl::new("clear", 1)]
        }
        fn output_ports(&self) -> Vec<PortDecl> {
            vec![PortDecl::new("sum", 16)]
        }
        fn reset(&mut self) {
            self.acc = 0;
        }
        fn clock_edge(&mut self, inputs: &[u64]) -> Vec<u64> {
            if inputs[1] == 1 {
                self.acc = 0;
            } else {
                self.acc = (self.acc + inputs[0]) & 0xFFFF;
            }
            vec![self.acc]
        }
    }

    #[test]
    fn cycle_sim_steps_and_counts() {
        let mut sim = CycleSim::new(Box::new(Accumulator { acc: 0 }));
        assert_eq!(sim.step(&[5, 0]).unwrap(), vec![5]);
        assert_eq!(sim.step(&[7, 0]).unwrap(), vec![12]);
        assert_eq!(sim.step(&[0, 1]).unwrap(), vec![0]);
        assert_eq!(sim.cycles(), 3);
        sim.reset();
        assert_eq!(sim.cycles(), 0);
        assert_eq!(sim.step(&[1, 0]).unwrap(), vec![1]);
    }

    #[test]
    fn step_n_repeats_inputs() {
        let mut sim = CycleSim::new(Box::new(Accumulator { acc: 0 }));
        assert_eq!(sim.step_n(&[3, 0], 4).unwrap(), vec![12]);
        assert_eq!(sim.cycles(), 4);
    }

    #[test]
    fn input_validation() {
        let mut sim = CycleSim::new(Box::new(Accumulator { acc: 0 }));
        assert!(matches!(
            sim.step(&[1]),
            Err(RtlError::PortCountMismatch {
                expected: 2,
                got: 1
            })
        ));
        assert!(matches!(
            sim.step(&[256, 0]),
            Err(RtlError::WidthMismatch { expected: 8, .. })
        ));
        assert_eq!(sim.cycles(), 0, "failed steps must not count");
    }

    #[test]
    fn port_decl_masks() {
        assert_eq!(PortDecl::new("a", 1).mask(), 1);
        assert_eq!(PortDecl::new("a", 8).mask(), 0xFF);
        assert_eq!(PortDecl::new("a", 64).mask(), u64::MAX);
    }

    #[test]
    fn attached_dut_matches_cycle_sim() {
        // Drive the same stimulus through both engines; outputs must agree.
        let stimulus: Vec<(u64, u64)> = vec![(3, 0), (4, 0), (0, 1), (9, 0)];

        // Cycle engine.
        let mut csim = CycleSim::new(Box::new(Accumulator { acc: 0 }));
        let mut expected = Vec::new();
        for &(a, c) in &stimulus {
            expected.push(csim.step(&[a, c]).unwrap()[0]);
        }

        // Event-driven engine.
        let mut esim = Simulator::new();
        let clk = esim.add_clock("clk", SimDuration::from_ns(10));
        let dut = attach_cycle_dut(&mut esim, "acc", Box::new(Accumulator { acc: 0 }), clk);
        let mut got = Vec::new();
        for (i, &(a, c)) in stimulus.iter().enumerate() {
            let t = SimTime::from_ns(10 * i as u64);
            esim.poke(dut.inputs[0], crate::vector::LogicVector::from_u64(a, 8), t)
                .unwrap();
            esim.poke(dut.inputs[1], crate::vector::LogicVector::from_u64(c, 1), t)
                .unwrap();
            // Edge at 10*i + 5; observe just after.
            esim.run_until(SimTime::from_ns(10 * i as u64 + 6)).unwrap();
            got.push(esim.read_u64(dut.outputs[0]).unwrap());
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn event_driven_wrapper_generates_kernel_activity() {
        let mut esim = Simulator::new();
        let clk = esim.add_clock("clk", SimDuration::from_ns(10));
        let dut = attach_cycle_dut(&mut esim, "acc", Box::new(Accumulator { acc: 0 }), clk);
        esim.poke(
            dut.inputs[0],
            crate::vector::LogicVector::from_u64(1, 8),
            SimTime::ZERO,
        )
        .unwrap();
        esim.poke_bit(dut.inputs[1], Logic::Zero, SimTime::ZERO)
            .unwrap();
        esim.run_until(SimTime::from_ns(101)).unwrap();
        let c = esim.counters();
        // 10 rising edges -> >= 10 process runs and >= 10 output events,
        // plus 20 clock events: far more kernel work than 10 cycle steps.
        assert!(c.process_runs >= 10, "{c:?}");
        assert!(c.events >= 30, "{c:?}");
    }
}
