//! The simulated SCSI transport between the workstation and the board.
//!
//! The real CASTANET reaches its test board over a SCSI bus (Fig. 2). Here
//! the bus is replaced by a transfer-time model — per-transfer latency plus
//! bytes divided by bandwidth — so that the software-activity phases of a
//! test cycle (§3.3: configure, store stimuli, read results back) carry a
//! realistic cost in the E5 efficiency measurements.

use std::time::Duration;

/// Bandwidth/latency model of the host↔board link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScsiBus {
    bandwidth_bytes_per_sec: u64,
    per_transfer_latency: Duration,
}

impl Default for ScsiBus {
    /// Fast SCSI-2 as a 1997 lab would have had: 10 MB/s, 1 ms per
    /// transfer of command/arbitration overhead.
    fn default() -> Self {
        ScsiBus {
            bandwidth_bytes_per_sec: 10_000_000,
            per_transfer_latency: Duration::from_millis(1),
        }
    }
}

impl ScsiBus {
    /// Creates a bus model.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bytes_per_sec` is zero.
    #[must_use]
    pub fn new(bandwidth_bytes_per_sec: u64, per_transfer_latency: Duration) -> Self {
        assert!(bandwidth_bytes_per_sec > 0, "bandwidth must be non-zero");
        ScsiBus {
            bandwidth_bytes_per_sec,
            per_transfer_latency,
        }
    }

    /// Modelled wall-clock time to move `bytes` in one transfer.
    #[must_use]
    pub fn transfer_time(&self, bytes: usize) -> Duration {
        let payload = Duration::from_secs_f64(bytes as f64 / self.bandwidth_bytes_per_sec as f64);
        self.per_transfer_latency + payload
    }

    /// Bandwidth in bytes per second.
    #[must_use]
    pub fn bandwidth_bytes_per_sec(&self) -> u64 {
        self.bandwidth_bytes_per_sec
    }

    /// Per-transfer latency.
    #[must_use]
    pub fn per_transfer_latency(&self) -> Duration {
        self.per_transfer_latency
    }
}

/// Accumulates modelled bus usage over a verification session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScsiStats {
    /// Transfers performed.
    pub transfers: u64,
    /// Bytes moved.
    pub bytes: u64,
    /// Total modelled time on the bus.
    pub busy: Duration,
}

impl ScsiStats {
    /// Records one transfer of `bytes` over `bus`.
    pub fn record(&mut self, bus: &ScsiBus, bytes: usize) -> Duration {
        let t = bus.transfer_time(bytes);
        self.transfers += 1;
        self.bytes += bytes as u64;
        self.busy += t;
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_with_bytes() {
        let bus = ScsiBus::new(1_000_000, Duration::from_millis(2));
        let t1 = bus.transfer_time(0);
        assert_eq!(t1, Duration::from_millis(2), "latency only");
        let t2 = bus.transfer_time(1_000_000);
        assert_eq!(t2, Duration::from_millis(2) + Duration::from_secs(1));
    }

    #[test]
    fn default_is_fast_scsi2() {
        let bus = ScsiBus::default();
        assert_eq!(bus.bandwidth_bytes_per_sec(), 10_000_000);
        assert_eq!(bus.per_transfer_latency(), Duration::from_millis(1));
    }

    #[test]
    fn stats_accumulate() {
        let bus = ScsiBus::new(1_000, Duration::ZERO);
        let mut stats = ScsiStats::default();
        stats.record(&bus, 500);
        stats.record(&bus, 500);
        assert_eq!(stats.transfers, 2);
        assert_eq!(stats.bytes, 1000);
        assert_eq!(stats.busy, Duration::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_bandwidth_panics() {
        let _ = ScsiBus::new(0, Duration::ZERO);
    }
}
