//! Error type of the hardware test board model.

use std::fmt;

/// Errors surfaced by board configuration and test-cycle execution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BoardError {
    /// A byte-lane index was not in `0..16`.
    LaneOutOfRange {
        /// The offending lane id.
        lane: usize,
    },
    /// A pin segment exceeded its byte lane (start bit + bits > 8).
    SegmentOutOfLane {
        /// Lane the segment addressed.
        lane: usize,
        /// Start bit position.
        start_bit: usize,
        /// Segment width.
        bits: usize,
    },
    /// A port mapping's segments do not add up to the declared width.
    WidthMismatch {
        /// Declared port width.
        declared: usize,
        /// Sum of segment widths.
        mapped: usize,
    },
    /// Two mappings claim the same pin.
    PinConflict {
        /// Lane of the doubly-assigned pin.
        lane: usize,
        /// Bit of the doubly-assigned pin.
        bit: usize,
    },
    /// A mapping drives a lane whose configured direction disagrees.
    DirectionConflict {
        /// The lane in question.
        lane: usize,
    },
    /// The requested test-cycle duration is outside the supported window.
    DurationOutOfRange {
        /// Requested duration in board clocks.
        requested: u64,
        /// Minimum supported duration.
        min: u64,
        /// Maximum supported duration (memory depth).
        max: u64,
    },
    /// The requested board clock exceeds the board's maximum.
    ClockTooFast {
        /// Requested frequency in Hz.
        requested_hz: u64,
        /// Board maximum in Hz.
        max_hz: u64,
    },
    /// Stimulus data exceeds the vector memory depth.
    MemoryOverflow {
        /// Words offered.
        offered: usize,
        /// Memory capacity in words.
        capacity: usize,
    },
    /// An operation referenced an unknown port number.
    UnknownPort {
        /// The port number used.
        port: usize,
    },
    /// A value does not fit the port's declared width.
    ValueTooWide {
        /// The port number.
        port: usize,
        /// Declared width.
        width: usize,
    },
    /// Two mappings of the same class share a port number.
    DuplicatePort {
        /// Port class ("inport", "outport" or "ctrlport").
        kind: &'static str,
        /// The doubly-used port number.
        port: usize,
    },
    /// The board has not been configured yet.
    NotConfigured,
}

impl fmt::Display for BoardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoardError::LaneOutOfRange { lane } => {
                write!(f, "byte lane {lane} out of range (board has 16 lanes)")
            }
            BoardError::SegmentOutOfLane {
                lane,
                start_bit,
                bits,
            } => write!(
                f,
                "segment of {bits} bits at start bit {start_bit} exceeds byte lane {lane}"
            ),
            BoardError::WidthMismatch { declared, mapped } => {
                write!(f, "port declares {declared} bits but maps {mapped}")
            }
            BoardError::PinConflict { lane, bit } => {
                write!(f, "pin {bit} of lane {lane} is assigned twice")
            }
            BoardError::DirectionConflict { lane } => {
                write!(
                    f,
                    "mapping direction disagrees with lane {lane} configuration"
                )
            }
            BoardError::DurationOutOfRange {
                requested,
                min,
                max,
            } => write!(
                f,
                "test cycle of {requested} clocks outside supported window [{min}, {max}]"
            ),
            BoardError::ClockTooFast {
                requested_hz,
                max_hz,
            } => {
                write!(
                    f,
                    "board clock {requested_hz} Hz exceeds maximum {max_hz} Hz"
                )
            }
            BoardError::MemoryOverflow { offered, capacity } => {
                write!(
                    f,
                    "{offered} stimulus words exceed memory capacity {capacity}"
                )
            }
            BoardError::UnknownPort { port } => write!(f, "port {port} is not mapped"),
            BoardError::ValueTooWide { port, width } => {
                write!(f, "value does not fit port {port} of width {width}")
            }
            BoardError::DuplicatePort { kind, port } => {
                write!(f, "{kind} number {port} is mapped twice")
            }
            BoardError::NotConfigured => write!(f, "board is not configured"),
        }
    }
}

impl std::error::Error for BoardError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            BoardError::LaneOutOfRange { lane: 17 }.to_string(),
            "byte lane 17 out of range (board has 16 lanes)"
        );
        assert_eq!(
            BoardError::PinConflict { lane: 3, bit: 5 }.to_string(),
            "pin 5 of lane 3 is assigned twice"
        );
        assert!(BoardError::NotConfigured
            .to_string()
            .contains("not configured"));
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BoardError>();
    }
}
