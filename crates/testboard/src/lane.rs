//! Byte lanes: the board's pin groups.
//!
//! "The bit stream interface consists of 128 I/O-pins, where each of 16
//! byte lanes is configurable in direction and speed" (§3.3). A lane is
//! eight pins moving together; *direction* says whether the board drives
//! the DUT (stimulus) or samples it (response), and *speed* is a clock
//! gating factor — the lane changes/samples only every `gating`-th board
//! clock.

use crate::error::BoardError;

/// Number of byte lanes on the board.
pub const LANES: usize = 16;
/// Pins per lane.
pub const LANE_BITS: usize = 8;
/// Total pins of the bit-stream interface.
pub const PINS: usize = LANES * LANE_BITS;
/// Maximum board clock of the current implementation (§3.3): 20 MHz.
pub const MAX_CLOCK_HZ: u64 = 20_000_000;

/// Direction of a byte lane, from the board's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LaneDirection {
    /// The board drives the lane (DUT input, stimulus data).
    #[default]
    Drive,
    /// The board samples the lane (DUT output, response data).
    Sample,
}

/// Configuration of one byte lane: direction plus clock-gating factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneConfig {
    /// Direction of the lane.
    pub direction: LaneDirection,
    /// The lane is active every `gating`-th board clock (1 = full speed).
    pub gating: u32,
}

impl Default for LaneConfig {
    fn default() -> Self {
        LaneConfig {
            direction: LaneDirection::Drive,
            gating: 1,
        }
    }
}

impl LaneConfig {
    /// A full-speed driving lane.
    #[must_use]
    pub fn drive() -> Self {
        LaneConfig::default()
    }

    /// A full-speed sampling lane.
    #[must_use]
    pub fn sample() -> Self {
        LaneConfig {
            direction: LaneDirection::Sample,
            gating: 1,
        }
    }

    /// Sets the clock-gating factor.
    ///
    /// # Panics
    ///
    /// Panics if `gating` is zero.
    #[must_use]
    pub fn with_gating(mut self, gating: u32) -> Self {
        assert!(gating > 0, "gating factor must be non-zero");
        self.gating = gating;
        self
    }

    /// `true` when the lane is active at board clock `tick`.
    #[must_use]
    pub fn active_at(&self, tick: u64) -> bool {
        tick.is_multiple_of(u64::from(self.gating))
    }
}

/// Validates a lane index.
///
/// # Errors
///
/// Returns [`BoardError::LaneOutOfRange`] for `lane >= 16`.
pub fn check_lane(lane: usize) -> Result<(), BoardError> {
    if lane >= LANES {
        return Err(BoardError::LaneOutOfRange { lane });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_the_paper() {
        assert_eq!(LANES, 16);
        assert_eq!(PINS, 128);
        assert_eq!(MAX_CLOCK_HZ, 20_000_000);
    }

    #[test]
    fn default_lane_drives_full_speed() {
        let l = LaneConfig::default();
        assert_eq!(l.direction, LaneDirection::Drive);
        assert_eq!(l.gating, 1);
        assert!(l.active_at(0) && l.active_at(1) && l.active_at(999));
    }

    #[test]
    fn gating_divides_activity() {
        let l = LaneConfig::sample().with_gating(4);
        assert!(l.active_at(0));
        assert!(!l.active_at(1));
        assert!(!l.active_at(3));
        assert!(l.active_at(4));
        assert!(l.active_at(8));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_gating_panics() {
        let _ = LaneConfig::drive().with_gating(0);
    }

    #[test]
    fn lane_bounds_check() {
        assert!(check_lane(0).is_ok());
        assert!(check_lane(15).is_ok());
        assert_eq!(check_lane(16), Err(BoardError::LaneOutOfRange { lane: 16 }));
    }
}
