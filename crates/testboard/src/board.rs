//! The test board proper: lanes + memories + clock + configuration.
//!
//! A hardware activity cycle (§3.3) plays the stimulus memory onto the
//! driving lanes at the configured board clock, clocks the device under
//! test, and records the sampling lanes into the response memory — at
//! "real-time speed", i.e. without any simulator in the loop.

use crate::dut::HardwareDut;
use crate::error::BoardError;
use crate::lane::{LaneConfig, LaneDirection, LANES, MAX_CLOCK_HZ};
use crate::memory::{VectorMemory, DEFAULT_DEPTH};
use crate::pinmap::{PinFrame, PinMapConfig};
use std::time::Duration;

/// The configurable hardware test board.
///
/// # Examples
///
/// ```
/// use castanet_testboard::board::TestBoard;
/// use castanet_testboard::dut::MappedCycleDut;
/// use castanet_rtl::cycle::{CycleDut, PortDecl};
///
/// struct Inc;
/// impl CycleDut for Inc {
///     fn input_ports(&self) -> Vec<PortDecl> { vec![PortDecl::new("x", 8)] }
///     fn output_ports(&self) -> Vec<PortDecl> { vec![PortDecl::new("y", 8)] }
///     fn reset(&mut self) {}
///     fn clock_edge(&mut self, i: &[u64]) -> Vec<u64> { vec![(i[0] + 1) & 0xFF] }
/// }
///
/// let (dut, lanes) = MappedCycleDut::auto_mapped(Box::new(Inc));
/// let map = dut.map().clone();
/// let mut board = TestBoard::new();
/// board.configure(map.clone(), lanes, 10_000_000)?;
/// // One stimulus word: inport 0 = 41.
/// let mut frame = [0u8; 16];
/// map.encode_inport(0, 41, &mut frame)?;
/// board.load_stimulus(vec![frame])?;
/// let mut dut = dut;
/// board.run_hw_cycle(&mut dut, 1)?;
/// assert_eq!(map.decode_outport(0, &board.response()[0])?, 42);
/// # Ok::<(), castanet_testboard::error::BoardError>(())
/// ```
#[derive(Debug)]
pub struct TestBoard {
    lanes: [LaneConfig; LANES],
    map: PinMapConfig,
    stimulus: VectorMemory,
    response: VectorMemory,
    clock_hz: u64,
    configured: bool,
    clocks_run: u64,
}

impl Default for TestBoard {
    fn default() -> Self {
        Self::new()
    }
}

impl TestBoard {
    /// A board with the default memory depth (2^20 words).
    #[must_use]
    pub fn new() -> Self {
        Self::with_memory_depth(DEFAULT_DEPTH)
    }

    /// A board whose vector memories hold `depth` words — this bounds the
    /// supported test-cycle duration window.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    #[must_use]
    pub fn with_memory_depth(depth: usize) -> Self {
        TestBoard {
            lanes: [LaneConfig::default(); LANES],
            map: PinMapConfig::default(),
            stimulus: VectorMemory::new(depth),
            response: VectorMemory::new(depth),
            clock_hz: MAX_CLOCK_HZ,
            configured: false,
            clocks_run: 0,
        }
    }

    /// Configures pin mapping, lane directions/speeds and the board clock.
    ///
    /// # Errors
    ///
    /// Returns validation errors from the pin map, or
    /// [`BoardError::ClockTooFast`] above 20 MHz.
    pub fn configure(
        &mut self,
        map: PinMapConfig,
        lanes: [LaneConfig; LANES],
        clock_hz: u64,
    ) -> Result<(), BoardError> {
        if clock_hz == 0 || clock_hz > MAX_CLOCK_HZ {
            return Err(BoardError::ClockTooFast {
                requested_hz: clock_hz,
                max_hz: MAX_CLOCK_HZ,
            });
        }
        map.validate(&lanes)?;
        self.map = map;
        self.lanes = lanes;
        self.clock_hz = clock_hz;
        self.configured = true;
        Ok(())
    }

    /// Loads the stimulus memory with per-clock pin frames.
    ///
    /// # Errors
    ///
    /// Returns [`BoardError::NotConfigured`] before configuration or
    /// [`BoardError::MemoryOverflow`] past the memory depth.
    pub fn load_stimulus(&mut self, words: Vec<PinFrame>) -> Result<(), BoardError> {
        if !self.configured {
            return Err(BoardError::NotConfigured);
        }
        self.stimulus.load(words)
    }

    /// The supported test-cycle duration window `[1, memory depth]`.
    #[must_use]
    pub fn duration_window(&self) -> (u64, u64) {
        (1, self.stimulus.capacity() as u64)
    }

    /// Runs one hardware activity cycle of `duration` board clocks: plays
    /// the stimulus, clocks the DUT, records responses.
    ///
    /// # Errors
    ///
    /// Returns [`BoardError::NotConfigured`] or
    /// [`BoardError::DurationOutOfRange`].
    pub fn run_hw_cycle(
        &mut self,
        dut: &mut dyn HardwareDut,
        duration: u64,
    ) -> Result<(), BoardError> {
        if !self.configured {
            return Err(BoardError::NotConfigured);
        }
        let (min, max) = self.duration_window();
        if duration < min || duration > max {
            return Err(BoardError::DurationOutOfRange {
                requested: duration,
                min,
                max,
            });
        }
        self.response.clear();
        let mut driven: PinFrame = [0; LANES];
        let mut sampled: PinFrame = [0; LANES];
        for tick in 0..duration {
            let word = self.stimulus.word(tick as usize);
            for (lane, cfg) in self.lanes.iter().enumerate() {
                if cfg.direction == LaneDirection::Drive && cfg.active_at(tick) {
                    driven[lane] = word[lane];
                }
            }
            let out = dut.clock(&driven);
            for (lane, cfg) in self.lanes.iter().enumerate() {
                if cfg.direction == LaneDirection::Sample && cfg.active_at(tick) {
                    sampled[lane] = out[lane];
                }
            }
            self.response
                .push(sampled)
                .expect("response depth equals stimulus depth");
            self.clocks_run += 1;
        }
        Ok(())
    }

    /// Runs a hardware cycle whose duration is taken from the loaded
    /// stimulus length ("automatically calculated", §3.3).
    ///
    /// # Errors
    ///
    /// See [`TestBoard::run_hw_cycle`]; an empty stimulus is a
    /// [`BoardError::DurationOutOfRange`] of 0.
    pub fn run_hw_cycle_auto(&mut self, dut: &mut dyn HardwareDut) -> Result<u64, BoardError> {
        let duration = self.stimulus.len() as u64;
        self.run_hw_cycle(dut, duration)?;
        Ok(duration)
    }

    /// The recorded response frames of the last hardware cycle.
    #[must_use]
    pub fn response(&self) -> &[PinFrame] {
        self.response.words()
    }

    /// The active pin map.
    #[must_use]
    pub fn map(&self) -> &PinMapConfig {
        &self.map
    }

    /// The configured board clock in Hz.
    #[must_use]
    pub fn clock_hz(&self) -> u64 {
        self.clock_hz
    }

    /// Wall-clock time `clocks` board cycles take at the configured clock —
    /// the *real-time* duration of a hardware activity phase.
    #[must_use]
    pub fn real_time(&self, clocks: u64) -> Duration {
        Duration::from_secs_f64(clocks as f64 / self.clock_hz as f64)
    }

    /// Total board clocks executed over the board's lifetime.
    #[must_use]
    pub fn clocks_run(&self) -> u64 {
        self.clocks_run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dut::MappedCycleDut;
    use castanet_rtl::cycle::{CycleDut, PortDecl};

    struct Inc;
    impl CycleDut for Inc {
        fn input_ports(&self) -> Vec<PortDecl> {
            vec![PortDecl::new("x", 8)]
        }
        fn output_ports(&self) -> Vec<PortDecl> {
            vec![PortDecl::new("y", 8)]
        }
        fn reset(&mut self) {}
        fn clock_edge(&mut self, i: &[u64]) -> Vec<u64> {
            vec![(i[0] + 1) & 0xFF]
        }
    }

    fn configured_board() -> (TestBoard, MappedCycleDut, PinMapConfig) {
        let (dut, lanes) = MappedCycleDut::auto_mapped(Box::new(Inc));
        let map = dut.map().clone();
        let mut board = TestBoard::with_memory_depth(64);
        board.configure(map.clone(), lanes, 10_000_000).unwrap();
        (board, dut, map)
    }

    #[test]
    fn stimulus_to_response_pipeline() {
        let (mut board, mut dut, map) = configured_board();
        let mut words = Vec::new();
        for v in [10u64, 20, 30] {
            let mut f: PinFrame = [0; LANES];
            map.encode_inport(0, v, &mut f).unwrap();
            words.push(f);
        }
        board.load_stimulus(words).unwrap();
        let n = board.run_hw_cycle_auto(&mut dut).unwrap();
        assert_eq!(n, 3);
        let resp = board.response();
        assert_eq!(resp.len(), 3);
        for (i, expect) in [11u64, 21, 31].into_iter().enumerate() {
            assert_eq!(map.decode_outport(0, &resp[i]).unwrap(), expect);
        }
        assert_eq!(board.clocks_run(), 3);
    }

    #[test]
    fn unconfigured_board_refuses_everything() {
        let mut board = TestBoard::new();
        assert_eq!(board.load_stimulus(vec![]), Err(BoardError::NotConfigured));
        let (_, mut dut, _) = configured_board();
        assert_eq!(
            board.run_hw_cycle(&mut dut, 1),
            Err(BoardError::NotConfigured)
        );
    }

    #[test]
    fn clock_limit_enforced() {
        let (dut, lanes) = MappedCycleDut::auto_mapped(Box::new(Inc));
        let mut board = TestBoard::new();
        let err = board
            .configure(dut.map().clone(), lanes, MAX_CLOCK_HZ + 1)
            .unwrap_err();
        assert!(matches!(err, BoardError::ClockTooFast { .. }));
        assert!(board
            .configure(dut.map().clone(), lanes, MAX_CLOCK_HZ)
            .is_ok());
    }

    #[test]
    fn duration_window_enforced() {
        let (mut board, mut dut, _) = configured_board();
        assert_eq!(board.duration_window(), (1, 64));
        assert!(matches!(
            board.run_hw_cycle(&mut dut, 0),
            Err(BoardError::DurationOutOfRange { requested: 0, .. })
        ));
        assert!(matches!(
            board.run_hw_cycle(&mut dut, 65),
            Err(BoardError::DurationOutOfRange { requested: 65, .. })
        ));
        assert!(board.run_hw_cycle(&mut dut, 64).is_ok());
    }

    #[test]
    fn short_stimulus_holds_last_values() {
        let (mut board, mut dut, map) = configured_board();
        let mut f: PinFrame = [0; LANES];
        map.encode_inport(0, 5, &mut f).unwrap();
        board.load_stimulus(vec![f]).unwrap();
        board.run_hw_cycle(&mut dut, 4).unwrap();
        // Clock 0 drives 5; later clocks read the zero frames past the end,
        // so the driven value becomes 0 and output 1.
        let resp = board.response();
        assert_eq!(map.decode_outport(0, &resp[0]).unwrap(), 6);
        assert_eq!(map.decode_outport(0, &resp[3]).unwrap(), 1);
    }

    #[test]
    fn gated_lane_updates_at_its_own_rate() {
        let (dut, mut lanes) = MappedCycleDut::auto_mapped(Box::new(Inc));
        let map = dut.map().clone();
        // Slow the driving lane (lane 0) to every 2nd clock.
        lanes[0] = lanes[0].with_gating(2);
        let mut board = TestBoard::with_memory_depth(8);
        board.configure(map.clone(), lanes, 1_000_000).unwrap();
        let mut words = Vec::new();
        for v in [1u64, 2, 3, 4] {
            let mut f: PinFrame = [0; LANES];
            map.encode_inport(0, v, &mut f).unwrap();
            words.push(f);
        }
        board.load_stimulus(words).unwrap();
        let mut dut = dut;
        board.run_hw_cycle(&mut dut, 4).unwrap();
        let resp = board.response();
        // Lane updates at ticks 0 and 2 only: values 1,1,3,3 -> +1.
        let got: Vec<u64> = (0..4)
            .map(|i| map.decode_outport(0, &resp[i]).unwrap())
            .collect();
        assert_eq!(got, vec![2, 2, 4, 4]);
    }

    #[test]
    fn real_time_model() {
        let (board, _, _) = configured_board();
        assert_eq!(board.real_time(10_000_000), Duration::from_secs(1));
        assert_eq!(board.clock_hz(), 10_000_000);
    }

    #[test]
    fn response_cleared_between_cycles() {
        let (mut board, mut dut, map) = configured_board();
        let mut f: PinFrame = [0; LANES];
        map.encode_inport(0, 1, &mut f).unwrap();
        board.load_stimulus(vec![f; 5]).unwrap();
        board.run_hw_cycle(&mut dut, 5).unwrap();
        assert_eq!(board.response().len(), 5);
        board.run_hw_cycle(&mut dut, 2).unwrap();
        assert_eq!(board.response().len(), 2);
    }
}
