//! # castanet-testboard — the hardware test board model
//!
//! A from-scratch substitute for the RAVEN hardware test board the DATE'98
//! CASTANET paper uses for functional chip verification (§3.3, ref. [16]):
//!
//! * [`lane`] — 16 byte lanes / 128 I/O pins, each configurable in
//!   direction and speed; 20 MHz maximum board clock;
//! * [`pinmap`] — the Fig. 5 configuration data set: inport / outport /
//!   I/O-port / control-port mappings in terms of byte lane ID, start bit
//!   position and number of bits, with full validation;
//! * [`memory`] — stimulus and response vector memories whose depth bounds
//!   the supported test-cycle duration window;
//! * [`board`] — the board itself: configuration, stimulus playback,
//!   response capture;
//! * [`cycle`] — the SW-stimulus → HW-run → SW-readback test-cycle state
//!   machine with a wall-clock model of where time goes;
//! * [`scsi`] — the host↔board transport, modelled by bandwidth + latency;
//! * [`dut`] — the simulated prototype chip: any `castanet-rtl` cycle DUT
//!   behind a pin map, optionally wrapped in a timing-fault injector that
//!   misbehaves above its rated clock — the failures only real-time
//!   verification can catch.
//!
//! The physical board, SCSI bus and prototype silicon of the paper are
//! unavailable; every substitution preserves the interface and the timing
//! structure the co-verification flow interacts with (see DESIGN.md §2).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod board;
pub mod cycle;
pub mod dut;
pub mod error;
pub mod lane;
pub mod memory;
pub mod pinmap;
pub mod scsi;

pub use board::TestBoard;
pub use cycle::{SessionStats, TestSession};
pub use dut::{HardwareDut, MappedCycleDut, TimingFaultDut};
pub use error::BoardError;
pub use lane::{LaneConfig, LaneDirection, LANES, MAX_CLOCK_HZ, PINS};
pub use pinmap::{PinFrame, PinMapConfig};
