//! The pin-mapping configuration data set of Fig. 5.
//!
//! "The signal mapping of bit-level signals to the hardware test board pins
//! is specified in a configuration data set. The configuration data set
//! collects the information in terms of byte lane ID, start bit position
//! and number of bits, provided by the user, to automatically establish the
//! input port mapping, output port mapping, I/O port mapping and the
//! associated control port mapping." (§3.3, Fig. 5)
//!
//! Because the board's bit-level data flows are unidirectional, a DUT bus
//! interface is modelled by *three* ports — an inport, an outport and a
//! control port whose value against a predefined write flag selects the
//! active direction — exactly as the paper prescribes.
//!
//! A segment's `start_bit` is MSB-anchored, as in the figure: start bit 7
//! with 6 bits occupies lane bits `7..=2`.

use crate::error::BoardError;
use crate::lane::{check_lane, LaneConfig, LaneDirection, LANES, LANE_BITS};
use std::collections::{HashMap, HashSet};

/// One contiguous run of pins on a byte lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PinSegment {
    /// Byte lane ID (0..16).
    pub lane: usize,
    /// Start bit position (MSB of the segment, 0..8).
    pub start_bit: usize,
    /// Number of bits (downward from `start_bit`).
    pub bits: usize,
}

impl PinSegment {
    /// Creates a segment.
    #[must_use]
    pub fn new(lane: usize, start_bit: usize, bits: usize) -> Self {
        PinSegment {
            lane,
            start_bit,
            bits,
        }
    }

    /// Validates lane index and bit range.
    ///
    /// # Errors
    ///
    /// Returns [`BoardError::LaneOutOfRange`] or
    /// [`BoardError::SegmentOutOfLane`].
    pub fn validate(&self) -> Result<(), BoardError> {
        check_lane(self.lane)?;
        if self.bits == 0 || self.start_bit >= LANE_BITS || self.bits > self.start_bit + 1 {
            return Err(BoardError::SegmentOutOfLane {
                lane: self.lane,
                start_bit: self.start_bit,
                bits: self.bits,
            });
        }
        Ok(())
    }

    /// The lane bit positions the segment covers, MSB first.
    pub fn positions(&self) -> impl Iterator<Item = usize> + '_ {
        (self.start_bit + 1 - self.bits..=self.start_bit).rev()
    }
}

/// Mapping of one board-driven port (DUT input).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InportMapping {
    /// Inport number (user-chosen identifier).
    pub number: usize,
    /// Port width in bits.
    pub width: usize,
    /// Pin segments, most significant first.
    pub segments: Vec<PinSegment>,
}

/// Mapping of one board-sampled port (DUT output).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutportMapping {
    /// Outport number.
    pub number: usize,
    /// Port width in bits.
    pub width: usize,
    /// Pin segments, most significant first.
    pub segments: Vec<PinSegment>,
}

/// A DUT bus interface: three unidirectional ports tied together.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoPortMapping {
    /// Inport number carrying data written *to* the DUT.
    pub inport: usize,
    /// Outport number carrying data read *from* the DUT.
    pub outport: usize,
    /// Control port whose value selects the direction.
    pub ctrlport: usize,
}

/// Mapping of a control port (sampled from the DUT) with its write flag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CtrlportMapping {
    /// Ctrlport number.
    pub number: usize,
    /// Port width in bits.
    pub width: usize,
    /// Pin segments, most significant first.
    pub segments: Vec<PinSegment>,
    /// Value signalling "DUT writes" on the associated I/O port.
    pub write_value: u64,
}

/// One pin frame: the value of every byte lane at one board clock.
pub type PinFrame = [u8; LANES];

/// The complete configuration data set of Fig. 5.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PinMapConfig {
    /// Input port mappings.
    pub inports: Vec<InportMapping>,
    /// Output port mappings.
    pub outports: Vec<OutportMapping>,
    /// I/O (bus) port mappings.
    pub ioports: Vec<IoPortMapping>,
    /// Control port mappings.
    pub ctrlports: Vec<CtrlportMapping>,
}

fn check_unique_numbers(
    kind: &'static str,
    numbers: impl Iterator<Item = usize>,
) -> Result<(), BoardError> {
    let mut seen = HashSet::new();
    for n in numbers {
        if !seen.insert(n) {
            return Err(BoardError::DuplicatePort { kind, port: n });
        }
    }
    Ok(())
}

fn check_port(
    width: usize,
    segments: &[PinSegment],
    claimed: &mut HashSet<(usize, usize)>,
) -> Result<(), BoardError> {
    let mapped: usize = segments.iter().map(|s| s.bits).sum();
    if mapped != width || width == 0 || width > 64 {
        return Err(BoardError::WidthMismatch {
            declared: width,
            mapped,
        });
    }
    for seg in segments {
        seg.validate()?;
        for bit in seg.positions() {
            if !claimed.insert((seg.lane, bit)) {
                return Err(BoardError::PinConflict {
                    lane: seg.lane,
                    bit,
                });
            }
        }
    }
    Ok(())
}

impl PinMapConfig {
    /// Validates the whole data set: segment bounds, width sums, pin
    /// uniqueness, I/O references and direction consistency against the
    /// lane configuration.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self, lanes: &[LaneConfig; LANES]) -> Result<(), BoardError> {
        check_unique_numbers("inport", self.inports.iter().map(|p| p.number))?;
        check_unique_numbers("outport", self.outports.iter().map(|p| p.number))?;
        check_unique_numbers("ctrlport", self.ctrlports.iter().map(|p| p.number))?;
        let mut claimed = HashSet::new();
        for p in &self.inports {
            check_port(p.width, &p.segments, &mut claimed)?;
            for seg in &p.segments {
                if lanes[seg.lane].direction != LaneDirection::Drive {
                    return Err(BoardError::DirectionConflict { lane: seg.lane });
                }
            }
        }
        for p in &self.outports {
            check_port(p.width, &p.segments, &mut claimed)?;
            for seg in &p.segments {
                if lanes[seg.lane].direction != LaneDirection::Sample {
                    return Err(BoardError::DirectionConflict { lane: seg.lane });
                }
            }
        }
        for p in &self.ctrlports {
            check_port(p.width, &p.segments, &mut claimed)?;
            if p.write_value >= (1u64 << p.width) {
                return Err(BoardError::ValueTooWide {
                    port: p.number,
                    width: p.width,
                });
            }
            for seg in &p.segments {
                if lanes[seg.lane].direction != LaneDirection::Sample {
                    return Err(BoardError::DirectionConflict { lane: seg.lane });
                }
            }
        }
        for io in &self.ioports {
            self.inport(io.inport)
                .ok_or(BoardError::UnknownPort { port: io.inport })?;
            self.outport(io.outport)
                .ok_or(BoardError::UnknownPort { port: io.outport })?;
            self.ctrlport(io.ctrlport)
                .ok_or(BoardError::UnknownPort { port: io.ctrlport })?;
        }
        Ok(())
    }

    /// Every pin position `(lane, bit)` claimed by more than one segment
    /// across the whole data set, in lane/bit order — the exhaustive form of
    /// the [`BoardError::PinConflict`] check, reporting *all* overlaps
    /// instead of failing on the first. Out-of-range segments are skipped
    /// here ([`PinSegment::validate`] covers them).
    #[must_use]
    pub fn pin_conflicts(&self) -> Vec<(usize, usize)> {
        let mut claims: HashMap<(usize, usize), usize> = HashMap::new();
        let all_segments = self
            .inports
            .iter()
            .flat_map(|p| p.segments.iter())
            .chain(self.outports.iter().flat_map(|p| p.segments.iter()))
            .chain(self.ctrlports.iter().flat_map(|p| p.segments.iter()));
        for seg in all_segments {
            if seg.validate().is_err() {
                continue;
            }
            for bit in seg.positions() {
                *claims.entry((seg.lane, bit)).or_insert(0) += 1;
            }
        }
        let mut conflicts: Vec<(usize, usize)> = claims
            .into_iter()
            .filter(|&(_, n)| n > 1)
            .map(|(pin, _)| pin)
            .collect();
        conflicts.sort_unstable();
        conflicts
    }

    /// Finds an inport by number.
    #[must_use]
    pub fn inport(&self, number: usize) -> Option<&InportMapping> {
        self.inports.iter().find(|p| p.number == number)
    }

    /// Finds an outport by number.
    #[must_use]
    pub fn outport(&self, number: usize) -> Option<&OutportMapping> {
        self.outports.iter().find(|p| p.number == number)
    }

    /// Finds a control port by number.
    #[must_use]
    pub fn ctrlport(&self, number: usize) -> Option<&CtrlportMapping> {
        self.ctrlports.iter().find(|p| p.number == number)
    }

    /// Writes `value` onto inport `number`'s pins in `frame`.
    ///
    /// # Errors
    ///
    /// Returns [`BoardError::UnknownPort`] or [`BoardError::ValueTooWide`].
    pub fn encode_inport(
        &self,
        number: usize,
        value: u64,
        frame: &mut PinFrame,
    ) -> Result<(), BoardError> {
        let port = self
            .inport(number)
            .ok_or(BoardError::UnknownPort { port: number })?;
        if port.width < 64 && value >= (1u64 << port.width) {
            return Err(BoardError::ValueTooWide {
                port: number,
                width: port.width,
            });
        }
        encode_segments(&port.segments, port.width, value, frame);
        Ok(())
    }

    /// Reads outport `number`'s pins from `frame`.
    ///
    /// # Errors
    ///
    /// Returns [`BoardError::UnknownPort`].
    pub fn decode_outport(&self, number: usize, frame: &PinFrame) -> Result<u64, BoardError> {
        let port = self
            .outport(number)
            .ok_or(BoardError::UnknownPort { port: number })?;
        Ok(decode_segments(&port.segments, frame))
    }

    /// Reads control port `number`'s pins from `frame`.
    ///
    /// # Errors
    ///
    /// Returns [`BoardError::UnknownPort`].
    pub fn decode_ctrlport(&self, number: usize, frame: &PinFrame) -> Result<u64, BoardError> {
        let port = self
            .ctrlport(number)
            .ok_or(BoardError::UnknownPort { port: number })?;
        Ok(decode_segments(&port.segments, frame))
    }

    /// `true` when I/O port `number`'s control value in `frame` matches its
    /// write flag — i.e. the DUT is writing and the outport view is valid.
    ///
    /// # Errors
    ///
    /// Returns [`BoardError::UnknownPort`].
    pub fn io_is_write(&self, number: usize, frame: &PinFrame) -> Result<bool, BoardError> {
        let io = self
            .ioports
            .iter()
            .find(|io| io.inport == number || io.outport == number)
            .ok_or(BoardError::UnknownPort { port: number })?;
        let ctrl = self
            .ctrlport(io.ctrlport)
            .ok_or(BoardError::UnknownPort { port: io.ctrlport })?;
        Ok(decode_segments(&ctrl.segments, frame) == ctrl.write_value)
    }

    /// A reconstruction of the Fig. 5 example data set: three inports, two
    /// outports, one bus (I/O) interface and its control port.
    #[must_use]
    pub fn fig5_example() -> (Self, [LaneConfig; LANES]) {
        let mut lanes = [LaneConfig::drive(); LANES];
        // Lanes 3 and 6 carry DUT outputs, lane 7 the control flags.
        lanes[3] = LaneConfig::sample();
        lanes[6] = LaneConfig::sample();
        lanes[7] = LaneConfig::sample();
        let cfg = PinMapConfig {
            inports: vec![
                InportMapping {
                    number: 1,
                    width: 6,
                    segments: vec![PinSegment::new(2, 7, 6)],
                },
                InportMapping {
                    number: 2,
                    width: 8,
                    segments: vec![PinSegment::new(1, 7, 8)],
                },
                InportMapping {
                    number: 3,
                    width: 12,
                    segments: vec![
                        PinSegment::new(0, 7, 8),
                        PinSegment::new(2, 1, 2),
                        PinSegment::new(4, 7, 2),
                    ],
                },
            ],
            outports: vec![
                OutportMapping {
                    number: 1,
                    width: 4,
                    segments: vec![PinSegment::new(3, 7, 4)],
                },
                OutportMapping {
                    number: 2,
                    width: 6,
                    segments: vec![PinSegment::new(6, 5, 6)],
                },
            ],
            ioports: vec![IoPortMapping {
                inport: 2,
                outport: 2,
                ctrlport: 3,
            }],
            ctrlports: vec![CtrlportMapping {
                number: 3,
                width: 2,
                segments: vec![PinSegment::new(7, 1, 2)],
                write_value: 3,
            }],
        };
        (cfg, lanes)
    }
}

fn encode_segments(segments: &[PinSegment], width: usize, value: u64, frame: &mut PinFrame) {
    // Segments are MSB-first: the first segment holds the top bits.
    let mut remaining = width;
    for seg in segments {
        remaining -= seg.bits;
        let chunk = (value >> remaining) & mask(seg.bits);
        let lane = &mut frame[seg.lane];
        let shift = seg.start_bit + 1 - seg.bits;
        let lane_mask = (mask(seg.bits) as u8) << shift;
        *lane = (*lane & !lane_mask) | (((chunk as u8) << shift) & lane_mask);
    }
}

fn decode_segments(segments: &[PinSegment], frame: &PinFrame) -> u64 {
    let mut out = 0u64;
    for seg in segments {
        let shift = seg.start_bit + 1 - seg.bits;
        let chunk = u64::from(frame[seg.lane] >> shift) & mask(seg.bits);
        out = (out << seg.bits) | chunk;
    }
    out
}

fn mask(bits: usize) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_positions_are_msb_anchored() {
        let seg = PinSegment::new(2, 7, 6);
        let pos: Vec<usize> = seg.positions().collect();
        assert_eq!(pos, vec![7, 6, 5, 4, 3, 2]);
        assert!(seg.validate().is_ok());
    }

    #[test]
    fn segment_validation() {
        assert!(PinSegment::new(16, 7, 1).validate().is_err());
        assert!(PinSegment::new(0, 8, 1).validate().is_err());
        assert!(PinSegment::new(0, 2, 4).validate().is_err()); // 4 bits below bit 2
        assert!(PinSegment::new(0, 2, 3).validate().is_ok());
        assert!(PinSegment::new(0, 0, 0).validate().is_err());
    }

    #[test]
    fn fig5_example_validates() {
        let (cfg, lanes) = PinMapConfig::fig5_example();
        cfg.validate(&lanes).unwrap();
        assert_eq!(cfg.inports.len(), 3);
        assert_eq!(cfg.outports.len(), 2);
        assert_eq!(cfg.ioports.len(), 1);
        assert_eq!(cfg.ctrlports.len(), 1);
    }

    #[test]
    fn inport_encode_decode_roundtrip() {
        let (cfg, _) = PinMapConfig::fig5_example();
        let mut frame: PinFrame = [0; LANES];
        cfg.encode_inport(1, 0b101011, &mut frame).unwrap();
        // Lane 2, bits 7..=2.
        assert_eq!(frame[2], 0b1010_1100);
        cfg.encode_inport(2, 0xA5, &mut frame).unwrap();
        assert_eq!(frame[1], 0xA5);
    }

    #[test]
    fn multi_segment_port_spans_lanes() {
        let (cfg, _) = PinMapConfig::fig5_example();
        let mut frame: PinFrame = [0; LANES];
        // Port 3: 12 bits = lane0[7..0] (8) + lane2[1..0] (2) + lane4[7..6] (2).
        cfg.encode_inport(3, 0xABC, &mut frame).unwrap();
        assert_eq!(frame[0], 0xAB);
        assert_eq!(frame[2] & 0b11, 0b11); // 0xC = 1100 -> top 2 bits "11"
        assert_eq!(frame[4] >> 6, 0b00);
        // Re-encoding port 1 on lane 2 must not clobber port 3's bits.
        cfg.encode_inport(1, 0, &mut frame).unwrap();
        assert_eq!(frame[2] & 0b11, 0b11);
    }

    #[test]
    fn outport_decoding() {
        let (cfg, _) = PinMapConfig::fig5_example();
        let mut frame: PinFrame = [0; LANES];
        frame[3] = 0b1011_0000; // outport 1: bits 7..=4 = 0b1011
        assert_eq!(cfg.decode_outport(1, &frame).unwrap(), 0b1011);
        frame[6] = 0b0010_1010; // outport 2: bits 5..=0
        assert_eq!(cfg.decode_outport(2, &frame).unwrap(), 0b10_1010);
    }

    #[test]
    fn io_direction_follows_ctrl_flags() {
        let (cfg, _) = PinMapConfig::fig5_example();
        let mut frame: PinFrame = [0; LANES];
        // ctrl port 3: lane 7 bits 1..=0, write value 3.
        frame[7] = 0b0000_0011;
        assert!(cfg.io_is_write(2, &frame).unwrap());
        frame[7] = 0b0000_0001;
        assert!(!cfg.io_is_write(2, &frame).unwrap());
        assert_eq!(cfg.decode_ctrlport(3, &frame).unwrap(), 1);
    }

    #[test]
    fn pin_conflicts_rejected() {
        let (mut cfg, lanes) = PinMapConfig::fig5_example();
        cfg.inports.push(InportMapping {
            number: 9,
            width: 2,
            segments: vec![PinSegment::new(2, 7, 2)], // overlaps inport 1
        });
        assert!(matches!(
            cfg.validate(&lanes),
            Err(BoardError::PinConflict { lane: 2, .. })
        ));
    }

    #[test]
    fn width_sum_must_match() {
        let (mut cfg, lanes) = PinMapConfig::fig5_example();
        cfg.inports[0].width = 7; // segments still sum to 6
        assert!(matches!(
            cfg.validate(&lanes),
            Err(BoardError::WidthMismatch {
                declared: 7,
                mapped: 6
            })
        ));
    }

    #[test]
    fn direction_conflicts_rejected() {
        let (cfg, mut lanes) = PinMapConfig::fig5_example();
        lanes[2] = LaneConfig::sample(); // inport 1 lives on lane 2
        assert!(matches!(
            cfg.validate(&lanes),
            Err(BoardError::DirectionConflict { lane: 2 })
        ));
    }

    #[test]
    fn dangling_io_reference_rejected() {
        let (mut cfg, lanes) = PinMapConfig::fig5_example();
        cfg.ioports[0].ctrlport = 99;
        assert!(matches!(
            cfg.validate(&lanes),
            Err(BoardError::UnknownPort { port: 99 })
        ));
    }

    #[test]
    fn oversized_values_rejected() {
        let (cfg, _) = PinMapConfig::fig5_example();
        let mut frame: PinFrame = [0; LANES];
        assert!(matches!(
            cfg.encode_inport(1, 64, &mut frame),
            Err(BoardError::ValueTooWide { port: 1, width: 6 })
        ));
    }

    #[test]
    fn unknown_ports_rejected() {
        let (cfg, _) = PinMapConfig::fig5_example();
        let mut frame: PinFrame = [0; LANES];
        assert!(cfg.encode_inport(42, 0, &mut frame).is_err());
        assert!(cfg.decode_outport(42, &frame).is_err());
        assert!(cfg.io_is_write(42, &frame).is_err());
    }

    #[test]
    fn ctrl_write_value_must_fit_width() {
        let (mut cfg, lanes) = PinMapConfig::fig5_example();
        cfg.ctrlports[0].write_value = 4; // width 2 -> max 3
        assert!(matches!(
            cfg.validate(&lanes),
            Err(BoardError::ValueTooWide { port: 3, width: 2 })
        ));
    }

    #[test]
    fn roundtrip_encode_then_decode_many_values() {
        // Build an inport and an equally mapped outport on different lanes
        // and check value integrity across the frame.
        let cfg = PinMapConfig {
            inports: vec![InportMapping {
                number: 1,
                width: 11,
                segments: vec![PinSegment::new(0, 7, 8), PinSegment::new(1, 2, 3)],
            }],
            outports: vec![],
            ioports: vec![],
            ctrlports: vec![],
        };
        for value in [0u64, 1, 0x7FF, 0x555, 0x2AA] {
            let mut frame: PinFrame = [0; LANES];
            cfg.encode_inport(1, value, &mut frame).unwrap();
            let segs = &cfg.inports[0].segments;
            assert_eq!(decode_segments(segs, &frame), value, "value {value:#x}");
        }
    }
    #[test]
    fn duplicate_port_numbers_are_rejected() {
        let (mut cfg, lanes) = PinMapConfig::fig5_example();
        cfg.inports.push(InportMapping {
            number: 1, // already taken by the first fig. 5 inport
            width: 2,
            segments: vec![PinSegment::new(5, 7, 2)],
        });
        match cfg.validate(&lanes) {
            Err(BoardError::DuplicatePort {
                kind: "inport",
                port: 1,
            }) => {}
            other => panic!("expected a duplicate-port rejection, got {other:?}"),
        }
    }

    #[test]
    fn pin_conflicts_reports_every_overlap() {
        let (cfg, _) = PinMapConfig::fig5_example();
        assert!(cfg.pin_conflicts().is_empty());

        let mut cfg = cfg;
        // Re-claim lane 1 bits 7..=4 (inport 2 owns all of lane 1).
        cfg.inports.push(InportMapping {
            number: 9,
            width: 4,
            segments: vec![PinSegment::new(1, 7, 4)],
        });
        assert_eq!(cfg.pin_conflicts(), vec![(1, 4), (1, 5), (1, 6), (1, 7)]);
    }

    #[test]
    fn pin_conflicts_skips_invalid_segments() {
        let mut cfg = PinMapConfig::default();
        cfg.inports.push(InportMapping {
            number: 0,
            width: 1,
            segments: vec![PinSegment::new(99, 7, 1)], // out of range
        });
        assert!(cfg.pin_conflicts().is_empty());
    }
}
