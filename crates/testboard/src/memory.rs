//! Vector memories: the board's intermediate data storage.
//!
//! "The hardware test board consists of a control part and multiple memory
//! units for intermediate data storage of test vectors" (§3.3). One word is
//! a [`PinFrame`] (16 lanes × 8 bits); the stimulus memory feeds driving
//! lanes during a hardware activity cycle while the response memory records
//! sampling lanes. The memory depth bounds the supported test-cycle
//! duration window ("the current memory configuration supports test cycle
//! durations between 1 and 2^20 clock cycles" — the paper's exact numbers
//! are unreadable in the archival copy; 2^20 is used as the documented
//! substitution).

use crate::error::BoardError;
use crate::lane::LANES;
use crate::pinmap::PinFrame;

/// Default memory depth: supports test cycles up to 2^20 board clocks.
pub const DEFAULT_DEPTH: usize = 1 << 20;

/// A bank of per-clock pin frames.
#[derive(Debug, Clone)]
pub struct VectorMemory {
    words: Vec<PinFrame>,
    capacity: usize,
}

impl VectorMemory {
    /// Creates an empty memory of `capacity` words.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "memory capacity must be non-zero");
        VectorMemory {
            words: Vec::new(),
            capacity,
        }
    }

    /// Replaces the contents with `words`.
    ///
    /// # Errors
    ///
    /// Returns [`BoardError::MemoryOverflow`] when `words` exceeds capacity.
    pub fn load(&mut self, words: Vec<PinFrame>) -> Result<(), BoardError> {
        if words.len() > self.capacity {
            return Err(BoardError::MemoryOverflow {
                offered: words.len(),
                capacity: self.capacity,
            });
        }
        self.words = words;
        Ok(())
    }

    /// Appends one word.
    ///
    /// # Errors
    ///
    /// Returns [`BoardError::MemoryOverflow`] when full.
    pub fn push(&mut self, word: PinFrame) -> Result<(), BoardError> {
        if self.words.len() >= self.capacity {
            return Err(BoardError::MemoryOverflow {
                offered: self.words.len() + 1,
                capacity: self.capacity,
            });
        }
        self.words.push(word);
        Ok(())
    }

    /// Word at index `i`, or an all-zero frame past the end (the board
    /// holds lines at their last programmed value; zero models the
    /// power-on default).
    #[must_use]
    pub fn word(&self, i: usize) -> PinFrame {
        self.words.get(i).copied().unwrap_or([0u8; LANES])
    }

    /// All stored words.
    #[must_use]
    pub fn words(&self) -> &[PinFrame] {
        &self.words
    }

    /// Number of stored words.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// `true` when nothing is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Configured capacity in words.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Clears the contents, keeping the capacity.
    pub fn clear(&mut self) {
        self.words.clear();
    }

    /// Bytes stored (for SCSI transfer-time modelling).
    #[must_use]
    pub fn byte_len(&self) -> usize {
        self.words.len() * LANES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_and_read_back() {
        let mut m = VectorMemory::new(4);
        let w: PinFrame = [7u8; LANES];
        m.load(vec![w, w]).unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m.word(0), w);
        assert_eq!(m.word(5), [0u8; LANES], "past-end reads are zero frames");
        assert_eq!(m.byte_len(), 32);
    }

    #[test]
    fn capacity_enforced_on_load() {
        let mut m = VectorMemory::new(2);
        let err = m.load(vec![[0; LANES]; 3]).unwrap_err();
        assert_eq!(
            err,
            BoardError::MemoryOverflow {
                offered: 3,
                capacity: 2
            }
        );
    }

    #[test]
    fn push_until_full() {
        let mut m = VectorMemory::new(2);
        m.push([1; LANES]).unwrap();
        m.push([2; LANES]).unwrap();
        assert!(m.push([3; LANES]).is_err());
        assert_eq!(m.words().len(), 2);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut m = VectorMemory::new(3);
        m.push([1; LANES]).unwrap();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.capacity(), 3);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = VectorMemory::new(0);
    }
}
