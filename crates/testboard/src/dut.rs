//! The hardware device under test behind the board's pins.
//!
//! The paper hooks a *physical prototype chip* to the board. No silicon is
//! available here, so the prototype is simulated: anything implementing
//! [`HardwareDut`] presents the chip's pin-level behaviour, one board clock
//! at a time. Two adapters matter:
//!
//! * [`MappedCycleDut`] places any [`castanet_rtl::cycle::CycleDut`] (e.g.
//!   the ATM switch or accounting unit) behind a pin-map configuration, so
//!   the *same* design that ran in the HDL simulator runs "on the board" —
//!   which is the whole point of functional chip verification;
//! * [`TimingFaultDut`] wraps a DUT with a maximum clock frequency and
//!   corrupts outputs (deterministically) above it — modelling the timing
//!   violations that "are not likely to be detected" unless "one runs the
//!   hardware at the targeted speed" (§3.3), the paper's motivation for
//!   real-time verification.

use crate::lane::LANES;
use crate::pinmap::{PinFrame, PinMapConfig};
use castanet_rtl::cycle::CycleDut;

/// A pin-level hardware model: the simulated prototype chip.
pub trait HardwareDut: Send {
    /// Power-on reset.
    fn reset(&mut self);

    /// One board clock: sample the driven pins, return the chip's output
    /// pins.
    fn clock(&mut self, pins_in: &PinFrame) -> PinFrame;

    /// The highest clock frequency the (modelled) silicon meets timing at.
    /// `None` means no limit is modelled.
    fn max_clock_hz(&self) -> Option<u64> {
        None
    }
}

/// Adapts a [`CycleDut`] to the board's pin interface through a pin map:
/// board-driven pins are decoded into the DUT's input ports (by declared
/// port order against ascending inport numbers), and the DUT's outputs are
/// encoded onto the sampled pins (ascending outport numbers).
pub struct MappedCycleDut {
    dut: Box<dyn CycleDut>,
    map: PinMapConfig,
    in_numbers: Vec<usize>,
    out_numbers: Vec<usize>,
}

impl std::fmt::Debug for MappedCycleDut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedCycleDut")
            .field("inports", &self.in_numbers.len())
            .field("outports", &self.out_numbers.len())
            .finish()
    }
}

impl MappedCycleDut {
    /// Pairs `dut` with a pin map. The map must declare exactly one inport
    /// per DUT input port and one outport per DUT output port; ports pair
    /// up in ascending port-number order.
    ///
    /// # Panics
    ///
    /// Panics when the port counts disagree.
    #[must_use]
    pub fn new(dut: Box<dyn CycleDut>, map: PinMapConfig) -> Self {
        let mut in_numbers: Vec<usize> = map.inports.iter().map(|p| p.number).collect();
        in_numbers.sort_unstable();
        let mut out_numbers: Vec<usize> = map.outports.iter().map(|p| p.number).collect();
        out_numbers.sort_unstable();
        assert_eq!(
            in_numbers.len(),
            dut.input_ports().len(),
            "pin map must declare one inport per dut input"
        );
        assert_eq!(
            out_numbers.len(),
            dut.output_ports().len(),
            "pin map must declare one outport per dut output"
        );
        MappedCycleDut {
            dut,
            map,
            in_numbers,
            out_numbers,
        }
    }

    /// Generates a canonical pin map for `dut`: input ports packed onto
    /// driving lanes from lane 0 upward, output ports onto sampling lanes
    /// from lane 15 downward, each port on whole-lane boundaries.
    ///
    /// # Panics
    ///
    /// Panics when the DUT's ports do not fit 128 pins.
    #[must_use]
    pub fn auto_mapped(dut: Box<dyn CycleDut>) -> (Self, [crate::lane::LaneConfig; LANES]) {
        use crate::lane::LaneConfig;
        use crate::pinmap::{InportMapping, OutportMapping, PinSegment};
        let mut lanes = [LaneConfig::drive(); LANES];
        let mut map = PinMapConfig::default();

        let mut lane_cursor = 0usize;
        for (i, p) in dut.input_ports().iter().enumerate() {
            let lanes_needed = p.width.div_ceil(8);
            let mut segments = Vec::new();
            let mut remaining = p.width;
            for k in 0..lanes_needed {
                let bits = remaining.min(8);
                segments.push(PinSegment::new(lane_cursor + k, 7, bits));
                remaining -= bits;
            }
            lane_cursor += lanes_needed;
            map.inports.push(InportMapping {
                number: i,
                width: p.width,
                segments,
            });
        }
        let mut top_cursor = LANES;
        for (i, p) in dut.output_ports().iter().enumerate() {
            let lanes_needed = p.width.div_ceil(8);
            assert!(
                top_cursor >= lanes_needed && top_cursor - lanes_needed >= lane_cursor,
                "dut ports exceed the board's 128 pins"
            );
            top_cursor -= lanes_needed;
            let mut segments = Vec::new();
            let mut remaining = p.width;
            for k in 0..lanes_needed {
                let bits = remaining.min(8);
                segments.push(PinSegment::new(top_cursor + k, 7, bits));
                lanes[top_cursor + k] = LaneConfig::sample();
                remaining -= bits;
            }
            map.outports.push(OutportMapping {
                number: i,
                width: p.width,
                segments,
            });
        }
        (Self::new(dut, map), lanes)
    }

    /// The pin map in use.
    #[must_use]
    pub fn map(&self) -> &PinMapConfig {
        &self.map
    }
}

impl HardwareDut for MappedCycleDut {
    fn reset(&mut self) {
        self.dut.reset();
    }

    fn clock(&mut self, pins_in: &PinFrame) -> PinFrame {
        let words: Vec<u64> = self
            .in_numbers
            .iter()
            .map(|&n| {
                // Decode via the inport's own segments (frame -> value).
                let port = self.map.inport(n).expect("validated at construction");
                decode_inport(port, pins_in)
            })
            .collect();
        let outs = self.dut.clock_edge(&words);
        let mut frame: PinFrame = [0; LANES];
        for (&n, value) in self.out_numbers.iter().zip(outs) {
            let port = self.map.outport(n).expect("validated at construction");
            encode_outport(port, value, &mut frame);
        }
        frame
    }
}

fn decode_inport(port: &crate::pinmap::InportMapping, frame: &PinFrame) -> u64 {
    let mut out = 0u64;
    for seg in &port.segments {
        let shift = seg.start_bit + 1 - seg.bits;
        let chunk = u64::from(frame[seg.lane] >> shift) & ((1u64 << seg.bits) - 1);
        out = (out << seg.bits) | chunk;
    }
    out
}

fn encode_outport(port: &crate::pinmap::OutportMapping, value: u64, frame: &mut PinFrame) {
    let mut remaining = port.width;
    for seg in &port.segments {
        remaining -= seg.bits;
        let chunk = (value >> remaining) & ((1u64 << seg.bits) - 1);
        let shift = seg.start_bit + 1 - seg.bits;
        let lane_mask = (((1u64 << seg.bits) - 1) as u8) << shift;
        frame[seg.lane] = (frame[seg.lane] & !lane_mask) | (((chunk as u8) << shift) & lane_mask);
    }
}

/// Exposes only a subset of a [`CycleDut`]'s ports — the way a fabbed chip
/// exposes its data path on pins while configuration interfaces stay
/// internal (set up before the part goes on the board). Hidden inputs are
/// tied to constants; hidden outputs are dropped.
pub struct PortSubsetDut {
    inner: Box<dyn CycleDut>,
    keep_in: Vec<usize>,
    keep_out: Vec<usize>,
    tied: Vec<u64>,
}

impl std::fmt::Debug for PortSubsetDut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PortSubsetDut")
            .field("kept_inputs", &self.keep_in.len())
            .field("kept_outputs", &self.keep_out.len())
            .finish()
    }
}

impl PortSubsetDut {
    /// Keeps input ports `keep_in` and output ports `keep_out` (indices
    /// into the inner DUT's declarations); all other inputs are tied to 0.
    ///
    /// # Panics
    ///
    /// Panics when an index is out of range.
    #[must_use]
    pub fn new(inner: Box<dyn CycleDut>, keep_in: Vec<usize>, keep_out: Vec<usize>) -> Self {
        let n_in = inner.input_ports().len();
        let n_out = inner.output_ports().len();
        assert!(keep_in.iter().all(|&i| i < n_in), "kept input out of range");
        assert!(
            keep_out.iter().all(|&o| o < n_out),
            "kept output out of range"
        );
        let tied = vec![0u64; n_in];
        PortSubsetDut {
            inner,
            keep_in,
            keep_out,
            tied,
        }
    }

    /// Ties a hidden input port to a constant value.
    ///
    /// # Panics
    ///
    /// Panics when `port` is out of range.
    pub fn tie(&mut self, port: usize, value: u64) {
        assert!(port < self.tied.len(), "tied port out of range");
        self.tied[port] = value;
    }
}

impl CycleDut for PortSubsetDut {
    fn input_ports(&self) -> Vec<castanet_rtl::cycle::PortDecl> {
        let decls = self.inner.input_ports();
        self.keep_in.iter().map(|&i| decls[i].clone()).collect()
    }

    fn output_ports(&self) -> Vec<castanet_rtl::cycle::PortDecl> {
        let decls = self.inner.output_ports();
        self.keep_out.iter().map(|&o| decls[o].clone()).collect()
    }

    fn reset(&mut self) {
        self.inner.reset();
    }

    fn clock_edge(&mut self, inputs: &[u64]) -> Vec<u64> {
        let mut full = self.tied.clone();
        for (slot, &value) in self.keep_in.iter().zip(inputs) {
            full[*slot] = value;
        }
        let outs = self.inner.clock_edge(&full);
        self.keep_out.iter().map(|&o| outs[o]).collect()
    }
}

/// Wraps a DUT with a maximum-frequency constraint: clocked faster than
/// `max_hz`, outputs are corrupted deterministically (a pseudo-random pin
/// flip per clock) — the silicon's setup-time failures made visible.
pub struct TimingFaultDut<D: HardwareDut> {
    inner: D,
    max_hz: u64,
    board_clock_hz: u64,
    lfsr: u32,
    faults_injected: u64,
}

impl<D: HardwareDut> std::fmt::Debug for TimingFaultDut<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimingFaultDut")
            .field("max_hz", &self.max_hz)
            .field("board_clock_hz", &self.board_clock_hz)
            .field("faults_injected", &self.faults_injected)
            .finish()
    }
}

impl<D: HardwareDut> TimingFaultDut<D> {
    /// Wraps `inner`, declaring it meets timing up to `max_hz`. The board
    /// clock actually applied is set via
    /// [`TimingFaultDut::set_board_clock_hz`].
    #[must_use]
    pub fn new(inner: D, max_hz: u64) -> Self {
        TimingFaultDut {
            inner,
            max_hz,
            board_clock_hz: 0,
            lfsr: 0xACE1_u32,
            faults_injected: 0,
        }
    }

    /// Informs the model of the applied board clock (the board does this
    /// when a session starts).
    pub fn set_board_clock_hz(&mut self, hz: u64) {
        self.board_clock_hz = hz;
    }

    /// Faults injected so far.
    #[must_use]
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected
    }

    fn next_lfsr(&mut self) -> u32 {
        // 16-bit Fibonacci LFSR, taps 16,14,13,11.
        let bit = (self.lfsr ^ (self.lfsr >> 2) ^ (self.lfsr >> 3) ^ (self.lfsr >> 5)) & 1;
        self.lfsr = (self.lfsr >> 1) | (bit << 15);
        self.lfsr
    }
}

impl<D: HardwareDut> HardwareDut for TimingFaultDut<D> {
    fn reset(&mut self) {
        self.inner.reset();
        self.lfsr = 0xACE1;
        self.faults_injected = 0;
    }

    fn clock(&mut self, pins_in: &PinFrame) -> PinFrame {
        let mut out = self.inner.clock(pins_in);
        if self.board_clock_hz > self.max_hz {
            // Fault probability grows with overclock severity: flip a pin
            // on roughly (1 - max/actual) of the clocks.
            let r = self.next_lfsr() & 0xFFFF;
            let threshold =
                ((1.0 - self.max_hz as f64 / self.board_clock_hz as f64) * 65536.0) as u32;
            if r < threshold {
                let pin = (self.next_lfsr() as usize) % (LANES * 8);
                out[pin / 8] ^= 1 << (pin % 8);
                self.faults_injected += 1;
            }
        }
        out
    }

    fn max_clock_hz(&self) -> Option<u64> {
        Some(self.max_hz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use castanet_rtl::cycle::PortDecl;

    /// Pass-through chip: output = input + 1.
    struct IncChip;
    impl CycleDut for IncChip {
        fn input_ports(&self) -> Vec<PortDecl> {
            vec![PortDecl::new("x", 8)]
        }
        fn output_ports(&self) -> Vec<PortDecl> {
            vec![PortDecl::new("y", 8)]
        }
        fn reset(&mut self) {}
        fn clock_edge(&mut self, inputs: &[u64]) -> Vec<u64> {
            vec![(inputs[0] + 1) & 0xFF]
        }
    }

    #[test]
    fn auto_mapping_roundtrips_values() {
        let (mut mapped, lanes) = MappedCycleDut::auto_mapped(Box::new(IncChip));
        mapped.map().validate(&lanes).unwrap();
        let mut frame: PinFrame = [0; LANES];
        mapped.map().encode_inport(0, 41, &mut frame).unwrap();
        let out = mapped.clock(&frame);
        assert_eq!(mapped.map().decode_outport(0, &out).unwrap(), 42);
    }

    #[test]
    fn auto_mapping_places_outputs_on_sampling_lanes() {
        let (mapped, lanes) = MappedCycleDut::auto_mapped(Box::new(IncChip));
        for p in &mapped.map().outports {
            for seg in &p.segments {
                assert_eq!(
                    lanes[seg.lane].direction,
                    crate::lane::LaneDirection::Sample
                );
            }
        }
        for p in &mapped.map().inports {
            for seg in &p.segments {
                assert_eq!(lanes[seg.lane].direction, crate::lane::LaneDirection::Drive);
            }
        }
    }

    #[test]
    fn wide_ports_span_multiple_lanes() {
        struct WideChip;
        impl CycleDut for WideChip {
            fn input_ports(&self) -> Vec<PortDecl> {
                vec![PortDecl::new("a", 20)]
            }
            fn output_ports(&self) -> Vec<PortDecl> {
                vec![PortDecl::new("b", 20)]
            }
            fn reset(&mut self) {}
            fn clock_edge(&mut self, inputs: &[u64]) -> Vec<u64> {
                vec![inputs[0]]
            }
        }
        let (mut mapped, lanes) = MappedCycleDut::auto_mapped(Box::new(WideChip));
        mapped.map().validate(&lanes).unwrap();
        let mut frame: PinFrame = [0; LANES];
        mapped.map().encode_inport(0, 0xABCDE, &mut frame).unwrap();
        let out = mapped.clock(&frame);
        assert_eq!(mapped.map().decode_outport(0, &out).unwrap(), 0xABCDE);
    }

    #[test]
    fn timing_fault_dut_clean_within_spec() {
        let (mapped, _) = MappedCycleDut::auto_mapped(Box::new(IncChip));
        let mut dut = TimingFaultDut::new(mapped, 20_000_000);
        dut.set_board_clock_hz(10_000_000);
        let frame: PinFrame = [0; LANES];
        for _ in 0..1000 {
            dut.clock(&frame);
        }
        assert_eq!(dut.faults_injected(), 0);
        assert_eq!(dut.max_clock_hz(), Some(20_000_000));
    }

    #[test]
    fn timing_fault_dut_corrupts_when_overclocked() {
        let (mapped, _) = MappedCycleDut::auto_mapped(Box::new(IncChip));
        let mut dut = TimingFaultDut::new(mapped, 10_000_000);
        dut.set_board_clock_hz(20_000_000);
        let frame: PinFrame = [0; LANES];
        for _ in 0..1000 {
            dut.clock(&frame);
        }
        assert!(
            dut.faults_injected() > 200,
            "2x overclock should fault often, got {}",
            dut.faults_injected()
        );
        // Reset clears fault accounting.
        dut.reset();
        assert_eq!(dut.faults_injected(), 0);
    }

    #[test]
    #[should_panic(expected = "one inport per dut input")]
    fn mismatched_map_rejected() {
        let map = PinMapConfig::default();
        let _ = MappedCycleDut::new(Box::new(IncChip), map);
    }
}
