//! The test-cycle state machine: software and hardware activity phases.
//!
//! "The real-time verification process consists of repeated hardware
//! activity cycles, interrupted by a software activity cycle, in which the
//! hardware is stopped immediately. One test cycle contains a software
//! activity cycle to generate stimuli, configure the board and store
//! stimuli to the hardware test board. This is followed by a hardware
//! activity cycle to run the hardware under test and a software activity
//! cycle to read the results back to the simulator. Test cycles run
//! repeatedly until the simulation is finished." (§3.3)
//!
//! [`TestSession`] executes that loop over the simulated SCSI transport and
//! keeps a wall-clock *model* of where time goes — hardware runtime versus
//! software overhead — which is what experiment E5's efficiency sweep
//! reports.

use crate::board::TestBoard;
use crate::dut::HardwareDut;
use crate::error::BoardError;
use crate::lane::LANES;
use crate::pinmap::PinFrame;
use crate::scsi::{ScsiBus, ScsiStats};
use std::time::Duration;

/// Phases of one test cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Generate stimuli, configure, store to the board (software).
    SwStimulus,
    /// Run the hardware at real-time speed.
    HwRun,
    /// Read results back to the simulator (software).
    SwReadback,
}

/// Accumulated time model of a verification session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Test cycles executed.
    pub cycles: u64,
    /// Board clocks executed across all hardware phases.
    pub hw_clocks: u64,
    /// Modelled hardware runtime.
    pub hw_time: Duration,
    /// Modelled software overhead (stimulus download + response upload).
    pub sw_time: Duration,
}

impl SessionStats {
    /// Fraction of the session spent actually running hardware.
    #[must_use]
    pub fn efficiency(&self) -> f64 {
        let total = self.hw_time + self.sw_time;
        if total.is_zero() {
            0.0
        } else {
            self.hw_time.as_secs_f64() / total.as_secs_f64()
        }
    }
}

/// Drives repeated test cycles against a board and a (simulated) prototype.
pub struct TestSession<'a> {
    board: &'a mut TestBoard,
    dut: &'a mut dyn HardwareDut,
    bus: ScsiBus,
    scsi: ScsiStats,
    stats: SessionStats,
}

impl std::fmt::Debug for TestSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TestSession")
            .field("stats", &self.stats)
            .finish()
    }
}

impl<'a> TestSession<'a> {
    /// Starts a session on a configured board. Resets the DUT and informs
    /// timing-fault models of the applied clock.
    pub fn new(board: &'a mut TestBoard, dut: &'a mut dyn HardwareDut, bus: ScsiBus) -> Self {
        dut.reset();
        TestSession {
            board,
            dut,
            bus,
            scsi: ScsiStats::default(),
            stats: SessionStats::default(),
        }
    }

    /// Executes one full test cycle with the given stimulus, returning the
    /// response frames.
    ///
    /// # Errors
    ///
    /// Propagates board errors (configuration, memory, duration window).
    pub fn run_cycle(&mut self, stimulus: Vec<PinFrame>) -> Result<Vec<PinFrame>, BoardError> {
        // SW activity: store stimuli over the bus.
        let dl_bytes = stimulus.len() * LANES;
        self.stats.sw_time += self.scsi.record(&self.bus, dl_bytes);
        self.board.load_stimulus(stimulus)?;

        // HW activity at real-time speed.
        let clocks = self.board.run_hw_cycle_auto(self.dut)?;
        self.stats.hw_clocks += clocks;
        self.stats.hw_time += self.board.real_time(clocks);

        // SW activity: read results back.
        let response = self.board.response().to_vec();
        let ul_bytes = response.len() * LANES;
        self.stats.sw_time += self.scsi.record(&self.bus, ul_bytes);

        self.stats.cycles += 1;
        Ok(response)
    }

    /// Runs `stimuli` as consecutive test cycles, concatenating responses.
    ///
    /// # Errors
    ///
    /// Stops at the first failing cycle.
    pub fn run_all(
        &mut self,
        stimuli: impl IntoIterator<Item = Vec<PinFrame>>,
    ) -> Result<Vec<PinFrame>, BoardError> {
        let mut out = Vec::new();
        for s in stimuli {
            out.extend(self.run_cycle(s)?);
        }
        Ok(out)
    }

    /// The session's time model so far.
    #[must_use]
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// SCSI transfer accounting.
    #[must_use]
    pub fn scsi_stats(&self) -> ScsiStats {
        self.scsi
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dut::MappedCycleDut;
    use crate::pinmap::PinMapConfig;
    use castanet_rtl::cycle::{CycleDut, PortDecl};

    struct Echo;
    impl CycleDut for Echo {
        fn input_ports(&self) -> Vec<PortDecl> {
            vec![PortDecl::new("x", 8)]
        }
        fn output_ports(&self) -> Vec<PortDecl> {
            vec![PortDecl::new("y", 8)]
        }
        fn reset(&mut self) {}
        fn clock_edge(&mut self, i: &[u64]) -> Vec<u64> {
            vec![i[0]]
        }
    }

    fn setup() -> (TestBoard, MappedCycleDut, PinMapConfig) {
        let (dut, lanes) = MappedCycleDut::auto_mapped(Box::new(Echo));
        let map = dut.map().clone();
        let mut board = TestBoard::with_memory_depth(1024);
        board.configure(map.clone(), lanes, 20_000_000).unwrap();
        (board, dut, map)
    }

    fn stim(map: &PinMapConfig, values: &[u64]) -> Vec<PinFrame> {
        values
            .iter()
            .map(|&v| {
                let mut f: PinFrame = [0; LANES];
                map.encode_inport(0, v, &mut f).unwrap();
                f
            })
            .collect()
    }

    #[test]
    fn cycle_roundtrips_data() {
        let (mut board, mut dut, map) = setup();
        let mut session = TestSession::new(&mut board, &mut dut, ScsiBus::default());
        let resp = session.run_cycle(stim(&map, &[1, 2, 3])).unwrap();
        assert_eq!(resp.len(), 3);
        let got: Vec<u64> = resp
            .iter()
            .map(|f| map.decode_outport(0, f).unwrap())
            .collect();
        assert_eq!(got, vec![1, 2, 3]);
        let s = session.stats();
        assert_eq!(s.cycles, 1);
        assert_eq!(s.hw_clocks, 3);
        assert_eq!(session.scsi_stats().transfers, 2);
    }

    #[test]
    fn run_all_concatenates() {
        let (mut board, mut dut, map) = setup();
        let mut session = TestSession::new(&mut board, &mut dut, ScsiBus::default());
        let resp = session
            .run_all(vec![stim(&map, &[1, 2]), stim(&map, &[3])])
            .unwrap();
        assert_eq!(resp.len(), 3);
        assert_eq!(session.stats().cycles, 2);
    }

    #[test]
    fn longer_hw_cycles_raise_efficiency() {
        // The paper's rationale for long test cycles: SW overhead amortizes.
        let bus = ScsiBus::default();
        let mut eff = Vec::new();
        for &len in &[4usize, 64, 1024] {
            let (mut board, mut dut, map) = setup();
            let mut session = TestSession::new(&mut board, &mut dut, bus);
            session.run_cycle(stim(&map, &vec![7; len])).unwrap();
            eff.push(session.stats().efficiency());
        }
        assert!(
            eff[0] < eff[1] && eff[1] < eff[2],
            "efficiency must grow: {eff:?}"
        );
    }

    #[test]
    fn empty_stimulus_is_rejected() {
        let (mut board, mut dut, _map) = setup();
        let mut session = TestSession::new(&mut board, &mut dut, ScsiBus::default());
        assert!(matches!(
            session.run_cycle(vec![]),
            Err(BoardError::DurationOutOfRange { requested: 0, .. })
        ));
    }

    #[test]
    fn efficiency_zero_without_cycles() {
        assert_eq!(SessionStats::default().efficiency(), 0.0);
    }
}
