//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to a crates.io mirror, so the
//! workspace vendors the narrow slice of the rand 0.9 API it actually uses:
//! [`rngs::SmallRng`] (an xoshiro256++ generator seeded through SplitMix64,
//! the same family the real `SmallRng` uses on 64-bit targets), the
//! [`SeedableRng::seed_from_u64`] constructor, and the [`Rng`] methods
//! `random::<T>()` / `random_range(lo..=hi)`.
//!
//! Determinism matters here — simulation scenarios are seeded and compared
//! run-to-run — but bit-compatibility with upstream `rand` does not: all
//! seeds in this repo only ever feed this implementation.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Random number generator back-ends, mirroring `rand::rngs`.
pub mod rngs {
    /// Small, fast, seedable generator (xoshiro256++).
    ///
    /// Not cryptographically secure; intended for simulation workloads.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        pub(crate) s: [u64; 4],
    }

    impl SmallRng {
        pub(crate) fn next_raw(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

use rngs::SmallRng;

/// SplitMix64 step used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose state is derived from `seed` via SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        SmallRng { s }
    }
}

/// Types that can be sampled uniformly from a generator.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample(rng: &mut SmallRng) -> Self;
}

impl Standard for u64 {
    fn sample(rng: &mut SmallRng) -> Self {
        rng.next_raw()
    }
}

impl Standard for u32 {
    fn sample(rng: &mut SmallRng) -> Self {
        (rng.next_raw() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample(rng: &mut SmallRng) -> Self {
        rng.next_raw() >> 63 == 1
    }
}

impl Standard for f64 {
    fn sample(rng: &mut SmallRng) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that `Rng::random_range` accepts, mirroring `rand::distr::uniform::SampleRange`.
pub trait SampleRange {
    /// The element type produced by sampling this range.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from(self, rng: &mut SmallRng) -> Self::Output;
}

/// Unbiased uniform draw from `[0, bound)` via Lemire-style rejection.
fn uniform_below(rng: &mut SmallRng, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection zone keeps the modulo unbiased.
    let zone = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_raw();
        if x >= zone {
            return x % bound;
        }
    }
}

impl SampleRange for RangeInclusive<u64> {
    type Output = u64;
    fn sample_from(self, rng: &mut SmallRng) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "random_range: empty range {lo}..={hi}");
        let span = hi - lo;
        if span == u64::MAX {
            return rng.next_raw();
        }
        lo + uniform_below(rng, span + 1)
    }
}

impl SampleRange for Range<u64> {
    type Output = u64;
    fn sample_from(self, rng: &mut SmallRng) -> u64 {
        assert!(self.start < self.end, "random_range: empty range");
        self.start + uniform_below(rng, self.end - self.start)
    }
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample_from(self, rng: &mut SmallRng) -> usize {
        assert!(self.start < self.end, "random_range: empty range");
        self.start + uniform_below(rng, (self.end - self.start) as u64) as usize
    }
}

impl SampleRange for RangeInclusive<usize> {
    type Output = usize;
    fn sample_from(self, rng: &mut SmallRng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "random_range: empty range {lo}..={hi}");
        lo + uniform_below(rng, (hi - lo) as u64 + 1) as usize
    }
}

/// Sampling methods, mirroring the parts of `rand::Rng` this workspace calls.
pub trait Rng {
    /// Draws one uniformly distributed value of type `T`.
    fn random<T: Standard>(&mut self) -> T;
    /// Draws one value uniformly from `range`.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output;
}

impl Rng for SmallRng {
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_inclusive_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let x = rng.random_range(3u64..=6);
            assert!((3..=6).contains(&x));
            seen_lo |= x == 3;
            seen_hi |= x == 6;
        }
        assert!(seen_lo && seen_hi, "both endpoints should be reachable");
    }

    #[test]
    fn full_u64_range_works() {
        let mut rng = SmallRng::seed_from_u64(11);
        let _ = rng.random_range(0u64..=u64::MAX);
    }
}
