//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment cannot reach a crates.io mirror, so this crate
//! vendors the slice of the criterion 0.8 API the `castanet-bench` harnesses
//! use: `criterion_group!`/`criterion_main!`, [`Criterion::benchmark_group`],
//! group configuration (`sample_size`, `throughput`), `bench_function` /
//! `bench_with_input`, [`Bencher::iter`], [`Bencher::iter_batched`],
//! [`Bencher::iter_custom`], [`BenchmarkId`], [`BatchSize`], and
//! [`Throughput`].
//!
//! Measurement is deliberately simple — median of `sample_size` timed samples
//! after an adaptive calibration pass — because these numbers are read as
//! relative trends between experiments, not publication-grade statistics.
//!
//! When the `BENCH_JSON_DIR` environment variable names a directory, every
//! group additionally writes a machine-readable `BENCH_<group>.json` there
//! on `finish()`: per-benchmark median and minimum wall time, the declared
//! throughput rate, and a `speedup_vs_serial` column computed against the
//! group's matching `serial*` baselines.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Measured work per benchmark iteration, used for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The iteration processes this many logical elements (cells, events, …).
    Elements(u64),
    /// The iteration processes this many bytes.
    Bytes(u64),
}

/// How much setup state [`Bencher::iter_batched`] may build per batch.
///
/// The shim always runs one setup per timed iteration, so the variants are
/// accepted for API compatibility but do not change measurement.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Setup output is small; batching freely is fine.
    SmallInput,
    /// Setup output is large; batch conservatively.
    LargeInput,
    /// Exactly one setup per iteration.
    PerIteration,
}

/// Identifier combining a function name with a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id rendered as `name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing helper handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    elapsed: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, storing one duration per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: grow the per-sample iteration count until one sample
        // takes at least ~1ms, so Instant overhead stays negligible.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let took = start.elapsed();
            if took >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        self.iters_per_sample = iters;
        self.elapsed.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.elapsed.push(start.elapsed());
        }
    }

    /// Times `routine` while excluding per-iteration `setup` and teardown.
    ///
    /// Each iteration runs `setup` and drops the routine's output *outside*
    /// the timed window, so one-time costs (building a scenario, allocating
    /// telemetry arenas, freeing them) do not pollute a measurement that is
    /// meant to price the steady-state work — the semantics of criterion's
    /// `iter_batched`. The `size` hint is accepted for API compatibility.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let _ = size;
        let mut timed_pass = |iters: u64| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let start = Instant::now();
                let output = routine(input);
                total += start.elapsed();
                drop(black_box(output));
            }
            total
        };
        // Calibrate on the timed portion alone, mirroring `iter`.
        let mut iters: u64 = 1;
        loop {
            let took = timed_pass(iters);
            if took >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        self.iters_per_sample = iters;
        self.elapsed.clear();
        for _ in 0..self.samples {
            self.elapsed.push(timed_pass(iters));
        }
    }

    fn median_ns_per_iter(&self) -> f64 {
        if self.elapsed.is_empty() || self.iters_per_sample == 0 {
            return 0.0;
        }
        let mut ns: Vec<u128> = self.elapsed.iter().map(Duration::as_nanos).collect();
        ns.sort_unstable();
        ns[ns.len() / 2] as f64 / self.iters_per_sample as f64
    }

    /// Collects samples timed by the routine itself: each call receives an
    /// iteration count and returns the wall time those iterations took —
    /// criterion's `iter_custom`. The shim requests one iteration per
    /// sample. This is the escape hatch for benchmarks whose timing
    /// discipline the harness cannot express, e.g. comparing variants on
    /// samples interleaved within the same machine-state window instead of
    /// row-by-row.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut routine: F) {
        self.iters_per_sample = 1;
        self.elapsed.clear();
        for _ in 0..self.samples {
            self.elapsed.push(routine(1));
        }
    }

    /// The fastest sample — the distribution's floor, immune to slow
    /// outliers. Emitted alongside the median as a secondary statistic
    /// for readers judging how noisy a capture was.
    fn min_ns_per_iter(&self) -> f64 {
        if self.iters_per_sample == 0 {
            return 0.0;
        }
        self.elapsed
            .iter()
            .map(Duration::as_nanos)
            .min()
            .map_or(0.0, |ns| ns as f64 / self.iters_per_sample as f64)
    }
}

/// One finished measurement, retained for machine-readable reporting.
#[derive(Debug, Clone)]
struct BenchResult {
    id: String,
    median_ns_per_iter: f64,
    min_ns_per_iter: f64,
    /// Logical elements processed per second, when the group declared an
    /// element throughput.
    events_per_sec: Option<f64>,
    /// Bytes processed per second, when the group declared a byte
    /// throughput.
    bytes_per_sec: Option<f64>,
}

/// A named collection of related benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    results: Vec<BenchResult>,
    json_written: bool,
}

impl BenchmarkGroup {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Declares the amount of work one iteration performs.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark identified by `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.sample_size.min(60),
            elapsed: Vec::new(),
            iters_per_sample: 0,
        };
        f(&mut bencher);
        self.report(&id.to_string(), &bencher);
        self
    }

    /// Runs a benchmark identified by `id`, passing `input` to the closure.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.sample_size.min(60),
            elapsed: Vec::new(),
            iters_per_sample: 0,
        };
        f(&mut bencher, input);
        self.report(&id.to_string(), &bencher);
        self
    }

    /// Ends the group. Console reporting is immediate; this writes the
    /// machine-readable `BENCH_<group>.json` when `BENCH_JSON_DIR` is set.
    pub fn finish(&mut self) {
        self.write_json();
    }

    fn report(&mut self, id: &str, bencher: &Bencher) {
        let ns = bencher.median_ns_per_iter();
        let mut events_per_sec = None;
        let mut bytes_per_sec = None;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if ns > 0.0 => {
                let per_sec = n as f64 / (ns * 1e-9);
                events_per_sec = Some(per_sec);
                format!("  {per_sec:.3e} elem/s")
            }
            Some(Throughput::Bytes(n)) if ns > 0.0 => {
                let per_sec = n as f64 / (ns * 1e-9);
                bytes_per_sec = Some(per_sec);
                format!("  {per_sec:.3e} B/s")
            }
            _ => String::new(),
        };
        println!("{}/{:<32} {:>14.1} ns/iter{}", self.name, id, ns, rate);
        self.results.push(BenchResult {
            id: id.to_string(),
            median_ns_per_iter: ns,
            min_ns_per_iter: bencher.min_ns_per_iter(),
            events_per_sec,
            bytes_per_sec,
        });
    }

    /// Baseline for `id`'s speedup column: the first result whose function
    /// name starts with `serial` and which shares `id`'s `/parameter`
    /// suffix (or has none when `id` has none).
    fn serial_baseline_ns(&self, id: &str) -> Option<f64> {
        let param = id.split_once('/').map(|(_, p)| p);
        self.results
            .iter()
            .find(|r| {
                r.id.starts_with("serial")
                    && r.id.split_once('/').map(|(_, p)| p) == param
                    && r.median_ns_per_iter > 0.0
            })
            .map(|r| r.median_ns_per_iter)
    }

    /// Writes `BENCH_<group>.json` into `$BENCH_JSON_DIR`, one object per
    /// measured id, with a `speedup_vs_serial` column computed against the
    /// group's matching `serial*` rows. No-op when the variable is unset.
    fn write_json(&mut self) {
        if self.json_written || self.results.is_empty() {
            return;
        }
        let Ok(dir) = std::env::var("BENCH_JSON_DIR") else {
            return;
        };
        self.json_written = true;
        let mut body = String::new();
        body.push_str("{\n");
        body.push_str(&format!("  \"group\": \"{}\",\n", self.name));
        body.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            let mut fields = vec![
                format!("\"name\": \"{}\"", r.id),
                format!("\"median_ns_per_iter\": {:.1}", r.median_ns_per_iter),
                format!("\"min_ns_per_iter\": {:.1}", r.min_ns_per_iter),
            ];
            if let Some(v) = r.events_per_sec {
                fields.push(format!("\"events_per_sec\": {v:.1}"));
            }
            if let Some(v) = r.bytes_per_sec {
                fields.push(format!("\"bytes_per_sec\": {v:.1}"));
            }
            if let Some(base) = self.serial_baseline_ns(&r.id) {
                if r.median_ns_per_iter > 0.0 {
                    fields.push(format!(
                        "\"speedup_vs_serial\": {:.3}",
                        base / r.median_ns_per_iter
                    ));
                }
            }
            let sep = if i + 1 == self.results.len() { "" } else { "," };
            body.push_str(&format!("    {{{}}}{sep}\n", fields.join(", ")));
        }
        body.push_str("  ]\n}\n");
        let path = std::path::Path::new(&dir).join(format!("BENCH_{}.json", self.name));
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("criterion shim: cannot write {}: {e}", path.display());
        }
    }
}

impl Drop for BenchmarkGroup {
    /// Guarantees the JSON report even when a harness forgets `finish()`.
    fn drop(&mut self) {
        self.write_json();
    }
}

/// Benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            results: Vec::new(),
            json_written: false,
        }
    }
}

/// Declares a group function invoking each benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Benchmark group runner (generated by `criterion_group!`).
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        /// Benchmark harness entry point (generated by `criterion_main!`).
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(1));
        let mut ran = 0u32;
        group.bench_function("trivial", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        group.finish();
        assert!(ran > 0, "benchmark closure should have executed");
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("batched");
        group.sample_size(3);
        let mut setups = 0u64;
        let mut runs = 0u64;
        group.bench_function("paired", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u64; 16]
                },
                |input| {
                    runs += 1;
                    input.iter().sum::<u64>()
                },
                BatchSize::PerIteration,
            )
        });
        group.json_written = true; // suppress the Drop-time report
        assert!(runs > 0, "batched routine should have executed");
        assert_eq!(setups, runs, "exactly one setup per timed iteration");
    }

    #[test]
    fn benchmark_id_formats_as_name_slash_param() {
        assert_eq!(BenchmarkId::new("engine", 64).to_string(), "engine/64");
    }

    #[test]
    fn serial_baseline_matches_on_parameter_suffix() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("probe");
        group.results = vec![
            BenchResult {
                id: "serial_event_driven/100".into(),
                median_ns_per_iter: 200.0,
                min_ns_per_iter: 190.0,
                events_per_sec: None,
                bytes_per_sec: None,
            },
            BenchResult {
                id: "serial_event_driven/400".into(),
                median_ns_per_iter: 800.0,
                min_ns_per_iter: 780.0,
                events_per_sec: None,
                bytes_per_sec: None,
            },
        ];
        assert_eq!(
            group.serial_baseline_ns("parallel_cycle_based/100"),
            Some(200.0)
        );
        assert_eq!(
            group.serial_baseline_ns("parallel_cycle_based/400"),
            Some(800.0)
        );
        assert_eq!(group.serial_baseline_ns("parallel_cycle_based/999"), None);
        assert_eq!(group.serial_baseline_ns("parallel_no_param"), None);
        group.json_written = true; // suppress the Drop-time report
    }

    #[test]
    fn finish_writes_bench_json_with_speedups() {
        let dir = std::env::temp_dir().join(format!("criterion-shim-json-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("BENCH_JSON_DIR", &dir);

        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shimtest");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        group.bench_function("serial_sum/8", |b| {
            b.iter(|| (0..64u64).map(black_box).sum::<u64>())
        });
        group.bench_function("parallel_sum/8", |b| {
            b.iter(|| (0..64u64).map(black_box).sum::<u64>())
        });
        group.finish();

        let body = std::fs::read_to_string(dir.join("BENCH_shimtest.json")).unwrap();
        assert!(body.contains("\"group\": \"shimtest\""), "{body}");
        assert!(body.contains("\"name\": \"serial_sum/8\""), "{body}");
        assert!(body.contains("\"events_per_sec\""), "{body}");
        assert!(
            body.lines()
                .any(|l| l.contains("parallel_sum/8") && l.contains("speedup_vs_serial")),
            "{body}"
        );
        std::env::remove_var("BENCH_JSON_DIR");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
