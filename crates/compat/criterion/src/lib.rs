//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment cannot reach a crates.io mirror, so this crate
//! vendors the slice of the criterion 0.8 API the `castanet-bench` harnesses
//! use: `criterion_group!`/`criterion_main!`, [`Criterion::benchmark_group`],
//! group configuration (`sample_size`, `throughput`), `bench_function` /
//! `bench_with_input`, [`Bencher::iter`], [`BenchmarkId`], and [`Throughput`].
//!
//! Measurement is deliberately simple — median of `sample_size` timed samples
//! after an adaptive calibration pass — because these numbers are read as
//! relative trends between experiments, not publication-grade statistics.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Measured work per benchmark iteration, used for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The iteration processes this many logical elements (cells, events, …).
    Elements(u64),
    /// The iteration processes this many bytes.
    Bytes(u64),
}

/// Identifier combining a function name with a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id rendered as `name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing helper handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    elapsed: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, storing one duration per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: grow the per-sample iteration count until one sample
        // takes at least ~1ms, so Instant overhead stays negligible.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let took = start.elapsed();
            if took >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        self.iters_per_sample = iters;
        self.elapsed.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.elapsed.push(start.elapsed());
        }
    }

    fn median_ns_per_iter(&self) -> f64 {
        if self.elapsed.is_empty() || self.iters_per_sample == 0 {
            return 0.0;
        }
        let mut ns: Vec<u128> = self.elapsed.iter().map(Duration::as_nanos).collect();
        ns.sort_unstable();
        ns[ns.len() / 2] as f64 / self.iters_per_sample as f64
    }
}

/// A named collection of related benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Declares the amount of work one iteration performs.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark identified by `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.sample_size.min(20),
            elapsed: Vec::new(),
            iters_per_sample: 0,
        };
        f(&mut bencher);
        self.report(&id.to_string(), &bencher);
        self
    }

    /// Runs a benchmark identified by `id`, passing `input` to the closure.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.sample_size.min(20),
            elapsed: Vec::new(),
            iters_per_sample: 0,
        };
        f(&mut bencher, input);
        self.report(&id.to_string(), &bencher);
        self
    }

    /// Ends the group. Present for API compatibility; reporting is immediate.
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, bencher: &Bencher) {
        let ns = bencher.median_ns_per_iter();
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if ns > 0.0 => {
                format!("  {:.3e} elem/s", n as f64 / (ns * 1e-9))
            }
            Some(Throughput::Bytes(n)) if ns > 0.0 => {
                format!("  {:.3e} B/s", n as f64 / (ns * 1e-9))
            }
            _ => String::new(),
        };
        println!("{}/{:<32} {:>14.1} ns/iter{}", self.name, id, ns, rate);
    }
}

/// Benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// Declares a group function invoking each benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Benchmark group runner (generated by `criterion_group!`).
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        /// Benchmark harness entry point (generated by `criterion_main!`).
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(1));
        let mut ran = 0u32;
        group.bench_function("trivial", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        group.finish();
        assert!(ran > 0, "benchmark closure should have executed");
    }

    #[test]
    fn benchmark_id_formats_as_name_slash_param() {
        assert_eq!(BenchmarkId::new("engine", 64).to_string(), "engine/64");
    }
}
