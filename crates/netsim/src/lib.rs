//! # castanet-netsim — discrete-event network simulator
//!
//! A from-scratch substitute for the OPNET Modeler network simulator that the
//! DATE'98 paper *"A System-Level Co-Verification Environment for ATM
//! Hardware Design"* couples to a VHDL simulator. It provides the three
//! modelling domains the paper names:
//!
//! * **network domain** ([`network`]) — topology of nodes and links;
//! * **node domain** ([`kernel`], [`queue`]) — modules with processing,
//!   queueing and communication interfaces;
//! * **process domain** ([`process`]) — behaviour as communicating extended
//!   FSMs.
//!
//! plus the infrastructure around them: a time-ordered event list
//! ([`scheduler`]), picosecond-resolution simulated time ([`time`]),
//! rate/delay links ([`link`]), typed packets ([`packet`]), statistic probes
//! ([`stats`]) and reproducible random streams ([`random`]).
//!
//! ## Quick start
//!
//! ```
//! use castanet_netsim::kernel::{Ctx, Kernel};
//! use castanet_netsim::event::PortId;
//! use castanet_netsim::packet::Packet;
//! use castanet_netsim::process::{CollectorProcess, Process};
//! use castanet_netsim::time::{SimDuration, SimTime};
//!
//! // A source that emits one packet per simulated microsecond.
//! struct Source { left: u32 }
//! impl Process for Source {
//!     fn init(&mut self, ctx: &mut Ctx) {
//!         ctx.schedule_self(SimDuration::from_us(1), 0).expect("schedule");
//!     }
//!     fn on_packet(&mut self, _: &mut Ctx, _: PortId, _: Packet) {}
//!     fn on_interrupt(&mut self, ctx: &mut Ctx, _: u32) {
//!         ctx.send(PortId(0), Packet::new(0, 424)).expect("send");
//!         self.left -= 1;
//!         if self.left > 0 {
//!             ctx.schedule_self(SimDuration::from_us(1), 0).expect("schedule");
//!         }
//!     }
//! }
//!
//! let mut kernel = Kernel::new(42);
//! let node = kernel.add_node("demo");
//! let src = kernel.add_module(node, "src", Box::new(Source { left: 3 }));
//! let (sink, received) = CollectorProcess::new();
//! let dst = kernel.add_module(node, "sink", Box::new(sink));
//! kernel.connect_stream(src, PortId(0), dst, PortId(0))?;
//! kernel.run()?;
//! assert_eq!(received.len(), 3);
//! assert_eq!(kernel.now(), SimTime::from_us(3));
//! # Ok::<(), castanet_netsim::error::NetsimError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod event;
pub mod kernel;
pub mod link;
pub mod network;
pub mod packet;
pub mod process;
pub mod queue;
pub mod random;
pub mod scheduler;
pub mod stats;
pub mod time;

pub use error::NetsimError;
pub use event::{EventId, ModuleId, NodeId, PortId};
pub use kernel::{Ctx, Kernel, StopReason};
pub use link::LinkParams;
pub use packet::Packet;
pub use process::{Fsm, FsmEvent, FsmProcess, Process};
pub use time::{SimDuration, SimTime};
