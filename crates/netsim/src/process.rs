//! The process domain: behaviour of modules as communicating extended FSMs.
//!
//! The paper (§2): "The process domain specifies the behavior of processing
//! nodes as communicating extended FSMs." Two levels are offered here:
//!
//! * [`Process`] — the raw event-handler trait the kernel dispatches to.
//!   Anything implementing it can be a module.
//! * [`Fsm`] / [`FsmProcess`] — an explicit extended-finite-state-machine
//!   formulation on top of `Process`, with named states, an OPNET-style
//!   *enter executive* hook, and a recorded transition trace for debugging.

use crate::event::PortId;
use crate::kernel::Ctx;
use crate::packet::Packet;
use std::fmt;

/// A module's behaviour: the kernel calls these hooks as events fire.
///
/// Implementations must be `Send` so models can move across threads (the
/// CASTANET coupling runs simulators on separate threads when using the
/// socket transport).
pub trait Process: Send {
    /// Called once, before the first event, when the simulation starts.
    fn init(&mut self, ctx: &mut Ctx) {
        let _ = ctx;
    }

    /// Called when a packet arrives on one of the module's input ports.
    fn on_packet(&mut self, ctx: &mut Ctx, port: PortId, packet: Packet);

    /// Called when a (self-)interrupt fires. Default: ignore.
    fn on_interrupt(&mut self, ctx: &mut Ctx, code: u32) {
        let _ = (ctx, code);
    }
}

/// A stimulus delivered to an extended FSM.
#[derive(Debug)]
pub enum FsmEvent {
    /// The simulation is starting (delivered exactly once, before any other
    /// event).
    Begin,
    /// A packet arrived on `0`'s port.
    Packet(PortId, Packet),
    /// An interrupt with the given code fired.
    Interrupt(u32),
}

impl FsmEvent {
    /// Short label for transition traces.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            FsmEvent::Begin => "begin".to_string(),
            FsmEvent::Packet(port, _) => format!("packet@{port}"),
            FsmEvent::Interrupt(code) => format!("intr({code})"),
        }
    }
}

/// An extended finite state machine: states plus a transition function with
/// access to the kernel context (so transitions can send packets, schedule
/// interrupts and keep extended state in `self`).
pub trait Fsm: Send {
    /// The state type; kept `Copy` so traces are cheap.
    type State: Copy + PartialEq + fmt::Debug + Send;

    /// The initial state.
    fn initial(&self) -> Self::State;

    /// Handles `event` in `state`, returning the next state.
    fn transition(&mut self, state: Self::State, event: FsmEvent, ctx: &mut Ctx) -> Self::State;

    /// Called when a transition lands in a *different* state (OPNET's enter
    /// executive). Default: nothing.
    fn on_enter(&mut self, state: Self::State, ctx: &mut Ctx) {
        let _ = (state, ctx);
    }
}

/// One recorded FSM transition, for debugging and assertions in tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transition<S> {
    /// State before the event.
    pub from: S,
    /// State after the event.
    pub to: S,
    /// Label of the triggering event.
    pub event: String,
}

/// Adapts an [`Fsm`] into a [`Process`], optionally recording the transition
/// trace.
///
/// # Examples
///
/// ```
/// use castanet_netsim::process::{Fsm, FsmEvent, FsmProcess};
/// use castanet_netsim::kernel::{Ctx, Kernel};
/// use castanet_netsim::time::SimDuration;
///
/// #[derive(Debug, Clone, Copy, PartialEq)]
/// enum Light { Red, Green }
///
/// struct Blinker;
/// impl Fsm for Blinker {
///     type State = Light;
///     fn initial(&self) -> Light { Light::Red }
///     fn transition(&mut self, s: Light, ev: FsmEvent, ctx: &mut Ctx) -> Light {
///         match ev {
///             FsmEvent::Begin => {
///                 ctx.schedule_self(SimDuration::from_ns(10), 0).expect("schedule");
///                 s
///             }
///             FsmEvent::Interrupt(_) => match s {
///                 Light::Red => Light::Green,
///                 Light::Green => Light::Red,
///             },
///             FsmEvent::Packet(..) => s,
///         }
///     }
/// }
///
/// let mut k = Kernel::new(0);
/// let n = k.add_node("n");
/// k.add_module(n, "blinker", Box::new(FsmProcess::new(Blinker)));
/// k.run().expect("run");
/// ```
pub struct FsmProcess<F: Fsm> {
    fsm: F,
    state: Option<F::State>,
    trace: Option<Vec<Transition<F::State>>>,
}

impl<F: Fsm> fmt::Debug for FsmProcess<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FsmProcess")
            .field("state", &self.state)
            .field("traced", &self.trace.is_some())
            .finish()
    }
}

impl<F: Fsm> FsmProcess<F> {
    /// Wraps `fsm` without transition tracing.
    #[must_use]
    pub fn new(fsm: F) -> Self {
        FsmProcess {
            fsm,
            state: None,
            trace: None,
        }
    }

    /// Wraps `fsm` and records every transition (including self-loops).
    #[must_use]
    pub fn traced(fsm: F) -> Self {
        FsmProcess {
            fsm,
            state: None,
            trace: Some(Vec::new()),
        }
    }

    /// Current state, or the initial state before `init` ran.
    #[must_use]
    pub fn state(&self) -> F::State {
        self.state.unwrap_or_else(|| self.fsm.initial())
    }

    /// Recorded transitions (empty when not constructed with
    /// [`FsmProcess::traced`]).
    #[must_use]
    pub fn trace(&self) -> &[Transition<F::State>] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Access to the wrapped machine.
    #[must_use]
    pub fn fsm(&self) -> &F {
        &self.fsm
    }

    fn feed(&mut self, event: FsmEvent, ctx: &mut Ctx) {
        let from = self.state();
        let label = event.label();
        let to = self.fsm.transition(from, event, ctx);
        if let Some(trace) = &mut self.trace {
            trace.push(Transition {
                from,
                to,
                event: label,
            });
        }
        if to != from {
            self.fsm.on_enter(to, ctx);
        }
        self.state = Some(to);
    }
}

impl<F: Fsm> Process for FsmProcess<F> {
    fn init(&mut self, ctx: &mut Ctx) {
        self.state = Some(self.fsm.initial());
        self.feed(FsmEvent::Begin, ctx);
    }

    fn on_packet(&mut self, ctx: &mut Ctx, port: PortId, packet: Packet) {
        self.feed(FsmEvent::Packet(port, packet), ctx);
    }

    fn on_interrupt(&mut self, ctx: &mut Ctx, code: u32) {
        self.feed(FsmEvent::Interrupt(code), ctx);
    }
}

/// A process that does nothing — useful as a placeholder endpoint in
/// topology tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullProcess;

impl Process for NullProcess {
    fn on_packet(&mut self, _ctx: &mut Ctx, _port: PortId, _packet: Packet) {}
}

/// A process that stores arriving packets into a shared buffer, so the model
/// owner can inspect them after (or during) the run even though the process
/// itself is owned by the kernel. Heavily used by tests and by the comparison
/// stage of the co-verification flow.
#[derive(Debug)]
pub struct CollectorProcess {
    buffer: CollectorHandle,
}

/// Shared view onto the packets a [`CollectorProcess`] has received.
#[derive(Debug, Clone, Default)]
pub struct CollectorHandle {
    inner: std::sync::Arc<std::sync::Mutex<Vec<(crate::time::SimTime, Packet)>>>,
}

impl CollectorHandle {
    /// Number of packets received so far.
    ///
    /// # Panics
    ///
    /// Panics if the internal lock is poisoned (a collector panicked).
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("collector lock poisoned").len()
    }

    /// `true` when nothing has arrived.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains and returns all collected `(arrival time, packet)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if the internal lock is poisoned.
    #[must_use]
    pub fn take(&self) -> Vec<(crate::time::SimTime, Packet)> {
        std::mem::take(&mut *self.inner.lock().expect("collector lock poisoned"))
    }

    /// Applies `f` to the collected packets without draining them.
    ///
    /// # Panics
    ///
    /// Panics if the internal lock is poisoned.
    pub fn with<R>(&self, f: impl FnOnce(&[(crate::time::SimTime, Packet)]) -> R) -> R {
        f(&self.inner.lock().expect("collector lock poisoned"))
    }
}

impl CollectorProcess {
    /// Creates a collector and the handle through which its contents can be
    /// read after the process has been handed to the kernel.
    #[must_use]
    pub fn new() -> (Self, CollectorHandle) {
        let handle = CollectorHandle::default();
        (
            CollectorProcess {
                buffer: handle.clone(),
            },
            handle,
        )
    }
}

impl Process for CollectorProcess {
    fn on_packet(&mut self, ctx: &mut Ctx, _port: PortId, packet: Packet) {
        self.buffer
            .inner
            .lock()
            .expect("collector lock poisoned")
            .push((ctx.now(), packet));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Kernel;
    use crate::time::{SimDuration, SimTime};

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum S {
        Idle,
        Busy,
    }

    /// Alternates Idle/Busy on every interrupt; schedules 3 ticks.
    struct Toggler {
        ticks_left: u32,
    }

    impl Fsm for Toggler {
        type State = S;
        fn initial(&self) -> S {
            S::Idle
        }
        fn transition(&mut self, state: S, event: FsmEvent, ctx: &mut Ctx) -> S {
            match event {
                FsmEvent::Begin => {
                    ctx.schedule_self(SimDuration::from_ns(1), 0).unwrap();
                    state
                }
                FsmEvent::Interrupt(_) => {
                    if self.ticks_left > 0 {
                        self.ticks_left -= 1;
                        ctx.schedule_self(SimDuration::from_ns(1), 0).unwrap();
                    }
                    match state {
                        S::Idle => S::Busy,
                        S::Busy => S::Idle,
                    }
                }
                FsmEvent::Packet(..) => state,
            }
        }
    }

    #[test]
    fn fsm_transitions_are_traced() {
        let mut k = Kernel::new(0);
        let n = k.add_node("n");
        k.add_module(
            n,
            "t",
            Box::new(FsmProcess::traced(Toggler { ticks_left: 3 })),
        );
        k.run().unwrap();
        // We can't get the process back out of the kernel (by design), so
        // trace inspection is tested on a standalone dispatch below; here we
        // just confirm the run terminates after 4 interrupts + begin.
        assert_eq!(k.events_executed(), 4);
    }

    #[test]
    fn fsm_state_before_init_is_initial() {
        let p = FsmProcess::new(Toggler { ticks_left: 0 });
        assert_eq!(p.state(), S::Idle);
        assert!(p.trace().is_empty());
    }

    #[test]
    fn event_labels() {
        assert_eq!(FsmEvent::Begin.label(), "begin");
        assert_eq!(FsmEvent::Interrupt(7).label(), "intr(7)");
        assert_eq!(
            FsmEvent::Packet(PortId(2), Packet::new(0, 8)).label(),
            "packet@port2"
        );
    }

    #[test]
    fn collector_gathers_packets_with_times() {
        let mut k = Kernel::new(0);
        let n = k.add_node("n");
        let (proc_, handle) = CollectorProcess::new();
        let sink = k.add_module(n, "sink", Box::new(proc_));
        k.inject_packet(sink, PortId(0), Packet::new(0, 8), SimTime::from_ns(3))
            .unwrap();
        k.inject_packet(sink, PortId(0), Packet::new(7, 8), SimTime::from_ns(8))
            .unwrap();
        k.run().unwrap();
        assert_eq!(handle.len(), 2);
        handle.with(|pkts| {
            assert_eq!(pkts[0].0, SimTime::from_ns(3));
            assert_eq!(pkts[1].0, SimTime::from_ns(8));
            assert_eq!(pkts[1].1.format(), 7);
        });
        let drained = handle.take();
        assert_eq!(drained.len(), 2);
        assert!(handle.is_empty());
    }

    #[test]
    fn null_process_ignores_everything() {
        let mut k = Kernel::new(0);
        let n = k.add_node("n");
        let m = k.add_module(n, "null", Box::new(NullProcess));
        k.inject_packet(m, PortId(0), Packet::new(0, 8), SimTime::from_ns(1))
            .unwrap();
        k.inject_interrupt(m, 1, SimTime::from_ns(2)).unwrap();
        k.run().unwrap();
        assert_eq!(k.module_event_count(m), 3);
    }
}
