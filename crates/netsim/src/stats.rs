//! Statistic collection.
//!
//! The paper lists "access to powerful analysis capabilities available in
//! existing network simulation tools" as one of the co-verification
//! environment's advantages. This module provides the OPNET-style probe
//! mechanism those analyses are built on: named probes into which model code
//! records samples, with scalar summaries, time-weighted averages and
//! histograms computed incrementally.

use crate::time::SimTime;
use std::fmt;

/// Handle to a registered probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProbeId(usize);

/// Running scalar summary of a probe's samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample (`f64::INFINITY` when empty).
    pub min: f64,
    /// Largest sample (`f64::NEG_INFINITY` when empty).
    pub max: f64,
    /// Most recent sample (`f64::NAN` when empty).
    pub last: f64,
}

impl Summary {
    fn empty() -> Self {
        Summary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            last: f64::NAN,
        }
    }

    /// Arithmetic mean of the samples; `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }
}

struct Probe {
    name: String,
    summary: Summary,
    // Time-weighted accumulation: integral of value over time since the
    // previous sample, for time averages of level-type statistics
    // (queue depth, link utilization).
    weighted_integral: f64,
    last_sample_time: Option<SimTime>,
    samples: Option<Vec<(SimTime, f64)>>,
}

/// Registry of probes. One per kernel; models record through
/// [`crate::kernel::Ctx::stats`].
///
/// # Examples
///
/// ```
/// use castanet_netsim::stats::StatsRegistry;
///
/// let mut stats = StatsRegistry::new();
/// let p = stats.probe("cell delay");
/// stats.record(p, 2.5);
/// stats.record(p, 3.5);
/// assert_eq!(stats.summary(p).count, 2);
/// assert_eq!(stats.summary(p).mean(), Some(3.0));
/// ```
#[derive(Default)]
pub struct StatsRegistry {
    probes: Vec<Probe>,
}

impl fmt::Debug for StatsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StatsRegistry")
            .field("probes", &self.probes.len())
            .finish()
    }
}

impl StatsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a probe under `name`, returning its handle. Names need not
    /// be unique; the handle is the identity.
    pub fn probe(&mut self, name: impl Into<String>) -> ProbeId {
        let id = ProbeId(self.probes.len());
        self.probes.push(Probe {
            name: name.into(),
            summary: Summary::empty(),
            weighted_integral: 0.0,
            last_sample_time: None,
            samples: None,
        });
        id
    }

    /// Registers a probe that additionally keeps every `(time, value)`
    /// sample for post-run series analysis (costs memory proportional to the
    /// sample count).
    pub fn probe_with_series(&mut self, name: impl Into<String>) -> ProbeId {
        let id = self.probe(name);
        self.probes[id.0].samples = Some(Vec::new());
        id
    }

    /// Records a plain sample (no time weighting).
    ///
    /// # Panics
    ///
    /// Panics if `id` was not created by this registry.
    pub fn record(&mut self, id: ProbeId, value: f64) {
        let p = &mut self.probes[id.0];
        update_summary(&mut p.summary, value);
        if let Some(series) = &mut p.samples {
            series.push((SimTime::ZERO, value));
        }
    }

    /// Records a sample at simulated time `t`, additionally accumulating the
    /// time-weighted integral of the *previous* value over `[prev_t, t]` for
    /// level statistics (queue depth, utilization).
    ///
    /// # Panics
    ///
    /// Panics if `id` was not created by this registry.
    pub fn record_at(&mut self, id: ProbeId, t: SimTime, value: f64) {
        let p = &mut self.probes[id.0];
        if let Some(prev_t) = p.last_sample_time {
            if t > prev_t && !p.summary.last.is_nan() {
                let dt = (t - prev_t).as_secs_f64();
                p.weighted_integral += p.summary.last * dt;
            }
        }
        p.last_sample_time = Some(t);
        update_summary(&mut p.summary, value);
        if let Some(series) = &mut p.samples {
            series.push((t, value));
        }
    }

    /// Scalar summary of a probe.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not created by this registry.
    #[must_use]
    pub fn summary(&self, id: ProbeId) -> Summary {
        self.probes[id.0].summary
    }

    /// Time average of a level statistic over `[first sample, horizon]`.
    /// Returns `None` before any [`StatsRegistry::record_at`] sample.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not created by this registry.
    #[must_use]
    pub fn time_average(&self, id: ProbeId, horizon: SimTime) -> Option<f64> {
        let p = &self.probes[id.0];
        let last_t = p.last_sample_time?;
        let first_t = p
            .samples
            .as_ref()
            .and_then(|s| s.first().map(|(t, _)| *t))
            .unwrap_or(SimTime::ZERO);
        let mut integral = p.weighted_integral;
        if horizon > last_t && !p.summary.last.is_nan() {
            integral += p.summary.last * (horizon - last_t).as_secs_f64();
        }
        let span = horizon.checked_duration_since(first_t)?.as_secs_f64();
        if span <= 0.0 {
            return None;
        }
        Some(integral / span)
    }

    /// The recorded time series, when the probe was created with
    /// [`StatsRegistry::probe_with_series`].
    ///
    /// # Panics
    ///
    /// Panics if `id` was not created by this registry.
    #[must_use]
    pub fn series(&self, id: ProbeId) -> Option<&[(SimTime, f64)]> {
        self.probes[id.0].samples.as_deref()
    }

    /// The name the probe was registered under.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not created by this registry.
    #[must_use]
    pub fn name(&self, id: ProbeId) -> &str {
        &self.probes[id.0].name
    }

    /// Iterates over `(id, name, summary)` of every probe.
    pub fn iter(&self) -> impl Iterator<Item = (ProbeId, &str, Summary)> {
        self.probes
            .iter()
            .enumerate()
            .map(|(i, p)| (ProbeId(i), p.name.as_str(), p.summary))
    }

    /// Builds a fixed-bin histogram of a series probe over `[lo, hi)` with
    /// `bins` bins; the last slot counts out-of-range samples.
    ///
    /// # Panics
    ///
    /// Panics if the probe has no series, `bins == 0`, or `hi <= lo`.
    #[must_use]
    pub fn histogram(&self, id: ProbeId, lo: f64, hi: f64, bins: usize) -> Vec<u64> {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        let series = self
            .series(id)
            .expect("histogram requires a probe created with probe_with_series");
        let mut out = vec![0u64; bins + 1];
        let width = (hi - lo) / bins as f64;
        for &(_, v) in series {
            if v >= lo && v < hi {
                let idx = ((v - lo) / width) as usize;
                out[idx.min(bins - 1)] += 1;
            } else {
                out[bins] += 1;
            }
        }
        out
    }

    /// Clears all samples, keeping the probe registrations.
    pub fn reset(&mut self) {
        for p in &mut self.probes {
            p.summary = Summary::empty();
            p.weighted_integral = 0.0;
            p.last_sample_time = None;
            if let Some(s) = &mut p.samples {
                s.clear();
            }
        }
    }
}

fn update_summary(s: &mut Summary, value: f64) {
    s.count += 1;
    s.sum += value;
    s.min = s.min.min(value);
    s.max = s.max.max(value);
    s.last = value;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_tracks_min_max_mean() {
        let mut r = StatsRegistry::new();
        let p = r.probe("x");
        for v in [4.0, 1.0, 7.0] {
            r.record(p, v);
        }
        let s = r.summary(p);
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 7.0);
        assert_eq!(s.last, 7.0);
        assert_eq!(s.mean(), Some(4.0));
    }

    #[test]
    fn empty_summary_has_no_mean() {
        let mut r = StatsRegistry::new();
        let p = r.probe("x");
        assert_eq!(r.summary(p).mean(), None);
        assert_eq!(r.summary(p).count, 0);
    }

    #[test]
    fn time_average_of_level_statistic() {
        let mut r = StatsRegistry::new();
        let p = r.probe_with_series("queue depth");
        // Depth 2 over [0,10) ns, depth 4 over [10,20) ns -> average 3.
        r.record_at(p, SimTime::from_ns(0), 2.0);
        r.record_at(p, SimTime::from_ns(10), 4.0);
        let avg = r.time_average(p, SimTime::from_ns(20)).unwrap();
        assert!((avg - 3.0).abs() < 1e-9);
    }

    #[test]
    fn time_average_none_without_samples() {
        let mut r = StatsRegistry::new();
        let p = r.probe("x");
        assert_eq!(r.time_average(p, SimTime::from_ns(10)), None);
    }

    #[test]
    fn series_records_everything() {
        let mut r = StatsRegistry::new();
        let p = r.probe_with_series("x");
        r.record_at(p, SimTime::from_ns(1), 1.0);
        r.record_at(p, SimTime::from_ns(2), 2.0);
        let s = r.series(p).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s[1], (SimTime::from_ns(2), 2.0));
        // A non-series probe reports None.
        let q = r.probe("scalar only");
        assert!(r.series(q).is_none());
    }

    #[test]
    fn histogram_bins_samples() {
        let mut r = StatsRegistry::new();
        let p = r.probe_with_series("x");
        for v in [0.1, 0.2, 0.55, 0.9, 1.5] {
            r.record(p, v);
        }
        let h = r.histogram(p, 0.0, 1.0, 2);
        assert_eq!(h, vec![2, 2, 1]); // [0,0.5): 2, [0.5,1): 2, outside: 1
    }

    #[test]
    fn reset_clears_samples_keeps_probes() {
        let mut r = StatsRegistry::new();
        let p = r.probe_with_series("x");
        r.record(p, 1.0);
        r.reset();
        assert_eq!(r.summary(p).count, 0);
        assert_eq!(r.series(p).unwrap().len(), 0);
        assert_eq!(r.name(p), "x");
    }

    #[test]
    fn iter_lists_probes() {
        let mut r = StatsRegistry::new();
        let a = r.probe("a");
        let _b = r.probe("b");
        r.record(a, 1.0);
        let names: Vec<&str> = r.iter().map(|(_, n, _)| n).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
