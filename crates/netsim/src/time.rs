//! Simulation time for the discrete-event kernel.
//!
//! Time is represented as an integer number of **picoseconds** since the start
//! of the simulation. An integer representation makes event ordering exact
//! (no floating-point ties), which matters for the deterministic coupling of
//! two simulators: the CASTANET synchronization protocol compares time stamps
//! produced by *different* kernels, so both the network simulator and the RTL
//! simulator in this workspace share this representation.
//!
//! A picosecond granularity covers both domains of the paper: cell-level
//! network simulation (one ATM cell at 155.52 Mbit/s lasts ≈ 2.73 µs) and
//! clock-level RTL simulation (a 50 MHz clock period is 20 000 ps), with room
//! for multi-hour simulations (`u64` picoseconds ≈ 213 days).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute point in simulated time, in picoseconds since simulation start.
///
/// `SimTime` is a transparent newtype over `u64`; it forms a total order and
/// supports the arithmetic needed by schedulers (`+ SimDuration`,
/// `- SimTime -> SimDuration`).
///
/// # Examples
///
/// ```
/// use castanet_netsim::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_ns(5);
/// assert_eq!(t.as_picos(), 5_000);
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in picoseconds.
///
/// # Examples
///
/// ```
/// use castanet_netsim::time::SimDuration;
///
/// let cell_time = SimDuration::from_ns(2_726); // one ATM cell at 155.52 Mbit/s
/// assert_eq!(cell_time * 2, SimDuration::from_ns(5_452));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable time; used as an "end of time" sentinel by
    /// synchronization protocols that need a bound for "no constraint".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw picoseconds.
    #[must_use]
    pub const fn from_picos(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Creates a time from nanoseconds.
    #[must_use]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// Creates a time from microseconds.
    #[must_use]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }

    /// Creates a time from milliseconds.
    #[must_use]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000_000)
    }

    /// Creates a time from whole seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000_000)
    }

    /// Raw picosecond count.
    #[must_use]
    pub const fn as_picos(self) -> u64 {
        self.0
    }

    /// Time expressed as (possibly fractional) seconds. Intended for
    /// statistics and display, not for ordering.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Duration since an earlier instant.
    ///
    /// Returns `None` when `earlier` is in this instant's future.
    ///
    /// # Examples
    ///
    /// ```
    /// use castanet_netsim::time::{SimTime, SimDuration};
    /// let a = SimTime::from_ns(10);
    /// let b = SimTime::from_ns(4);
    /// assert_eq!(a.checked_duration_since(b), Some(SimDuration::from_ns(6)));
    /// assert_eq!(b.checked_duration_since(a), None);
    /// ```
    #[must_use]
    pub fn checked_duration_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// Saturating addition of a duration (clamps at [`SimTime::MAX`]).
    #[must_use]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The greatest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw picoseconds.
    #[must_use]
    pub const fn from_picos(ps: u64) -> Self {
        SimDuration(ps)
    }

    /// Creates a duration from nanoseconds.
    #[must_use]
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns * 1_000)
    }

    /// Creates a duration from microseconds.
    #[must_use]
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000_000)
    }

    /// Creates a duration from milliseconds.
    #[must_use]
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * 1_000_000_000)
    }

    /// Creates a duration from whole seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// picosecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large to represent.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative, got {secs}"
        );
        let ps = secs * 1e12;
        assert!(
            ps <= u64::MAX as f64,
            "duration {secs} s overflows SimDuration"
        );
        SimDuration(ps.round() as u64)
    }

    /// The period of a clock with the given frequency in hertz.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use castanet_netsim::time::SimDuration;
    /// // The test board of the paper runs at 20 MHz maximum.
    /// assert_eq!(SimDuration::from_freq_hz(20_000_000).as_picos(), 50_000);
    /// ```
    #[must_use]
    pub fn from_freq_hz(hz: u64) -> Self {
        assert!(hz > 0, "clock frequency must be non-zero");
        SimDuration(1_000_000_000_000 / hz)
    }

    /// Raw picosecond count.
    #[must_use]
    pub const fn as_picos(self) -> u64 {
        self.0
    }

    /// Duration expressed as fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// `true` when this is the zero duration.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[must_use]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Checked multiplication by an integer factor.
    #[must_use]
    pub fn checked_mul(self, factor: u64) -> Option<SimDuration> {
        self.0.checked_mul(factor).map(SimDuration)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("simulation time overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("simulation time underflow"),
        )
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("negative duration between simulation times"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("duration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("duration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("duration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = u64;
    /// Integer quotient of two durations (how many `rhs` fit in `self`).
    fn div(self, rhs: SimDuration) -> u64 {
        assert!(!rhs.is_zero(), "division by zero duration");
        self.0 / rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_picos(self.0, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_picos(self.0, f)
    }
}

/// Renders a picosecond count with the largest unit that keeps the value
/// exact (e.g. `20 ns`, `2.73 us`, `1.5 ms`).
fn fmt_picos(ps: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    const UNITS: [(u64, &str); 4] = [
        (1_000_000_000_000, "s"),
        (1_000_000_000, "ms"),
        (1_000_000, "us"),
        (1_000, "ns"),
    ];
    for (scale, unit) in UNITS {
        if ps >= scale {
            let whole = ps / scale;
            let frac = ps % scale;
            if frac == 0 {
                return write!(f, "{whole} {unit}");
            }
            return write!(f, "{:.3} {unit}", ps as f64 / scale as f64);
        }
    }
    write!(f, "{ps} ps")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(SimTime::default(), SimTime::ZERO);
        assert_eq!(SimDuration::default(), SimDuration::ZERO);
    }

    #[test]
    fn unit_constructors_scale_correctly() {
        assert_eq!(SimTime::from_ns(1).as_picos(), 1_000);
        assert_eq!(SimTime::from_us(1).as_picos(), 1_000_000);
        assert_eq!(SimTime::from_ms(1).as_picos(), 1_000_000_000);
        assert_eq!(SimTime::from_secs(1).as_picos(), 1_000_000_000_000);
        assert_eq!(SimDuration::from_ns(3).as_picos(), 3_000);
        assert_eq!(SimDuration::from_secs(2).as_picos(), 2_000_000_000_000);
    }

    #[test]
    fn add_sub_roundtrip() {
        let t = SimTime::from_ns(100);
        let d = SimDuration::from_ns(40);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtracting_past_zero_panics() {
        let _ = SimTime::from_ns(1) - SimDuration::from_ns(2);
    }

    #[test]
    fn checked_duration_since_handles_order() {
        let a = SimTime::from_ns(5);
        let b = SimTime::from_ns(9);
        assert_eq!(b.checked_duration_since(a), Some(SimDuration::from_ns(4)));
        assert_eq!(a.checked_duration_since(b), None);
        assert_eq!(a.checked_duration_since(a), Some(SimDuration::ZERO));
    }

    #[test]
    fn clock_period_from_frequency() {
        // 50 MHz -> 20 ns.
        assert_eq!(
            SimDuration::from_freq_hz(50_000_000),
            SimDuration::from_ns(20)
        );
        // 20 MHz board clock -> 50 ns.
        assert_eq!(
            SimDuration::from_freq_hz(20_000_000),
            SimDuration::from_ns(50)
        );
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_frequency_panics() {
        let _ = SimDuration::from_freq_hz(0);
    }

    #[test]
    fn duration_division_counts_quotient() {
        let cell = SimDuration::from_ns(2_726);
        let clk = SimDuration::from_ns(20);
        assert_eq!(cell / clk, 136);
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(1e-9), SimDuration::from_ns(1));
        assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_seconds_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn display_uses_natural_units() {
        assert_eq!(SimTime::from_ns(20).to_string(), "20 ns");
        assert_eq!(SimTime::from_picos(5).to_string(), "5 ps");
        assert_eq!(SimTime::from_us(3).to_string(), "3 us");
        assert_eq!(SimDuration::from_ms(7).to_string(), "7 ms");
        assert_eq!(SimTime::from_secs(2).to_string(), "2 s");
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_ns(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimDuration::from_ns(1).saturating_sub(SimDuration::from_ns(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn mul_div_duration() {
        let d = SimDuration::from_ns(10);
        assert_eq!(d * 3, SimDuration::from_ns(30));
        assert_eq!(d / 2, SimDuration::from_ns(5));
        assert_eq!(d.checked_mul(u64::MAX), None);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![SimTime::from_ns(3), SimTime::ZERO, SimTime::from_ns(1)];
        v.sort();
        assert_eq!(
            v,
            vec![SimTime::ZERO, SimTime::from_ns(1), SimTime::from_ns(3)]
        );
    }
}
