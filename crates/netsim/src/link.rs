//! Point-to-point links of the network domain.
//!
//! A link is characterized by a data rate (bits per second) and a propagation
//! delay. A packet of `n` bits leaving on a link arrives after
//! `n / rate + propagation` — the classic transmission model network
//! simulators use for "communication links between nodes" (§2).

use crate::time::SimDuration;

/// Data rate and propagation delay of a point-to-point link.
///
/// # Examples
///
/// ```
/// use castanet_netsim::link::LinkParams;
/// use castanet_netsim::time::SimDuration;
///
/// // An STM-1 / OC-3 line as used for 155.52 Mbit/s ATM.
/// let link = LinkParams::new(155_520_000, SimDuration::from_us(5));
/// // One 53-octet cell = 424 bits -> ~2.726 us serialization.
/// let delay = link.total_delay(424);
/// assert!(delay > SimDuration::from_us(7) && delay < SimDuration::from_us(8));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkParams {
    rate_bps: u64,
    propagation: SimDuration,
}

impl LinkParams {
    /// Creates link parameters.
    ///
    /// # Panics
    ///
    /// Panics if `rate_bps` is zero.
    #[must_use]
    pub fn new(rate_bps: u64, propagation: SimDuration) -> Self {
        assert!(rate_bps > 0, "link rate must be non-zero");
        LinkParams {
            rate_bps,
            propagation,
        }
    }

    /// An STM-1/OC-3 ATM line: 155.52 Mbit/s, negligible propagation.
    /// The standard access rate in the paper's application domain.
    #[must_use]
    pub fn stm1() -> Self {
        LinkParams::new(155_520_000, SimDuration::ZERO)
    }

    /// Data rate in bits per second.
    #[must_use]
    pub fn rate_bps(&self) -> u64 {
        self.rate_bps
    }

    /// Propagation delay.
    #[must_use]
    pub fn propagation(&self) -> SimDuration {
        self.propagation
    }

    /// Serialization delay for a packet of `bits` bits (rounded up to the
    /// next picosecond).
    #[must_use]
    pub fn serialization_delay(&self, bits: u32) -> SimDuration {
        // bits * 1e12 / rate, in integer arithmetic with round-up.
        let num = u128::from(bits) * 1_000_000_000_000u128;
        let den = u128::from(self.rate_bps);
        let ps = num.div_ceil(den);
        SimDuration::from_picos(u64::try_from(ps).expect("serialization delay overflows u64 ps"))
    }

    /// Total link delay: serialization plus propagation.
    #[must_use]
    pub fn total_delay(&self, bits: u32) -> SimDuration {
        self.serialization_delay(bits) + self.propagation
    }

    /// The time one ATM cell (424 bits) occupies this link — the "cell time"
    /// that sets the network simulator's natural time step (§3.2).
    #[must_use]
    pub fn cell_time(&self) -> SimDuration {
        self.serialization_delay(424)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_rounds_up() {
        let link = LinkParams::new(3, SimDuration::ZERO);
        // 1 bit at 3 bit/s = 333333333333.33.. ps, rounds up to ..34.
        assert_eq!(
            link.serialization_delay(1),
            SimDuration::from_picos(333_333_333_334)
        );
    }

    #[test]
    fn zero_bits_is_instant_serialization() {
        let link = LinkParams::new(1_000_000, SimDuration::from_ns(7));
        assert_eq!(link.serialization_delay(0), SimDuration::ZERO);
        assert_eq!(link.total_delay(0), SimDuration::from_ns(7));
    }

    #[test]
    fn stm1_cell_time_is_about_2_73_us() {
        let ct = LinkParams::stm1().cell_time();
        // 424 / 155_520_000 s = 2.7263.. us
        assert!(ct >= SimDuration::from_ns(2726));
        assert!(ct <= SimDuration::from_ns(2727));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_rate_panics() {
        let _ = LinkParams::new(0, SimDuration::ZERO);
    }

    #[test]
    fn accessors() {
        let link = LinkParams::new(42, SimDuration::from_ns(9));
        assert_eq!(link.rate_bps(), 42);
        assert_eq!(link.propagation(), SimDuration::from_ns(9));
    }
}
