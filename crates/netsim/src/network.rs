//! The network domain: name-based topology construction.
//!
//! §2: "The network domain specifies the topology of a networking
//! architecture in terms of high-level devices (called nodes) such as
//! switches and traffic sources, and communication links between them."
//!
//! [`NetworkBuilder`] is a convenience layer over [`Kernel`] that lets models
//! be wired up by *name* (`"switch.port0"`) instead of raw ids, with
//! validation of the references at build time.

use crate::error::NetsimError;
use crate::event::{ModuleId, NodeId, PortId};
use crate::kernel::Kernel;
use crate::link::LinkParams;
use crate::process::Process;
use std::collections::HashMap;
use std::fmt;

/// Error produced while building a topology by name.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildError {
    /// A node name was used twice.
    DuplicateNode(String),
    /// A module name was used twice within the same node.
    DuplicateModule(String),
    /// A referenced `node.module` path does not exist.
    UnknownPath(String),
    /// A wiring call failed at the kernel level.
    Kernel(NetsimError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::DuplicateNode(n) => write!(f, "duplicate node name {n:?}"),
            BuildError::DuplicateModule(m) => write!(f, "duplicate module name {m:?}"),
            BuildError::UnknownPath(p) => write!(f, "unknown module path {p:?}"),
            BuildError::Kernel(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Kernel(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetsimError> for BuildError {
    fn from(e: NetsimError) -> Self {
        BuildError::Kernel(e)
    }
}

/// Builds a [`Kernel`] from named nodes, modules and connections.
///
/// # Examples
///
/// ```
/// use castanet_netsim::network::NetworkBuilder;
/// use castanet_netsim::process::NullProcess;
/// use castanet_netsim::link::LinkParams;
/// use castanet_netsim::time::SimDuration;
///
/// let mut net = NetworkBuilder::new(1);
/// net.node("source")?;
/// net.node("switch")?;
/// net.module("source", "gen", Box::new(NullProcess))?;
/// net.module("switch", "in0", Box::new(NullProcess))?;
/// net.link(
///     "source.gen", 0,
///     "switch.in0", 0,
///     LinkParams::stm1(),
/// )?;
/// let kernel = net.build();
/// assert_eq!(kernel.pending_events(), 0);
/// # Ok::<(), castanet_netsim::network::BuildError>(())
/// ```
pub struct NetworkBuilder {
    kernel: Kernel,
    nodes: HashMap<String, NodeId>,
    modules: HashMap<String, ModuleId>,
}

impl fmt::Debug for NetworkBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NetworkBuilder")
            .field("nodes", &self.nodes.len())
            .field("modules", &self.modules.len())
            .finish()
    }
}

impl NetworkBuilder {
    /// Starts a topology with a deterministic RNG seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        NetworkBuilder {
            kernel: Kernel::new(seed),
            nodes: HashMap::new(),
            modules: HashMap::new(),
        }
    }

    /// Declares a node.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::DuplicateNode`] if the name is taken.
    pub fn node(&mut self, name: &str) -> Result<NodeId, BuildError> {
        if self.nodes.contains_key(name) {
            return Err(BuildError::DuplicateNode(name.to_string()));
        }
        let id = self.kernel.add_node(name);
        self.nodes.insert(name.to_string(), id);
        Ok(id)
    }

    /// Adds a module named `module` to node `node`.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::UnknownPath`] if the node does not exist or
    /// [`BuildError::DuplicateModule`] if `node.module` is taken.
    pub fn module(
        &mut self,
        node: &str,
        module: &str,
        process: Box<dyn Process>,
    ) -> Result<ModuleId, BuildError> {
        let node_id = *self
            .nodes
            .get(node)
            .ok_or_else(|| BuildError::UnknownPath(node.to_string()))?;
        let path = format!("{node}.{module}");
        if self.modules.contains_key(&path) {
            return Err(BuildError::DuplicateModule(path));
        }
        let id = self.kernel.add_module(node_id, module, process);
        self.modules.insert(path, id);
        Ok(id)
    }

    /// Resolves a `node.module` path to its id.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::UnknownPath`] when the path is not registered.
    pub fn lookup(&self, path: &str) -> Result<ModuleId, BuildError> {
        self.modules
            .get(path)
            .copied()
            .ok_or_else(|| BuildError::UnknownPath(path.to_string()))
    }

    /// Connects two module ports with an instantaneous stream
    /// (intra-node wiring).
    ///
    /// # Errors
    ///
    /// Returns path or kernel wiring errors.
    pub fn stream(
        &mut self,
        src: &str,
        src_port: usize,
        dst: &str,
        dst_port: usize,
    ) -> Result<(), BuildError> {
        let s = self.lookup(src)?;
        let d = self.lookup(dst)?;
        self.kernel
            .connect_stream(s, PortId(src_port), d, PortId(dst_port))?;
        Ok(())
    }

    /// Connects two module ports with a rate/delay link (inter-node wiring).
    ///
    /// # Errors
    ///
    /// Returns path or kernel wiring errors.
    pub fn link(
        &mut self,
        src: &str,
        src_port: usize,
        dst: &str,
        dst_port: usize,
        params: LinkParams,
    ) -> Result<(), BuildError> {
        let s = self.lookup(src)?;
        let d = self.lookup(dst)?;
        self.kernel
            .connect_link(s, PortId(src_port), d, PortId(dst_port), params)?;
        Ok(())
    }

    /// Direct access to the kernel under construction (e.g. to register
    /// probes).
    pub fn kernel_mut(&mut self) -> &mut Kernel {
        &mut self.kernel
    }

    /// Finishes construction, yielding the runnable kernel.
    #[must_use]
    pub fn build(self) -> Kernel {
        self.kernel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::NullProcess;

    #[test]
    fn builds_named_topology() {
        let mut b = NetworkBuilder::new(0);
        b.node("a").unwrap();
        b.node("b").unwrap();
        b.module("a", "m", Box::new(NullProcess)).unwrap();
        b.module("b", "m", Box::new(NullProcess)).unwrap();
        b.stream("a.m", 0, "b.m", 0).unwrap();
        let mut k = b.build();
        assert!(k.run().is_ok());
    }

    #[test]
    fn duplicate_node_rejected() {
        let mut b = NetworkBuilder::new(0);
        b.node("x").unwrap();
        assert!(matches!(b.node("x"), Err(BuildError::DuplicateNode(_))));
    }

    #[test]
    fn duplicate_module_rejected() {
        let mut b = NetworkBuilder::new(0);
        b.node("x").unwrap();
        b.module("x", "m", Box::new(NullProcess)).unwrap();
        let err = b.module("x", "m", Box::new(NullProcess)).unwrap_err();
        assert!(matches!(err, BuildError::DuplicateModule(p) if p == "x.m"));
    }

    #[test]
    fn unknown_paths_rejected() {
        let mut b = NetworkBuilder::new(0);
        assert!(matches!(
            b.module("ghost", "m", Box::new(NullProcess)),
            Err(BuildError::UnknownPath(_))
        ));
        b.node("x").unwrap();
        b.module("x", "m", Box::new(NullProcess)).unwrap();
        assert!(matches!(
            b.stream("x.m", 0, "x.ghost", 0),
            Err(BuildError::UnknownPath(_))
        ));
    }

    #[test]
    fn kernel_errors_propagate() {
        let mut b = NetworkBuilder::new(0);
        b.node("x").unwrap();
        b.module("x", "m", Box::new(NullProcess)).unwrap();
        b.module("x", "n", Box::new(NullProcess)).unwrap();
        b.stream("x.m", 0, "x.n", 0).unwrap();
        let err = b.stream("x.m", 0, "x.n", 1).unwrap_err();
        assert!(matches!(
            err,
            BuildError::Kernel(NetsimError::PortAlreadyConnected { .. })
        ));
    }

    #[test]
    fn lookup_resolves_ids() {
        let mut b = NetworkBuilder::new(0);
        b.node("x").unwrap();
        let id = b.module("x", "m", Box::new(NullProcess)).unwrap();
        assert_eq!(b.lookup("x.m").unwrap(), id);
        assert!(b.lookup("x.q").is_err());
    }

    #[test]
    fn error_display() {
        assert_eq!(
            BuildError::UnknownPath("a.b".into()).to_string(),
            "unknown module path \"a.b\""
        );
    }
}
