//! Events of the discrete-event kernel.
//!
//! Every event carries a time stamp; the kernel executes events in monotone
//! non-decreasing time-stamp order (the property Fig. 3 of the paper depends
//! on). Ties are broken by a strictly increasing sequence number so that two
//! events scheduled for the same instant execute in scheduling order, which
//! makes simulations deterministic and reproducible.

use crate::packet::Packet;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::fmt;

/// Identifies a module (a process instance inside a node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ModuleId(pub(crate) usize);

impl ModuleId {
    /// Raw index of the module in the kernel's module table.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ModuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "module#{}", self.0)
    }
}

/// Identifies a node (a grouping of modules in the network domain).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Raw index of the node in the kernel's node table.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

/// A port index local to a module. Output port `k` of one module connects to
/// an input port of another module via a stream or link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PortId(pub usize);

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "port{}", self.0)
    }
}

/// What an event does when it fires.
#[derive(Debug)]
pub enum EventKind {
    /// A packet arrives on an input port of a module.
    Arrival {
        /// Destination module.
        module: ModuleId,
        /// Input port on the destination module.
        port: PortId,
        /// The arriving packet.
        packet: Packet,
    },
    /// A (self-)interrupt delivered to a module, with a user-chosen code.
    Interrupt {
        /// Destination module.
        module: ModuleId,
        /// User-defined discriminator (e.g. "cell slot tick").
        code: u32,
    },
    /// Stop the simulation when executed.
    Stop,
}

impl EventKind {
    /// The module this event is addressed to, if any.
    #[must_use]
    pub fn target(&self) -> Option<ModuleId> {
        match self {
            EventKind::Arrival { module, .. } | EventKind::Interrupt { module, .. } => {
                Some(*module)
            }
            EventKind::Stop => None,
        }
    }
}

/// Unique handle of a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub(crate) u64);

/// A scheduled event: time stamp, tie-breaking sequence number, payload.
#[derive(Debug)]
pub struct Event {
    pub(crate) time: SimTime,
    pub(crate) seq: u64,
    pub(crate) kind: EventKind,
}

impl Event {
    /// Time at which the event fires.
    #[must_use]
    pub fn time(&self) -> SimTime {
        self.time
    }

    /// The event payload.
    #[must_use]
    pub fn kind(&self) -> &EventKind {
        &self.kind
    }

    /// Identifier assigned at scheduling time.
    #[must_use]
    pub fn id(&self) -> EventId {
        EventId(self.seq)
    }
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    /// Orders by `(time, seq)`: earlier first, FIFO among equal times.
    fn cmp(&self, other: &Self) -> Ordering {
        self.time
            .cmp(&other.time)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interrupt_at(ns: u64, seq: u64) -> Event {
        Event {
            time: SimTime::from_ns(ns),
            seq,
            kind: EventKind::Interrupt {
                module: ModuleId(0),
                code: 0,
            },
        }
    }

    #[test]
    fn events_order_by_time_then_seq() {
        let a = interrupt_at(5, 10);
        let b = interrupt_at(5, 11);
        let c = interrupt_at(4, 99);
        assert!(c < a);
        assert!(a < b);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn target_of_kinds() {
        let ev = interrupt_at(1, 0);
        assert_eq!(ev.kind().target(), Some(ModuleId(0)));
        assert_eq!(EventKind::Stop.target(), None);
    }

    #[test]
    fn display_of_ids() {
        assert_eq!(ModuleId(3).to_string(), "module#3");
        assert_eq!(NodeId(1).to_string(), "node#1");
        assert_eq!(PortId(2).to_string(), "port2");
    }
}
