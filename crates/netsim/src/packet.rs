//! Packets — the information quanta exchanged by processes.
//!
//! In OPNET, processes communicate by exchanging *packets* whose content is
//! an abstract data structure (§3.2: "processes communicate through the
//! exchange of abstracted information described for example as
//! C-structures. The communication is instantaneous — when an event occurs
//! the complete information is available for further processing").
//!
//! `Packet` therefore carries a typed payload (`Box<dyn Any>`) so that model
//! code can move real Rust structs (e.g. an ATM cell) through the network
//! without serialization; the bit length used for link transmission-delay
//! computation is tracked separately, because the *modelled* size of the
//! information and the in-memory size of its representation are different
//! things.

use crate::time::SimTime;
use std::any::Any;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_PACKET_ID: AtomicU64 = AtomicU64::new(0);

/// Monotonically increasing packet identity, unique within a process run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketId(u64);

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pkt#{}", self.0)
    }
}

/// A simulation packet: a format code, a modelled bit length, a creation
/// stamp and an arbitrary typed payload.
///
/// # Examples
///
/// ```
/// use castanet_netsim::packet::Packet;
///
/// #[derive(Debug, PartialEq)]
/// struct AtmData { vpi: u16, vci: u16 }
///
/// let p = Packet::new(Packet::FORMAT_UNTYPED, 53 * 8).with_payload(AtmData { vpi: 1, vci: 42 });
/// assert_eq!(p.bit_len(), 424);
/// assert_eq!(p.payload::<AtmData>().map(|d| d.vci), Some(42));
/// ```
#[derive(Debug)]
pub struct Packet {
    id: PacketId,
    format: u32,
    bit_len: u32,
    created_at: SimTime,
    payload: Option<Box<dyn Any + Send>>,
}

impl Packet {
    /// Format code for packets without a registered format.
    pub const FORMAT_UNTYPED: u32 = 0;

    /// Creates a packet with the given format code and modelled size in bits.
    #[must_use]
    pub fn new(format: u32, bit_len: u32) -> Self {
        Packet {
            id: PacketId(NEXT_PACKET_ID.fetch_add(1, Ordering::Relaxed)),
            format,
            bit_len,
            created_at: SimTime::ZERO,
            payload: None,
        }
    }

    /// Attaches a typed payload, replacing any previous payload.
    #[must_use]
    pub fn with_payload<T: Any + Send>(mut self, payload: T) -> Self {
        self.payload = Some(Box::new(payload));
        self
    }

    /// Unique identity of this packet.
    #[must_use]
    pub fn id(&self) -> PacketId {
        self.id
    }

    /// User-assigned format code (used by interface models to route packets
    /// to the correct conversion function).
    #[must_use]
    pub fn format(&self) -> u32 {
        self.format
    }

    /// Modelled length in bits, used for serialization-delay computation on
    /// links.
    #[must_use]
    pub fn bit_len(&self) -> u32 {
        self.bit_len
    }

    /// Sets the modelled length in bits.
    pub fn set_bit_len(&mut self, bits: u32) {
        self.bit_len = bits;
    }

    /// Time at which the packet was handed to the kernel (set on first send).
    #[must_use]
    pub fn created_at(&self) -> SimTime {
        self.created_at
    }

    pub(crate) fn stamp_creation(&mut self, t: SimTime) {
        if self.created_at == SimTime::ZERO {
            self.created_at = t;
        }
    }

    /// Borrow the payload as type `T`, if present and of that type.
    #[must_use]
    pub fn payload<T: Any>(&self) -> Option<&T> {
        self.payload.as_ref()?.downcast_ref::<T>()
    }

    /// Mutably borrow the payload as type `T`, if present and of that type.
    #[must_use]
    pub fn payload_mut<T: Any>(&mut self) -> Option<&mut T> {
        self.payload.as_mut()?.downcast_mut::<T>()
    }

    /// Takes the payload out of the packet as type `T`.
    ///
    /// Returns `Err(self)` (the packet unchanged) when the payload is absent
    /// or of a different type, so callers keep ownership either way.
    pub fn into_payload<T: Any>(mut self) -> Result<T, Packet> {
        match self.payload.take() {
            Some(b) => match b.downcast::<T>() {
                Ok(v) => Ok(*v),
                Err(b) => {
                    self.payload = Some(b);
                    Err(self)
                }
            },
            None => Err(self),
        }
    }

    /// `true` when a payload is attached.
    #[must_use]
    pub fn has_payload(&self) -> bool {
        self.payload.is_some()
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} fmt={} len={}b created={}",
            self.id, self.format, self.bit_len, self.created_at
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique() {
        let a = Packet::new(0, 8);
        let b = Packet::new(0, 8);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn payload_roundtrip() {
        let p = Packet::new(1, 424).with_payload(vec![1u8, 2, 3]);
        assert!(p.has_payload());
        assert_eq!(p.payload::<Vec<u8>>().unwrap(), &vec![1, 2, 3]);
        assert!(p.payload::<String>().is_none());
        let v = p.into_payload::<Vec<u8>>().expect("payload type matches");
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn into_payload_wrong_type_returns_packet() {
        let p = Packet::new(1, 8).with_payload(7u32);
        let p = p.into_payload::<String>().expect_err("wrong type");
        // Payload is preserved after the failed downcast.
        assert_eq!(p.payload::<u32>(), Some(&7));
    }

    #[test]
    fn into_payload_empty_returns_packet() {
        let p = Packet::new(1, 8);
        assert!(p.into_payload::<u32>().is_err());
    }

    #[test]
    fn payload_mut_allows_in_place_edit() {
        let mut p = Packet::new(0, 8).with_payload(10i64);
        *p.payload_mut::<i64>().unwrap() += 5;
        assert_eq!(p.payload::<i64>(), Some(&15));
    }

    #[test]
    fn creation_stamp_set_once() {
        let mut p = Packet::new(0, 8);
        p.stamp_creation(SimTime::from_ns(5));
        p.stamp_creation(SimTime::from_ns(9));
        assert_eq!(p.created_at(), SimTime::from_ns(5));
    }

    #[test]
    fn bit_len_mutable() {
        let mut p = Packet::new(0, 8);
        p.set_bit_len(424);
        assert_eq!(p.bit_len(), 424);
    }

    #[test]
    fn display_mentions_format_and_len() {
        let p = Packet::new(3, 16);
        let s = p.to_string();
        assert!(s.contains("fmt=3"));
        assert!(s.contains("len=16b"));
    }
}
