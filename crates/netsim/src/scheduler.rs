//! The event list.
//!
//! A binary-heap priority queue keyed on `(time, sequence)` — the classical
//! "event list" of a discrete-event simulator (§3.1 of the paper: "DE
//! simulators manage their events via an event list that represents the event
//! distribution over time and maintains a proper time-ordering").
//!
//! Scheduling into the past is a programming error and is rejected: "events
//! may be generated for any future time, or the current time, but never for
//! past times".

use crate::event::{Event, EventId, EventKind};
use crate::time::SimTime;
use std::collections::{BinaryHeap, HashSet};

/// Error returned when an event is scheduled before the scheduler's current
/// time, which would violate causality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleInPastError {
    /// The time the caller asked for.
    pub requested: SimTime,
    /// The scheduler's current time.
    pub now: SimTime,
}

impl std::fmt::Display for ScheduleInPastError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "event scheduled at {} which is before current time {}",
            self.requested, self.now
        )
    }
}

impl std::error::Error for ScheduleInPastError {}

/// Time-ordered event list with stable FIFO tie-breaking and O(log n)
/// insertion/extraction.
///
/// # Examples
///
/// ```
/// use castanet_netsim::scheduler::EventList;
/// use castanet_netsim::event::{EventKind, ModuleId, PortId};
/// use castanet_netsim::time::SimTime;
///
/// let mut list = EventList::new();
/// list.schedule(SimTime::from_ns(10), EventKind::Stop)?;
/// assert_eq!(list.next_time(), Some(SimTime::from_ns(10)));
/// let ev = list.pop().expect("one event pending");
/// assert_eq!(ev.time(), SimTime::from_ns(10));
/// # Ok::<(), castanet_netsim::scheduler::ScheduleInPastError>(())
/// ```
#[derive(Debug, Default)]
pub struct EventList {
    heap: BinaryHeap<std::cmp::Reverse<Event>>,
    cancelled: HashSet<EventId>,
    next_seq: u64,
    now: SimTime,
    scheduled_total: u64,
    executed_total: u64,
}

impl EventList {
    /// Creates an empty event list at time zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The time of the most recently popped event (the simulation's "current
    /// simulated time" `t_cur`).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending (non-cancelled) events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled (for the E7 event-count
    /// comparison between system-level and RTL simulation).
    #[must_use]
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Total number of events executed so far.
    #[must_use]
    pub fn executed_total(&self) -> u64 {
        self.executed_total
    }

    /// Schedules `kind` to fire at absolute time `at`.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleInPastError`] if `at` precedes the current time.
    /// Scheduling *at* the current time is allowed, matching the paper's rule.
    pub fn schedule(
        &mut self,
        at: SimTime,
        kind: EventKind,
    ) -> Result<EventId, ScheduleInPastError> {
        if at < self.now {
            return Err(ScheduleInPastError {
                requested: at,
                now: self.now,
            });
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(std::cmp::Reverse(Event {
            time: at,
            seq,
            kind,
        }));
        Ok(EventId(seq))
    }

    /// Cancels a previously scheduled event. Cancelling an already-executed
    /// or unknown event is a no-op (lazy deletion).
    pub fn cancel(&mut self, id: EventId) {
        if id.0 < self.next_seq {
            self.cancelled.insert(id);
        }
    }

    /// Time stamp of the earliest pending event, without removing it.
    #[must_use]
    pub fn next_time(&mut self) -> Option<SimTime> {
        self.skip_cancelled();
        self.heap.peek().map(|std::cmp::Reverse(ev)| ev.time)
    }

    /// Removes and returns the earliest pending event, advancing the current
    /// time to its time stamp.
    pub fn pop(&mut self) -> Option<Event> {
        self.skip_cancelled();
        let std::cmp::Reverse(ev) = self.heap.pop()?;
        debug_assert!(
            ev.time >= self.now,
            "event list produced out-of-order event"
        );
        self.now = ev.time;
        self.executed_total += 1;
        Some(ev)
    }

    /// Discards cancelled entries sitting at the top of the heap.
    fn skip_cancelled(&mut self) {
        while let Some(std::cmp::Reverse(ev)) = self.heap.peek() {
            if self.cancelled.remove(&EventId(ev.seq)) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ModuleId;

    fn interrupt(module: usize, code: u32) -> EventKind {
        EventKind::Interrupt {
            module: ModuleId(module),
            code,
        }
    }

    fn code_of(ev: &Event) -> u32 {
        match ev.kind() {
            EventKind::Interrupt { code, .. } => *code,
            _ => panic!("expected interrupt"),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut list = EventList::new();
        list.schedule(SimTime::from_ns(30), interrupt(0, 3))
            .unwrap();
        list.schedule(SimTime::from_ns(10), interrupt(0, 1))
            .unwrap();
        list.schedule(SimTime::from_ns(20), interrupt(0, 2))
            .unwrap();
        let order: Vec<u32> = std::iter::from_fn(|| list.pop())
            .map(|e| code_of(&e))
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut list = EventList::new();
        let t = SimTime::from_ns(5);
        for code in 0..10 {
            list.schedule(t, interrupt(0, code)).unwrap();
        }
        let order: Vec<u32> = std::iter::from_fn(|| list.pop())
            .map(|e| code_of(&e))
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn rejects_past_scheduling() {
        let mut list = EventList::new();
        list.schedule(SimTime::from_ns(10), interrupt(0, 0))
            .unwrap();
        list.pop().unwrap();
        assert_eq!(list.now(), SimTime::from_ns(10));
        let err = list
            .schedule(SimTime::from_ns(5), interrupt(0, 1))
            .unwrap_err();
        assert_eq!(err.requested, SimTime::from_ns(5));
        assert_eq!(err.now, SimTime::from_ns(10));
        // Scheduling at the current time is allowed.
        assert!(list.schedule(SimTime::from_ns(10), interrupt(0, 2)).is_ok());
    }

    #[test]
    fn cancel_removes_event() {
        let mut list = EventList::new();
        let id = list.schedule(SimTime::from_ns(1), interrupt(0, 1)).unwrap();
        list.schedule(SimTime::from_ns(2), interrupt(0, 2)).unwrap();
        list.cancel(id);
        assert_eq!(list.len(), 1);
        let ev = list.pop().unwrap();
        assert_eq!(code_of(&ev), 2);
        assert!(list.pop().is_none());
    }

    #[test]
    fn cancel_unknown_is_noop() {
        let mut list = EventList::new();
        list.cancel(EventId(42));
        assert!(list.is_empty());
    }

    #[test]
    fn next_time_peeks_without_advancing() {
        let mut list = EventList::new();
        list.schedule(SimTime::from_ns(7), interrupt(0, 0)).unwrap();
        assert_eq!(list.next_time(), Some(SimTime::from_ns(7)));
        assert_eq!(list.now(), SimTime::ZERO);
    }

    #[test]
    fn counters_track_activity() {
        let mut list = EventList::new();
        for i in 0..5 {
            list.schedule(SimTime::from_ns(i), interrupt(0, 0)).unwrap();
        }
        for _ in 0..3 {
            list.pop();
        }
        assert_eq!(list.scheduled_total(), 5);
        assert_eq!(list.executed_total(), 3);
        assert_eq!(list.len(), 2);
    }
}
