//! Error type of the network-simulation kernel.

use crate::event::{ModuleId, PortId};
use crate::scheduler::ScheduleInPastError;
use std::fmt;

/// Errors surfaced by kernel and model-construction operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetsimError {
    /// An event was scheduled before the current simulation time.
    ScheduleInPast(ScheduleInPastError),
    /// A send was attempted on a port with no connection.
    PortNotConnected {
        /// Module that attempted the send.
        module: ModuleId,
        /// The unconnected output port.
        port: PortId,
    },
    /// An output port already has a connection.
    PortAlreadyConnected {
        /// Module whose port is already wired.
        module: ModuleId,
        /// The port in question.
        port: PortId,
    },
    /// A module id did not refer to a registered module.
    UnknownModule,
    /// Topology mutation was attempted after the simulation started.
    TopologyFrozen,
}

impl fmt::Display for NetsimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetsimError::ScheduleInPast(e) => write!(f, "{e}"),
            NetsimError::PortNotConnected { module, port } => {
                write!(f, "send on unconnected {port} of {module}")
            }
            NetsimError::PortAlreadyConnected { module, port } => {
                write!(f, "{port} of {module} is already connected")
            }
            NetsimError::UnknownModule => {
                write!(f, "module id does not refer to a registered module")
            }
            NetsimError::TopologyFrozen => {
                write!(f, "topology cannot change after the simulation has started")
            }
        }
    }
}

impl std::error::Error for NetsimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetsimError::ScheduleInPast(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ScheduleInPastError> for NetsimError {
    fn from(e: ScheduleInPastError) -> Self {
        NetsimError::ScheduleInPast(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = NetsimError::PortNotConnected {
            module: ModuleId(1),
            port: PortId(2),
        };
        assert_eq!(e.to_string(), "send on unconnected port2 of module#1");
        let e = NetsimError::TopologyFrozen;
        assert!(e.to_string().starts_with("topology"));
    }

    #[test]
    fn schedule_in_past_preserves_source() {
        use std::error::Error;
        let inner = ScheduleInPastError {
            requested: SimTime::from_ns(1),
            now: SimTime::from_ns(2),
        };
        let e = NetsimError::from(inner.clone());
        assert!(e.source().is_some());
        assert!(e.to_string().contains("before current time"));
        assert_eq!(NetsimError::ScheduleInPast(inner.clone()), e);
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetsimError>();
    }
}
